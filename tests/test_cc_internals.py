"""White-box tests of the cache controller's bookkeeping, validated
with the full consistency audit after every interesting workload."""

import pytest

from repro.lang import compile_program
from repro.net import LOCAL_LINK
from repro.sim import run_native
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.softcache.cc import _IdAlloc
from repro.softcache.debug import (
    check_consistency,
    chunk_graph_dot,
    dump_tcache,
)
from repro.softcache.records import SiteKind

CHURN_SRC = r"""
int f1(int x) { return x * 3 + 1; }
int f2(int x) { if (x & 1) return f1(x); return x - 2; }
int f3(int n) {
    int i; int acc = 0;
    for (i = 0; i < n; i++) acc += f2(i);
    return acc;
}
int main(void) {
    int round;
    int acc = 0;
    for (round = 0; round < 8; round++) acc += f3(12 + round);
    __putint(acc);
    return 0;
}
"""


def run_system(tcache=512, granularity="block", policy="fifo",
               src=CHURN_SRC, pinned_capacity=0, pin=None,
               indirect_ok=True):
    image = compile_program(src, "churn", indirect_ok=indirect_ok)
    config = SoftCacheConfig(
        tcache_size=tcache, granularity=granularity, policy=policy,
        link=LOCAL_LINK, pinned_capacity=pinned_capacity,
        debug_poison=True)
    system = SoftCacheSystem(image, config)
    if pin:
        system.pin(pin)
    native = run_native(image)
    report = system.run()
    assert report.output == native.output_text
    return system


@pytest.mark.parametrize("tcache,policy", [
    (32768, "fifo"), (512, "fifo"), (512, "flush"), (384, "fifo")])
def test_consistency_block_mode(tcache, policy):
    system = run_system(tcache=tcache, policy=policy)
    assert check_consistency(system.cc) > 0


@pytest.mark.parametrize("tcache,policy", [
    (32768, "fifo"), (512, "fifo"), (512, "flush")])
def test_consistency_proc_mode(tcache, policy):
    system = run_system(tcache=tcache, granularity="proc",
                        policy=policy, indirect_ok=False)
    assert check_consistency(system.cc) > 0


def test_consistency_ebb_mode():
    system = run_system(tcache=768, granularity="ebb")
    assert check_consistency(system.cc) > 0


def test_consistency_with_pinning():
    system = run_system(tcache=384, granularity="block",
                        pinned_capacity=512, pin="f1")
    assert check_consistency(system.cc) > 0
    assert system.cc.tcache.pinned_blocks


def test_link_graph_structure():
    system = run_system(tcache=32768)
    cc = system.cc
    blocks = list(cc.tcache.order)
    # in a steady no-eviction run every unresolved exit is a stub and
    # every taken edge is a link; both sides of each link agree
    total_in = sum(len(b.incoming) for b in blocks)
    total_out = sum(len(b.outgoing) for b in blocks)
    standalone_in = sum(
        1 for b in blocks for link in b.incoming if link.src is None)
    assert total_in - standalone_in == total_out
    # site kinds are from the block-mode vocabulary
    kinds = {link.kind for b in blocks for link in b.incoming}
    assert kinds <= {SiteKind.BRANCH, SiteKind.JUMP, SiteKind.CALL,
                     SiteKind.CONTJ}


def test_stub_gc_reclaims_under_pressure():
    """Deep churn with a tiny stub area survives via standalone-slot
    GC instead of dying with stub exhaustion."""
    system = run_system(tcache=512, policy="flush")
    # force explicit GC: afterwards, every remaining standalone slot
    # is referenced by a live return address
    cc = system.cc
    before = len([s for s in cc.cont_slots.values()
                  if s.block is None])
    cc._gc_standalone_slots()
    after = len([s for s in cc.cont_slots.values() if s.block is None])
    assert after <= before
    live_values = {v for _, _, v in cc._collect_ra_holders()}
    for slot in cc.cont_slots.values():
        if slot.block is None:
            assert slot.addr in live_values
    assert check_consistency(cc) > 0


def test_id_alloc_reuse_and_exhaustion():
    alloc = _IdAlloc(limit=3)
    a = alloc.alloc()
    b = alloc.alloc()
    alloc.free(a)
    assert alloc.alloc() == a  # reused
    alloc.alloc()
    with pytest.raises(Exception):
        alloc.alloc()
    alloc.reset()
    assert alloc.alloc() == 0


def test_dump_tcache_readable():
    system = run_system(tcache=32768)
    text = dump_tcache(system.cc)
    assert "tcache:" in text
    assert "block @" in text
    assert "ret" in text  # disassembly present


def test_chunk_graph_dot():
    system = run_system(tcache=32768)
    dot = chunk_graph_dot(system.cc)
    assert dot.startswith("digraph")
    assert "->" in dot
    assert dot.rstrip().endswith("}")


def test_stats_invariants_after_thrash():
    system = run_system(tcache=384, policy="fifo")
    stats = system.stats
    # every translation was triggered by the entry or by a miss trap
    # or a jr lookup
    assert stats.translations <= (
        stats.miss_traps + stats.jr_lookups + 1)
    # patched sites never exceed created links opportunities
    assert stats.patches >= stats.branch_miss_traps * 0  # sanity
    assert stats.words_installed >= stats.translations
    # timeline lengths match the counters
    assert len(stats.eviction_timestamps) == (
        stats.evictions + stats.blocks_flushed)


def test_local_memory_numbers_consistent():
    system = run_system(tcache=1024)
    usage = system.local_memory_in_use
    assert usage["tcache_used"] <= usage["tcache_capacity"]
    assert usage["map_bytes"] == 8 * len(system.cc.tcache.map)
