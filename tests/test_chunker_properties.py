"""Property tests over the chunkers on a real image: any reachable
address chunked at any granularity yields decodable, faithful code."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfg import Term, build_cfg
from repro.isa import Op, decode
from repro.softcache import BasicBlockChunker, EBBChunker, ExitKind
from repro.workloads import build_workload

_IMG = None
_ADDRS = None
_MAX_BLOCK_WORDS = None


def _setup():
    global _IMG, _ADDRS, _MAX_BLOCK_WORDS
    if _IMG is None:
        _IMG = build_workload("sensor", 0.05)
        cfg = build_cfg(_IMG)
        _ADDRS = sorted(cfg.blocks)
        _MAX_BLOCK_WORDS = max(
            len(b.insns) for b in cfg.blocks.values())
    return _IMG, _ADDRS


@settings(max_examples=150, deadline=None)
@given(data=st.data())
def test_block_chunks_faithful(data):
    image, block_addrs = _setup()
    addr = data.draw(st.sampled_from(block_addrs))
    chunk = BasicBlockChunker(image).chunk_at(addr)

    # every word decodes
    for word in chunk.words:
        decode(word)
    # non-exit words are verbatim copies of the original text
    exit_indices = {e.index for e in chunk.exits}
    body_words = chunk.orig_size // 4 - 1  # up to the terminator
    for i in range(body_words):
        if i not in exit_indices:
            assert chunk.words[i] == image.word_at(addr + 4 * i)
    # exits carry valid targets within text (or None for computed)
    for exit_desc in chunk.exits:
        if exit_desc.kind in (ExitKind.TAKEN, ExitKind.JUMP,
                              ExitKind.CALL, ExitKind.CONT):
            assert image.in_text(exit_desc.target)
    # size accounting
    assert chunk.size == 4 * len(chunk.words)
    assert chunk.payload_bytes >= chunk.size
    assert chunk.size == chunk.orig_size + 4 * chunk.extra_words \
        or chunk.term is not None


@settings(max_examples=100, deadline=None)
@given(data=st.data(), limit=st.integers(1, 12))
def test_ebb_chunks_decodable_and_bounded(data, limit):
    image, block_addrs = _setup()
    addr = data.draw(st.sampled_from(block_addrs))
    chunker = EBBChunker(image, limit=limit, max_words=64)
    chunk = chunker.chunk_at(addr)
    for word in chunk.words:
        decode(word)
    # the cap is soft at basic-block granularity: a whole block may be
    # appended before the cap check fires, plus the continuation jump
    assert len(chunk.words) <= 64 + _MAX_BLOCK_WORDS + 2
    # the first basic block's body is embedded verbatim at the start
    block_chunk = BasicBlockChunker(image).chunk_at(addr)
    n_verbatim = max(0, (block_chunk.orig_size // 4) - 1)
    assert chunk.words[:n_verbatim] == tuple(
        image.word_at(addr + 4 * i) for i in range(n_verbatim))


def test_every_reachable_block_chunks():
    """Exhaustive: chunking never fails anywhere control can go."""
    image, block_addrs = _setup()
    chunker = BasicBlockChunker(image)
    terminal_kinds = set()
    for addr in block_addrs:
        chunk = chunker.chunk_at(addr)
        assert chunk.words, hex(addr)
        terminal_kinds.add(chunk.term)
    # the workload exercises most of the terminator vocabulary
    assert Term.BRANCH in terminal_kinds
    assert Term.CALL in terminal_kinds
    assert Term.RET in terminal_kinds


def test_ebb_inline_continuations_registered():
    """Every call glued inline must expose a CONT_INLINE record (the
    eviction stack-fixer depends on it)."""
    image, _ = _setup()
    chunker = EBBChunker(image, limit=8)
    main = image.symbols["main"]
    chunk = chunker.chunk_at(main)
    calls = [e for e in chunk.exits if e.kind is ExitKind.CALL]
    inlines = [e for e in chunk.exits
               if e.kind is ExitKind.CONT_INLINE]
    assert len(inlines) >= len(calls) - 1  # last call may end at cap
    for cont in inlines:
        # the continuation index is just after its call
        assert any(c.index + 1 == cont.index for c in calls)
