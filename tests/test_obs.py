"""Flight recorder: events, metrics, export, zero-overhead contract."""

import json

import pytest

from repro.fleet import simulate_fleet
from repro.net import LinkModel
from repro.net.hub import with_hub
from repro.obs import (
    EVENT_SCHEMA,
    TRACE_SCHEMA_VERSION,
    FlightRecorder,
    Histogram,
    MetricsRegistry,
    ascii_timeline,
    load_jsonl,
    publish_dataclass,
    to_chrome_trace,
    top_hot_chunks,
    trace_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def sensor_image():
    return build_workload("sensor", 0.05)


def traced_run(image, recorder=None, **config_kwargs):
    recorder = recorder or FlightRecorder()
    config = SoftCacheConfig(tcache_size=2048, recorder=recorder,
                             **config_kwargs)
    system = SoftCacheSystem(image, config)
    report = system.run()
    return recorder, system, report


@pytest.fixture(scope="module")
def traced(sensor_image):
    return traced_run(sensor_image)


# -- the event schema is a golden contract ----------------------------


def test_event_schema_golden():
    """The on-disk trace format is pinned: changing an event name or
    its argument keys must be a deliberate act (update this table, the
    EVENT_SCHEMA table and docs/OBSERVABILITY.md together, and bump
    TRACE_SCHEMA_VERSION on incompatible changes)."""
    assert TRACE_SCHEMA_VERSION == 6
    assert EVENT_SCHEMA == {
        "cc.trap": ("kind", "id"),
        "cc.miss": ("orig", "name", "size", "batch"),
        "cc.prefetch_install": ("orig", "name", "size"),
        "cc.prefetch_drop": ("orig", "size", "reason"),
        "cc.patch": ("site", "target", "kind", "distance"),
        "cc.evict": ("orig", "addr", "size", "wasted"),
        "cc.flush": ("blocks",),
        "cc.pin": ("orig", "size"),
        "cc.guest_invalidate": ("addr", "length"),
        "cc.degraded_enter": ("orig", "pending"),
        "cc.degraded_exit": ("orig", "stall_cycles"),
        "cc.policy_reject": ("orig", "policy"),
        "cc.policy_promote": ("orig", "touches"),
        "cc.policy_flush": ("resident", "protected"),
        "cc.epoch_observed": ("epoch", "prev"),
        "cc.update_barrier": ("epoch", "prev", "invalidated",
                              "restamped", "dropped_prefetch"),
        "mc.rewrite": ("orig", "words", "exits"),
        "mc.serve": ("orig", "bytes", "cached"),
        "mc.batch": ("orig", "chunks", "prefetch_bytes"),
        "mc.restart": (),
        "mc.publish": ("epoch", "digest", "dirty_chunks", "dirty_bytes",
                       "durable"),
        "link.exchange": ("kind", "payload", "overhead", "seconds"),
        "link.batch": ("kind", "chunks", "payload", "seconds"),
        "link.send": ("kind", "payload", "seconds"),
        "hub.hit": ("key", "bytes"),
        "hub.far": ("bytes", "seconds"),
        "interp.fuse": ("pc", "fused"),
        "interp.sb_invalidate": ("pc",),
        "interp.flush": (),
        "cpu.jit_compile": ("pc", "fused"),
        "cpu.jit_load": ("pc", "fused"),
        "cpu.jit_promote": ("pc", "count"),
        "fleet.client": ("client", "start_s", "seconds",
                         "translations", "delay_s"),
        "fleet.queue": ("where", "arrival_s", "delay_s", "service_s"),
        "fleet.shard": ("shard", "requests", "busy_s", "util"),
        "fleet.hub": ("requests", "hits", "hit_rate"),
        "fault.drop": ("kind", "attempt", "where"),
        "fault.corrupt": ("kind", "attempt"),
        "fault.duplicate": ("kind",),
        "fault.delay": ("kind", "seconds"),
        "fault.retry": ("kind", "attempt", "backoff_s"),
        "fault.link_down": ("kind", "attempts"),
        "fault.reconnect": ("stall_s",),
    }


def test_emitted_events_conform_to_schema(traced):
    recorder, _, _ = traced
    assert recorder.events, "a thrashing run must emit events"
    for ev in recorder.events:
        assert ev.name in EVENT_SCHEMA, ev.name
        assert set(ev.args) <= set(EVENT_SCHEMA[ev.name]), \
            (ev.name, ev.args)
        assert ev.ph in ("i", "X")
        assert ev.cycles >= 0
        assert ev.dur_cycles >= 0


def test_all_core_layers_emit(traced):
    recorder, _, _ = traced
    cats = {ev.cat for ev in recorder.events}
    assert {"cc", "mc", "link", "interp"} <= cats


# -- zero overhead when disabled --------------------------------------


def test_disabled_recorder_attaches_nothing(sensor_image):
    recorder = FlightRecorder(enabled=False)
    system = SoftCacheSystem(sensor_image,
                             SoftCacheConfig(tcache_size=2048,
                                             recorder=recorder))
    assert system.recorder is None
    assert system.cc.tracer is None
    assert system.mc.tracer is None
    assert system.channel.tracer is None
    assert system.machine.cpu.trace_hook is None
    system.run()
    assert recorder.events == []


def test_tracing_is_cycle_identical(sensor_image, traced):
    """Enabling the recorder never changes simulated behaviour —
    the property that keeps fig5/fig8 bit-identical."""
    _, traced_system, traced_report = traced
    plain = SoftCacheSystem(sensor_image,
                            SoftCacheConfig(tcache_size=2048))
    report = plain.run()
    assert report.cycles == traced_report.cycles
    assert report.instructions == traced_report.instructions
    assert report.output == traced_report.output
    assert plain.stats.translations == traced_system.stats.translations
    assert plain.stats.evictions == traced_system.stats.evictions


# -- event semantics ---------------------------------------------------


def test_miss_spans_carry_duration_and_traps_precede(traced):
    recorder, system, _ = traced
    misses = [ev for ev in recorder.events if ev.name == "cc.miss"]
    assert len(misses) == system.stats.demand_translations
    assert all(ev.ph == "X" and ev.dur_cycles > 0 for ev in misses)
    traps = [ev for ev in recorder.events if ev.name == "cc.trap"]
    assert traps and all(
        ev.args["kind"] in ("branch", "ret", "call", "landing", "jr")
        for ev in traps)


def test_eviction_events_match_stats(traced):
    recorder, system, _ = traced
    evicts = [ev for ev in recorder.events if ev.name == "cc.evict"]
    assert len(evicts) == system.stats.evictions
    for ev in evicts:
        assert ev.args["size"] > 0


def test_prefetch_and_hub_events(sensor_image):
    recorder = FlightRecorder()
    config = SoftCacheConfig(tcache_size=2048, prefetch_depth=3,
                             link=LinkModel(), recorder=recorder)
    system = SoftCacheSystem(sensor_image, config)
    with_hub(system)
    system.run()
    names = {ev.name for ev in recorder.events}
    assert "cc.prefetch_install" in names
    assert "mc.batch" in names
    assert "link.batch" in names
    assert "hub.far" in names
    installs = [ev for ev in recorder.events
                if ev.name == "cc.prefetch_install"]
    assert len(installs) == system.stats.prefetch_installs


def test_max_events_overflow_counts_dropped():
    recorder = FlightRecorder(max_events=3)
    for i in range(10):
        recorder.emit("cc.trap", "cc", i, kind="branch", id=i)
    assert len(recorder.events) == 3
    assert recorder.dropped == 7


# -- export: JSONL round trip and Chrome trace ------------------------


def test_jsonl_round_trip(traced, tmp_path):
    recorder, _, _ = traced
    path = write_jsonl(recorder.events, tmp_path / "run.jsonl",
                       cpu_hz=recorder.cpu_hz)
    meta, events = load_jsonl(path)
    assert meta["schema"] == TRACE_SCHEMA_VERSION
    assert meta["cpu_hz"] == recorder.cpu_hz
    assert meta["events"] == len(recorder.events)
    assert len(events) == len(recorder.events)
    for before, after in zip(recorder.events, events):
        assert before.to_record() == after.to_record()


def test_chrome_trace_is_valid_and_loadable(traced, tmp_path):
    recorder, _, _ = traced
    path = write_chrome_trace(recorder.events, tmp_path / "t.json",
                              cpu_hz=recorder.cpu_hz)
    doc = json.loads(path.read_text())
    assert isinstance(doc["traceEvents"], list)
    assert doc["otherData"]["schema"] == TRACE_SCHEMA_VERSION
    phases = {rec["ph"] for rec in doc["traceEvents"]}
    assert phases <= {"i", "X", "M"}
    for rec in doc["traceEvents"]:
        assert isinstance(rec["name"], str)
        assert isinstance(rec["pid"], int)
        assert isinstance(rec["tid"], int)
        if rec["ph"] == "X":
            assert rec["dur"] >= 0
        if rec["ph"] != "M":
            assert rec["ts"] >= 0
    # metadata names every process and thread lane
    meta = [rec for rec in doc["traceEvents"] if rec["ph"] == "M"]
    assert any(rec["name"] == "process_name" for rec in meta)
    assert any(rec["args"]["name"] == "cc" for rec in meta
               if rec["name"] == "thread_name")


def test_ascii_reports(traced):
    recorder, system, _ = traced
    timeline = ascii_timeline(recorder.events, cpu_hz=recorder.cpu_hz)
    assert "cc" in timeline and "|" in timeline
    hot = top_hot_chunks(recorder.events, n=5)
    assert hot and hot[0]["misses"] >= hot[-1]["misses"]
    summary = trace_summary(recorder.events, cpu_hz=recorder.cpu_hz)
    assert "event counts:" in summary and "hot chunks" in summary
    assert ascii_timeline([], cpu_hz=200e6) == "(no events)"


# -- metrics registry --------------------------------------------------


def test_registry_basics():
    reg = MetricsRegistry()
    reg.counter("a").inc(3)
    reg.counter("a").inc()
    assert reg.counter("a").value == 4
    reg.gauge("b").set(2.5)
    assert reg.gauge("b").value == 2.5
    with pytest.raises(TypeError):
        reg.gauge("a")
    assert len(reg) == 2


def test_histogram_buckets_and_quantiles():
    h = Histogram("lat")
    for v in (1, 2, 3, 100, 1000):
        h.observe(v)
    assert h.count == 5
    assert h.min == 1 and h.max == 1000
    assert h.mean == pytest.approx(221.2)
    # quantiles are power-of-two upper bounds
    assert h.quantile(0.5) == 4.0
    assert h.quantile(1.0) == 1024.0
    snap = h.snapshot()
    assert snap["count"] == 5 and "buckets" in snap


def test_publish_dataclass_is_idempotent(traced):
    _, system, _ = traced
    reg = MetricsRegistry()
    publish_dataclass(reg, "cc", system.stats)
    once = reg.counter("cc.translations").value
    publish_dataclass(reg, "cc", system.stats)  # re-publish: no double
    assert reg.counter("cc.translations").value == once
    assert once == system.stats.translations


def test_run_publishes_metrics_and_histograms(traced):
    recorder, system, report = traced
    snap = recorder.metrics.snapshot()
    assert snap["cc.translations"] == system.stats.translations
    assert snap["mc.chunks_built"] == system.mc.stats.chunks_built
    assert snap["link.exchanges"] == system.link_stats.exchanges
    assert snap["sim.cycles"] == report.cycles
    lat = snap["cc.miss_latency_cycles"]
    assert lat["count"] == system.stats.demand_translations
    assert lat["p50"] <= lat["p99"]
    assert snap["cc.patch_distance_bytes"]["count"] == \
        system.stats.patches


# -- fleet tracing -----------------------------------------------------


def test_fleet_trace_merges_per_client_timelines(sensor_image):
    recorder = FlightRecorder()
    config = SoftCacheConfig(tcache_size=2048)
    result = simulate_fleet(sensor_image, 3, config, stagger_s=0.001,
                            recorder=recorder)
    spans = [ev for ev in recorder.events if ev.name == "fleet.client"]
    assert [ev.args["client"] for ev in spans] == [0, 1, 2]
    assert all(ev.ph == "X" for ev in spans)
    # simulated clients contribute events under their own pid
    assert {ev.pid for ev in recorder.events
            if ev.cat == "cc"} == {0, 1}
    # client 1's merged events are shifted by its boot offset
    hz = config.costs.cpu_hz
    first_c1 = min(ev.cycles for ev in recorder.events
                   if ev.pid == 1 and ev.cat == "cc")
    assert first_c1 >= int(0.001 * hz)
    # tracing does not perturb the simulation
    plain = simulate_fleet(sensor_image, 3, config, stagger_s=0.001)
    assert plain.makespan_s == result.makespan_s
    assert plain.mean_queue_delay_s == result.mean_queue_delay_s
