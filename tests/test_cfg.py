"""Basic-block scanning and CFG construction."""

import pytest

from repro.asm import assemble_and_link
from repro.cfg import BlockScanError, Term, build_cfg, scan_block
from repro.workloads import build_workload


def image_of(src):
    return assemble_and_link(src)


SRC = """
    .global main
main:
    li   t0, 0
    li   t1, 10
loop:
    add  t0, t0, t1
    addi t1, t1, -1
    bnez t1, loop
    jal  helper
    li   a0, 0
    ret
    .global helper
helper:
    beq  t0, t1, skip
    nop
skip:
    ret
"""


def test_scan_block_branch():
    image = image_of(SRC)
    loop = image.symbols["main"] + 8
    block = scan_block(image.word_at, loop, image.text_end)
    assert block.term is Term.BRANCH
    assert block.taken == loop
    assert block.fallthrough == loop + 12
    assert len(block.insns) == 3


def test_scan_block_call():
    image = image_of(SRC)
    call_block = image.symbols["main"] + 20
    block = scan_block(image.word_at, call_block, image.text_end)
    assert block.term is Term.CALL
    assert block.taken == image.symbols["helper"]
    assert block.fallthrough == call_block + 4


def test_scan_block_ret():
    image = image_of(SRC)
    skip = image.symbols["helper"] + 8
    block = scan_block(image.word_at, skip, image.text_end)
    assert block.term is Term.RET
    assert block.taken is None and block.fallthrough is None


def test_scan_block_overlapping_entries_allowed():
    """Entering mid-block yields a (shorter) valid block."""
    image = image_of(SRC)
    loop = image.symbols["main"] + 8
    longer = scan_block(image.word_at, loop, image.text_end)
    shorter = scan_block(image.word_at, loop + 4, image.text_end)
    assert shorter.addr == loop + 4
    assert shorter.end == longer.end


def test_scan_misaligned():
    image = image_of(SRC)
    with pytest.raises(BlockScanError):
        scan_block(image.word_at, image.entry + 2, image.text_end)


def test_scan_runs_past_end():
    image = image_of("""
    .global main
main:
    ret
    .global tail
tail:
    nop
""")
    # 'tail' has no terminator before text end
    with pytest.raises(BlockScanError):
        scan_block(image.word_at, image.symbols["tail"], image.text_end)


def test_cfg_reachability():
    image = image_of(SRC)
    cfg = build_cfg(image)
    # every block of main and helper is reachable; entry is a block
    assert image.entry in cfg.blocks
    assert image.symbols["helper"] in cfg.blocks
    # the loop has a back edge to itself
    loop = image.symbols["main"] + 8
    assert loop in cfg.succs[loop]


def test_cfg_skips_dead_code():
    image = image_of("""
    .global main
main:
    li a0, 0
    ret
    .global dead
dead:
    nop
    nop
    ret
""")
    cfg = build_cfg(image)
    assert image.symbols["dead"] not in cfg.blocks
    assert cfg.reachable_text_bytes < image.static_text_size


def test_cfg_indirect_targets_from_data():
    image = image_of("""
    .global main
main:
    li a0, 0
    ret
    .global landing
landing:
    ret
    .data
table: .word landing
""")
    cfg = build_cfg(image)
    assert image.symbols["landing"] in cfg.indirect_targets
    assert image.symbols["landing"] in cfg.blocks


def test_cfg_on_real_workload():
    image = build_workload("sensor", scale=0.1)
    cfg = build_cfg(image)
    assert len(cfg.blocks) > 50
    assert cfg.reachable_text_bytes <= image.static_text_size
    # preds/succs are mutually consistent
    for addr, succs in cfg.succs.items():
        for succ in succs:
            assert addr in cfg.preds[succ]
