"""Prometheus text exposition of the MetricsRegistry."""

import math
import re

from repro.obs import MetricsRegistry, to_prometheus, write_prometheus


def test_counter_and_gauge_exposition():
    reg = MetricsRegistry()
    reg.counter("cc.misses").inc(42)
    reg.gauge("fleet.link_utilization").set(0.25)
    text = to_prometheus(reg)
    assert "# TYPE repro_cc_misses_total counter" in text
    assert "repro_cc_misses_total 42" in text
    assert "# TYPE repro_fleet_link_utilization gauge" in text
    assert "repro_fleet_link_utilization 0.25" in text
    assert text.endswith("\n")


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("cc.miss_cycles")
    for v in (1, 2, 3, 100):
        h.observe(v)
    text = to_prometheus(reg)
    lines = text.splitlines()
    assert "# TYPE repro_cc_miss_cycles histogram" in lines
    buckets = [ln for ln in lines if "_bucket" in ln]
    # cumulative counts never decrease and end at +Inf == count
    counts = [int(ln.rsplit(" ", 1)[1]) for ln in buckets]
    assert counts == sorted(counts)
    assert buckets[-1] == 'repro_cc_miss_cycles_bucket{le="+Inf"} 4'
    assert "repro_cc_miss_cycles_sum 106" in lines
    assert "repro_cc_miss_cycles_count 4" in lines


def test_names_sanitized_and_sorted():
    reg = MetricsRegistry()
    reg.counter("b.metric-with dashes").inc(1)
    reg.counter("a.first").inc(1)
    text = to_prometheus(reg)
    assert "repro_b_metric_with_dashes_total 1" in text
    assert text.index("repro_a_first_total") < \
        text.index("repro_b_metric_with_dashes_total")


def test_empty_registry_is_empty_string():
    assert to_prometheus(MetricsRegistry()) == ""


def test_write_prometheus_roundtrip(tmp_path):
    reg = MetricsRegistry()
    reg.counter("mc.requests").inc(7)
    out = tmp_path / "metrics.prom"
    write_prometheus(reg, out)
    assert out.read_text() == to_prometheus(reg)


def test_histogram_quantile_edge_cases():
    reg = MetricsRegistry()
    h = reg.histogram("cc.latency")
    # empty histogram: quantiles are 0.0, never a crash or NaN
    assert h.quantile(0.5) == 0.0
    assert h.quantile(0.99) == 0.0
    snap = h.snapshot()
    assert snap["count"] == 0 and snap["mean"] == 0.0
    # single observation: every quantile is its bucket bound
    h.observe(100)
    assert h.quantile(0.0) == h.quantile(0.5) == h.quantile(1.0)
    assert h.quantile(0.5) >= 100  # conservative upper bound


def test_gauge_overwrite_last_value_wins():
    reg = MetricsRegistry()
    g = reg.gauge("fleet.utilization")
    g.set(0.9)
    g.set(0.1)
    assert "repro_fleet_utilization 0.1\n" in to_prometheus(reg)
    assert "0.9" not in to_prometheus(reg)


# one Prometheus text-0.4 sample/comment line (promtool-style lint)
_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN))$")


def _lint(text):
    for line in text.splitlines():
        assert _LINE.match(line), f"unparseable exposition: {line!r}"


def test_every_line_parses_including_non_finite():
    reg = MetricsRegistry()
    reg.counter("cc.misses").inc(3)
    reg.gauge("weird.inf").set(math.inf)
    reg.gauge("weird.neg_inf").set(-math.inf)
    reg.gauge("weird.nan").set(math.nan)
    h = reg.histogram("cc.latency")
    h.observe(7)
    h.observe(2 ** 1500)  # bucket bound overflows float range
    text = to_prometheus(reg, build_info={"jit": "hot"})
    _lint(text)
    # Python float spellings must never leak into the exposition
    assert "inf\n" not in text and "nan\n" not in text
    assert 'repro_weird_inf +Inf' in text
    assert 'repro_weird_neg_inf -Inf' in text
    assert 'repro_weird_nan NaN' in text
    # the overflowing bucket folds into +Inf and count still matches
    assert 'repro_cc_latency_bucket{le="+Inf"} 2' in text
    assert "repro_cc_latency_count 2" in text


def test_help_lines_precede_types():
    reg = MetricsRegistry()
    reg.counter("cc.translations").inc(5)
    lines = to_prometheus(reg).splitlines()
    help_idx = next(i for i, ln in enumerate(lines)
                    if ln.startswith("# HELP repro_cc_translations"))
    type_idx = next(i for i, ln in enumerate(lines)
                    if ln.startswith("# TYPE repro_cc_translations"))
    assert help_idx == type_idx - 1
    # curated metrics get real prose, not the generic fallback
    assert "mirrored from" not in lines[help_idx]


def test_build_info_gauge():
    reg = MetricsRegistry()
    reg.counter("cc.misses").inc(1)
    text = to_prometheus(reg, build_info={"jit": "hot",
                                          "granularity": "block"})
    _lint(text)
    assert "# TYPE repro_build_info gauge" in text
    line = next(ln for ln in text.splitlines()
                if ln.startswith("repro_build_info{"))
    assert line.endswith(" 1")
    assert 'jit="hot"' in line and 'granularity="block"' in line
    assert 'schema="' in line  # trace schema version always present
    # even without caller labels the schema is still stamped
    assert 'repro_build_info{schema="' in to_prometheus(reg)
    # an empty registry stays an empty exposition (back-compat)
    assert to_prometheus(MetricsRegistry()) == ""


def test_fleet_publish_exports(tmp_path):
    """End to end: a fleet run published into a registry scrapes with
    per-shard series present."""
    from repro.fleet import simulate_fleet
    from repro.softcache import SoftCacheConfig
    from repro.workloads import build_workload

    image = build_workload("sensor", 0.05)
    reg = MetricsRegistry()
    simulate_fleet(image, 3, SoftCacheConfig(tcache_size=8192),
                   shards=2, metrics=reg)
    text = to_prometheus(reg)
    assert "repro_fleet_clients_total 3" in text
    assert "repro_fleet_shard0_requests_total" in text
    assert "repro_fleet_shard1_requests_total" in text
    assert "repro_fleet_makespan_s" in text
