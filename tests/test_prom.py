"""Prometheus text exposition of the MetricsRegistry."""

from repro.obs import MetricsRegistry, to_prometheus, write_prometheus


def test_counter_and_gauge_exposition():
    reg = MetricsRegistry()
    reg.counter("cc.misses").inc(42)
    reg.gauge("fleet.link_utilization").set(0.25)
    text = to_prometheus(reg)
    assert "# TYPE repro_cc_misses_total counter" in text
    assert "repro_cc_misses_total 42" in text
    assert "# TYPE repro_fleet_link_utilization gauge" in text
    assert "repro_fleet_link_utilization 0.25" in text
    assert text.endswith("\n")


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("cc.miss_cycles")
    for v in (1, 2, 3, 100):
        h.observe(v)
    text = to_prometheus(reg)
    lines = text.splitlines()
    assert "# TYPE repro_cc_miss_cycles histogram" in lines
    buckets = [ln for ln in lines if "_bucket" in ln]
    # cumulative counts never decrease and end at +Inf == count
    counts = [int(ln.rsplit(" ", 1)[1]) for ln in buckets]
    assert counts == sorted(counts)
    assert buckets[-1] == 'repro_cc_miss_cycles_bucket{le="+Inf"} 4'
    assert "repro_cc_miss_cycles_sum 106" in lines
    assert "repro_cc_miss_cycles_count 4" in lines


def test_names_sanitized_and_sorted():
    reg = MetricsRegistry()
    reg.counter("b.metric-with dashes").inc(1)
    reg.counter("a.first").inc(1)
    text = to_prometheus(reg)
    assert "repro_b_metric_with_dashes_total 1" in text
    assert text.index("repro_a_first_total") < \
        text.index("repro_b_metric_with_dashes_total")


def test_empty_registry_is_empty_string():
    assert to_prometheus(MetricsRegistry()) == ""


def test_write_prometheus_roundtrip(tmp_path):
    reg = MetricsRegistry()
    reg.counter("mc.requests").inc(7)
    out = tmp_path / "metrics.prom"
    write_prometheus(reg, out)
    assert out.read_text() == to_prometheus(reg)


def test_fleet_publish_exports(tmp_path):
    """End to end: a fleet run published into a registry scrapes with
    per-shard series present."""
    from repro.fleet import simulate_fleet
    from repro.softcache import SoftCacheConfig
    from repro.workloads import build_workload

    image = build_workload("sensor", 0.05)
    reg = MetricsRegistry()
    simulate_fleet(image, 3, SoftCacheConfig(tcache_size=8192),
                   shards=2, metrics=reg)
    text = to_prometheus(reg)
    assert "repro_fleet_clients_total 3" in text
    assert "repro_fleet_shard0_requests_total" in text
    assert "repro_fleet_shard1_requests_total" in text
    assert "repro_fleet_makespan_s" in text
