"""MinC lexer."""

import pytest

from repro.lang.lexer import LexError, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)]


def texts(src):
    return [t.text for t in tokenize(src)[:-1]]


def test_empty():
    assert kinds("") == ["eof"]


def test_integers():
    toks = tokenize("0 42 0x1F 0Xff")
    assert [t.value for t in toks[:-1]] == [0, 42, 31, 255]


def test_identifiers_and_keywords():
    toks = tokenize("int foo while whileish _bar x9")
    assert [(t.kind, t.text) for t in toks[:-1]] == [
        ("kw", "int"), ("ident", "foo"), ("kw", "while"),
        ("ident", "whileish"), ("ident", "_bar"), ("ident", "x9")]


def test_char_literals():
    toks = tokenize(r"'a' '\n' '\\' '\0' '\''")
    assert [t.value for t in toks[:-1]] == [97, 10, 92, 0, 39]


def test_string_literals():
    toks = tokenize(r'"hi" "a\tb" "line\n"')
    assert [t.value for t in toks[:-1]] == ["hi", "a\tb", "line\n"]


def test_punct_greedy():
    assert texts("a <<= b << c <= d < e") == [
        "a", "<<=", "b", "<<", "c", "<=", "d", "<", "e"]
    assert texts("x+++y") == ["x", "++", "+", "y"]
    assert texts("a&&b&c") == ["a", "&&", "b", "&", "c"]


def test_comments():
    src = """
    a // line comment
    /* block
       comment */ b
    """
    assert texts(src) == ["a", "b"]


def test_line_numbers():
    toks = tokenize("a\nb\n\nc")
    assert [t.line for t in toks[:-1]] == [1, 2, 4]


def test_line_numbers_across_block_comment():
    toks = tokenize("/* x\ny */ a")
    assert toks[0].line == 2


def test_errors():
    with pytest.raises(LexError):
        tokenize('"unterminated')
    with pytest.raises(LexError):
        tokenize("/* unterminated")
    with pytest.raises(LexError):
        tokenize("'ab'")
    with pytest.raises(LexError):
        tokenize("`")
    with pytest.raises(LexError):
        tokenize('"bad\\q"')
