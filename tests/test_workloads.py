"""Workload programs: determinism, correctness properties, and
SoftCache equivalence at small scale."""

import pytest

from repro.sim import run_native
from repro.softcache import SoftCacheConfig, run_softcache
from repro.workloads import (
    ARM_BENCHMARKS,
    SPARC_BENCHMARKS,
    WORKLOADS,
    build_workload,
    workload_source,
)

SMALL = 0.05


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_builds_and_runs(name):
    image = build_workload(name, SMALL)
    machine = run_native(image, max_instructions=50_000_000)
    assert machine.cpu.exit_code == 0, machine.output_text
    assert machine.output_text  # produced some report


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_deterministic(name):
    image = build_workload(name, SMALL)
    out1 = run_native(image, max_instructions=50_000_000).output_text
    out2 = run_native(image, max_instructions=50_000_000).output_text
    assert out1 == out2


@pytest.mark.parametrize("name", sorted(ARM_BENCHMARKS))
def test_arm_profile_builds(name):
    image = build_workload(name, SMALL, arm_profile=True)
    machine = run_native(image, max_instructions=50_000_000)
    assert machine.cpu.exit_code == 0


def test_compress_roundtrip_is_checked_in_guest():
    """compress95 verifies expansion output itself: bad=0."""
    image = build_workload("compress95", SMALL)
    machine = run_native(image, max_instructions=50_000_000)
    assert "bad=0" in machine.output_text
    # and it actually compresses
    lines = dict(line.split("=") for line in
                 machine.output_text.strip().splitlines())
    assert int(lines["out"]) < int(lines["in"])


def test_adpcm_roundtrip_error_bounded():
    image = build_workload("adpcm_dec", SMALL)
    machine = run_native(image, max_instructions=50_000_000)
    lines = dict(line.split("=") for line in
                 machine.output_text.strip().splitlines())
    # 4-bit ADPCM tracks a 16-bit signal within a coarse bound
    assert int(lines["avgerr"]) < 2048


def test_gzip_compresses():
    image = build_workload("gzip", SMALL)
    machine = run_native(image, max_instructions=50_000_000)
    lines = [line for line in machine.output_text.splitlines()
             if line.startswith("outbytes=")]
    assert lines
    insize = 8192
    assert all(int(line.split("=")[1]) < insize for line in lines)


def test_scale_changes_work():
    small = build_workload("adpcm_enc", 0.05)
    big = build_workload("adpcm_enc", 0.2)
    n_small = run_native(small, max_instructions=50_000_000).cpu.icount
    n_big = run_native(big, max_instructions=100_000_000).cpu.icount
    assert n_big > 2 * n_small


def test_workload_source_overrides():
    src = workload_source("adpcm_enc", nblocks=3, seed=7)
    assert "3" in src and "__rand" not in src  # raw unit, no runtime


def test_build_cache_returns_same_image():
    a = build_workload("sensor", 0.1)
    b = build_workload("sensor", 0.1)
    assert a is b
    c = build_workload("sensor", 0.1, arm_profile=True)
    assert c is not a


@pytest.mark.parametrize("name", sorted(SPARC_BENCHMARKS))
def test_workloads_under_softcache(name):
    image = build_workload(name, SMALL)
    native = run_native(image, max_instructions=50_000_000)
    report, system = run_softcache(
        image, SoftCacheConfig(tcache_size=2048, debug_poison=True),
        max_instructions=200_000_000)
    assert report.output == native.output_text
    assert system.stats.translations > 0


@pytest.mark.parametrize("name", sorted(ARM_BENCHMARKS))
def test_arm_workloads_under_proc_softcache(name):
    image = build_workload(name, SMALL, arm_profile=True)
    native = run_native(image, max_instructions=50_000_000)
    biggest = max(p.size for p in image.procs)
    report, system = run_softcache(
        image, SoftCacheConfig(tcache_size=biggest + 512,
                               granularity="proc",
                               debug_poison=True),
        max_instructions=400_000_000)
    assert report.output == native.output_text
    assert system.stats.evictions > 0  # deliberately tight memory
