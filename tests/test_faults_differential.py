"""Differential: faulty runs reach the exact fault-free state.

The survivability claim in one sentence: every fault a
:class:`~repro.net.FaultPlan` can inject is *transient*, so a run
under any plan must finish with architectural state — every memory
region, every register, the PC, the exit code, the output stream —
bit-identical to the fault-free run.  Timing is allowed (required,
even) to differ; nothing else is.

Both sides run with ``debug_poison`` so the digest also covers the
poison words the eviction path writes: a faulty run that evicted or
replayed differently would leave a different poison footprint even if
the guest-visible bytes happened to agree.
"""

import pytest

from repro.net import FaultPlan, RetryPolicy
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.softcache.debug import architectural_state, check_consistency
from repro.workloads import build_workload

WORKLOADS = ("sensor", "adpcm_enc")
SCALE = 0.05

_images = {}


def image_of(workload):
    if workload not in _images:
        _images[workload] = build_workload(workload, SCALE)
    return _images[workload]


def run_under(workload, plan=None, policy=None, **kw):
    config = SoftCacheConfig(tcache_size=2048, record_timeline=False,
                             debug_poison=True, fault_plan=plan,
                             retry_policy=policy, **kw)
    system = SoftCacheSystem(image_of(workload), config)
    report = system.run()
    return system, report


_baselines = {}


def baseline_digest(workload, **kw):
    key = (workload, tuple(sorted(kw.items())))
    if key not in _baselines:
        system, report = run_under(workload, **kw)
        _baselines[key] = (architectural_state(system), report)
    return _baselines[key]


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", (0, 1, 3, 7))
def test_chaos_cells_reach_identical_state(workload, seed):
    """chaos(0,3) carry partitions, chaos(1) an MC crash, chaos(7) is
    plain loss — between them every fault path runs."""
    base_digest, base_report = baseline_digest(workload)
    system, report = run_under(workload, FaultPlan.chaos(seed))
    st = system.faults.fault_stats
    assert st.attempts > st.delivered, "the plan must actually fault"
    assert architectural_state(system) == base_digest
    assert report.output == base_report.output
    assert report.exit_code == base_report.exit_code
    assert check_consistency(system.cc) > 0


@pytest.mark.parametrize("workload", WORKLOADS)
def test_partition_plus_crash_with_prefetch(workload):
    """The worst composite: a partition long enough to exhaust the
    retry budget (degraded mode + replays), an MC crash-restart in the
    middle, corruption on top, and batched prefetch exchanges in
    flight."""
    plan = FaultPlan(seed=5, drop_request_p=0.03, drop_reply_p=0.03,
                     corrupt_p=0.04, partitions=((25, 70),),
                     mc_crash_epochs=(80,))
    policy = RetryPolicy(max_attempts=3, jitter=0.0)
    base_digest, base_report = baseline_digest(workload,
                                               prefetch_depth=2)
    system, report = run_under(workload, plan, policy,
                               prefetch_depth=2)
    s = system.stats
    fs = system.faults.fault_stats
    assert s.link_down_traps > 0, "partition must trip degraded mode"
    assert s.pending_miss_replays > 0
    assert fs.mc_restarts == 1
    assert not system.cc.pending_misses
    assert architectural_state(system) == base_digest
    assert report.output == base_report.output
    assert check_consistency(system.cc) > 0


def test_digest_is_sensitive():
    """architectural_state must actually see memory: two different
    workloads may not collide (sanity check on the oracle itself)."""
    a, _ = run_under("sensor")
    b, _ = run_under("adpcm_enc")
    assert architectural_state(a) != architectural_state(b)


def test_digest_is_reproducible():
    a, _ = run_under("sensor")
    b, _ = run_under("sensor")
    assert architectural_state(a) == architectural_state(b)
