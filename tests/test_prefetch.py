"""Batched miss delivery and successor prefetch (`prefetch_depth`)."""

import pytest

from repro.lang import compile_program
from repro.net import LinkModel
from repro.sim import run_native
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.softcache.mc import MemoryController
from repro.workloads import build_workload

CHAIN_SRC = r"""
int f1(int x) { return x * 3 + 1; }
int f2(int x) { if (x & 1) return f1(x); return x - 2; }
int f3(int n) {
    int i; int acc = 0;
    for (i = 0; i < n; i++) acc += f2(i);
    return acc;
}
int main(void) {
    int round;
    int acc = 0;
    for (round = 0; round < 8; round++) acc += f3(12 + round);
    __putint(acc);
    return 0;
}
"""


@pytest.fixture(scope="module")
def chain_image():
    return compile_program(CHAIN_SRC, "chain")


@pytest.fixture(scope="module")
def sensor_image():
    return build_workload("sensor", 0.05)


# -- the static chunk-successor graph ---------------------------------


def test_successor_graph_well_formed(chain_image):
    mc = MemoryController(chain_image, granularity="block")
    chunk = mc.serve_chunk(chain_image.entry)
    succs = chunk.successors
    assert succs == mc.successors_of(chain_image.entry)
    assert chunk.orig not in succs          # no self edges
    assert len(set(succs)) == len(succs)    # deduplicated
    for succ in succs:                      # every edge is chunkable
        assert mc.serve_chunk(succ).orig == succ


def test_serve_batch_demand_first_and_depth_cap(chain_image):
    mc = MemoryController(chain_image, granularity="block")
    for depth in (1, 2, 4, 16):
        batch = mc.serve_batch(chain_image.entry, depth,
                               lambda orig: False)
        assert batch[0][0].orig == chain_image.entry
        assert len(batch) <= depth + 1
        origs = [chunk.orig for chunk, _ in batch]
        assert len(set(origs)) == len(origs)
        for chunk, payload in batch:
            # the encoded body; exit records add 4B each on the wire
            assert len(payload) == chunk.size


def test_serve_batch_skips_resident_successors(chain_image):
    mc = MemoryController(chain_image, granularity="block")
    entry = chain_image.entry
    # everything except the demanded chunk is already resident: the
    # reply degenerates to the plain one-chunk protocol
    batch = mc.serve_batch(entry, 8, lambda orig: orig != entry)
    assert [chunk.orig for chunk, _ in batch] == [entry]


def test_serve_batch_counts_prefetch_traffic(chain_image):
    mc = MemoryController(chain_image, granularity="block")
    batch = mc.serve_batch(chain_image.entry, 4, lambda orig: False)
    assert mc.stats.batch_requests == 1
    assert mc.stats.prefetch_chunks_sent == len(batch) - 1
    assert mc.stats.prefetch_bytes_served == sum(
        chunk.payload_bytes for chunk, _ in batch[1:])


# -- end-to-end behaviour ---------------------------------------------


def run_depth(image, depth, tcache=2048, granularity="block",
              max_instructions=50_000_000):
    system = SoftCacheSystem(image, SoftCacheConfig(
        tcache_size=tcache, granularity=granularity,
        prefetch_depth=depth, link=LinkModel(),
        record_timeline=False, debug_poison=True))
    report = system.run(max_instructions)
    return system, report


def test_prefetch_preserves_correctness(chain_image):
    native = run_native(chain_image)
    for depth in (1, 4):
        system, report = run_depth(chain_image, depth, tcache=512)
        assert report.output == native.output_text


def test_prefetch_stats_partition_translations(sensor_image):
    system, report = run_depth(sensor_image, 4)
    s = system.stats
    assert s.prefetch_installs > 0
    assert s.demand_translations + s.prefetch_installs == s.translations
    assert s.prefetch_hits <= s.prefetch_installs
    link = system.link_stats
    assert link.batch_exchanges > 0
    assert link.batched_chunks > link.batch_exchanges  # >1 chunk/batch


def test_prefetch_reduces_miss_service_time(sensor_image):
    base_sys, base = run_depth(sensor_image, 0)
    deep_sys, deep = run_depth(sensor_image, 4)
    assert deep.output == base.output
    assert deep_sys.stats.miss_service_cycles < \
        base_sys.stats.miss_service_cycles
    assert deep_sys.link_stats.exchanges < base_sys.link_stats.exchanges
    assert deep.cycles < base.cycles


def test_depth_zero_is_bitwise_baseline(sensor_image):
    """`prefetch_depth=0` must be indistinguishable from the seed
    protocol: no batches, no prefetch stats, same cycles as default."""
    default_sys, default = run_depth(sensor_image, 0)
    s = default_sys.stats
    assert s.prefetch_installs == s.prefetch_hits == s.prefetch_drops == 0
    assert s.wasted_prefetch_bytes == 0
    assert s.demand_translations == s.translations
    assert default_sys.link_stats.batch_exchanges == 0
    assert default_sys.mc.stats.batch_requests == 0


def test_prefetch_never_evicts_for_speculation(sensor_image):
    """Under a thrashing tcache, speculation is dropped rather than
    admitted at the expense of resident code."""
    system, report = run_depth(sensor_image, 4, tcache=768)
    s = system.stats
    assert s.prefetch_drops > 0
    assert s.prefetch_dropped_bytes > 0
    # wasted bytes: prefetched blocks evicted before first use
    assert s.wasted_prefetch_bytes >= 0
    native = run_native(sensor_image)
    assert report.output == native.output_text


def test_negative_depth_rejected(chain_image):
    with pytest.raises(ValueError):
        SoftCacheSystem(chain_image,
                        SoftCacheConfig(prefetch_depth=-1))


# -- bookkeeping audits (softcache.debug) -----------------------------


def test_consistency_after_prefetch_install(sensor_image):
    """Speculatively installed blocks must be fully linked into the
    CC graph: audit the whole tcache after a comfortable prefetching
    run (installs, no eviction pressure)."""
    from repro.softcache.debug import check_consistency
    system, _ = run_depth(sensor_image, 4, tcache=8192)
    assert system.stats.prefetch_installs > 0
    assert system.stats.evictions == 0
    assert check_consistency(system.cc) > 0


def test_consistency_after_prefetch_eviction(sensor_image):
    """Evicting prefetched-but-never-entered blocks (and the demand
    blocks around them) must leave no dangling stubs or links; the
    thrashing tcache exercises both install and eviction paths, with
    debug_poison making any stale pointer fault loudly."""
    from repro.softcache.debug import check_consistency
    system, _ = run_depth(sensor_image, 4, tcache=768)
    assert system.stats.prefetch_installs > 0
    assert system.stats.prefetch_drops > 0
    assert system.stats.evictions > 0
    assert check_consistency(system.cc) > 0
