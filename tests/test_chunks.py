"""MC-side chunkers: exit descriptors and rewriting correctness."""

import pytest

from repro.asm import assemble_and_link
from repro.isa import Op, Trap, decode
from repro.softcache import (
    BasicBlockChunker,
    ChunkError,
    EBBChunker,
    ExitKind,
    ProcedureChunker,
)

SRC = """
    .global main
    .proc main
main:
    li   t0, 5
    .global loop
loop:
    addi t0, t0, -1
    bnez t0, loop
    .global callsite
callsite:
    jal  helper
    li   a0, 0
    ret
    .global helper
    .proc helper
helper:
    li   a0, 1
    ret
    .global computed
    .proc computed
computed:
    jr   t5
"""


@pytest.fixture(scope="module")
def image():
    return assemble_and_link(SRC)


def test_block_chunk_branch_grows_one_word(image):
    chunker = BasicBlockChunker(image)
    loop = image.symbols["loop"]
    chunk = chunker.chunk_at(loop)
    # addi + bnez -> addi + branch-placeholder + appended jump
    assert len(chunk.words) == 3
    assert chunk.extra_words == 1
    kinds = [e.kind for e in chunk.exits]
    assert kinds == [ExitKind.TAKEN, ExitKind.JUMP]
    assert chunk.exits[0].target == loop
    assert chunk.exits[1].target == loop + 8


def test_block_chunk_call_has_cont_slot(image):
    chunker = BasicBlockChunker(image)
    call_addr = image.symbols["callsite"]
    chunk = chunker.chunk_at(call_addr)
    kinds = [e.kind for e in chunk.exits]
    assert kinds == [ExitKind.CALL, ExitKind.CONT]
    assert chunk.exits[0].target == image.symbols["helper"]
    # continuation slot word is a MISS_RET trap placeholder
    trap = decode(chunk.words[chunk.exits[1].index])
    assert trap.op is Op.TRAP and trap.rd == Trap.MISS_RET


def test_block_chunk_ret_verbatim(image):
    chunker = BasicBlockChunker(image)
    chunk = chunker.chunk_at(image.symbols["helper"])
    assert decode(chunk.words[-1]).op is Op.RET
    assert chunk.exits == ()
    assert chunk.extra_words == 0


def test_block_chunk_jr_becomes_trap(image):
    chunker = BasicBlockChunker(image)
    chunk = chunker.chunk_at(image.symbols["computed"])
    assert [e.kind for e in chunk.exits] == [ExitKind.JR]
    assert chunk.exits[0].rs1 == 13  # t5
    assert decode(chunk.words[-1]).op is Op.TRAP


def test_block_chunk_body_verbatim(image):
    chunker = BasicBlockChunker(image)
    chunk = chunker.chunk_at(image.symbols["main"])
    # li t0, 5 is copied unchanged
    assert chunk.words[0] == image.word_at(image.symbols["main"])


def test_block_chunk_outside_text(image):
    with pytest.raises(ChunkError):
        BasicBlockChunker(image).chunk_at(0x1234)


def test_ebb_glues_fallthrough(image):
    chunker = EBBChunker(image, limit=8)
    chunk = chunker.chunk_at(image.symbols["main"])
    # main head + loop + call block glued; branch has no appended jump,
    # the call continuation is inline
    kinds = [e.kind for e in chunk.exits]
    assert ExitKind.TAKEN in kinds
    assert ExitKind.CALL in kinds
    assert ExitKind.CONT_INLINE in kinds
    assert ExitKind.JUMP not in kinds
    assert chunk.extra_words == 0
    # ends at the ret of the glued call-continuation block
    assert decode(chunk.words[-1]).op is Op.RET


def test_ebb_limit_emits_continue_jump(image):
    chunker = EBBChunker(image, limit=1)
    chunk = chunker.chunk_at(image.symbols["loop"])
    # one block then forced continuation jump
    kinds = [e.kind for e in chunk.exits]
    assert kinds == [ExitKind.TAKEN, ExitKind.JUMP]
    assert chunk.extra_words == 1


def test_proc_chunker_whole_procedure(image):
    chunker = ProcedureChunker(image)
    chunk = chunker.chunk_at(image.symbols["main"])
    assert chunk.name == "main"
    assert chunk.size == image.proc_named("main").size
    kinds = [e.kind for e in chunk.exits]
    assert ExitKind.CALLSITE in kinds
    callsite = next(e for e in chunk.exits
                    if e.kind is ExitKind.CALLSITE)
    assert callsite.target == image.symbols["helper"]
    assert callsite.ret_offset == callsite.index * 4 + 4


def test_proc_chunker_rejects_mid_entry(image):
    with pytest.raises(ChunkError, match="entry"):
        ProcedureChunker(image).chunk_at(image.symbols["main"] + 4)


def test_proc_chunker_rejects_indirect(image):
    with pytest.raises(ChunkError, match="indirect"):
        ProcedureChunker(image).chunk_at(image.symbols["computed"])


def test_proc_chunker_rejects_cross_proc_jump():
    image = assemble_and_link("""
    .global main
    .proc main
main:
    j helper
    ret
    .global helper
    .proc helper
helper:
    ret
""")
    with pytest.raises(ChunkError, match="leaves the"):
        ProcedureChunker(image).chunk_at(image.symbols["main"])


def test_proc_internal_jump_fixup():
    image = assemble_and_link("""
    .global main
    .proc main
main:
    j   inner
    nop
inner:
    ret
""")
    chunk = ProcedureChunker(image).chunk_at(image.symbols["main"])
    internal = [e for e in chunk.exits if e.kind is ExitKind.INTERNAL]
    assert len(internal) == 1
    assert internal[0].target == 8  # offset of 'inner' within the proc


def test_payload_bytes_accounts_exits(image):
    chunk = BasicBlockChunker(image).chunk_at(image.symbols["loop"])
    assert chunk.payload_bytes == chunk.size + 4 * len(chunk.exits)
