"""Consistent-hash ring and sharded MC tier (docs/FLEET.md)."""

import pytest

from repro.fleet import (
    ConsistentHashRing,
    ShardedMemoryController,
    aggregate_mc_stats,
)
from repro.softcache import MemoryController, SoftCacheConfig, SoftCacheSystem
from repro.softcache.debug import architectural_state
from repro.workloads import build_workload

KEYS = [i * 0x40 for i in range(2000)]


def test_ownership_is_deterministic():
    """Same shards, same keys → same owners, across ring instances
    (the hash is content-keyed, never salted by process state)."""
    a = ConsistentHashRing(range(4))
    b = ConsistentHashRing(range(4))
    assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]


def test_single_shard_owns_everything():
    ring = ConsistentHashRing([0])
    assert all(ring.owner(k) == 0 for k in KEYS)


@pytest.mark.parametrize("n", [1, 2, 4, 8])
def test_balance(n):
    """With 64 vnodes per shard, no shard owns more than ~2x its fair
    share of a uniform key population."""
    ring = ConsistentHashRing(range(n))
    counts = {i: 0 for i in range(n)}
    for k in KEYS:
        counts[ring.owner(k)] += 1
    fair = len(KEYS) / n
    assert min(counts.values()) > 0
    assert max(counts.values()) <= 2.0 * fair


def test_add_shard_remaps_at_most_fair_share():
    """Growing N-1 → N moves only keys the new shard now owns — at
    most ~K/N of them; every moved key lands on the new shard."""
    n = 4
    before = ConsistentHashRing(range(n - 1))
    owners = {k: before.owner(k) for k in KEYS}
    before.add_shard(n - 1)
    moved = [k for k in KEYS if before.owner(k) != owners[k]]
    assert 0 < len(moved) <= 1.5 * len(KEYS) / n
    assert all(before.owner(k) == n - 1 for k in moved)


def test_remove_shard_remaps_only_its_keys():
    n = 4
    ring = ConsistentHashRing(range(n))
    owners = {k: ring.owner(k) for k in KEYS}
    ring.remove_shard(2)
    for k in KEYS:
        if owners[k] != 2:
            assert ring.owner(k) == owners[k]
        else:
            assert ring.owner(k) != 2


def test_last_shard_cannot_be_removed():
    ring = ConsistentHashRing([0])
    with pytest.raises(ValueError):
        ring.remove_shard(0)


def test_sharded_mc_serves_like_one_mc():
    """A solo client against the sharded tier reaches the same
    architectural state as against one MC, and the shard stats sum
    to the monolithic counters."""
    image = build_workload("sensor", 0.05)
    config = SoftCacheConfig(tcache_size=8192)

    mono_mc = MemoryController(image)
    mono = SoftCacheSystem(image, config, shared_mc=mono_mc)
    mono.run()

    sharded_mc = ShardedMemoryController(image, 4)
    system = SoftCacheSystem(image, config, shared_mc=sharded_mc)
    system.run()

    assert architectural_state(system) == architectural_state(mono)
    agg = sharded_mc.stats
    assert agg.requests == mono_mc.stats.requests
    assert agg.chunks_built == mono_mc.stats.chunks_built
    assert agg.bytes_served == mono_mc.stats.bytes_served
    assert aggregate_mc_stats(
        [s.stats for s in sharded_mc.shards]).requests == agg.requests
    # the ring actually spread the chunk population
    building = [s for s in sharded_mc.shards if s.stats.chunks_built]
    assert len(building) > 1
