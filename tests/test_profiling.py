"""The gprof-equivalent profiler."""

import pytest

from repro.lang import compile_program
from repro.profiling import profile_image
from repro.workloads import build_workload

SRC = r"""
int hot(int n) {
    int i; int acc = 0;
    for (i = 0; i < n; i++) acc += i * 3;
    return acc;
}

int cold(int x) { return x + 1; }

int main(void) {
    int i; int acc = 0;
    for (i = 0; i < 200; i++) acc += hot(50);
    acc += cold(acc);
    __putint(acc);
    return 0;
}
"""


@pytest.fixture(scope="module")
def profile():
    return profile_image(compile_program(SRC, "prof"))


def test_total_matches_run(profile):
    assert profile.total_instructions == sum(
        e.instructions for e in profile.entries)
    assert profile.exit_code == 0


def test_hot_function_ranked_first(profile):
    assert profile.entries[0].name == "hot"
    assert profile.entries[0].fraction > 0.5


def test_hot_procs_rule(profile):
    hot = profile.hot_procs(0.90)
    names = [e.name for e in hot]
    assert "hot" in names
    assert "cold" not in names
    covered = sum(e.instructions for e in hot)
    # the selected prefix reaches the threshold (within one function)
    assert covered >= 0.9 * profile.total_instructions - \
        hot[-1].instructions


def test_hot_code_bytes_and_footprint(profile):
    hot_bytes = profile.hot_code_bytes(0.90)
    assert 0 < hot_bytes < profile.image.static_text_size
    assert profile.normalized_dynamic_footprint() == pytest.approx(
        hot_bytes / profile.image.static_text_size)


def test_dynamic_text_at_most_static(profile):
    assert profile.dynamic_text_bytes <= profile.image.static_text_size
    # hot is a subset of what ran
    assert profile.hot_code_bytes(0.90) <= profile.dynamic_text_bytes


def test_call_counts(profile):
    assert profile.call_counts[("main", "hot")] == 200
    assert profile.call_counts[("main", "cold")] == 1
    assert profile.call_counts[("_start", "main")] == 1


def test_report_renders(profile):
    report = profile.report()
    assert "hot" in report and "%" in report


def test_entry_named(profile):
    assert profile.entry_named("hot").name == "hot"
    with pytest.raises(KeyError):
        profile.entry_named("nonexistent")


def test_unused_library_not_in_profile(profile):
    names = {e.name for e in profile.entries}
    # the cold library is linked but never executed
    assert "crc32" not in names
    assert "base64_encode" not in names


def test_profile_real_workload():
    image = build_workload("adpcm_enc", 0.05)
    profile = profile_image(image)
    assert profile.entry_named("adpcm_encode").fraction > 0.1
    assert profile.normalized_dynamic_footprint() < 0.35
