"""The ARM-style procedure-granularity controller with redirectors."""

import pytest

from repro.lang import CompileError, compile_program
from repro.softcache import (
    ChunkError,
    SoftCacheConfig,
    run_softcache,
)

from conftest import assert_equivalent

CALLS_SRC = r"""
int leaf(int x) { return x * x; }

int middle(int x) {
    return leaf(x) + leaf(x + 1);
}

int main(void) {
    int i;
    int acc = 0;
    for (i = 0; i < 30; i++) acc += middle(i);
    __putint(acc);
    return 0;
}
"""


def build_arm(src, name="arm"):
    return compile_program(src, name, indirect_ok=False)


@pytest.fixture(scope="module")
def calls_image():
    return build_arm(CALLS_SRC)


def test_equivalence_large_cache(calls_image):
    config = SoftCacheConfig(granularity="proc", tcache_size=32768,
                             debug_poison=True)
    assert_equivalent(calls_image, config)


@pytest.mark.parametrize("policy", ["fifo", "flush"])
@pytest.mark.parametrize("size", [384, 512, 1024])
def test_equivalence_thrashing(calls_image, policy, size):
    config = SoftCacheConfig(granularity="proc", tcache_size=size,
                             policy=policy, debug_poison=True)
    assert_equivalent(calls_image, config)


def test_redirectors_are_permanent(calls_image):
    config = SoftCacheConfig(granularity="proc", tcache_size=256,
                             policy="fifo", debug_poison=True)
    _, report, system = assert_equivalent(calls_image, config)
    cc = system.cc
    # redirectors were allocated once per call site and survived
    # every eviction
    assert system.stats.evictions > 0
    assert len(cc.redirectors) > 0
    usage = system.local_memory_in_use
    assert usage["redirector_bytes"] == 8 * len(cc.redirectors)


def test_no_stack_walking_in_proc_mode(calls_image):
    """The whole point of redirectors: eviction never walks the stack."""
    config = SoftCacheConfig(granularity="proc", tcache_size=256,
                             policy="fifo", debug_poison=True)
    _, report, system = assert_equivalent(calls_image, config)
    assert system.stats.evictions > 0
    assert system.stats.stack_slots_fixed == 0


def test_call_and_landing_trap_counts(calls_image):
    config = SoftCacheConfig(granularity="proc", tcache_size=32768)
    report, system = run_softcache(calls_image, config)
    stats = system.stats
    # each procedure entered at least once through a MISS_CALL trap
    assert stats.call_miss_traps >= 3
    # with no eviction, landings stay patched after installation
    assert stats.evictions == 0


def test_proc_mode_counts_chunks_not_blocks(calls_image):
    block_cfg = SoftCacheConfig(granularity="block", tcache_size=65536)
    proc_cfg = SoftCacheConfig(granularity="proc", tcache_size=65536)
    _, sys_block = run_softcache(calls_image, block_cfg)
    _, sys_proc = run_softcache(calls_image, proc_cfg)
    # fewer, bigger chunks
    assert sys_proc.stats.translations < sys_block.stats.translations
    assert (sys_proc.stats.words_installed * 4 / sys_proc.stats.translations
            > sys_block.stats.words_installed * 4
            / sys_block.stats.translations)


def test_indirect_code_rejected_at_compile_time():
    src = r"""
int f(int x) { return x; }
int main(void) {
    int p = &f;
    return p(1);
}
"""
    with pytest.raises(CompileError):
        build_arm(src)


def test_indirect_binary_rejected_by_chunker():
    """A binary with jr (compiled without the ARM profile) is refused
    by the procedure chunker, matching §2.3's limitation."""
    src = r"""
int dispatch(int i) {
    switch (i) {
    case 0: return 1;
    case 1: return 2;
    case 2: return 3;
    case 3: return 4;
    case 4: return 5;
    case 5: return 6;
    default: return 0;
    }
}
int main(void) {
    int i;
    int acc = 0;
    for (i = 0; i < 12; i++) acc += dispatch(i % 7);
    __putint(acc);
    return 0;
}
"""
    image = compile_program(src, "tabby", indirect_ok=True)
    config = SoftCacheConfig(granularity="proc", tcache_size=32768)
    with pytest.raises(ChunkError, match="indirect"):
        run_softcache(image, config)


def test_arm_profile_switch_still_works(calls_image):
    """Same switch compiled with indirect_ok=False becomes an if-chain
    and runs fine under the proc controller."""
    src = r"""
int dispatch(int i) {
    switch (i) {
    case 0: return 1;
    case 1: return 2;
    case 2: return 3;
    case 3: return 4;
    case 4: return 5;
    case 5: return 6;
    default: return 0;
    }
}
int main(void) {
    int i;
    int acc = 0;
    for (i = 0; i < 12; i++) acc += dispatch(i % 7);
    __putint(acc);
    return 0;
}
"""
    image = build_arm(src, "tabby_arm")
    config = SoftCacheConfig(granularity="proc", tcache_size=32768,
                             debug_poison=True)
    assert_equivalent(image, config)


def test_recursion_under_proc_mode():
    src = r"""
int fib(int n) {
    if (n < 2) return 1;
    return fib(n - 1) + fib(n - 2);
}
int main(void) {
    __putint(fib(12));
    return 0;
}
"""
    image = build_arm(src, "fib_arm")
    for size in (640, 2048):
        config = SoftCacheConfig(granularity="proc", tcache_size=size,
                                 policy="fifo", debug_poison=True)
        assert_equivalent(image, config)
