"""Replacement-policy layer: registry, hooks, differential guarantees.

Three tiers:

* **Unit** — each policy's admission/eviction/metadata logic against a
  stub controller (no simulator in the loop), plus the temperature
  classifier that feeds trrip.
* **Registry** — one source of truth for policy names shared by the
  CLI parser, `admin set` and `SoftCacheConfig`; every entry point
  must reject an unknown name with the full valid set in the error.
* **Differential** — policies may change *which* chunks are
  speculatively resident and *when* the cache drops, but never what
  the program computes: program output and exit code are pinned
  identical across all policies.  (Instruction counts are **not**
  invariant — miss traps execute guest instructions and the trap
  pattern differs per policy — so the differential deliberately does
  not compare them.)
"""

from types import SimpleNamespace

import pytest

from repro.net import LOCAL_LINK
from repro.profiling import TemperatureMap, temperature_map
from repro.softcache import (
    EVICT,
    FLUSH,
    FifoPolicy,
    FlushPolicy,
    NhitPolicy,
    POLICIES,
    ReplacementPolicy,
    SeqCutoffPolicy,
    SoftCacheConfig,
    SoftCacheSystem,
    TrripPolicy,
    make_policy,
    policy_names,
    validate_policy_name,
)
from repro.softcache.debug import ConsistencyError, check_consistency
from repro.softcache.records import TBlock
from repro.softcache.stats import SoftCacheStats
from repro.workloads import build_workload


def _block(orig, orig_size=16):
    return TBlock(orig=orig, addr=0, size=orig_size,
                  orig_size=orig_size, extra_words=0)


def _stub_cc(order=()):
    """Just enough controller for a policy to bind to."""
    return SimpleNamespace(stats=SoftCacheStats(), tracer=None,
                           tcache=SimpleNamespace(order=list(order)))


def _bound(policy, order=()):
    policy.bind(_stub_cc(order))
    return policy


# -- registry: one source of truth ------------------------------------------

def test_policy_names_sorted_and_complete():
    assert policy_names() == tuple(sorted(POLICIES))
    assert set(policy_names()) == {"fifo", "flush", "nhit",
                                   "seqcutoff", "trrip"}


def test_validate_lists_every_valid_name():
    with pytest.raises(ValueError) as exc:
        validate_policy_name("lru")
    for name in policy_names():
        assert name in str(exc.value)


def test_make_policy_resolves_names_and_passes_instances():
    assert isinstance(make_policy("fifo"), FifoPolicy)
    assert isinstance(make_policy("nhit", n=3), NhitPolicy)
    obj = SeqCutoffPolicy(cutoff=7)
    assert make_policy(obj) is obj


def test_config_validates_eagerly():
    """A bad name fails at config construction, not at first miss."""
    with pytest.raises(ValueError) as exc:
        SoftCacheConfig(policy="clock")
    for name in policy_names():
        assert name in str(exc.value)
    # instances bypass name validation entirely
    SoftCacheConfig(policy=NhitPolicy(n=1))


def test_cli_choices_come_from_registry(capsys):
    """argparse rejects an unregistered name on every policy-bearing
    subcommand — the choices list is `policy_names()`, not a copy."""
    from repro.cli import main
    for argv in (["run", "sensor", "--policy", "lru"],
                 ["trace", "sensor", "--policy", "lru"],
                 ["fleet", "sensor", "--policy", "lru"],
                 ["chaos", "--policy", "lru"],
                 ["admin", "set", "--policy", "lru"]):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        for name in policy_names():
            assert name in err


def test_constructor_parameter_validation():
    with pytest.raises(ValueError):
        TrripPolicy(max_rrpv=0)
    with pytest.raises(ValueError):
        NhitPolicy(n=0)
    with pytest.raises(ValueError):
        SeqCutoffPolicy(cutoff=0)


# -- temperature classifier --------------------------------------------------

def _tmap():
    return TemperatureMap(spans=((0x100, 0x140, "hot"),
                                 (0x140, 0x180, "warm"),
                                 (0x200, 0x240, "cold")),
                          counts={"hot": 1, "warm": 1, "cold": 1})


def test_temperature_map_classifies_by_span():
    tm = _tmap()
    assert tm.classify(0x100) == "hot"
    assert tm.classify(0x13F) == "hot"
    assert tm.classify(0x140) == "warm"
    assert tm.classify(0x200) == "cold"
    # gaps and out-of-range addresses classify cold: never speculated
    assert tm.classify(0x180) == "cold"
    assert tm.classify(0) == "cold"
    assert tm.classify(0x1000) == "cold"


def test_temperature_map_from_profile():
    image = build_workload("sensor", 0.05)
    from repro.profiling import profile_image
    tm = temperature_map(profile_image(image))
    counts = tm.counts
    assert counts["hot"] >= 1
    assert sum(counts.values()) == len(image.procs)
    # every hot span classifies its own start address hot
    for start, end, temp in tm.spans:
        assert tm.classify(start) == temp


# -- fifo / flush ------------------------------------------------------------

def test_fifo_is_all_noops():
    policy = _bound(FifoPolicy())
    block = _block(0x100)
    policy.on_install(block, prefetched=False)
    policy.on_hit(block)
    assert policy.on_evict_candidate(block) == EVICT
    assert policy.admit_prefetch(0x999) is True
    assert policy.filters_prefetch is False
    assert policy.snapshot() == {"name": "fifo"}
    assert policy.audit([block]) == []


def test_flush_always_answers_flush():
    policy = _bound(FlushPolicy())
    assert policy.on_evict_candidate(_block(0x100)) == FLUSH
    assert policy.filters_prefetch is False


# -- trrip -------------------------------------------------------------------

def test_trrip_seeds_from_temperature():
    policy = _bound(TrripPolicy(_tmap()))
    assert policy.filters_prefetch is True
    hot, warm, cold = _block(0x100), _block(0x140), _block(0x200)
    policy.on_install(hot, prefetched=False)
    policy.on_install(warm, prefetched=False)
    policy.on_install(cold, prefetched=False)
    assert policy._rrpv[hot] == 1
    assert policy._rrpv[warm] == 2
    assert policy._rrpv[cold] == policy.max_rrpv
    # prefetched installs seed one step colder, capped at max
    pf = _block(0x104)
    policy.on_install(pf, prefetched=True)
    assert policy._rrpv[pf] == 2
    pf_cold = _block(0x204)
    policy.on_install(pf_cold, prefetched=True)
    assert policy._rrpv[pf_cold] == policy.max_rrpv
    # a hit protects outright
    policy.on_hit(cold)
    assert policy._rrpv[cold] == 0


def test_trrip_admission_rejects_cold_only():
    policy = _bound(TrripPolicy(_tmap()))
    assert policy.admit_prefetch(0x100) is True     # hot
    assert policy.admit_prefetch(0x150) is True     # warm
    assert policy.admit_prefetch(0x200) is False    # cold
    assert policy.admit_prefetch(0x5000) is False   # unknown -> cold


def test_trrip_without_temperature_degrades_to_fifo_plus_metadata():
    policy = _bound(TrripPolicy())
    assert policy.filters_prefetch is False
    block = _block(0x100)
    policy.on_install(block, prefetched=False)
    assert policy._rrpv[block] == 2                  # neutral seed


def test_trrip_metadata_follows_evictions_and_flushes():
    policy = _bound(TrripPolicy(_tmap()))
    a, b = _block(0x100), _block(0x140)
    policy.on_install(a, prefetched=False)
    policy.on_install(b, prefetched=False)
    policy.on_evict(a)
    assert a not in policy._rrpv and b in policy._rrpv
    assert policy.audit([b]) == []
    # stale metadata is exactly what audit() exists to catch
    assert policy.audit([]) != []
    policy.on_flush()
    assert not policy._rrpv


def test_trrip_preemptive_flush_requires_all_protected():
    blocks = [_block(0x100 + 16 * i) for i in range(3)]
    policy = TrripPolicy(_tmap(), preemptive_flush=True)
    _bound(policy, order=blocks)
    for block in blocks:
        policy.on_install(block, prefetched=False)
    # victim unprotected: plain eviction
    assert policy.on_evict_candidate(blocks[0]) == EVICT
    policy.on_hit(blocks[0])
    # victim protected but a colder block remains: still evict
    assert policy.on_evict_candidate(blocks[0]) == EVICT
    for block in blocks[1:]:
        policy.on_hit(block)
    # whole resident set protected: the working set does not fit
    assert policy.on_evict_candidate(blocks[0]) == FLUSH
    assert policy.cc.stats.policy_preemptive_flushes == 1


def test_trrip_snapshot_histogram():
    policy = _bound(TrripPolicy(_tmap()))
    for orig in (0x100, 0x104, 0x140):
        policy.on_install(_block(orig), prefetched=False)
    snap = policy.snapshot()
    assert snap["name"] == "trrip"
    assert snap["tracked_blocks"] == 3
    assert snap["rrpv_histogram"] == {"1": 2, "2": 1}
    assert snap["temperature_procs"] == {"hot": 1, "warm": 1, "cold": 1}


# -- nhit --------------------------------------------------------------------

def test_nhit_promotes_after_n_touches():
    policy = _bound(NhitPolicy(n=2))
    assert policy.filters_prefetch is True
    assert policy.admit_prefetch(0x100) is False
    block = _block(0x100)
    policy.on_install(block, prefetched=False)       # touch 1
    assert policy.admit_prefetch(0x100) is False
    policy.on_hit(block)                             # touch 2: promote
    assert policy.admit_prefetch(0x100) is True
    assert policy.cc.stats.policy_promotions == 1
    # further touches don't re-promote
    policy.on_hit(block)
    assert policy.cc.stats.policy_promotions == 1


def test_nhit_speculative_installs_are_not_touches():
    policy = _bound(NhitPolicy(n=1))
    policy.on_install(_block(0x100), prefetched=True)
    assert policy.admit_prefetch(0x100) is False
    policy.on_install(_block(0x100), prefetched=False)
    assert policy.admit_prefetch(0x100) is True


def test_nhit_history_survives_flush_but_not_reset():
    policy = _bound(NhitPolicy(n=1))
    policy.on_install(_block(0x100), prefetched=False)
    policy.on_flush()
    # the whole point: an address that keeps coming back stays promoted
    assert policy.admit_prefetch(0x100) is True
    policy.reset()
    assert policy.admit_prefetch(0x100) is False
    assert policy.snapshot()["tracked_origs"] == 0


# -- seqcutoff ---------------------------------------------------------------

def test_seqcutoff_rejects_only_long_run_extensions():
    policy = _bound(SeqCutoffPolicy(cutoff=3))
    orig = 0x100
    for _ in range(3):                       # sequential installs
        policy.on_install(_block(orig), prefetched=False)
        orig += 16
    # run length 3 >= cutoff: the next sequential address is rejected
    assert policy.admit_prefetch(orig) is False
    # but only the run extension — a jump elsewhere is admitted
    assert policy.admit_prefetch(0x9000) is True
    # a non-sequential install breaks the run
    policy.on_install(_block(0x9000), prefetched=False)
    assert policy.admit_prefetch(0x9010) is True
    assert policy.snapshot()["run_length"] == 1


def test_seqcutoff_flush_resets_run():
    policy = _bound(SeqCutoffPolicy(cutoff=2))
    orig = 0x100
    for _ in range(2):
        policy.on_install(_block(orig), prefetched=False)
        orig += 16
    assert policy.admit_prefetch(orig) is False
    policy.on_flush()
    assert policy.admit_prefetch(orig) is True


# -- differential: same program, same answer ---------------------------------

def _policy_matrix(image):
    from repro.profiling import temperature_for_image
    temperature = temperature_for_image(image)
    return {
        "fifo": FifoPolicy(),
        "flush": FlushPolicy(),
        "trrip": TrripPolicy(temperature),
        "trrip-preempt": TrripPolicy(temperature,
                                     preemptive_flush=True),
        "nhit": NhitPolicy(n=2),
        "seqcutoff": SeqCutoffPolicy(cutoff=2),
    }


@pytest.mark.parametrize("depth", [0, 2])
def test_policies_are_output_equivalent(depth):
    """Every policy — through a thrashing tcache, with and without
    prefetch — must produce the byte-identical program output and
    exit code of the fifo run, and end structurally consistent."""
    image = build_workload("sensor", 0.05)
    baseline = None
    for label, policy in _policy_matrix(image).items():
        system = SoftCacheSystem(image, SoftCacheConfig(
            tcache_size=1024, link=LOCAL_LINK, prefetch_depth=depth,
            policy=policy, record_timeline=False, debug_poison=True))
        report = system.run(600_000_000)
        assert check_consistency(system.cc) > 0, label
        got = (report.output, report.exit_code)
        if baseline is None:
            baseline = got
        else:
            assert got == baseline, (
                f"policy {label} changed program behavior")


def test_nhit_reduces_prefetch_waste_on_small_tcache():
    """The acceptance criterion, as a test: on the thrashing sensor
    config at prefetch_depth >= 2, nhit must reject candidates at
    batch-assembly time and ship strictly less doomed traffic
    (dropped + wasted prefetch bytes) than fifo."""
    image = build_workload("sensor", 0.05)

    def doomed_bytes(policy):
        system = SoftCacheSystem(image, SoftCacheConfig(
            tcache_size=1024, link=LOCAL_LINK, prefetch_depth=4,
            policy=policy, record_timeline=False))
        system.run(600_000_000)
        s = system.stats
        return (s.prefetch_dropped_bytes + s.wasted_prefetch_bytes,
                s.policy_prefetch_rejects, s.prefetch_drops)

    fifo_doomed, fifo_rejects, fifo_drops = doomed_bytes(FifoPolicy())
    nhit_doomed, nhit_rejects, nhit_drops = doomed_bytes(NhitPolicy(2))
    assert fifo_rejects == 0
    assert nhit_rejects > 0
    assert nhit_doomed < fifo_doomed
    assert nhit_drops < fifo_drops


# -- consistency audit wiring ------------------------------------------------

def test_check_consistency_catches_stale_policy_metadata():
    """`check_consistency` runs the policy's audit against the live
    resident set: a metadata entry for a block that is no longer
    resident is a hard ConsistencyError, not a silent leak."""
    image = build_workload("sensor", 0.05)
    policy = TrripPolicy()
    system = SoftCacheSystem(image, SoftCacheConfig(
        tcache_size=2048, link=LOCAL_LINK, policy=policy,
        record_timeline=False))
    system.run(600_000_000)
    assert check_consistency(system.cc) > 0
    policy._rrpv[_block(0xDEAD)] = 1        # poison: non-resident
    with pytest.raises(ConsistencyError, match="trrip"):
        check_consistency(system.cc)


def test_inspect_reports_policy_state():
    image = build_workload("sensor", 0.05)
    system = SoftCacheSystem(image, SoftCacheConfig(
        tcache_size=2048, link=LOCAL_LINK, policy="nhit",
        record_timeline=False))
    system.run(600_000_000)
    snap = system.inspect()["tcache"]["policy_state"]
    assert snap["name"] == "nhit"
    assert snap["n"] == 2
    assert snap["tracked_origs"] > 0


def test_custom_policy_subclass_plugs_in():
    """The interface is the contract: a user-defined policy that
    rejects everything still runs the program to the right answer —
    prefetch admission can only shape speculation, not correctness."""

    class RejectAll(ReplacementPolicy):
        name = "reject-all"
        filters_prefetch = True

        def admit_prefetch(self, orig):
            return False

    image = build_workload("sensor", 0.05)
    plain = SoftCacheSystem(image, SoftCacheConfig(
        tcache_size=1024, link=LOCAL_LINK, prefetch_depth=2,
        record_timeline=False))
    want = plain.run(600_000_000)

    system = SoftCacheSystem(image, SoftCacheConfig(
        tcache_size=1024, link=LOCAL_LINK, prefetch_depth=2,
        policy=RejectAll(), record_timeline=False))
    report = system.run(600_000_000)
    assert report.output == want.output
    assert report.exit_code == want.exit_code
    # everything rejected: no prefetch ever installed
    assert system.stats.prefetch_installs == 0
    assert system.stats.policy_prefetch_rejects > 0
