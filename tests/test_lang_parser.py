"""MinC parser: AST structure and error reporting."""

import pytest

from repro.lang import ast
from repro.lang.parser import ParseError, parse


def first_func(src):
    prog = parse(src)
    return next(i for i in prog.items if isinstance(i, ast.Function))


def test_function_signature():
    fn = first_func("int f(int a, char *s, int v[]) { return 0; }")
    assert fn.name == "f"
    assert fn.ret.kind == "int"
    assert [p.name for p in fn.params] == ["a", "s", "v"]
    assert fn.params[1].type.is_pointer
    assert fn.params[2].type.is_pointer  # array param decays


def test_void_params():
    fn = first_func("int f(void) { return 1; }")
    assert fn.params == []


def test_globals():
    prog = parse("""
int x = 5;
int arr[4] = { 1, 2, 3 };
char msg[] = "hey";
extern int other;
""")
    g = {i.name: i for i in prog.items}
    assert g["x"].init.value == 5
    assert g["arr"].type.array_len == 4
    assert len(g["arr"].init_list) == 3
    # string initializer expands to chars + NUL
    assert g["msg"].type.array_len == 4
    assert [c.value for c in g["msg"].init_list] == [104, 101, 121, 0]
    assert g["other"].extern


def test_const_array_length_expr():
    prog = parse("int buf[4 * 3 + 2];")
    assert prog.items[0].type.array_len == 14


def test_non_const_array_length_rejected():
    with pytest.raises(ParseError):
        parse("int n = 4; int buf[n];")


def test_precedence():
    fn = first_func("int f(void) { return 1 + 2 * 3; }")
    ret = fn.body.body[0]
    assert isinstance(ret.value, ast.Binary) and ret.value.op == "+"
    assert ret.value.right.op == "*"


def test_assignment_right_associative():
    fn = first_func("int f(int a, int b) { a = b = 1; return a; }")
    outer = fn.body.body[0].expr
    assert isinstance(outer, ast.Assign)
    assert isinstance(outer.value, ast.Assign)


def test_ternary():
    fn = first_func("int f(int a) { return a ? 1 : 2; }")
    assert isinstance(fn.body.body[0].value, ast.Ternary)


def test_postfix_chain():
    fn = first_func("int f(int *p) { return p[1]++; }")
    expr = fn.body.body[0].value
    assert isinstance(expr, ast.IncDec) and not expr.prefix
    assert isinstance(expr.target, ast.Index)


def test_control_statements():
    fn = first_func("""
int f(int n) {
    int acc = 0;
    if (n > 0) acc = 1; else acc = 2;
    while (n) n--;
    do { acc++; } while (acc < 3);
    for (n = 0; n < 4; n++) { if (n == 2) continue; acc += n; }
    for (;;) break;
    return acc;
}
""")
    types = [type(s).__name__ for s in fn.body.body]
    assert types == ["Declare", "If", "While", "While", "For", "For",
                     "Return"]
    assert fn.body.body[3].is_do


def test_switch_structure():
    fn = first_func("""
int f(int x) {
    switch (x) {
    case 1:
    case 2:
        return 10;
    default:
        return 0;
    }
}
""")
    sw = fn.body.body[0]
    assert isinstance(sw, ast.Switch)
    assert sw.cases[0].values == [1, 2]
    assert sw.cases[1].values == []  # default


def test_errors_report_line():
    with pytest.raises(ParseError) as err:
        parse("int f(void) {\n  return 1 +;\n}")
    assert err.value.line == 2
    with pytest.raises(ParseError):
        parse("int f(void) { if (1) }")
    with pytest.raises(ParseError):
        parse("banana f(void) { }")
    with pytest.raises(ParseError):
        parse("int f(void) { case 1: return 0; }")
