"""§4 capability 3: multi-bank parallel data access."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.power import (
    greedy_bank_placement,
    parallel_access_analysis,
)


def test_alternating_pattern_fully_parallelizable():
    # two blocks that conflict under interleaving (0 and 4, nbanks=4)
    tags = [0, 4] * 100
    result = parallel_access_analysis(tags, nbanks=4)
    assert result.interleaved_conflicts == 199
    assert result.optimized_conflicts == 0
    assert result.speedup > 1.9  # pairs issue together


def test_same_block_repeats_are_not_conflicts():
    tags = [7] * 50
    result = parallel_access_analysis(tags, nbanks=4)
    assert result.interleaved_conflicts == 0
    assert result.optimized_conflicts == 0
    assert result.speedup == 1.0


def test_already_parallel_pattern_unharmed():
    tags = [0, 1, 2, 3] * 50  # distinct banks under interleaving
    result = parallel_access_analysis(tags, nbanks=4)
    assert result.interleaved_conflicts == 0
    assert result.optimized_conflicts <= result.interleaved_conflicts
    assert result.speedup >= 0.99


def test_placement_is_total_and_within_banks():
    tags = [0, 8, 16, 24, 0, 8, 3, 11]
    placement = greedy_bank_placement(tags, 4)
    assert set(placement) == set(tags)
    assert all(0 <= bank < 4 for bank in placement.values())


def test_nbanks_validation():
    with pytest.raises(ValueError):
        parallel_access_analysis([1, 2], nbanks=1)


def test_empty_sequence():
    result = parallel_access_analysis([], nbanks=4)
    assert result.accesses == 0
    assert result.speedup == 1.0


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 63), max_size=300),
       st.sampled_from([2, 4, 8]))
def test_optimized_never_worse(tags, nbanks):
    """The greedy placement never adds conflicts over interleaving on
    the sequence it was trained on, and cycle counts stay sane."""
    result = parallel_access_analysis(tags, nbanks)
    assert result.optimized_conflicts <= result.interleaved_conflicts \
        + _greedy_slack(tags)
    half = (len(tags) + 1) // 2
    assert half <= result.optimized_cycles <= max(1, len(tags)) \
        or not tags


def _greedy_slack(tags):
    """Greedy placement is a heuristic: allow a tiny slack on
    adversarial sequences (it is near-optimal, not optimal)."""
    return max(2, len(tags) // 20)


def test_end_to_end_with_recorded_dcache_trace():
    from repro.dcache import DataCacheConfig
    from repro.net import LOCAL_LINK
    from repro.softcache import SoftCacheConfig, SoftCacheSystem
    from repro.workloads import build_workload

    image = build_workload("sensor", 0.05)
    config = SoftCacheConfig(
        tcache_size=32 * 1024, link=LOCAL_LINK,
        data_cache=DataCacheConfig(dcache_size=2048,
                                   record_access_tags=True))
    system = SoftCacheSystem(image, config)
    system.run()
    tags = system.dcache.access_tags
    assert len(tags) == system.dcache.stats.dcache_accesses
    result = parallel_access_analysis(tags, nbanks=4)
    assert result.accesses == len(tags)
    assert result.optimized_conflicts <= result.interleaved_conflicts
