"""Software data cache (Section 3): rewriting, caching semantics,
scache, prediction, and full-system equivalence."""

import pytest

from repro.dcache import DataCacheConfig, DataRewriter
from repro.lang import compile_program
from repro.sim import run_native
from repro.softcache import MemoryController, SoftCacheConfig, SoftCacheSystem

POINTER_SRC = r"""
int grid[64];
int bias = 17;      // pinnable scalar

int sweep(int *base, int n, int stride) {
    int i;
    int acc = 0;
    for (i = 0; i < n; i += stride) acc += base[i] + bias;
    return acc;
}

int main(void) {
    int i;
    int total = 0;
    for (i = 0; i < 64; i++) grid[i] = i;
    total += sweep(grid, 64, 1);
    total += sweep(grid, 64, 7);
    grid[5] = -1000;
    total += sweep(grid, 64, 1);
    print_labeled("total=", total);
    return 0;
}
"""


def run_full_system(src, dconfig=None, tcache=32 * 1024,
                    granularity="block"):
    image = compile_program(src, "dtest")
    native = run_native(image, max_instructions=50_000_000)
    config = SoftCacheConfig(
        tcache_size=tcache, granularity=granularity, debug_poison=True,
        data_cache=dconfig or DataCacheConfig())
    system = SoftCacheSystem(image, config)
    report = system.run(200_000_000)
    return native, report, system


def test_equivalence_output_and_memory():
    native, report, system = run_full_system(POINTER_SRC)
    assert report.output == native.output_text
    assert system.machine.snapshot_data() == native.snapshot_data()


@pytest.mark.parametrize("dsize,bsize", [(128, 16), (512, 32),
                                         (4096, 16)])
def test_equivalence_across_geometries(dsize, bsize):
    native, report, system = run_full_system(
        POINTER_SRC, DataCacheConfig(dcache_size=dsize, block_size=bsize))
    assert report.output == native.output_text
    assert system.machine.snapshot_data() == native.snapshot_data()


@pytest.mark.parametrize("prediction", ["none", "last", "stride"])
def test_equivalence_across_predictions(prediction):
    native, report, system = run_full_system(
        POINTER_SRC, DataCacheConfig(prediction=prediction))
    assert report.output == native.output_text


def test_dirty_writeback_correctness():
    """A store pattern bigger than the dcache forces dirty evictions;
    final memory must still match."""
    src = r"""
int big[512];
int main(void) {
    int i;
    int acc = 0;
    for (i = 0; i < 512; i++) big[i] = i * 3;
    for (i = 0; i < 512; i++) acc += big[i];
    print_labeled("acc=", acc);
    return 0;
}
"""
    native, report, system = run_full_system(
        src, DataCacheConfig(dcache_size=256, block_size=16))
    assert report.output == native.output_text
    assert system.machine.snapshot_data() == native.snapshot_data()
    assert system.dcache.stats.writebacks > 0


def test_prediction_improves_sequential_access():
    src = r"""
int arr[256];
int main(void) {
    int i; int acc = 0;
    for (i = 0; i < 256; i++) arr[i] = i;
    for (i = 0; i < 256; i++) acc += arr[i];
    __putint(acc);
    return 0;
}
"""
    _, _, with_pred = run_full_system(
        src, DataCacheConfig(prediction="last"))
    _, _, without = run_full_system(
        src, DataCacheConfig(prediction="none"))
    assert with_pred.dcache.stats.fast_hits > 0
    assert without.dcache.stats.fast_hits == 0
    assert with_pred.dcache.stats.prediction_accuracy() > 0.5


def test_slow_hit_bound_is_respected():
    native, report, system = run_full_system(POINTER_SRC)
    stats = system.dcache.stats
    assert stats.worst_slow_hit_cycles <= \
        system.dcache.slow_hit_bound_cycles()


def test_slow_hit_guarantee_when_data_fits():
    """§3: 'slow hits can be guaranteed provided the data fit in
    cache' — with a dcache larger than all data touched, every access
    after the cold fill resolves on-chip."""
    src = r"""
int small[16];
int main(void) {
    int i; int acc = 0;
    int pass;
    for (i = 0; i < 16; i++) small[i] = i;
    for (pass = 0; pass < 50; pass++)
        for (i = 0; i < 16; i++) acc += small[i];
    __putint(acc);
    return 0;
}
"""
    native, report, system = run_full_system(
        src, DataCacheConfig(dcache_size=8192))
    stats = system.dcache.stats
    # cold fill only; every subsequent access is a fast or slow hit
    assert stats.misses <= 8192 // 16
    assert stats.fast_hits + stats.slow_hits > 10 * stats.misses


def test_pinned_globals_specialized():
    native, report, system = run_full_system(POINTER_SRC)
    rw = system.mc.data_rewriter.stats
    assert rw.pinned_specializations > 0
    assert "bias" not in ()  # documentation hook
    # bias is in the pinned map
    bias_addr = system.machine.image.symbols["bias"]
    assert bias_addr in system.dcache.pinned


def test_pinned_aliased_access_stays_coherent():
    """Accessing a pinned scalar through a pointer must see the same
    value as specialized direct accesses (the aliasing hazard)."""
    src = r"""
int knob = 5;
int poke(int *p) { *p = *p + 1; return *p; }
int main(void) {
    int direct;
    poke(&knob);
    direct = knob;           // specialized access
    __putint(direct);
    return 0;
}
"""
    native, report, system = run_full_system(src)
    assert report.output == native.output_text == "6"


def test_scache_spills_and_refills_on_deep_recursion():
    src = r"""
int down(int n) {
    int pad[8];
    pad[0] = n;
    if (n == 0) return 0;
    return pad[0] + down(n - 1);
}
int main(void) {
    __putint(down(30));
    return 0;
}
"""
    native, report, system = run_full_system(
        src, DataCacheConfig(scache_size=256))
    assert report.output == native.output_text
    stats = system.dcache.stats
    assert stats.scache_enters > 30
    assert stats.scache_spills > 0
    assert stats.scache_refills > 0


def test_stack_accesses_bypass_dcache():
    src = r"""
int main(void) {
    int local[8];
    int i; int acc = 0;
    int *p = local;
    for (i = 0; i < 8; i++) p[i] = i;
    for (i = 0; i < 8; i++) acc += p[i];
    __putint(acc);
    return 0;
}
"""
    native, report, system = run_full_system(src)
    assert report.output == native.output_text == "28"
    assert system.dcache.stats.stack_accesses > 0


def test_rewriter_word_counts_stable():
    """Rewrites are word-for-word: chunk sizes don't change."""
    image = compile_program(POINTER_SRC, "dtest")
    mc_plain = MemoryController(image)
    mc_rw = MemoryController(image)
    mc_rw.data_rewriter = DataRewriter(image)
    plain = mc_plain.serve_chunk(image.symbols["sweep"])
    rewritten = mc_rw.serve_chunk(image.symbols["sweep"])
    assert len(plain.words) == len(rewritten.words)
    assert plain.exits == rewritten.exits


def test_equivalence_with_proc_granularity():
    src = POINTER_SRC
    image = compile_program(src, "dtest_arm", indirect_ok=False)
    native = run_native(image, max_instructions=50_000_000)
    config = SoftCacheConfig(
        tcache_size=32 * 1024, granularity="proc", debug_poison=True,
        data_cache=DataCacheConfig())
    system = SoftCacheSystem(image, config)
    report = system.run(200_000_000)
    assert report.output == native.output_text
    assert system.machine.snapshot_data() == native.snapshot_data()


def test_config_validation():
    with pytest.raises(ValueError):
        DataCacheConfig(block_size=12)
    with pytest.raises(ValueError):
        DataCacheConfig(dcache_size=100, block_size=16)
    with pytest.raises(ValueError):
        DataCacheConfig(prediction="psychic")
