"""The live ops plane: ObsServer routes, admin control, digest safety."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import ControlPlane, ObsServer, parse_serve
from repro.sim import CycleLimitExceeded
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.softcache.debug import architectural_state
from repro.workloads import build_workload


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode()


def _post(url, payload, timeout=15):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, resp.read().decode()


# -- parse_serve -----------------------------------------------------------

def test_parse_serve():
    assert parse_serve("127.0.0.1:9178") == ("127.0.0.1", 9178)
    assert parse_serve("9178") == ("127.0.0.1", 9178)
    assert parse_serve(":0") == ("127.0.0.1", 0)
    assert parse_serve("0.0.0.0:80") == ("0.0.0.0", 80)
    with pytest.raises(ValueError):
        parse_serve("not-a-port")
    with pytest.raises(ValueError):
        parse_serve("host:99999")


# -- GET routes ------------------------------------------------------------

@pytest.fixture(scope="module")
def served_run():
    """One finished sensor run with an ObsServer attached."""
    image = build_workload("sensor", 0.05)
    system = SoftCacheSystem(image, SoftCacheConfig(tcache_size=2048))
    with ObsServer("127.0.0.1", 0) as server:
        server.attach_system(system)
        report = system.run()
        yield server, system, report


def test_healthz(served_run):
    server, _, _ = served_run
    status, body = _get(server.url + "/healthz")
    assert status == 200
    health = json.loads(body)
    assert health["status"] == "ok"
    assert health["system"] is True
    assert health["control"] is True


def test_metrics_scrape_is_prometheus_text(served_run):
    server, system, _ = served_run
    status, body = _get(server.url + "/metrics")
    assert status == 200
    assert f"repro_cc_translations_total "\
           f"{system.stats.translations}" in body
    assert "# HELP repro_cc_translations_total" in body
    assert "repro_build_info{" in body
    assert 'jit="hot"' in body


def test_inspect_tcache(served_run):
    server, system, _ = served_run
    status, body = _get(server.url + "/inspect/tcache")
    assert status == 200
    snap = json.loads(body)
    assert snap["capacity"] == 2048
    assert snap["boot_capacity"] == 2048
    assert snap["resident_blocks"] == len(snap["blocks"])
    assert snap["used"] == sum(b["size"] for b in snap["blocks"])
    assert snap["policy_state"] == {"name": "fifo"}
    for block in snap["blocks"]:
        assert block["orig"] >= 0 and block["size"] > 0


def test_inspect_superblocks(served_run):
    server, system, _ = served_run
    status, body = _get(server.url + "/inspect/superblocks")
    snap = json.loads(body)
    assert status == 200
    assert snap["blocks"] == sum(snap["tiers"].values())
    assert snap["jit_mode"] == "hot"
    if snap["hottest"]:
        hits = [b["hits"] for b in snap["hottest"]
                if b["hits"] is not None]
        assert hits == sorted(hits, reverse=True)


def test_inspect_shards_solo(served_run):
    server, system, _ = served_run
    status, body = _get(server.url + "/inspect/shards")
    snap = json.loads(body)
    assert status == 200
    assert snap["n_shards"] == 1
    assert snap["requests"] == system.mc_stats.requests


def test_unknown_routes_404(served_run):
    server, _, _ = served_run
    with pytest.raises(urllib.error.HTTPError) as exc:
        _get(server.url + "/nope")
    assert exc.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as exc:
        _get(server.url + "/inspect/nope")
    assert exc.value.code == 404


def test_unattached_server_503():
    with ObsServer("127.0.0.1", 0) as server:
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server.url + "/inspect/tcache")
        assert exc.value.code == 503
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(server.url + "/admin/flush", {})
        assert exc.value.code == 503


# -- cycle invisibility ----------------------------------------------------

def test_served_and_scraped_run_is_digest_identical():
    """The tentpole guarantee: a run scraped mid-flight ends in
    exactly the architectural state of an unserved run."""
    image = build_workload("sensor", 0.05)
    config = SoftCacheConfig(tcache_size=2048, debug_poison=True)

    plain = SoftCacheSystem(image, config)
    plain_report = plain.run()
    want = architectural_state(plain)

    served = SoftCacheSystem(image, config)
    with ObsServer("127.0.0.1", 0) as server:
        server.attach_system(served)
        stop = threading.Event()
        scrapes = []

        def scraper():
            while not stop.is_set():
                for route in ("/metrics", "/inspect/tcache",
                              "/inspect/superblocks", "/healthz"):
                    try:
                        status, _ = _get(server.url + route, timeout=5)
                        scrapes.append(status)
                    except urllib.error.HTTPError as exc:
                        scrapes.append(exc.code)

        thread = threading.Thread(target=scraper, daemon=True)
        thread.start()
        report = served.run()
        stop.set()
        thread.join(timeout=10)

    assert scrapes, "scraper never got a request through mid-run"
    assert all(code in (200, 503) for code in scrapes)
    assert report.output == plain_report.output
    assert report.cycles == plain_report.cycles
    assert architectural_state(served) == want


# -- admin control at miss boundaries --------------------------------------

def _run_partially(system, instructions=5_000):
    """Start a system and stop it mid-run (resumable)."""
    system.cc.start()
    with pytest.raises(CycleLimitExceeded):
        system.machine.cpu.run(instructions)


def test_resize_applies_at_next_miss_boundary():
    image = build_workload("sensor", 0.05)
    system = SoftCacheSystem(image, SoftCacheConfig(tcache_size=2048))
    _run_partially(system)

    ctl = ControlPlane()
    system.cc._control = ctl
    cmd = ctl.post("resize", {"tcache_size": 1024})
    assert not cmd.done.is_set()
    before = system.machine.cpu.cycles

    exit_code = system.machine.cpu.run(2_000_000_000)
    assert exit_code == 0
    assert cmd.done.is_set() and cmd.error is None
    assert cmd.result["tcache_size"] == 1024
    assert cmd.result["previous_size"] == 2048
    assert system.cc.tcache.size == 1024
    assert system.cc.tcache.geom.size == 2048  # boot ceiling frozen
    assert system.stats.admin_commands == 1
    assert system.stats.flushes >= 1           # resize flushes
    assert system.machine.cpu.cycles > before
    # the shrunken cache is what inspect() now reports
    snap = system.inspect()
    assert snap["tcache"]["capacity"] == 1024
    assert snap["tcache"]["used"] <= 1024
    assert snap["stats"]["admin_commands"] == 1


def test_resize_rejects_beyond_boot_geometry():
    image = build_workload("sensor", 0.05)
    system = SoftCacheSystem(image, SoftCacheConfig(tcache_size=2048))
    _run_partially(system)
    resident = system.stats.translations - system.stats.evictions

    ctl = ControlPlane()
    system.cc._control = ctl
    cmd = ctl.post("resize", {"tcache_size": 4096})
    system.machine.cpu.run(2_000_000_000)
    assert cmd.done.is_set()
    assert cmd.error is not None and "2048" in cmd.error
    assert system.cc.tcache.size == 2048
    # a rejected resize must not have flushed anything
    assert system.stats.flushes == 0
    assert resident >= 0


def test_admin_set_and_flush():
    image = build_workload("sensor", 0.05)
    system = SoftCacheSystem(image, SoftCacheConfig(tcache_size=4096))
    _run_partially(system)

    ctl = ControlPlane()
    system.cc._control = ctl
    set_cmd = ctl.post("set", {"prefetch_depth": 2, "jit": "off"})
    flush_cmd = ctl.post("flush", {})
    system.machine.cpu.run(2_000_000_000)

    assert set_cmd.result["prefetch_depth"] == 2
    assert system.cc.prefetch_depth == 2
    assert system.machine.cpu.jit == "off"
    assert flush_cmd.result["verb"] == "flush"
    assert system.stats.admin_commands == 2
    assert ctl.applied == 2


def test_admin_rejects_bad_args():
    image = build_workload("sensor", 0.05)
    system = SoftCacheSystem(image, SoftCacheConfig(tcache_size=2048))
    _run_partially(system)
    ctl = ControlPlane()
    system.cc._control = ctl
    bad_depth = ctl.post("set", {"prefetch_depth": -1})
    bad_verb = ctl.post("defrag", {})
    empty_set = ctl.post("set", {})
    system.machine.cpu.run(2_000_000_000)
    assert bad_depth.error is not None
    assert bad_verb.error is not None
    assert empty_set.error is not None
    assert ctl.applied == 0
    # failed commands still bill their MC service round trip
    assert system.stats.admin_commands == 3


def test_resize_resets_policy_state():
    """Admin resize flushes the tcache *and* resets policy metadata:
    nhit's per-address touch history survives ordinary flushes by
    design, so the resize boundary is the one place it must be wiped —
    stale heat counters against a reshaped cache would promote the
    wrong chunks."""
    from repro.softcache import NhitPolicy

    class ProbeNhit(NhitPolicy):
        def __init__(self):
            super().__init__(n=2)
            self.reset_history = []

        def reset(self):
            self.reset_history.append(len(self.touches))
            super().reset()

    probe = ProbeNhit()
    image = build_workload("sensor", 0.05)
    system = SoftCacheSystem(image, SoftCacheConfig(
        tcache_size=2048, policy=probe, prefetch_depth=2))
    _run_partially(system)
    accumulated = len(probe.touches)
    assert accumulated > 0       # mid-run heat exists to go stale

    ctl = ControlPlane()
    system.cc._control = ctl
    cmd = ctl.post("resize", {"tcache_size": 1024})
    exit_code = system.machine.cpu.run(2_000_000_000)
    assert exit_code == 0
    assert cmd.error is None
    # exactly one reset, at the resize, clearing the stale history
    assert len(probe.reset_history) == 1
    assert probe.reset_history[0] >= accumulated
    # post-resize touches are fresh accumulation, not stale + new
    snap = system.inspect()["tcache"]["policy_state"]
    assert snap["name"] == "nhit"
    assert snap["tracked_origs"] == len(probe.touches)


def test_resize_resets_trrip_rrpv():
    """Same boundary for trrip: every RRPV entry left after a mid-run
    resize must reference a currently-resident block (the audit inside
    check_consistency fails on anything stale)."""
    from repro.softcache import TrripPolicy
    from repro.softcache.debug import check_consistency

    policy = TrripPolicy()
    image = build_workload("sensor", 0.05)
    system = SoftCacheSystem(image, SoftCacheConfig(
        tcache_size=2048, policy=policy))
    _run_partially(system)
    assert policy._rrpv            # metadata exists mid-run

    ctl = ControlPlane()
    system.cc._control = ctl
    cmd = ctl.post("resize", {"tcache_size": 1024})
    assert system.machine.cpu.run(2_000_000_000) == 0
    assert cmd.error is None
    assert check_consistency(system.cc) > 0
    resident = set(map(id, list(system.cc.tcache.order)
                       + list(system.cc.tcache.pinned_blocks)))
    assert all(id(b) in resident for b in policy._rrpv)


def test_admin_set_policy():
    """`admin set --policy` swaps the policy at a miss boundary; an
    unknown name fails with the full valid set in the error."""
    image = build_workload("sensor", 0.05)
    system = SoftCacheSystem(image, SoftCacheConfig(tcache_size=2048))
    _run_partially(system)
    assert system.cc.policy == "fifo"

    ctl = ControlPlane()
    system.cc._control = ctl
    good = ctl.post("set", {"policy": "nhit"})
    bad = ctl.post("set", {"policy": "lru"})
    assert system.machine.cpu.run(2_000_000_000) == 0

    assert good.error is None
    assert good.result["policy"] == "nhit"
    assert system.cc.policy == "nhit"
    snap = system.inspect()["tcache"]["policy_state"]
    assert snap["name"] == "nhit"
    assert bad.error is not None
    for name in ("fifo", "flush", "nhit", "seqcutoff", "trrip"):
        assert name in bad.error


def test_resize_over_http_202_then_visible():
    """POST ?wait=0 queues; the command applies once the run resumes
    and the new geometry shows up in /inspect/tcache."""
    image = build_workload("sensor", 0.05)
    system = SoftCacheSystem(image, SoftCacheConfig(tcache_size=2048))
    _run_partially(system)

    with ObsServer("127.0.0.1", 0) as server:
        server.attach_system(system)
        status, body = _post(server.url + "/admin/resize?wait=0",
                             {"tcache_size": 1024})
        assert status == 202
        assert json.loads(body)["status"] == "pending"

        done = threading.Event()

        def finish():
            system.machine.cpu.run(2_000_000_000)
            done.set()

        thread = threading.Thread(target=finish, daemon=True)
        thread.start()
        assert done.wait(60)
        thread.join(timeout=10)

        status, body = _get(server.url + "/inspect/tcache")
        snap = json.loads(body)
        assert snap["capacity"] == 1024
        assert snap["boot_capacity"] == 2048


def test_resize_over_http_waits_for_miss_boundary():
    image = build_workload("sensor", 0.05)
    system = SoftCacheSystem(image, SoftCacheConfig(tcache_size=2048))
    _run_partially(system)

    with ObsServer("127.0.0.1", 0) as server:
        server.attach_system(system)
        results = {}

        def poster():
            results["resp"] = _post(
                server.url + "/admin/resize?wait=30",
                {"tcache_size": 1536})

        thread = threading.Thread(target=poster, daemon=True)
        thread.start()
        # give the POST time to land on the control queue, then run
        # to completion — the reply arrives once a miss applies it
        assert _wait_for(lambda: server.control.pending, 10)
        system.machine.cpu.run(2_000_000_000)
        thread.join(timeout=30)

    status, body = results["resp"]
    assert status == 200
    reply = json.loads(body)
    assert reply["status"] == "applied"
    assert reply["result"]["tcache_size"] == 1536
    assert system.cc.tcache.size == 1536


def _wait_for(predicate, timeout_s):
    import time
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


# -- live code update over the ops plane -----------------------------------

def test_inspect_images_route(served_run):
    server, system, _ = served_run
    status, body = _get(server.url + "/inspect/images")
    snap = json.loads(body)
    assert status == 200
    assert snap["epoch"] == 0
    assert snap["group"] == "default"
    assert len(snap["versions"]) == 1
    assert snap["versions"][0]["digest"] == snap["digest"]


def test_admin_publish_over_http(tmp_path):
    """POST /admin/publish hot-patches a live run: the epoch bump is
    taken at the next miss boundary and the run finishes on the new
    image with the old image's observable behaviour."""
    from repro.softcache.debug import check_consistency
    from repro.softcache.update import (derive_patched_image,
                                        image_digest, save_image)
    image = build_workload("sensor", 0.05)
    patched = derive_patched_image(image, seed=1)
    path = tmp_path / "patched.img"
    save_image(patched, path)

    system = SoftCacheSystem(image, SoftCacheConfig(tcache_size=2048))
    _run_partially(system)

    with ObsServer("127.0.0.1", 0) as server:
        server.attach_system(system)
        status, body = _post(server.url + "/admin/publish?wait=0",
                             {"image": str(path)})
        assert status == 202
        exit_code = system.machine.cpu.run(2_000_000_000)
        assert exit_code == 0

        status, body = _get(server.url + "/inspect/images")
        snap = json.loads(body)
        assert snap["epoch"] == 1
        assert snap["digest"] == image_digest(patched)
        assert len(snap["versions"]) == 2

    assert system.stats.update_barriers == 1
    assert system.cc._epoch == 1
    assert check_consistency(system.cc) > 0


def test_served_update_run_is_digest_identical_to_unserved():
    """Cycle invisibility composes with live updates: a mid-run
    publish scheduled by cycle count lands at the same simulated
    boundary whether or not an ops server is scraping, so both runs
    end observably identical (and here, architecturally too — the
    schedule, not wall clock, drives the barrier)."""
    image = build_workload("sensor", 0.05)
    config = SoftCacheConfig(tcache_size=2048, debug_poison=True,
                             update_at=("20000:patch",))

    plain = SoftCacheSystem(image, config)
    plain_report = plain.run()
    want = architectural_state(plain)
    assert plain.stats.update_barriers >= 1

    served = SoftCacheSystem(image, config)
    with ObsServer("127.0.0.1", 0) as server:
        server.attach_system(served)
        stop = threading.Event()
        scrapes = []

        def scraper():
            while not stop.is_set():
                for route in ("/metrics", "/inspect/images",
                              "/inspect/tcache", "/healthz"):
                    try:
                        status, _ = _get(server.url + route, timeout=5)
                        scrapes.append(status)
                    except urllib.error.HTTPError as exc:
                        scrapes.append(exc.code)

        thread = threading.Thread(target=scraper, daemon=True)
        thread.start()
        report = served.run()
        stop.set()
        thread.join(timeout=10)

    assert scrapes, "scraper never got a request through mid-run"
    assert all(code in (200, 503) for code in scrapes)
    assert report.output == plain_report.output
    assert report.cycles == plain_report.cycles
    assert served.cc._epoch == 1
    assert architectural_state(served) == want


# -- fleet attachment ------------------------------------------------------

def test_fleet_serve_exposes_shards():
    from repro.fleet import simulate_fleet
    image = build_workload("sensor", 0.05)
    with ObsServer("127.0.0.1", 0) as server:
        simulate_fleet(image, 3, SoftCacheConfig(tcache_size=8192),
                       shards=2, server=server)
        status, body = _get(server.url + "/inspect/shards")
        snap = json.loads(body)
        assert snap["n_shards"] == 2
        assert snap["requests"] == sum(s["requests"]
                                       for s in snap["shards"])
        assert snap["requests"] > 0
        # fleet attachment is read-only: replay contract forbids
        # mid-capture retuning
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(server.url + "/admin/flush", {})
        assert exc.value.code == 503
        status, body = _get(server.url + "/metrics")
        assert "repro_fleet_shard0_requests_total" in body
        assert "repro_fleet_shard1_requests_total" in body


# -- CLI -------------------------------------------------------------------

def test_cli_run_serve_smoke(capsys):
    from repro.cli import main
    rc = main(["run", "sensor", "--scale", "0.05", "--tcache", "1024",
               "--local-link", "--serve", "127.0.0.1:0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "[serve] ops endpoint on http://127.0.0.1:" in out


def test_cli_tcache_auto(capsys):
    from repro.cli import main
    rc = main(["run", "sensor", "--scale", "0.05", "--tcache", "auto",
               "--local-link"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "[auto-tcache]" in out
    assert "rewritten" in out


def test_cli_admin_live(served_run, capsys):
    from repro.cli import main
    server, system, _ = served_run
    rc = main(["admin", "stats", "--url", server.url])
    out = capsys.readouterr().out
    assert rc == 0
    assert "repro_cc_translations_total" in out

    rc = main(["admin", "inspect", "--url", server.url,
               "--route", "tcache"])
    out = capsys.readouterr().out
    assert rc == 0
    assert json.loads(out)["capacity"] == 2048

    # control verb with --no-wait: queued (202), rc 0
    rc = main(["admin", "set", "--url", server.url,
               "--prefetch-depth", "1", "--no-wait"])
    out = capsys.readouterr().out
    assert rc == 0
    assert json.loads(out)["status"] == "pending"


def test_cli_admin_publish(tmp_path, capsys):
    from repro.cli import main
    from repro.softcache.update import derive_patched_image, save_image

    # publish without --image is a usage error, not a request
    rc = main(["admin", "publish", "--url", "http://127.0.0.1:1"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "--image" in err

    image = build_workload("sensor", 0.05)
    path = tmp_path / "patched.img"
    save_image(derive_patched_image(image, seed=1), path)
    system = SoftCacheSystem(image, SoftCacheConfig(tcache_size=2048))
    _run_partially(system)
    with ObsServer("127.0.0.1", 0) as server:
        server.attach_system(system)
        rc = main(["admin", "publish", "--url", server.url,
                   "--image", str(path), "--no-wait"])
        out = capsys.readouterr().out
        assert rc == 0
        assert json.loads(out)["status"] == "pending"
        assert system.machine.cpu.run(2_000_000_000) == 0

        rc = main(["admin", "inspect", "--url", server.url,
                   "--route", "images"])
        out = capsys.readouterr().out
        assert rc == 0
        assert json.loads(out)["epoch"] == 1


def test_cli_admin_unreachable(capsys):
    from repro.cli import main
    rc = main(["admin", "stats", "--url", "http://127.0.0.1:1",
               "--timeout", "2"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "cannot reach" in err


def test_cli_admin_offline(tmp_path, capsys):
    from repro.cli import main
    trace = tmp_path / "run"
    rc = main(["trace", "sensor", "--scale", "0.05", "--tcache",
               "1024", "--local-link", "--out", str(trace)])
    capsys.readouterr()
    assert rc == 0
    jsonl = str(trace) + ".jsonl"

    rc = main(["admin", "inspect", "--from", jsonl])
    out = capsys.readouterr().out
    assert rc == 0
    assert "hot chunks from" in out

    rc = main(["admin", "stats", "--from", jsonl])
    out = capsys.readouterr().out
    assert rc == 0
    assert "trace_events_total{" in out

    # control verbs cannot target a recording
    rc = main(["admin", "flush", "--from", jsonl])
    err = capsys.readouterr().err
    assert rc == 2
    assert "live endpoint" in err
