"""Fleet simulation (Figure 1: one server, many devices).

The fleet runs on a discrete-event scheduler: one simulated clock,
live uplink/shard contention, with the old post-hoc FIFO kept as
``queue_model="legacy"``.  These tests pin the contract: a 1-client
event fleet is bit-identical to a solo run, the two queue models agree
at low utilization, fault plans compose with the live queue, and
sharding the MC never changes architectural state.  See docs/FLEET.md.
"""

import pytest

from repro.fleet import simulate_fleet
from repro.net import FaultPlan, LinkModel, RetryPolicy
from repro.softcache import (
    MemoryController,
    SoftCacheConfig,
    SoftCacheSystem,
)
from repro.softcache.debug import architectural_state
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def image():
    return build_workload("sensor", 0.05)


@pytest.fixture(scope="module")
def config():
    return SoftCacheConfig(tcache_size=8192, record_timeline=True)


def test_single_client(image, config):
    result = simulate_fleet(image, 1, config)
    assert result.n_clients == 1
    assert result.clients[0].report.exit_code == 0
    assert result.mean_queue_delay_s == 0.0 or \
        result.delayed_requests >= 0
    assert result.chunk_cache_sharing == 0.0  # nothing to share


def test_single_client_bit_identical_to_solo(image, config):
    """A 1-client event fleet IS the solo run: same simulated seconds
    (exactly — arrivals are derived from integer cycle counts, never
    accumulated float deltas) and same architectural digest."""
    solo = SoftCacheSystem(image, config)
    report = solo.run()
    fleet = simulate_fleet(image, 1, config)
    assert fleet.makespan_s == report.seconds
    assert fleet.clients[0].report.seconds == report.seconds
    assert fleet.clients[0].queue_delay_s == 0.0
    assert fleet.architectural_digest == architectural_state(solo)


def test_chunk_cache_sharing_grows_with_fleet(image, config):
    result = simulate_fleet(image, 8, config)
    # the server rewrote each chunk once; 7/8 of requests were cache hits
    assert result.mc_chunks_built * 8 == result.mc_requests
    assert result.chunk_cache_sharing == pytest.approx(7 / 8)


def test_clients_identical_results(image, config):
    result = simulate_fleet(image, 4, config, stagger_s=0.01)
    outputs = {c.report.output for c in result.clients}
    assert len(outputs) == 1
    translations = {c.translations for c in result.clients}
    assert len(translations) == 1


def test_stagger_spreads_load(image, config):
    burst = simulate_fleet(image, 6, config, stagger_s=0.0)
    spread = simulate_fleet(image, 6, config, stagger_s=0.05)
    # simultaneous boot queues requests; staggering removes the queue
    assert spread.mean_queue_delay_s <= burst.mean_queue_delay_s
    assert burst.delayed_requests > 0
    assert burst.max_queue_delay_s > 0


def test_event_and_legacy_agree_at_low_load(image, config):
    """Acceptance: below 20% uplink utilization the live event model
    and the post-hoc legacy model agree on mean queue delay within 5%
    (both collapse to ~zero — no contention means no feedback for the
    models to disagree about)."""
    ev = simulate_fleet(image, 6, config, stagger_s=0.04,
                        queue_model="event")
    leg = simulate_fleet(image, 6, config, stagger_s=0.04,
                         queue_model="legacy")
    assert ev.link_utilization < 0.20
    a, b = ev.mean_queue_delay_s, leg.mean_queue_delay_s
    assert abs(a - b) <= max(0.05 * max(a, b), 1e-9)


def test_event_feedback_disperses_collisions(image, config):
    """Under contention the event model's feedback lets staggered
    request trains self-organize apart after the first collision; the
    legacy model re-collides every period, so it can only overestimate."""
    burst_ev = simulate_fleet(image, 6, config, queue_model="event")
    burst_leg = simulate_fleet(image, 6, config, queue_model="legacy")
    assert burst_ev.delayed_requests > 0
    assert burst_ev.mean_queue_delay_s <= burst_leg.mean_queue_delay_s
    # legacy never feeds delay back into client timelines
    assert all(c.queue_delay_s == 0.0 for c in burst_leg.clients)
    assert any(c.queue_delay_s > 0.0 for c in burst_ev.clients)


def test_chaos_fleet_composes_with_event_queue(image, config):
    """PR 4 fault plans under the event scheduler: retries are live
    uplink load (more wire occupancy than the fault-free fleet), yet
    architectural state is bit-identical — transient faults shift
    timing, never execution."""
    clean = simulate_fleet(image, 4, config)
    chaos = simulate_fleet(
        image, 4, config, fault_plan=FaultPlan.chaos(seed=7),
        retry_policy=RetryPolicy(max_attempts=8,
                                 backoff_base_s=1e-4, jitter=0.0))
    assert chaos.link_retries > 0
    assert chaos.architectural_digest == clean.architectural_digest
    assert chaos.total_transfer_s > clean.total_transfer_s


def test_sharded_mc_is_architecturally_invisible(image, config):
    """Consistent-hash sharding repartitions the server tier without
    changing what any client executes or how much the tier serves."""
    mono = simulate_fleet(image, 6, config, shards=1)
    sharded = simulate_fleet(image, 6, config, shards=4)
    assert sharded.n_shards == 4
    assert len(sharded.shard_loads) == 4
    assert sharded.architectural_digest == mono.architectural_digest
    assert sharded.mc_requests == mono.mc_requests
    assert sharded.mc_chunks_built == mono.mc_chunks_built
    # every demand chunk RPC was routed to exactly one shard
    assert sum(s.requests for s in sharded.shard_loads) == \
        sum(s.requests for s in mono.shard_loads)
    # the ring spread the key space: no shard owns everything
    loaded = [s for s in sharded.shard_loads if s.requests > 0]
    assert len(loaded) > 1
    assert sharded.shard_balance >= 1.0


def test_edge_hub_shields_origin_shards(image, config):
    """A shared edge hub absorbs repeat chunk fetches before they
    reach the origin shards — and stays architecturally invisible."""
    plain = simulate_fleet(image, 6, config, shards=2)
    hubbed = simulate_fleet(image, 6, config, shards=2,
                            hub_capacity=64 * 1024)
    assert hubbed.hub_requests > 0
    assert hubbed.hub_hits > 0
    assert 0.0 < hubbed.hub_hit_rate <= 1.0
    assert hubbed.architectural_digest == plain.architectural_digest
    # hub hits never reach a shard FIFO
    assert sum(s.requests for s in hubbed.shard_loads) < \
        sum(s.requests for s in plain.shard_loads)


def test_slow_link_raises_utilization(image):
    fast = simulate_fleet(
        image, 4, SoftCacheConfig(tcache_size=8192,
                                  link=LinkModel(bandwidth_bps=10e6)))
    slow = simulate_fleet(
        image, 4, SoftCacheConfig(tcache_size=8192,
                                  link=LinkModel(bandwidth_bps=0.5e6)))
    assert slow.total_transfer_s > fast.total_transfer_s
    assert slow.link_utilization > fast.link_utilization


def test_shared_mc_validation(image, config):
    # scale 1.0 compiles to genuinely different code; 0.1 rounds to the
    # same program as 0.05 and the check is content-based, not identity
    other = build_workload("sensor", 1.0)
    mc = MemoryController(other)
    with pytest.raises(ValueError, match="different image"):
        SoftCacheSystem(image, config, shared_mc=mc)
    mc2 = MemoryController(image, granularity="proc")
    with pytest.raises(ValueError, match="granularity"):
        SoftCacheSystem(image, config, shared_mc=mc2)


def test_empty_fleet(image, config):
    """n_clients=0 is a degenerate fleet, not an error: every
    aggregate reads as zero and no division blows up."""
    empty = simulate_fleet(image, 0, config)
    assert empty.n_clients == 0
    assert empty.clients == []
    assert empty.makespan_s == 0.0
    assert empty.link_utilization == 0.0
    assert empty.mean_queue_delay_s == 0.0
    assert empty.chunk_cache_sharing == 0.0
    assert empty.shard_balance == 0.0
    assert empty.hub_hit_rate == 0.0
    assert empty.architectural_digest is None


def test_negative_clients_rejected(image, config):
    with pytest.raises(ValueError):
        simulate_fleet(image, -1, config)


def test_unknown_queue_model_rejected(image, config):
    with pytest.raises(ValueError, match="queue model"):
        simulate_fleet(image, 2, config, queue_model="quantum")


def test_replication_preserves_server_accounting(image, config):
    """Replicated clients (beyond distinct_clients) replay captured
    traces, but the server tier is still billed for every demand
    fetch they would have issued."""
    small = simulate_fleet(image, 4, config, distinct_clients=2)
    big = simulate_fleet(image, 32, config, distinct_clients=2)
    assert big.distinct_clients == 2
    assert big.mc_chunks_built == small.mc_chunks_built
    assert big.mc_requests == big.mc_chunks_built * 32
    assert big.chunk_cache_sharing == pytest.approx(31 / 32)
