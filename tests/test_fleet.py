"""Fleet simulation (Figure 1: one server, many devices)."""

import pytest

from repro.fleet import simulate_fleet
from repro.net import LinkModel
from repro.softcache import MemoryController, SoftCacheConfig, SoftCacheSystem
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def image():
    return build_workload("sensor", 0.05)


@pytest.fixture(scope="module")
def config():
    return SoftCacheConfig(tcache_size=8192, record_timeline=True)


def test_single_client(image, config):
    result = simulate_fleet(image, 1, config)
    assert result.n_clients == 1
    assert result.clients[0].report.exit_code == 0
    assert result.mean_queue_delay_s == 0.0 or \
        result.delayed_requests >= 0
    assert result.chunk_cache_sharing == 0.0  # nothing to share


def test_chunk_cache_sharing_grows_with_fleet(image, config):
    result = simulate_fleet(image, 8, config)
    # the server rewrote each chunk once; 7/8 of requests were cache hits
    assert result.mc_chunks_built * 8 == result.mc_requests
    assert result.chunk_cache_sharing == pytest.approx(7 / 8)


def test_clients_identical_results(image, config):
    result = simulate_fleet(image, 4, config, stagger_s=0.01)
    outputs = {c.report.output for c in result.clients}
    assert len(outputs) == 1
    translations = {c.translations for c in result.clients}
    assert len(translations) == 1


def test_stagger_spreads_load(image, config):
    burst = simulate_fleet(image, 6, config, stagger_s=0.0)
    spread = simulate_fleet(image, 6, config, stagger_s=0.05)
    # simultaneous boot queues requests; staggering removes the queue
    assert spread.mean_queue_delay_s <= burst.mean_queue_delay_s
    assert burst.delayed_requests > 0
    assert burst.max_queue_delay_s > 0


def test_slow_link_raises_utilization(image):
    fast = simulate_fleet(
        image, 4, SoftCacheConfig(tcache_size=8192,
                                  link=LinkModel(bandwidth_bps=10e6)))
    slow = simulate_fleet(
        image, 4, SoftCacheConfig(tcache_size=8192,
                                  link=LinkModel(bandwidth_bps=0.5e6)))
    assert slow.total_transfer_s > fast.total_transfer_s
    assert slow.link_utilization > fast.link_utilization


def test_shared_mc_validation(image, config):
    other = build_workload("sensor", 0.1)
    mc = MemoryController(other)
    with pytest.raises(ValueError, match="different image"):
        SoftCacheSystem(image, config, shared_mc=mc)
    mc2 = MemoryController(image, granularity="proc")
    with pytest.raises(ValueError, match="granularity"):
        SoftCacheSystem(image, config, shared_mc=mc2)


def test_zero_clients_rejected(image, config):
    with pytest.raises(ValueError):
        simulate_fleet(image, 0, config)
