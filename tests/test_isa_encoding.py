"""Encode/decode round-trips and field patching for the ISA."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    DecodeError,
    EncodingError,
    Fmt,
    Insn,
    Op,
    SPECS,
    branch_target,
    decode,
    encode,
    jump_target,
    patch_branch_disp,
    patch_jump_target,
    sign_extend16,
    to_signed32,
)


def test_sign_extend16():
    assert sign_extend16(0) == 0
    assert sign_extend16(0x7FFF) == 32767
    assert sign_extend16(0x8000) == -32768
    assert sign_extend16(0xFFFF) == -1


def test_to_signed32():
    assert to_signed32(0) == 0
    assert to_signed32(0x7FFFFFFF) == 2**31 - 1
    assert to_signed32(0x80000000) == -(2**31)
    assert to_signed32(0xFFFFFFFF) == -1


@pytest.mark.parametrize("op", list(Op))
def test_roundtrip_zero_operands(op):
    insn = Insn(op)
    assert decode(encode(insn)) == insn


def test_roundtrip_r_format():
    insn = Insn(Op.ADD, rd=5, rs1=17, rs2=31)
    assert decode(encode(insn)) == insn


def test_roundtrip_i_format_signed():
    insn = Insn(Op.ADDI, rd=1, rs1=2, imm=-32768)
    assert decode(encode(insn)) == insn
    insn = Insn(Op.LW, rd=9, rs1=2, imm=32767)
    assert decode(encode(insn)) == insn


def test_roundtrip_i_format_unsigned():
    insn = Insn(Op.ORI, rd=3, rs1=3, imm=0xFFFF)
    assert decode(encode(insn)) == insn


def test_roundtrip_branch():
    insn = Insn(Op.BEQ, rs1=4, rs2=5, imm=-100)
    assert decode(encode(insn)) == insn


def test_roundtrip_jump():
    insn = Insn(Op.J, imm=(1 << 26) - 1)
    assert decode(encode(insn)) == insn


def test_roundtrip_trap():
    insn = Insn(Op.TRAP, rd=5, imm=0xFFFFF)
    assert decode(encode(insn)) == insn


def test_encode_range_errors():
    with pytest.raises(EncodingError):
        encode(Insn(Op.ADDI, rd=1, rs1=1, imm=40000))
    with pytest.raises(EncodingError):
        encode(Insn(Op.ORI, rd=1, rs1=1, imm=-1))
    with pytest.raises(EncodingError):
        encode(Insn(Op.J, imm=1 << 26))
    with pytest.raises(EncodingError):
        encode(Insn(Op.ADD, rd=32, rs1=0, rs2=0))
    with pytest.raises(EncodingError):
        encode(Insn(Op.TRAP, rd=64, imm=0))


def test_decode_error_on_undefined_opcode():
    # opcode 0x3E is unassigned
    with pytest.raises(DecodeError):
        decode(0x3E << 26)


def test_patch_jump_target():
    word = encode(Insn(Op.J, imm=0))
    patched = patch_jump_target(word, 0x0800_0040)
    assert jump_target(patched) == 0x0800_0040
    assert patched >> 26 == int(Op.J)


def test_patch_jump_alignment():
    word = encode(Insn(Op.JAL, imm=0))
    with pytest.raises(EncodingError):
        patch_jump_target(word, 0x0800_0041)


def test_patch_branch_disp():
    word = encode(Insn(Op.BNE, rs1=1, rs2=2, imm=0))
    site = 0x0001_0000
    target = 0x0001_0100
    patched = patch_branch_disp(word, site, target)
    assert branch_target(patched, site) == target
    ins = decode(patched)
    assert ins.op is Op.BNE and ins.rs1 == 1 and ins.rs2 == 2


def test_patch_branch_backward():
    word = encode(Insn(Op.BEQ, rs1=3, rs2=4, imm=0))
    site = 0x0001_0100
    target = 0x0001_0000
    patched = patch_branch_disp(word, site, target)
    assert branch_target(patched, site) == target


def test_patch_branch_out_of_range():
    word = encode(Insn(Op.BEQ, rs1=0, rs2=0, imm=0))
    with pytest.raises(EncodingError):
        patch_branch_disp(word, 0, 1 << 20)


_R_OPS = [op for op, s in SPECS.items() if s.fmt is Fmt.R]
_I_OPS = [op for op, s in SPECS.items() if s.fmt is Fmt.I]
_B_OPS = [op for op, s in SPECS.items() if s.fmt is Fmt.B]


@given(op=st.sampled_from(_R_OPS), rd=st.integers(0, 31),
       rs1=st.integers(0, 31), rs2=st.integers(0, 31))
def test_hypothesis_roundtrip_r(op, rd, rs1, rs2):
    insn = Insn(op, rd=rd, rs1=rs1, rs2=rs2)
    assert decode(encode(insn)) == insn


@given(op=st.sampled_from(_I_OPS), rd=st.integers(0, 31),
       rs1=st.integers(0, 31), imm=st.integers(-32768, 32767))
def test_hypothesis_roundtrip_i(op, rd, rs1, imm):
    if not SPECS[op].signed_imm:
        imm &= 0xFFFF
    insn = Insn(op, rd=rd, rs1=rs1, imm=imm)
    assert decode(encode(insn)) == insn


@given(op=st.sampled_from(_B_OPS), rs1=st.integers(0, 31),
       rs2=st.integers(0, 31), imm=st.integers(-32768, 32767))
def test_hypothesis_roundtrip_b(op, rs1, rs2, imm):
    insn = Insn(op, rs1=rs1, rs2=rs2, imm=imm)
    assert decode(encode(insn)) == insn


@given(word=st.integers(0, 0xFFFFFFFF))
def test_hypothesis_decode_reencode(word):
    """Any decodable word re-encodes to itself modulo unused bits."""
    try:
        insn = decode(word)
    except DecodeError:
        return
    # R-format has 11 unused low bits; all other formats are exact
    if insn.fmt is Fmt.R:
        assert encode(insn) == (word & 0xFFFFF800)
    else:
        assert encode(insn) == word


@given(site=st.integers(0, 0x3FFFF).map(lambda x: x * 4),
       target=st.integers(0, 0x3FFFF).map(lambda x: x * 4))
def test_hypothesis_branch_patch_roundtrip(site, target):
    word = encode(Insn(Op.BLT, rs1=7, rs2=8, imm=0))
    disp = (target - (site + 4)) >> 2
    if not -(1 << 15) <= disp < (1 << 15):
        with pytest.raises(EncodingError):
            patch_branch_disp(word, site, target)
    else:
        assert branch_target(patch_branch_disp(word, site, target),
                             site) == target
