"""Persistent trace cache and the parallel sweep helpers.

The contract: the first ``native_trace`` per (workload image, scale,
profile) pays one traced interpreter run and persists it; any later
call — same process or a fresh one (simulated here by clearing the
in-process memo) — replays from disk without touching the simulator.
"""

import numpy as np
import pytest

from repro.eval import common
from repro.eval.common import clear_trace_cache, native_trace
from repro.eval.parallel import fan_workloads, prewarm_traces
from repro.eval.table1 import table1
from repro.sim.machine import Machine


@pytest.fixture
def cache_dir(tmp_path):
    """A private, empty disk cache for one test."""
    prev = common._cache_dir_override
    common.set_trace_cache_dir(tmp_path)
    clear_trace_cache()
    yield tmp_path
    clear_trace_cache()
    common.set_trace_cache_dir(prev)


@pytest.fixture
def traced_calls(monkeypatch):
    """Counts live traced interpreter runs."""
    calls = {"n": 0}
    orig = Machine.run_traced

    def counting(self, *args, **kwargs):
        calls["n"] += 1
        return orig(self, *args, **kwargs)

    monkeypatch.setattr(Machine, "run_traced", counting)
    return calls


def test_fresh_process_hits_disk(cache_dir, traced_calls):
    first = native_trace("sensor", 0.02)
    assert traced_calls["n"] == 1
    assert len(list(cache_dir.glob("*.npz"))) == 1

    clear_trace_cache()  # drop the in-process memo: "fresh process"
    second = native_trace("sensor", 0.02)
    assert traced_calls["n"] == 1  # served from disk, no simulator run

    assert np.array_equal(first.trace, second.trace)
    assert second.trace.dtype == np.uint32
    assert first.instructions == second.instructions
    assert first.cycles == second.cycles
    assert first.output == second.output
    assert first.exit_code == second.exit_code
    assert first.dynamic_text_bytes == second.dynamic_text_bytes


def test_memo_layer_still_identity(cache_dir):
    assert native_trace("sensor", 0.02) is native_trace("sensor", 0.02)


def test_disk_clear_forces_rerun(cache_dir, traced_calls):
    native_trace("sensor", 0.02)
    clear_trace_cache(disk=True)
    assert not list(cache_dir.glob("*.npz"))
    native_trace("sensor", 0.02)
    assert traced_calls["n"] == 2


def test_version_bump_invalidates(cache_dir, traced_calls, monkeypatch):
    native_trace("sensor", 0.02)
    clear_trace_cache()
    monkeypatch.setattr(common, "_CACHE_VERSION", common._CACHE_VERSION + 1)
    native_trace("sensor", 0.02)
    assert traced_calls["n"] == 2  # stale entry unreachable, re-traced


def test_corrupt_entry_falls_back(cache_dir, traced_calls):
    native_trace("sensor", 0.02)
    (entry,) = cache_dir.glob("*.npz")
    entry.write_bytes(b"not an npz")
    clear_trace_cache()
    run = native_trace("sensor", 0.02)
    assert traced_calls["n"] == 2
    assert run.instructions > 0


def test_prewarm_then_replay(cache_dir, traced_calls):
    jobs = prewarm_traces([("hextobdd", 0.02), ("adpcm_enc", 0.02)],
                          processes=2)
    assert jobs == [("hextobdd", 0.02, False), ("adpcm_enc", 0.02, False)]
    warm_calls = traced_calls["n"]  # 0 if the pool forked, <=2 serial
    run = native_trace("hextobdd", 0.02)
    native_trace("adpcm_enc", 0.02)
    assert traced_calls["n"] == warm_calls  # both replayed from disk
    assert run.instructions > 0


def test_fan_workloads_matches_serial(cache_dir):
    workloads = ("hextobdd", "adpcm_enc")
    parallel_rows = table1(scale=0.02, workloads=workloads, processes=2)
    serial_rows = table1(scale=0.02, workloads=workloads)
    assert parallel_rows == serial_rows
    assert [r.workload for r in parallel_rows] == list(workloads)


def test_fan_workloads_serial_path(cache_dir):
    rows = fan_workloads(table1, ("hextobdd",), processes=1, scale=0.02)
    assert rows == table1(scale=0.02, workloads=("hextobdd",))
