"""Address-space layout helpers and Image geometry."""

import pytest

from repro.asm.image import Image, ProcSpan
from repro.layout import (
    ADDR_LIMIT,
    DATA_BASE,
    LOCAL_BASE,
    STACK_TOP,
    TEXT_BASE,
    align,
)
from repro.workloads import build_workload


def test_align():
    assert align(0, 8) == 0
    assert align(1, 8) == 8
    assert align(8, 8) == 8
    assert align(4097, 4096) == 8192
    with pytest.raises(ValueError):
        align(5, 3)


def test_map_ordering_and_jump_reach():
    assert LOCAL_BASE < TEXT_BASE < DATA_BASE < STACK_TOP <= ADDR_LIMIT
    # 26-bit word-addressed jumps reach the entire map
    assert ADDR_LIMIT <= (1 << 26) * 4


def test_image_geometry():
    image = build_workload("sensor", 0.05)
    assert image.text_base == TEXT_BASE
    assert image.text_end == TEXT_BASE + len(image.text)
    assert image.data_base == DATA_BASE
    assert image.bss_base >= image.data_end
    assert image.bss_base % 8 == 0
    assert image.heap_base >= image.bss_end
    assert image.in_text(image.entry)
    assert not image.in_text(DATA_BASE)


def test_word_at_bounds():
    image = build_workload("sensor", 0.05)
    assert image.word_at(image.text_base) is not None
    with pytest.raises(ValueError):
        image.word_at(0x1234)


def test_proc_span_lookup():
    image = build_workload("sensor", 0.05)
    main = image.proc_named("main")
    assert main.contains(main.addr)
    assert main.contains(main.end - 4)
    assert not main.contains(main.end)
    assert image.proc_at(main.addr + 8) is main
    assert image.proc_at(DATA_BASE) is None
    with pytest.raises(KeyError):
        image.proc_named("not_a_proc")


def test_proc_spans_are_disjoint_and_cover():
    image = build_workload("sensor", 0.05)
    procs = image.procs
    for a, b in zip(procs, procs[1:]):
        assert a.end == b.addr  # contiguous: linker emits no gaps
    assert procs[0].addr == image.text_base
    assert procs[-1].end == image.text_end


def test_data_object_sizes_cover_scalars():
    image = build_workload("sensor", 0.05)
    # every 4-byte object reported is word aligned and inside data/bss
    for addr, size in image.data_object_sizes.items():
        assert size > 0
        assert image.data_base <= addr < image.bss_end
    # known scalars exist with exact size 4
    gain = image.symbols["calib_gain"]
    assert image.data_object_sizes[gain] == 4


def test_symbol_name_reverse_lookup():
    image = build_workload("sensor", 0.05)
    addr = image.symbols["main"]
    assert image.symbol_name(addr) == "main"
    assert image.symbol_name(addr + 2) is None


def test_report_generator_sections():
    from repro.eval import section_titles
    titles = section_titles()
    assert "Table 1" in titles
    assert any("Figure 8" in t for t in titles)
    assert len(titles) == 10
