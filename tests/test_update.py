"""Live code update: versioned images, epoch barriers, hot-patch fleet.

The update claim in one sentence: publishing a layout-preserving new
image mid-run must leave the client in a state *observably identical*
to a clean run of the new image — under every fault preset, across a
fleet, and with no resident superblock ever fusing code from two
epochs (the torn-version invariant, audited by
:func:`check_consistency`).

Observable (text + data + exit + output) rather than architectural
state is the oracle for update differentials: the barrier's timing
shifts local RAM placement legitimately, so registers and heap bytes
may differ while every guest-visible effect must not.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FaultPlan, LinkModel, RetryPolicy
from repro.net.hub import HubChannel, hub_key, with_hub
from repro.fleet import simulate_fleet
from repro.sim import jitcache, run_native
from repro.softcache import (MemoryController, SoftCacheConfig,
                             SoftCacheSystem)
from repro.softcache.debug import (ConsistencyError, check_consistency,
                                   observable_state)
from repro.softcache.update import (UpdateSchedule, derive_patched_image,
                                    image_digest, load_image,
                                    parse_update_spec, save_image,
                                    swap_sites)
from repro.workloads import build_workload

WORKLOADS = ("sensor", "adpcm_enc")
SCALE = 0.05

_images = {}


def image_of(workload):
    if workload not in _images:
        _images[workload] = build_workload(workload, SCALE)
    return _images[workload]


def patched_of(workload, seed=1):
    key = (workload, "patched", seed)
    if key not in _images:
        _images[key] = derive_patched_image(image_of(workload),
                                            seed=seed)
    return _images[key]


def run_under(image, plan=None, policy=None, **kw):
    config = SoftCacheConfig(tcache_size=2048, record_timeline=False,
                             debug_poison=True, fault_plan=plan,
                             retry_policy=policy, **kw)
    system = SoftCacheSystem(image, config)
    report = system.run()
    return system, report


_clean = {}


def clean_patched_digest(workload):
    """Observable digest of a clean, fault-free run of the patched
    image — the oracle every update differential converges to."""
    if workload not in _clean:
        system, report = run_under(patched_of(workload))
        _clean[workload] = (observable_state(system), report)
    return _clean[workload]


# -- the patched image itself ------------------------------------------


def test_image_digest_is_content_addressed():
    a = image_of("sensor")
    assert image_digest(a) == image_digest(a)
    assert image_digest(a) == image_digest(build_workload("sensor",
                                                          SCALE))
    assert image_digest(a) != image_digest(image_of("adpcm_enc"))
    assert image_digest(a) != image_digest(patched_of("sensor"))


@pytest.mark.parametrize("workload", WORKLOADS)
def test_patched_image_is_behaviourally_equivalent(workload):
    """derive_patched_image only swaps adjacent independent ALU ops:
    different text bytes, identical layout, identical native
    behaviour — exactly what a hot patch needs."""
    base, patched = image_of(workload), patched_of(workload)
    assert bytes(patched.text) != bytes(base.text)
    assert patched.text_base == base.text_base
    assert len(patched.text) == len(base.text)
    assert patched.data == base.data
    assert patched.entry == base.entry
    assert swap_sites(base), "workload must offer swap sites"
    a = run_native(base)
    b = run_native(patched)
    assert b.output == a.output
    assert b.cpu.exit_code == a.cpu.exit_code


def test_save_load_image_roundtrip(tmp_path):
    image = patched_of("sensor")
    path = tmp_path / "patched.img"
    save_image(image, path)
    loaded = load_image(path)
    assert image_digest(loaded) == image_digest(image)
    assert loaded.name == image.name


# -- MC version store --------------------------------------------------


def test_publish_bumps_epoch_and_is_idempotent():
    mc = MemoryController(image_of("sensor"))
    patched = patched_of("sensor")
    assert mc.epoch == 0
    assert mc.publish(patched) == 1
    assert mc.epoch == 1
    assert mc.image is patched
    # republishing the current content is a no-op, not epoch 2
    assert mc.publish(patched_of("sensor")) == 1
    assert mc.stats.publish_noops == 1
    spans = mc.dirty_spans_between(0, 1)
    assert spans and all(a < b for a, b in spans)
    assert mc.epoch_of_digest(image_digest(patched)) == 1
    assert mc.epoch_of_digest("0" * 32) is None
    assert mc.knows_image(image_of("sensor"))
    assert mc.epoch_servable(0) and mc.epoch_servable(1)
    assert not mc.epoch_servable(7)


def test_publish_rejects_layout_change():
    # a different program has a different text size: not hot-patchable
    mc = MemoryController(image_of("sensor"))
    with pytest.raises(ValueError, match="layout-preserving"):
        mc.publish(image_of("adpcm_enc"))


def test_restart_rolls_back_non_durable_publish():
    mc = MemoryController(image_of("sensor"))
    durable = patched_of("sensor", seed=1)
    canary = patched_of("sensor", seed=2)
    mc.publish(durable)
    assert mc.publish(canary, durable=False) == 2
    mc.restart()
    assert mc.epoch == 1
    assert mc.image_digest == image_digest(durable)
    assert mc.stats.publish_rollbacks == 1
    # the retired canary epoch is gone; dirty-span queries crossing it
    # degrade to whole-text (conservative, never incomplete)
    assert not mc.epoch_servable(2)
    spans = mc.dirty_spans_between(0, 2)
    img = mc.image
    assert spans == ((img.text_base, img.text_end),)


# -- update specs ------------------------------------------------------


def test_parse_update_spec_variants(tmp_path):
    base = image_of("sensor")
    e = parse_update_spec("5000:patch", base)
    assert e.at_cycles == 5000 and e.durable
    assert e.digest == image_digest(patched_of("sensor"))
    e2 = parse_update_spec("6000:patch:3", base)
    assert e2.digest == image_digest(patched_of("sensor", seed=3))
    path = tmp_path / "img.bin"
    save_image(patched_of("sensor"), path)
    e3 = parse_update_spec(f"7000:@{path}", base)
    assert e3.digest == e.digest
    e4 = parse_update_spec("8000:~patch", base)
    assert not e4.durable
    for bad in ("nocolon", "x:patch", "100:@/no/such/file"):
        with pytest.raises((ValueError, OSError)):
            parse_update_spec(bad, base)


def test_schedule_rejects_duplicate_digest():
    base = image_of("sensor")
    with pytest.raises(ValueError):
        UpdateSchedule.from_specs(("100:patch", "200:patch"), base)


# -- the core differential ---------------------------------------------


@pytest.mark.parametrize("workload", WORKLOADS)
def test_mid_run_update_converges_to_clean_patched_run(workload):
    digest, clean_report = clean_patched_digest(workload)
    system, report = run_under(image_of(workload),
                               update_at=("20000:patch",))
    s = system.stats
    assert s.update_barriers >= 1
    assert s.update_invalidated_blocks > 0
    assert s.update_text_patched_words > 0
    assert system.mc.epoch == 1
    assert system.cc._epoch == 1
    assert observable_state(system) == digest
    assert report.output == clean_report.output
    assert report.exit_code == clean_report.exit_code
    assert check_consistency(system.cc) > 0


def test_no_publish_is_bit_identical_to_seed_behaviour():
    """The whole machinery must be invisible when unused: a run with
    no update schedule matches a run built before the feature existed
    (architecturally, not just observably)."""
    from repro.softcache.debug import architectural_state
    a, _ = run_under(image_of("sensor"))
    b, _ = run_under(image_of("sensor"), update_at=())
    assert architectural_state(a) == architectural_state(b)


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("preset", ("lossy", "chaos"))
def test_update_under_fault_presets(workload, preset):
    digest, clean_report = clean_patched_digest(workload)
    plan = getattr(FaultPlan, preset)(seed=3)
    system, report = run_under(image_of(workload), plan,
                               RetryPolicy(max_attempts=3, jitter=0.0),
                               update_at=("20000:patch",))
    assert system.faults.fault_stats.attempts \
        > system.faults.fault_stats.delivered
    assert system.cc._epoch == 1
    assert observable_state(system) == digest
    assert report.output == clean_report.output
    assert check_consistency(system.cc) > 0


@pytest.mark.parametrize("workload", WORKLOADS)
def test_update_across_partition_and_mc_restart(workload):
    """The worst composite: the publish lands while the link is
    partitioned and the MC crash-restarts right after — the barrier
    must still install exactly the new version."""
    digest, clean_report = clean_patched_digest(workload)
    plan = FaultPlan(seed=5, drop_reply_p=0.02,
                     partitions=((25, 70),), mc_crash_epochs=(80,))
    system, report = run_under(image_of(workload), plan,
                               RetryPolicy(max_attempts=3, jitter=0.0),
                               update_at=("20000:patch",),
                               prefetch_depth=2)
    assert system.faults.fault_stats.mc_restarts == 1
    assert system.cc._epoch == 1
    assert not system.cc.pending_misses
    assert observable_state(system) == digest
    assert report.output == clean_report.output
    assert check_consistency(system.cc) > 0


def test_non_durable_publish_survives_or_rolls_back_cleanly():
    """An MC crash after a non-durable publish rolls the store back;
    the schedule re-asserts the version so the run still converges to
    the patched image."""
    digest, clean_report = clean_patched_digest("sensor")
    plan = FaultPlan(seed=2, mc_crash_epochs=(60,))
    system, report = run_under(image_of("sensor"), plan,
                               RetryPolicy(max_attempts=3, jitter=0.0),
                               update_at=("20000:~patch",))
    assert system.faults.fault_stats.mc_restarts == 1
    assert system.cc._epoch == system.mc.epoch
    assert observable_state(system) == digest
    assert report.output == clean_report.output
    assert check_consistency(system.cc) > 0


# -- epoch audit (torn-version invariant) ------------------------------


def test_epoch_audit_catches_mixed_resident_epochs():
    system, _ = run_under(image_of("sensor"),
                          update_at=("20000:patch",))
    resident = list(system.cc.tcache.order)
    assert resident, "run must leave resident blocks"
    resident[0].epoch = 0  # simulate a torn update
    with pytest.raises(ConsistencyError, match="mixes image epochs"):
        check_consistency(system.cc)


def test_epoch_audit_catches_controller_lag():
    system, _ = run_under(image_of("sensor"),
                          update_at=("20000:patch",))
    for block in system.cc.tcache.order:
        block.epoch = 0
    with pytest.raises(ConsistencyError, match="observes epoch"):
        check_consistency(system.cc)


def test_epoch_audit_catches_retired_pending_miss():
    system, _ = run_under(image_of("sensor"))
    cc = system.cc
    cc.channel.down = True  # parked misses are only legal when down
    cc.pending_misses.append(0x9999)
    cc.pending_miss_epochs[0x9999] = 41  # never-published epoch
    with pytest.raises(ConsistencyError, match="retired epoch"):
        check_consistency(cc)


# -- persistent caches across epochs -----------------------------------


def test_jit_artifact_key_is_epoch_namespaced():
    words = (1, 2, 3)
    legacy = jitcache.artifact_key("sig", words)
    assert "-" not in legacy  # unversioned runs keep bare-hex keys
    tagged = jitcache.artifact_key("sig", words, "abc123")
    assert tagged.startswith("iabc123-")
    assert jitcache.artifact_key("sig", words, "def456") != tagged
    assert jitcache.artifact_path(tagged).name \
        == f"{jitcache.ARTIFACT_PREFIX}{tagged}{jitcache.ARTIFACT_SUFFIX}"


def test_jit_sweep_retires_dead_image_tags(tmp_path):
    def touch(digest):
        p = tmp_path / (jitcache.ARTIFACT_PREFIX + digest
                        + jitcache.ARTIFACT_SUFFIX)
        p.write_text("x")
        return p

    legacy = touch("cafe01")
    live = touch("iaaa-cafe02")
    dead = touch("ibbb-cafe03")
    removed = jitcache.sweep_stale(tmp_path, image_tags={"aaa"})
    assert removed == 1
    assert legacy.exists() and live.exists()
    assert not dead.exists()


def test_trace_cache_key_sees_image_content():
    from repro.eval.common import _trace_key
    base = image_of("sensor")
    patched = patched_of("sensor")
    k0 = _trace_key("sensor", SCALE, False, base, 10**9)
    k1 = _trace_key("sensor", SCALE, False, patched, 10**9)
    assert k0 != k1, ("trace cache must not serve a stale trace for "
                      "a republished image")


# -- fleet rollout -----------------------------------------------------


def test_fleet_rollout_wavefront():
    image = image_of("sensor")
    config = SoftCacheConfig(tcache_size=2048, record_timeline=False,
                             update_at=("20000:patch",))
    r = simulate_fleet(image, 6, config, stagger_s=2e-3)
    assert r.final_epoch == 1
    assert r.clients_converged == 6
    assert len(r.rollout_wavefront_s) == 6
    assert r.rollout_wavefront_s == sorted(r.rollout_wavefront_s)
    assert r.rollout_makespan_s == r.rollout_wavefront_s[-1]
    assert all(c.final_epoch == 1 for c in r.clients)
    # staggered boots -> staggered barrier times
    assert r.rollout_wavefront_s[-1] > r.rollout_wavefront_s[0]


def test_fleet_without_update_has_empty_wavefront():
    image = image_of("sensor")
    config = SoftCacheConfig(tcache_size=2048, record_timeline=False)
    r = simulate_fleet(image, 3, config)
    assert r.final_epoch == 0
    assert r.rollout_wavefront_s == []
    assert r.rollout_makespan_s == 0.0


# -- multi-tenant hub --------------------------------------------------


def test_hub_keys_are_group_and_epoch_scoped():
    mc = MemoryController(image_of("sensor"))
    assert hub_key(mc, 0x100) == 0x100  # bit-identity for legacy runs
    mc.last_served_epoch = 2
    assert hub_key(mc, 0x100) == ("default", 2, 0x100)
    tenant = MemoryController(image_of("sensor"), group="a")
    assert hub_key(tenant, 0x100) == ("a", 0, 0x100)


def test_shared_hub_isolates_tenant_groups():
    """Two tenants (different programs, different groups) behind one
    hub: each converges to its own correct output and no hub entry
    ever crosses groups."""
    near, far = LinkModel(), LinkModel(bandwidth_bps=2e6,
                                       latency_s=5e-3)
    hub = HubChannel(near, far, 64 * 1024)
    systems = {}
    for group, workload in (("a", "sensor"), ("b", "adpcm_enc")):
        mc = MemoryController(image_of(workload), group=group)
        config = SoftCacheConfig(tcache_size=2048,
                                 record_timeline=False)
        system = SoftCacheSystem(image_of(workload), config,
                                 shared_mc=mc)
        with_hub(system, hub=hub)
        systems[group] = system
    reports = {g: s.run() for g, s in systems.items()}
    for group, workload in (("a", "sensor"), ("b", "adpcm_enc")):
        native = run_native(image_of(workload))
        assert reports[group].output == native.output_text
        assert reports[group].exit_code == (native.cpu.exit_code or 0)
    keys = list(hub._cache._entries)
    assert keys, "hub must have cached chunks"
    assert all(isinstance(k, tuple) and k[0] in ("a", "b")
               for k in keys)
    assert {k[0] for k in keys} == {"a", "b"}


# -- epoch-straddling retries (hypothesis) -----------------------------


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       delay_p=st.sampled_from((0.0, 0.05, 0.15)),
       dup_p=st.sampled_from((0.0, 0.1)))
def test_epoch_straddling_retries_install_exactly_one_version(
        seed, delay_p, dup_p):
    """Delays and duplicated replies across the publish boundary: a
    retry raced with the epoch bump must resolve to exactly one
    version — the client converges to the patched image with a
    uniform-epoch resident set and reconciled counters."""
    digest, clean_report = clean_patched_digest("sensor")
    plan = FaultPlan(seed=seed, drop_request_p=0.04,
                     drop_reply_p=0.04, duplicate_p=dup_p,
                     delay_p=delay_p, delay_s=2e-3)
    system, report = run_under(image_of("sensor"), plan,
                               RetryPolicy(max_attempts=3, jitter=0.0),
                               update_at=("20000:patch",))
    cc = system.cc
    assert cc._epoch == 1
    assert observable_state(system) == digest
    assert report.output == clean_report.output
    assert report.exit_code == clean_report.exit_code
    assert check_consistency(cc) > 0
    epochs = {b.epoch for b in cc.tcache.order}
    epochs |= {b.epoch for b in cc.tcache.pinned_blocks}
    assert epochs <= {1}, f"resident set spans epochs {epochs}"
    assert not cc.pending_misses and not cc.pending_miss_epochs
    s = system.stats
    assert s.update_barriers >= 1
    assert s.update_invalidated_blocks + s.update_restamped_blocks \
        >= s.update_barriers
    fs = system.faults.fault_stats
    assert fs.attempts >= fs.delivered
