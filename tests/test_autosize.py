"""Profiler-guided tcache sizing (``--tcache-size auto``)."""

import pytest

from repro.profiling import (
    auto_tcache_size,
    estimate_tcache_size,
    measure_rewritten_bytes,
    profile_image,
)
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def sensor_image():
    return build_workload("sensor", 0.05)


def test_estimate_shape(sensor_image):
    est = estimate_tcache_size(sensor_image)
    assert est.tcache_size % 1024 == 0
    assert est.tcache_size >= 1024
    assert est.hot_procs  # the 90% rule always names someone
    assert est.rewritten_hot_bytes >= est.hot_code_bytes  # expansion
    assert est.tcache_size >= est.rewritten_hot_bytes
    assert auto_tcache_size(sensor_image) == est.tcache_size


def test_estimate_reuses_profile(sensor_image):
    profile = profile_image(sensor_image)
    est = estimate_tcache_size(sensor_image, profile=profile)
    assert est.tcache_size == estimate_tcache_size(
        sensor_image).tcache_size


def test_rewritten_bytes_measured_through_chunker(sensor_image):
    profile = profile_image(sensor_image)
    hot = [e.proc for e in profile.hot_procs(0.90)]
    block = measure_rewritten_bytes(sensor_image, hot,
                                    granularity="block")
    ebb = measure_rewritten_bytes(sensor_image, hot,
                                  granularity="ebb")
    static = sum(p.end - p.addr for p in hot)
    # rewriting only adds words; granularities differ in how many
    assert block >= static
    assert ebb >= static
    assert block != static or ebb != static


def test_threshold_widens_the_hot_set(sensor_image):
    narrow = estimate_tcache_size(sensor_image, threshold=0.50)
    wide = estimate_tcache_size(sensor_image, threshold=0.99)
    assert len(wide.hot_procs) >= len(narrow.hot_procs)
    assert wide.tcache_size >= narrow.tcache_size


def test_minimum_floors_tiny_profiles(sensor_image):
    est = estimate_tcache_size(sensor_image, threshold=0.01,
                               minimum=16 * 1024)
    assert est.tcache_size >= 16 * 1024


@pytest.mark.parametrize("workload", ["sensor", "adpcm_enc"])
def test_auto_size_within_one_sweep_step_of_best(workload):
    """The fig6/fig8 acceptance: auto lands within one power-of-two
    sweep step of the best fixed size, and performs within 3% of the
    sweep's best cycle count."""
    image = build_workload(workload, 0.05)
    ladder = [1024, 2048, 4096, 8192, 16384]
    cycles = {}
    for size in ladder:
        system = SoftCacheSystem(image,
                                 SoftCacheConfig(tcache_size=size))
        cycles[size] = system.run().cycles
    floor = min(cycles.values())
    # the knee: smallest fixed size within 2% of the asymptote
    best = next(s for s in ladder if cycles[s] <= 1.02 * floor)

    auto = auto_tcache_size(image)
    system = SoftCacheSystem(image, SoftCacheConfig(tcache_size=auto))
    auto_cycles = system.run().cycles

    import math
    step_distance = abs(math.log2(auto) - math.log2(best))
    assert step_distance <= 1.0, (
        f"{workload}: auto={auto}B is {step_distance:.2f} sweep "
        f"steps from the knee at {best}B")
    assert auto_cycles <= 1.03 * floor, (
        f"{workload}: auto={auto}B runs {auto_cycles} cycles vs "
        f"sweep floor {floor}")
