"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.asm import assemble_and_link
from repro.eval.common import set_trace_cache_dir
from repro.lang import compile_program
from repro.sim import Machine, MachineConfig, run_native
from repro.softcache import SoftCacheConfig, SoftCacheSystem


@pytest.fixture(autouse=True, scope="session")
def _hermetic_trace_cache(tmp_path_factory):
    """Keep the persistent trace cache out of the repo during tests."""
    set_trace_cache_dir(tmp_path_factory.mktemp("traces"))
    yield
    set_trace_cache_dir(None)


def run_asm(source: str, max_instructions: int = 5_000_000) -> Machine:
    """Assemble, link and run *source* natively; return the machine."""
    image = assemble_and_link(source, "test")
    machine = Machine(image)
    machine.run(max_instructions)
    return machine


def run_minc(source: str, max_instructions: int = 20_000_000,
             **compile_kwargs) -> Machine:
    """Compile and natively run a MinC program."""
    image = compile_program(source, "test", **compile_kwargs)
    machine = Machine(image)
    machine.run(max_instructions)
    return machine


def run_both(image, config: SoftCacheConfig | None = None,
             max_instructions: int = 20_000_000):
    """Run *image* natively and under a SoftCache; return both."""
    native = run_native(image, max_instructions=max_instructions)
    config = config or SoftCacheConfig(debug_poison=True)
    system = SoftCacheSystem(image, config)
    report = system.run(max_instructions)
    return native, report, system


def assert_equivalent(image, config: SoftCacheConfig,
                      max_instructions: int = 20_000_000):
    """Assert SoftCache execution is architecturally identical to
    native: same output, same exit code."""
    native, report, system = run_both(image, config, max_instructions)
    assert report.output == native.output_text, (
        f"output diverged under {config}")
    assert report.exit_code == (native.cpu.exit_code or 0)
    return native, report, system


@pytest.fixture
def tiny_loop_image():
    """A small program with a loop, calls and branches."""
    src = r"""
int helper(int x) { return x * 3 + 1; }

int main(void) {
    int i;
    int acc = 0;
    for (i = 0; i < 25; i++) {
        if (i % 3 == 0) acc += helper(i);
        else acc -= i;
    }
    __putint(acc);
    __putchar(10);
    return 0;
}
"""
    return compile_program(src, "tiny_loop")
