"""Memory regions: mapping, permissions, alignment, hooks."""

import pytest

from repro.sim import Machine, MachineConfig, Memory, MemoryFault, Region
from repro.workloads import build_workload


def make_mem():
    mem = Memory()
    mem.map_region(Region("ram", 0x1000, 0x1000, executable=True))
    mem.map_region(Region("rom", 0x4000, 0x100, writable=False))
    return mem


def test_word_roundtrip():
    mem = make_mem()
    mem.write_word(0x1000, 0xDEADBEEF)
    assert mem.read_word(0x1000) == 0xDEADBEEF


def test_half_byte_roundtrip():
    mem = make_mem()
    mem.write_half(0x1002, 0xBEEF)
    assert mem.read_half(0x1002) == 0xBEEF
    mem.write_byte(0x1005, 0xAB)
    assert mem.read_byte(0x1005) == 0xAB


def test_little_endian_layout():
    mem = make_mem()
    mem.write_word(0x1010, 0x11223344)
    assert mem.read_byte(0x1010) == 0x44
    assert mem.read_byte(0x1013) == 0x11
    assert mem.read_half(0x1010) == 0x3344


def test_misaligned_faults():
    mem = make_mem()
    with pytest.raises(MemoryFault):
        mem.read_word(0x1001)
    with pytest.raises(MemoryFault):
        mem.write_word(0x1002, 0)
    with pytest.raises(MemoryFault):
        mem.read_half(0x1001)


def test_unmapped_fault():
    mem = make_mem()
    with pytest.raises(MemoryFault):
        mem.read_word(0x9000)
    with pytest.raises(MemoryFault):
        mem.read_byte(0x0FFF)


def test_write_to_readonly_faults():
    mem = make_mem()
    with pytest.raises(MemoryFault):
        mem.write_word(0x4000, 1)
    with pytest.raises(MemoryFault):
        mem.write_byte(0x4000, 1)


def test_overlap_rejected():
    mem = make_mem()
    with pytest.raises(ValueError):
        mem.map_region(Region("bad", 0x1800, 0x1000))


def test_bulk_access_and_cstring():
    mem = make_mem()
    mem.write_bytes(0x1100, b"hello\0world")
    assert mem.read_bytes(0x1100, 5) == b"hello"
    assert mem.read_cstring(0x1100) == "hello"


def test_bulk_cross_region_rejected():
    mem = make_mem()
    with pytest.raises(MemoryFault):
        mem.read_bytes(0x1FFC, 8)


def test_code_write_hook_fires_on_executable_only():
    mem = make_mem()
    events = []
    mem.code_write_hooks.append(lambda a, n: events.append((a, n)))
    mem.write_word(0x1000, 1)       # executable ram
    mem.write_bytes(0x1100, b"abcd")
    assert events == [(0x1000, 4), (0x1100, 4)]
    # data-only region write does not fire
    mem2 = Memory()
    mem2.map_region(Region("data", 0x2000, 0x100))
    mem2.code_write_hooks.append(lambda a, n: events.append("bad"))
    mem2.write_word(0x2000, 1)
    assert "bad" not in events


def test_region_named():
    mem = make_mem()
    assert mem.region_named("rom").base == 0x4000
    with pytest.raises(KeyError):
        mem.region_named("nope")


def test_machine_memory_map():
    image = build_workload("sensor", scale=0.1)
    machine = Machine(image, MachineConfig(local_ram_size=32 * 1024))
    names = {r.name for r in machine.mem.regions}
    assert names == {"local", "text", "data", "stack"}
    assert machine.mem.region_named("text").executable
    # data region covers data + bss + heap
    data = machine.mem.region_named("data")
    assert data.size >= len(image.data) + image.bss_size


def test_machine_softcache_mode_text_not_executable():
    image = build_workload("sensor", scale=0.1)
    machine = Machine(image, MachineConfig(text_executable=False))
    assert not machine.mem.region_named("text").executable
