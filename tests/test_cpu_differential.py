"""Differential testing of CPU ALU semantics.

Hypothesis generates random straight-line ALU programs; the simulator
executes them and the results are compared register-by-register
against an independent golden model written directly from the ISA
spec.  Any divergence in wrapping, sign extension, shift masking or
division conventions shows up here.
"""

from hypothesis import given, settings, strategies as st

from repro.asm import assemble_and_link
from repro.isa import Insn, Op, encode
from repro.sim import Machine

MASK32 = 0xFFFFFFFF

_ALU_R = [Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.NOR, Op.SLT,
          Op.SLTU, Op.SLL, Op.SRL, Op.SRA, Op.MUL, Op.DIV, Op.REM]
_ALU_I = [Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI, Op.SLTIU,
          Op.SLLI, Op.SRLI, Op.SRAI, Op.LUI]

# registers we let programs touch (avoid zero/ra/sp/fp/at/kt)
_REGS = list(range(8, 16)) + list(range(16, 24))


def _signed(x):
    return x - 0x100000000 if x & 0x80000000 else x


def golden_alu(op, a, b):
    """Independent semantics, straight from docs/ISA.md."""
    if op is Op.ADD:
        return (a + b) & MASK32
    if op is Op.SUB:
        return (a - b) & MASK32
    if op is Op.AND:
        return a & b
    if op is Op.OR:
        return a | b
    if op is Op.XOR:
        return a ^ b
    if op is Op.NOR:
        return ~(a | b) & MASK32
    if op is Op.SLT:
        return int(_signed(a) < _signed(b))
    if op is Op.SLTU:
        return int(a < b)
    if op is Op.SLL:
        return (a << (b & 31)) & MASK32
    if op is Op.SRL:
        return a >> (b & 31)
    if op is Op.SRA:
        return (_signed(a) >> (b & 31)) & MASK32
    if op is Op.MUL:
        return (a * b) & MASK32
    if op is Op.DIV:
        if b == 0:
            return MASK32
        q = abs(_signed(a)) // abs(_signed(b))
        if (_signed(a) < 0) != (_signed(b) < 0):
            q = -q
        return q & MASK32
    if op is Op.REM:
        if b == 0:
            return a
        r = abs(_signed(a)) % abs(_signed(b))
        if _signed(a) < 0:
            r = -r
        return r & MASK32
    raise AssertionError(op)


def golden_alui(op, a, imm):
    if op is Op.ADDI:
        return (a + imm) & MASK32
    if op is Op.ANDI:
        return a & imm
    if op is Op.ORI:
        return a | imm
    if op is Op.XORI:
        return a ^ imm
    if op is Op.SLTI:
        return int(_signed(a) < imm)
    if op is Op.SLTIU:
        return int(a < imm)
    if op is Op.SLLI:
        return (a << (imm & 31)) & MASK32
    if op is Op.SRLI:
        return a >> (imm & 31)
    if op is Op.SRAI:
        return (_signed(a) >> (imm & 31)) & MASK32
    if op is Op.LUI:
        return (imm << 16) & MASK32
    raise AssertionError(op)


@st.composite
def alu_programs(draw):
    """(instructions, seeds): a straight-line random ALU program."""
    seeds = {reg: draw(st.integers(0, MASK32)) for reg in _REGS}
    instructions = []
    for _ in range(draw(st.integers(1, 30))):
        if draw(st.booleans()):
            op = draw(st.sampled_from(_ALU_R))
            instructions.append(Insn(
                op, rd=draw(st.sampled_from(_REGS)),
                rs1=draw(st.sampled_from(_REGS)),
                rs2=draw(st.sampled_from(_REGS))))
        else:
            op = draw(st.sampled_from(_ALU_I))
            imm = (draw(st.integers(0, 0xFFFF))
                   if op in (Op.ANDI, Op.ORI, Op.XORI, Op.SLTIU,
                             Op.SLLI, Op.SRLI, Op.SRAI, Op.LUI)
                   else draw(st.integers(-32768, 32767)))
            instructions.append(Insn(
                op, rd=draw(st.sampled_from(_REGS)),
                rs1=draw(st.sampled_from(_REGS)), imm=imm))
    return instructions, seeds


_HARNESS = """
    .global main
main:
    li a0, 0
    ret
"""


@settings(max_examples=120, deadline=None)
@given(alu_programs())
def test_alu_differential(program):
    instructions, seeds = program
    image = assemble_and_link(_HARNESS)
    machine = Machine(image)
    cpu = machine.cpu

    # write the program into spare text via the machine's memory
    base = image.text_end - 0  # append is not possible; use local RAM
    base = 0x0001_0000
    words = [encode(ins) for ins in instructions]
    words.append(encode(Insn(Op.HALT)))
    machine.mem.write_bytes(base, b"".join(
        w.to_bytes(4, "little") for w in words))

    # golden model
    regs = {reg: value for reg, value in seeds.items()}
    for ins in instructions:
        spec = ins.op
        if spec in _ALU_R:
            a = regs[ins.rs1] if ins.rs1 in regs else 0
            b = regs[ins.rs2] if ins.rs2 in regs else 0
            regs[ins.rd] = golden_alu(spec, a, b)
        else:
            a = regs[ins.rs1] if ins.rs1 in regs else 0
            imm = ins.imm & (MASK32 if spec in (
                Op.ANDI, Op.ORI, Op.XORI, Op.SLTIU, Op.SLLI, Op.SRLI,
                Op.SRAI, Op.LUI) else -1)
            regs[ins.rd] = golden_alui(spec, a, ins.imm)

    # simulator
    for reg, value in seeds.items():
        cpu.set_reg(reg, value)
    cpu.pc = base
    cpu.run(max_instructions=1000)

    for reg in _REGS:
        assert cpu.regs[reg] == regs[reg], (
            f"r{reg} diverged: sim={cpu.regs[reg]:#x} "
            f"golden={regs[reg]:#x}\n"
            f"program={[str(i) for i in instructions]}")
