"""Machine layer: syscalls, output, cost model plumbing."""

import pytest

from repro.sim import CostModel, Machine, MachineConfig, SimError
from repro.isa import Op

from conftest import run_asm


def test_exit_code_propagates():
    machine = run_asm("""
    .global main
main:
    li a0, 42
    ret
""")
    assert machine.cpu.exit_code == 42


def test_putint_negative_and_zero():
    machine = run_asm("""
    .global main
main:
    li a0, -123
    syscall putint
    li a0, 0
    syscall putint
    li a0, 0
    ret
""")
    assert machine.output_text == "-1230"


def test_putchar_and_puts():
    machine = run_asm("""
    .global main
main:
    li a0, 'H'
    syscall putchar
    la a0, msg
    syscall puts
    li a0, 0
    ret
    .data
msg: .asciiz "i!"
""")
    assert machine.output_text == "Hi!"


def test_writehex():
    machine = run_asm("""
    .global main
main:
    li a0, 0xDEADBEEF
    syscall writehex
    li a0, 0
    ret
""")
    assert machine.output_text == "deadbeef"


def test_getcycles_increases():
    machine = run_asm("""
    .global main
main:
    syscall getcycles
    mv t0, a0
    nop
    nop
    syscall getcycles
    sub a0, a0, t0
    syscall putint
    li a0, 0
    ret
""")
    assert int(machine.output_text) > 0


def test_unknown_syscall_raises():
    with pytest.raises(SimError, match="syscall"):
        run_asm(".global main\nmain: syscall 40\nret")


def test_invalidate_hook_called():
    from repro.asm import assemble_and_link
    image = assemble_and_link("""
    .global main
main:
    li a0, 0x8000
    li a1, 64
    syscall invalidate
    li a0, 0
    ret
""")
    machine = Machine(image)
    calls = []
    machine.invalidate_hook = lambda a, n: calls.append((a, n))
    machine.run()
    assert calls == [(0x8000, 64)]


def test_custom_cost_model():
    costs = CostModel(op_cycles={op: 5 for op in Op})
    image_src = """
    .global main
main:
    nop
    nop
    li a0, 0
    ret
"""
    from repro.asm import assemble_and_link
    image = assemble_and_link(image_src)
    machine = Machine(image, MachineConfig(costs=costs))
    machine.run()
    # syscall/trap closures charge 1 regardless; all others cost 5
    assert machine.cpu.cycles == 5 * (machine.cpu.icount - 1) + 1


def test_cost_model_with_override():
    base = CostModel()
    fast = base.with_(mc_service_cycles=0, trap_overhead_cycles=1)
    assert fast.mc_service_cycles == 0
    assert fast.cpu_hz == base.cpu_hz
    assert base.mc_service_cycles == 100  # original untouched


def test_cycles_to_seconds():
    costs = CostModel(cpu_hz=100e6)
    assert costs.cycles_to_seconds(100_000_000) == pytest.approx(1.0)


def test_local_ram_too_large_rejected():
    from repro.workloads import build_workload
    image = build_workload("sensor", 0.05)
    with pytest.raises(ValueError):
        Machine(image, MachineConfig(local_ram_size=1 << 30))
