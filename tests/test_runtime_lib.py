"""The MinC runtime library and cold utility library, exercised on
the simulator (these functions are linked into every workload)."""

import zlib

import pytest

from conftest import run_minc


def run_main(body, **kw):
    return run_minc(f"int main(void) {{ {body} return 0; }}",
                    **kw).output_text


def test_memcpy_memmove_memcmp():
    out = run_main(r"""
    char a[8]; char b[8];
    int i;
    for (i = 0; i < 8; i++) a[i] = i + 1;
    memcpy(b, a, 8);
    __putint(memcmp(a, b, 8));
    memmove(a + 2, a, 4);          // overlapping, forward
    __putchar(32);
    for (i = 0; i < 8; i++) __putint(a[i]);
""")
    assert out == "0 12123478"


def test_memset_and_strings():
    out = run_main(r"""
    char buf[16];
    memset(buf, 7, 8);
    __putint(buf[0] + buf[7]);
    strcpy(buf, "abc");
    __putchar(32);
    __putint(strcmp(buf, "abc"));
    __putint(strcmp(buf, "abd") < 0);
    __putint(strlen(buf));
""")
    assert out == "14 013"


def test_int_helpers():
    out = run_main(r"""
    __putint(abs_i(-9)); __putchar(32);
    __putint(min_i(3, -2)); __putchar(32);
    __putint(max_i(3, -2)); __putchar(32);
    __putint(clamp_i(50, 0, 10)); __putchar(32);
    __putint(isqrt(169)); __putchar(32);
    __putint(isqrt(170));
""")
    assert out == "9 -2 3 10 13 13"


def test_rand_deterministic_and_bounded():
    out1 = run_main(r"""
    int i;
    srand(5);
    for (i = 0; i < 4; i++) { __putint(rand_range(10)); }
""")
    out2 = run_main(r"""
    int i;
    srand(5);
    for (i = 0; i < 4; i++) { __putint(rand_range(10)); }
""")
    assert out1 == out2
    assert all(c.isdigit() for c in out1)


def test_sort_and_bsearch():
    out = run_main(r"""
    int v[7] = { 5, -1, 9, 0, 5, 2, 8 };
    int i;
    sort_ints(v, 7);
    for (i = 0; i < 7; i++) { __putint(v[i]); __putchar(32); }
    __putint(bsearch_int(v, 7, 8));
    __putint(bsearch_int(v, 7, 7));
""")
    assert out == "-1 0 2 5 5 8 9 5-1"


def test_sin_table_symmetry():
    out = run_main(r"""
    __putint(sin_q15(0)); __putchar(32);
    __putint(sin_q15(64)); __putchar(32);
    __putint(sin_q15(128)); __putchar(32);
    __putint(sin_q15(192) + sin_q15(64)); __putchar(32);
    __putint(cos_q15(0));
""")
    first = out.split()
    assert first[0] == "0"
    assert int(first[1]) > 32000       # ~1.0 in Q15
    assert first[2] == "0"             # sin(pi)
    assert first[3] == "0"             # odd symmetry
    assert int(first[4]) > 32000


def test_crc32_matches_zlib():
    out = run_main(r"""
    char data[8] = "SOFTCACH";
    __putint(crc32(data, 8));
""")
    assert int(out) & 0xFFFFFFFF == zlib.crc32(b"SOFTCACH")


def test_adler32_matches_zlib():
    out = run_main(r"""
    char data[6] = "adler!";
    __putint(adler32(data, 6));
""")
    assert int(out) & 0xFFFFFFFF == zlib.adler32(b"adler!")


def test_base64_encode():
    import base64
    out = run_main(r"""
    char data[5] = "hello";
    char enc[12];
    base64_encode(data, 5, enc);
    __puts(enc);
""")
    assert out == base64.b64encode(b"hello").decode()


def test_fixed_point_math():
    out = run_main(r"""
    __putint(fx_mul(3 << 16, 2 << 16) >> 16); __putchar(32);
    __putint(fx_div(10 << 16, 4 << 16));      __putchar(32);
    __putint(fx_log2(8 << 16) >> 16);         __putchar(32);
    __putint(gcd(84, 36));                    __putchar(32);
    __putint(ipow(2, 10));
""")
    parts = out.split()
    assert parts[0] == "6"
    assert int(parts[1]) == int(2.5 * 65536)
    assert parts[2] == "3"
    assert parts[3] == "12"
    assert parts[4] == "1024"


def test_itoa_atoi_roundtrip():
    out = run_main(r"""
    char buf[12];
    itoa10(-2147483647, buf);
    __puts(buf); __putchar(32);
    __putint(atoi10(buf) == -2147483647);
""")
    assert out == "-2147483647 1"


def test_calendar():
    out = run_main(r"""
    __putint(is_leap_year(2000)); __putint(is_leap_year(1900));
    __putint(is_leap_year(2004)); __putchar(32);
    __putint(day_of_year(2001, 12, 31)); __putchar(32);
    __putint(day_of_year(2004, 12, 31));
""")
    assert out == "101 365 366"


def test_libextra_self_test_passes():
    """The library's own built-in self test runs green on the sim."""
    out = run_minc("""
int main(void) {
    __putint(self_test());
    return 0;
}
""").output_text
    assert out == "0"


def test_report_error_and_assert():
    machine = run_minc("""
int main(void) {
    report_error("io", 7);
    assert_true(1 == 1, "fine");
    assert_true(0, "boom");
    return 0;
}
""")
    assert "ERROR[io]: code 7" in machine.output_text
    assert "assertion failed: boom" in machine.output_text
    assert machine.cpu.exit_code == 71
