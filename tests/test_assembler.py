"""Assembler: syntax, pseudo-instructions, directives, relocations."""

import pytest

from repro.asm import AsmError, assemble
from repro.asm.objfile import Reloc
from repro.isa import Insn, Op, decode, encode
from repro.isa.registers import AT, RA, ZERO, reg_num


def words(obj, section=".text"):
    data = obj.sections[section].data
    return [int.from_bytes(data[i:i + 4], "little")
            for i in range(0, len(data), 4)]


def first_insn(src):
    return decode(words(assemble(src))[0])


def test_basic_r_type():
    ins = first_insn("add t0, t1, t2")
    assert ins == Insn(Op.ADD, rd=reg_num("t0"), rs1=reg_num("t1"),
                       rs2=reg_num("t2"))


def test_numeric_registers():
    ins = first_insn("sub r5, r6, r7")
    assert (ins.rd, ins.rs1, ins.rs2) == (5, 6, 7)


def test_memory_operand():
    ins = first_insn("lw a0, -8(sp)")
    assert ins.op is Op.LW and ins.imm == -8
    assert ins.rs1 == reg_num("sp")


def test_memory_operand_no_offset():
    ins = first_insn("sw t0, (a1)")
    assert ins.imm == 0 and ins.rs1 == reg_num("a1")


def test_char_immediate():
    ins = first_insn("li t0, 'A'")
    assert ins.imm == 65
    ins = first_insn(r"li t0, '\n'")
    assert ins.imm == 10


def test_hex_immediate():
    ins = first_insn("addi t0, zero, 0x7f")
    assert ins.imm == 0x7F


def test_li_expansions():
    # small signed -> one addi
    assert len(words(assemble("li t0, -5"))) == 1
    # 16-bit unsigned -> one ori
    obj = assemble("li t0, 0xFFFF")
    assert [decode(w).op for w in words(obj)] == [Op.ORI]
    # 32-bit -> lui+ori
    obj = assemble("li t0, 0x12345678")
    assert [decode(w).op for w in words(obj)] == [Op.LUI, Op.ORI]
    # high-half only -> single lui
    obj = assemble("li t0, 0x10000")
    assert [decode(w).op for w in words(obj)] == [Op.LUI]


def test_la_emits_hi_lo_relocs():
    obj = assemble("la t0, foo\nfoo: nop")
    kinds = [r.kind for r in obj.relocations]
    assert kinds == [Reloc.HI16, Reloc.LO16]


def test_branch_reloc_and_label():
    obj = assemble("top: beq t0, t1, top")
    assert obj.relocations[0].kind == Reloc.BR16
    assert obj.symbols["top"].offset == 0


def test_pseudo_branches():
    ins = first_insn("bgt t0, t1, 4")
    assert ins.op is Op.BLT  # operands swapped
    assert ins.rs1 == reg_num("t1") and ins.rs2 == reg_num("t0")
    ins = first_insn("beqz t3, 8")
    assert ins.op is Op.BEQ and ins.rs2 == ZERO
    ins = first_insn("bgtz a0, 8")
    assert ins.op is Op.BLT and ins.rs1 == ZERO


def test_mv_neg_not_seqz():
    assert first_insn("mv t0, t1").op is Op.ADD
    assert first_insn("neg t0, t1").op is Op.SUB
    assert first_insn("not t0, t1").op is Op.NOR
    ins = first_insn("seqz t0, t1")
    assert ins.op is Op.SLTIU and ins.imm == 1


def test_ret_and_jr():
    ins = first_insn("ret")
    assert ins.op is Op.RET and ins.rs1 == RA
    ins = first_insn("jr t5")
    assert ins.op is Op.JR and ins.rs1 == reg_num("t5")


def test_syscall_by_name_and_number():
    assert first_insn("syscall exit").imm == 0
    assert first_insn("syscall putint").imm == 1
    assert first_insn("syscall 3").imm == 3


def test_trap_by_name():
    ins = first_insn("trap miss_branch, 42")
    assert ins.op is Op.TRAP and ins.rd == 1 and ins.imm == 42


def test_data_directives():
    obj = assemble("""
    .data
val:  .word 1, 2, 0x10
half: .half 7, 8
byte: .byte 1, 2, 3
      .align 4
str:  .asciiz "hi"
      .space 3
""")
    data = obj.sections[".data"].data
    assert data[:12] == bytes([1, 0, 0, 0, 2, 0, 0, 0, 0x10, 0, 0, 0])
    assert obj.symbols["half"].offset == 12
    assert obj.symbols["byte"].offset == 16
    assert obj.symbols["str"].offset == 20
    assert data[20:23] == b"hi\0"


def test_word_with_symbol_reloc():
    obj = assemble("""
    .data
tab: .word handler, handler+8
    .text
handler: nop
""")
    relocs = [r for r in obj.relocations if r.kind == Reloc.W32]
    assert len(relocs) == 2
    assert relocs[1].addend == 8


def test_bss_space():
    obj = assemble(".bss\nbuf: .space 100\nbuf2: .space 4")
    assert obj.sections[".bss"].bss_size == 104
    assert obj.symbols["buf2"].offset == 100


def test_equ_constants():
    obj = assemble(".equ FRAME, 32\naddi sp, sp, FRAME")
    assert decode(words(obj)[0]).imm == 32


def test_global_and_proc_marks():
    obj = assemble("""
    .global main
    .proc main
main: ret
""")
    sym = obj.symbols["main"]
    assert sym.is_global and sym.is_proc


def test_comments_all_styles():
    obj = assemble("""
nop ; semicolon
nop # hash
nop // slashes
""")
    assert len(words(obj)) == 3


def test_label_same_line_as_insn():
    obj = assemble("foo: nop")
    assert obj.symbols["foo"].offset == 0
    assert len(words(obj)) == 1


def test_errors():
    with pytest.raises(AsmError):
        assemble("frobnicate t0, t1")
    with pytest.raises(AsmError):
        assemble("add t0, t1")          # arity
    with pytest.raises(AsmError):
        assemble("lw t0, t1")           # bad memory operand
    with pytest.raises(AsmError):
        assemble("li t0, zzz")
    with pytest.raises(AsmError):
        assemble("dup: nop\ndup: nop")  # duplicate label
    with pytest.raises(AsmError):
        assemble(".bss\nadd t0, t0, t0")
    with pytest.raises(AsmError):
        assemble('.data\n.asciiz "unterminated')
    with pytest.raises(AsmError):
        assemble(".global nothere\n")


def test_duplicate_label_detected_even_with_code():
    with pytest.raises(ValueError):
        assemble("x: nop\nx: nop")


def test_imm_out_of_range_reported_with_line():
    with pytest.raises(AsmError) as err:
        assemble("nop\naddi t0, t0, 99999")
    assert ":2:" in str(err.value)
