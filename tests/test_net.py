"""Link model: the 60-byte overhead result and transfer-time math."""

import pytest

from repro.net import Channel, LinkModel


def test_default_overhead_is_60_bytes():
    """§2.4: 'the network overhead for each code chunk downloaded to
    be 60 application bytes'."""
    link = LinkModel()
    assert link.exchange_overhead_bytes == 60


def test_exchange_time_math():
    link = LinkModel(bandwidth_bps=10e6, latency_s=150e-6)
    t = link.exchange_time(100)
    expected = 2 * 150e-6 + (60 + 100) * 8 / 10e6
    assert t == pytest.approx(expected)


def test_one_way_time_math():
    link = LinkModel(bandwidth_bps=10e6, latency_s=150e-6)
    t = link.one_way_time(40)
    assert t == pytest.approx(150e-6 + (24 + 40) * 8 / 10e6)


def test_bandwidth_scaling():
    slow = LinkModel(bandwidth_bps=1e6, latency_s=0)
    fast = LinkModel(bandwidth_bps=100e6, latency_s=0)
    assert slow.exchange_time(1000) == pytest.approx(
        100 * fast.exchange_time(1000))


def test_channel_accounting():
    chan = Channel(LinkModel())
    chan.exchange("chunk", 120)
    chan.exchange("chunk", 80)
    chan.send("writeback", 16)
    stats = chan.stats
    assert stats.exchanges == 2
    assert stats.one_way_messages == 1
    assert stats.payload_bytes == 216
    assert stats.overhead_bytes == 60 + 60 + 24
    assert stats.by_kind == {"chunk": 2, "writeback": 1}
    assert stats.total_bytes == 216 + 144
    assert stats.overhead_per_exchange() == pytest.approx(60.0)


def test_channel_busy_time_accumulates():
    chan = Channel(LinkModel())
    t1 = chan.exchange("chunk", 100)
    t2 = chan.exchange("chunk", 200)
    assert chan.stats.busy_seconds == pytest.approx(t1 + t2)


def test_empty_channel_stats():
    chan = Channel()
    assert chan.stats.overhead_per_exchange() == 0.0
    assert chan.stats.total_bytes == 0
