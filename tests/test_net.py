"""Link model: the 60-byte overhead result and transfer-time math."""

import pytest

from repro.net import Channel, LinkModel


def test_default_overhead_is_60_bytes():
    """§2.4: 'the network overhead for each code chunk downloaded to
    be 60 application bytes'."""
    link = LinkModel()
    assert link.exchange_overhead_bytes == 60


def test_exchange_time_math():
    link = LinkModel(bandwidth_bps=10e6, latency_s=150e-6)
    t = link.exchange_time(100)
    expected = 2 * 150e-6 + (60 + 100) * 8 / 10e6
    assert t == pytest.approx(expected)


def test_one_way_time_math():
    link = LinkModel(bandwidth_bps=10e6, latency_s=150e-6)
    t = link.one_way_time(40)
    assert t == pytest.approx(150e-6 + (24 + 40) * 8 / 10e6)


def test_bandwidth_scaling():
    slow = LinkModel(bandwidth_bps=1e6, latency_s=0)
    fast = LinkModel(bandwidth_bps=100e6, latency_s=0)
    assert slow.exchange_time(1000) == pytest.approx(
        100 * fast.exchange_time(1000))


def test_channel_accounting():
    chan = Channel(LinkModel())
    chan.exchange("chunk", 120)
    chan.exchange("chunk", 80)
    chan.send("writeback", 16)
    stats = chan.stats
    assert stats.exchanges == 2
    assert stats.one_way_messages == 1
    assert stats.payload_bytes == 216
    assert stats.overhead_bytes == 60 + 60 + 24
    assert stats.by_kind == {"chunk": 2, "writeback": 1}
    assert stats.total_bytes == 216 + 144
    assert stats.overhead_per_exchange() == pytest.approx(60.0)


def test_channel_busy_time_accumulates():
    chan = Channel(LinkModel())
    t1 = chan.exchange("chunk", 100)
    t2 = chan.exchange("chunk", 200)
    assert chan.stats.busy_seconds == pytest.approx(t1 + t2)


def test_empty_channel_stats():
    chan = Channel()
    assert chan.stats.overhead_per_exchange() == 0.0
    assert chan.stats.total_bytes == 0


def test_batch_overhead_bytes():
    """A batched reply shares the 60-byte exchange overhead: one
    request/reply header pair plus a 12-byte sub-header per *extra*
    chunk."""
    link = LinkModel()
    assert link.batch_overhead_bytes(1) == 60
    assert link.batch_overhead_bytes(4) == 60 + 3 * 12


def test_batch_exchange_time_math():
    link = LinkModel(bandwidth_bps=10e6, latency_s=150e-6)
    t = link.batch_exchange_time([100, 40, 80])
    expected = 2 * 150e-6 + (60 + 2 * 12 + 220) * 8 / 10e6
    assert t == pytest.approx(expected)
    # a batch of one degenerates to a plain exchange
    assert link.batch_exchange_time([100]) == pytest.approx(
        link.exchange_time(100))


def test_channel_batch_accounting():
    chan = Channel(LinkModel())
    t = chan.batch_exchange("chunk", [100, 50, 25])
    stats = chan.stats
    assert stats.exchanges == 1           # one logical RPC
    assert stats.batch_exchanges == 1
    assert stats.batched_chunks == 3
    assert stats.payload_bytes == 175
    assert stats.overhead_bytes == 60 + 2 * 12
    # §2.4 metric counts base headers only, not batch sub-headers
    assert stats.exchange_overhead_bytes == 60
    assert stats.overhead_per_exchange() == pytest.approx(60.0)
    assert stats.busy_seconds == pytest.approx(t)


def test_single_chunk_batch_accounted_as_plain_exchange():
    """`prefetch_depth=0` configurations must be bit-identical to the
    unbatched protocol: a one-chunk batch is a plain exchange."""
    plain, batched = Channel(LinkModel()), Channel(LinkModel())
    t_plain = plain.exchange("chunk", 120)
    t_batch = batched.batch_exchange("chunk", [120])
    assert t_batch == t_plain
    assert batched.stats.batch_exchanges == 0
    assert batched.stats.batched_chunks == 0
    assert vars(batched.stats) == vars(plain.stats)
