"""Superblock (threaded-code) execution.

The fused interpreter must be architecturally invisible: identical
outputs, registers, instruction and cycle counts to per-instruction
dispatch — including under dynamic rewriting, where patching any word
of a fused block must invalidate every superblock overlapping it.
"""

import pytest

from repro.asm import assemble_and_link
from repro.isa import Insn, Op, encode
from repro.sim import (
    BreakHit,
    CycleLimitExceeded,
    FUSE_LIMIT,
    Machine,
    MachineConfig,
)
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.workloads import build_workload


# A loop whose body is one long straight-line (fusable) run.  The
# prologue falls through into ``loop``, so the word range of the body
# is covered by TWO superblocks (main.. and loop..) — patching a body
# word must kill both.
LOOP_SRC = """
    .global main
    .global loop
    .global done
main:
    li   s0, 6
    li   s1, 0
loop:
    addi t0, s1, 3
    slli t1, t0, 1
    add  t2, t1, t0
    xori t3, t2, 0x55
    add  s1, t3, s1
    subi s0, s0, 1
    bne  s0, zero, loop
done:
    mv   a0, s1
    syscall putint
    li   a0, 0
    ret
"""

BODY_LEN = 7  # six straight-line words + the bne terminator

_IMAGE = assemble_and_link(LOOP_SRC, "loop")


def _probe_warm_count() -> int:
    """Instructions from entry (crt0 included) until the third arrival
    at ``loop`` — two full iterations warm.  ``loop`` is reached only
    via fall-through or the bne, so it is also a superblock boundary
    and both dispatch modes stop exactly there."""
    machine = Machine(_IMAGE, MachineConfig(superblocks=False))
    loop = _IMAGE.symbols["loop"]
    visits = 0
    while True:
        if machine.cpu.pc == loop:
            visits += 1
            if visits == 3:
                return machine.cpu.icount
        machine.cpu.step()


#: Warm cap landing exactly on a superblock boundary at ``loop``.
WARM = _probe_warm_count()


def _warm_machine(superblocks: bool) -> Machine:
    machine = Machine(_IMAGE, MachineConfig(superblocks=superblocks))
    with pytest.raises(CycleLimitExceeded):
        machine.cpu.run(max_instructions=WARM)
    assert machine.cpu.icount == WARM
    assert machine.cpu.pc == machine.image.symbols["loop"]
    return machine


def _finish(machine: Machine):
    try:
        machine.cpu.run()
        return ("exit", machine.cpu.exit_code)
    except BreakHit as hit:
        return ("break", hit.pc, hit.code)


def _state(machine: Machine):
    return (machine.cpu.icount, machine.cpu.cycles,
            machine.output_text, list(machine.cpu.regs))


@pytest.mark.parametrize("offset", range(BODY_LEN))
def test_patch_any_offset_with_break_poison(offset):
    """A BREAK written over any word of a warm fused block fires on
    the very next pass, exactly as under per-instruction decode."""
    results = []
    for superblocks in (True, False):
        machine = _warm_machine(superblocks)
        addr = machine.image.symbols["loop"] + 4 * offset
        machine.mem.write_word(addr, encode(Insn(Op.BREAK, rd=7)))
        results.append((_finish(machine), _state(machine)))
    fused, per_insn = results
    assert fused == per_insn
    assert fused[0][0] == "break"


@pytest.mark.parametrize("offset", range(BODY_LEN))
def test_patch_any_offset_with_backpatch_jump(offset):
    """A ``j done`` backpatched over any word of a warm fused block
    redirects the loop, matching fresh per-instruction decode."""
    results = []
    for superblocks in (True, False):
        machine = _warm_machine(superblocks)
        addr = machine.image.symbols["loop"] + 4 * offset
        done = machine.image.symbols["done"]
        machine.mem.write_word(addr, encode(Insn(Op.J, imm=done >> 2)))
        results.append((_finish(machine), _state(machine)))
    fused, per_insn = results
    assert fused == per_insn
    assert fused[0] == ("exit", 0)


def test_patch_kills_overlapping_blocks():
    machine = _warm_machine(True)
    stats = machine.cpu.sb_stats
    assert stats.fused_blocks >= 2
    addr = machine.image.symbols["loop"] + 4  # interior of both blocks
    machine.mem.write_word(addr, encode(Insn(Op.J, imm=addr >> 2)))
    # the word is covered by the main.. and the loop.. superblocks
    assert stats.invalidated_blocks >= 2
    assert stats.code_writes == 1


def test_sub_word_patch_invalidates():
    """A byte write into a fused block's interior re-decodes too."""
    results = []
    for superblocks in (True, False):
        machine = _warm_machine(superblocks)
        # low imm byte of the xori: 0x55 -> 0x66
        machine.mem.write_byte(machine.image.symbols["loop"] + 4 * 3,
                               0x66)
        results.append((_finish(machine), _state(machine)))
    assert results[0] == results[1]


def test_superblock_equivalence_on_workload():
    image = build_workload("sensor", 0.02)
    fused = Machine(image, MachineConfig(superblocks=True))
    plain = Machine(image, MachineConfig(superblocks=False))
    assert fused.run() == plain.run()
    assert fused.cpu.icount == plain.cpu.icount
    assert fused.cpu.cycles == plain.cpu.cycles
    assert fused.output == plain.output
    assert list(fused.cpu.regs) == list(plain.cpu.regs)
    stats = fused.cpu.sb_stats
    assert stats.fused_blocks > 0
    assert stats.mean_block_length >= 2.0
    assert plain.cpu.sb_stats.fused_blocks == 0


def test_softcache_superblocks_equivalent():
    image = build_workload("sensor", 0.02)
    reports = []
    for superblocks in (True, False):
        system = SoftCacheSystem(image, SoftCacheConfig(
            tcache_size=2048, debug_poison=True,
            superblocks=superblocks))
        report = system.run()
        reports.append((report.exit_code, report.instructions,
                        report.cycles, report.output))
    assert reports[0] == reports[1]


def test_cap_exact_per_instruction():
    machine = Machine(_IMAGE, MachineConfig(superblocks=False))
    with pytest.raises(CycleLimitExceeded):
        machine.cpu.run(max_instructions=17)  # mid-iteration
    assert machine.cpu.icount == 17


def test_cap_exact_single_closure_blocks():
    """Unfusable code (a 1-instruction loop) stops exactly on the cap
    even with superblocks enabled."""
    machine = run_asm_capped(".global main\nmain: j main\n", 10_000)
    assert machine.cpu.icount == 10_000


def test_cap_block_granularity_when_fused():
    """With superblocks the cap is exact at block granularity: never
    more than one block beyond the limit, never under it."""
    machine = Machine(_IMAGE, MachineConfig(superblocks=True))
    with pytest.raises(CycleLimitExceeded):
        machine.cpu.run(max_instructions=17)  # lands inside a block
    assert 17 <= machine.cpu.icount < 17 + FUSE_LIMIT


def test_cap_exact_traced():
    from array import array
    machine = Machine(_IMAGE)
    trace = array("I")
    with pytest.raises(CycleLimitExceeded):
        machine.cpu.run_traced(trace, max_instructions=17)
    assert machine.cpu.icount == 17
    assert len(trace) == 17


def run_asm_capped(source: str, cap: int) -> Machine:
    machine = Machine(assemble_and_link(source, "capped"))
    with pytest.raises(CycleLimitExceeded):
        machine.cpu.run(max_instructions=cap)
    return machine


def test_lui_is_pure_constant_store():
    """LUI ignores its rs1 field entirely (it used to read it)."""
    source = """
    .global main
main:
    nop
    syscall writehex
    li a0, 0
    ret
"""
    for superblocks in (True, False):
        machine = Machine(assemble_and_link(source, "lui"),
                          MachineConfig(superblocks=superblocks))
        # rd=a0 with a junk rs1 field — legal encoding, must not matter
        machine.mem.write_word(machine.image.symbols["main"],
                               encode(Insn(Op.LUI, rd=4, rs1=9,
                                           imm=0x0BEE)))
        machine.run()
        assert machine.output_text == "0bee0000"
