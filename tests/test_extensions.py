"""§4 novel capabilities: chunk pinning and memory-bank power gating."""

import pytest

from repro.eval import native_trace
from repro.lang import compile_program
from repro.net import LOCAL_LINK
from repro.power import StrongARMPower, bank_power_analysis, power_sweep
from repro.sim import run_native
from repro.softcache import SoftCacheConfig, SoftCacheError, SoftCacheSystem
from repro.softcache.tcache import TCacheFull

PIN_SRC = r"""
int irq_count = 0;

int irq_handler(int cause) {
    irq_count += cause;
    return irq_count;
}

int churn(int n) {
    int i; int acc = 0;
    for (i = 0; i < n; i++) acc += (i * 7) % 13;
    return acc;
}

int main(void) {
    int i;
    int acc = 0;
    for (i = 0; i < 40; i++) {
        acc += churn(20);
        acc += irq_handler(i & 3);
    }
    __putint(acc);
    return 0;
}
"""


def pinned_system(policy="fifo", tcache=320):
    image = compile_program(PIN_SRC, "pin", indirect_ok=False)
    config = SoftCacheConfig(
        tcache_size=tcache, granularity="proc", policy=policy,
        pinned_capacity=1024, link=LOCAL_LINK, debug_poison=True)
    system = SoftCacheSystem(image, config)
    system.pin("irq_handler")
    return image, system


@pytest.mark.parametrize("policy", ["fifo", "flush"])
def test_pinned_chunk_survives_thrashing(policy):
    image, system = pinned_system(policy)
    native = run_native(image)
    report = system.run()
    assert report.output == native.output_text
    # the cache thrashed ...
    assert system.stats.evictions + system.stats.blocks_flushed > 0
    # ... but the pinned handler was translated exactly once
    handler = system.cc.tcache.lookup(image.symbols["irq_handler"])
    assert handler is not None and handler.pinned and handler.alive
    assert handler in system.cc.tcache.pinned_blocks


def test_pinned_counts_in_memory_accounting():
    image, system = pinned_system()
    usage = system.local_memory_in_use
    assert usage["pinned_bytes"] > 0
    system.run()
    assert system.local_memory_in_use["pinned_bytes"] == \
        usage["pinned_bytes"]


def test_pin_requires_capacity():
    image = compile_program(PIN_SRC, "pin2", indirect_ok=False)
    config = SoftCacheConfig(tcache_size=2048, granularity="proc",
                             pinned_capacity=0)
    system = SoftCacheSystem(image, config)
    with pytest.raises(TCacheFull, match="pinned"):
        system.pin("irq_handler")


def test_pin_after_translation_rejected():
    image = compile_program(PIN_SRC, "pin3", indirect_ok=False)
    config = SoftCacheConfig(tcache_size=8192, granularity="proc",
                             pinned_capacity=1024, link=LOCAL_LINK)
    system = SoftCacheSystem(image, config)
    system.run()
    with pytest.raises(SoftCacheError, match="already resident"):
        system.pin("irq_handler")


def test_pin_by_address_and_idempotent():
    image = compile_program(PIN_SRC, "pin4", indirect_ok=False)
    config = SoftCacheConfig(tcache_size=2048, granularity="proc",
                             pinned_capacity=1024, link=LOCAL_LINK)
    system = SoftCacheSystem(image, config)
    addr = image.symbols["irq_handler"]
    system.pin(addr)
    before = system.stats.translations
    system.pin(addr)  # idempotent
    assert system.stats.translations == before


def test_pinning_block_granularity():
    from repro.cfg import build_cfg
    image = compile_program(PIN_SRC, "pin5")
    native = run_native(image)
    # barely larger than the biggest chunk: guaranteed flush churn
    biggest = max(b.size for b in build_cfg(image).blocks.values())
    config = SoftCacheConfig(tcache_size=biggest + 48,
                             granularity="block",
                             policy="flush", pinned_capacity=1024,
                             link=LOCAL_LINK, debug_poison=True)
    system = SoftCacheSystem(image, config)
    system.pin("irq_handler")  # pins the handler's entry chunk
    report = system.run()
    assert report.output == native.output_text
    assert system.stats.flushes > 0
    handler = system.cc.tcache.lookup(image.symbols["irq_handler"])
    assert handler is not None and handler.pinned


# -- bank power gating -------------------------------------------------------


@pytest.fixture(scope="module")
def sensor_trace():
    return native_trace("sensor", 0.1)


def test_duty_cycle_bounds(sensor_trace):
    result = bank_power_analysis(sensor_trace.image, sensor_trace.trace,
                                 8192, bank_size=1024)
    assert 0.0 < result.mean_duty <= 1.0
    assert len(result.bank_duty) == 8
    assert all(0.0 <= d <= 1.0 for d in result.bank_duty)
    assert result.instructions == sensor_trace.trace.size


def test_small_working_set_lights_few_banks(sensor_trace):
    """Provisioning more memory than the working set costs nothing
    with bank gating: extra banks stay asleep."""
    result = bank_power_analysis(sensor_trace.image, sensor_trace.trace,
                                 32768, bank_size=1024)
    lit = sum(1 for d in result.bank_duty if d > 0.01)
    assert lit < result.nbanks / 2
    assert result.icache_power_saving_fraction > 0.1


def test_duty_decreases_with_size(sensor_trace):
    results = power_sweep(sensor_trace.image, sensor_trace.trace,
                          [2048, 8192, 32768], bank_size=1024)
    duties = [r.mean_duty for r in results]
    assert duties[0] >= duties[1] >= duties[2]
    # absolute powered bytes stabilize at the working set
    powered = [r.mean_duty * r.tcache_size for r in results]
    assert powered[2] < 2.5 * powered[0]


def test_wakeups_bounded_without_thrash(sensor_trace):
    result = bank_power_analysis(sensor_trace.image, sensor_trace.trace,
                                 32768, bank_size=1024)
    # steady working set: each lit bank wakes once
    assert result.wakeups <= result.nbanks


def test_strongarm_fractions():
    power = StrongARMPower()
    assert power.cache_total_fraction == pytest.approx(0.45)


def test_bank_size_validation(sensor_trace):
    with pytest.raises(ValueError):
        bank_power_analysis(sensor_trace.image, sensor_trace.trace,
                            3000, bank_size=1024)
