"""Disassembler round-trips and formatting."""

import pytest

from repro.asm import assemble
from repro.isa import (
    Insn,
    Op,
    decode,
    disassemble_range,
    disassemble_word,
    encode,
    format_insn,
)


def roundtrip(text):
    """assemble one instruction, disassemble, reassemble: fixpoint."""
    data = assemble(text).sections[".text"].data
    word = int.from_bytes(data[:4], "little")
    rendered = disassemble_word(word)
    data2 = assemble(rendered).sections[".text"].data
    return int.from_bytes(data2[:4], "little"), word


@pytest.mark.parametrize("text", [
    "add t0, t1, t2",
    "sub s0, a0, a1",
    "mul x0, x1, x2",
    "addi sp, sp, -32",
    "andi t0, t1, 255",
    "lui a0, 0x1234",
    "lw ra, 12(sp)",
    "sb t0, -1(a1)",
    "lhu t3, 6(gp)",
    "jr t5",
    "jalr ra, t0",
    "ret",
    "halt",
    "syscall putint",
    "trap miss_jr, 99",
])
def test_roundtrip_fixpoint(text):
    again, word = roundtrip(text)
    assert again == word


def test_branch_with_pc_renders_absolute():
    word = encode(Insn(Op.BEQ, rs1=4, rs2=5, imm=3))
    text = disassemble_word(word, pc=0x1000)
    assert "0x1010" in text


def test_branch_without_pc_renders_relative():
    word = encode(Insn(Op.BNE, rs1=0, rs2=0, imm=-2))
    assert ".-2" in disassemble_word(word)


def test_jump_renders_byte_target():
    word = encode(Insn(Op.J, imm=0x100))
    assert "0x400" in disassemble_word(word)


def test_unknown_trap_code_renders_number():
    word = encode(Insn(Op.TRAP, rd=63, imm=7))
    assert "63" in disassemble_word(word)


def test_disassemble_range_handles_garbage():
    words = {0: encode(Insn(Op.ADD, rd=1, rs1=2, rs2=3)),
             4: 0x3E << 26}  # unassigned opcode
    lines = disassemble_range(lambda a: words[a], 0, 8)
    assert len(lines) == 2
    assert "add" in lines[0]
    assert ".word" in lines[1]


def test_format_insn_memory_style():
    ins = decode(encode(Insn(Op.SW, rd=8, rs1=2, imm=-4)))
    assert format_insn(ins) == "sw t0, -4(sp)"
