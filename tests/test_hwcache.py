"""Hardware cache baseline: direct-mapped simulation (vectorized vs a
reference model), associativity, and the 11-18% tag overhead."""

import random

from hypothesis import given, settings, strategies as st

from repro.hwcache import (
    overhead_band,
    simulate_direct_mapped,
    simulate_fully_associative,
    simulate_set_associative,
    sweep_direct_mapped,
    tag_overhead,
    working_set_knee,
)


def reference_direct_mapped(trace, size, block):
    """Obviously-correct scalar model to check the numpy one against."""
    nsets = size // block
    tags = {}
    misses = 0
    for addr in trace:
        blk = addr // block
        s = blk % nsets
        t = blk // nsets
        if tags.get(s) != t:
            misses += 1
            tags[s] = t
    return misses


def test_sequential_trace_all_cold_misses():
    trace = list(range(0, 1024, 16))  # one access per block
    res = simulate_direct_mapped(trace, 256, 16)
    assert res.accesses == 64
    assert res.misses == 64


def test_repeated_block_hits():
    trace = [0, 4, 8, 12] * 100  # same 16-byte block
    res = simulate_direct_mapped(trace, 256, 16)
    assert res.misses == 1
    assert res.miss_rate == 1 / 400


def test_conflict_misses():
    # two blocks mapping to the same set of a 256B cache alternate
    trace = [0, 256, 0, 256, 0, 256]
    res = simulate_direct_mapped(trace, 256, 16)
    assert res.misses == 6
    # a 512B cache separates them
    res = simulate_direct_mapped(trace, 512, 16)
    assert res.misses == 2


def test_against_reference_random():
    rng = random.Random(1)
    trace = [rng.randrange(0, 1 << 16) & ~3 for _ in range(5000)]
    for size in (256, 1024, 4096):
        got = simulate_direct_mapped(trace, size, 16).misses
        want = reference_direct_mapped(trace, size, 16)
        assert got == want


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=400),
       st.sampled_from([128, 256, 1024]),
       st.sampled_from([16, 32]))
def test_hypothesis_matches_reference(trace, size, block):
    got = simulate_direct_mapped(trace, size, block).misses
    assert got == reference_direct_mapped(trace, size, block)


def test_sweep_monotone_enough():
    """Bigger direct-mapped caches may have anomalies, but the sweep on
    a loop-like trace should reach zero conflict misses eventually."""
    trace = [i % 2048 for i in range(0, 40000, 4)]
    results = sweep_direct_mapped(trace, [128, 512, 2048, 8192])
    assert results[-1].misses == 2048 // 16  # cold misses only


def test_working_set_knee():
    trace = ([i for i in range(0, 4096, 16)] * 200)
    results = sweep_direct_mapped(trace, [512, 1024, 4096, 16384])
    knee = working_set_knee(results, threshold=0.01)
    assert knee == 4096


def test_set_associative_reduces_conflicts():
    trace = [0, 256, 0, 256] * 10
    direct = simulate_set_associative(trace, 256, 1)
    two_way = simulate_set_associative(trace, 256, 2)
    assert two_way.misses == 2
    assert direct.misses == len(trace)


def test_lru_vs_fifo():
    # sequence that distinguishes LRU from FIFO in a 2-way set
    trace = [0, 256, 0, 512, 0]
    lru = simulate_set_associative(trace, 512, 2, policy="lru").misses
    fifo = simulate_set_associative(trace, 512, 2, policy="fifo").misses
    assert lru == 3   # 0 kept (recently used)
    assert fifo == 4  # 0 evicted by FIFO, re-missed


def test_fully_associative_no_conflicts():
    # 4 blocks in a 64B fully associative cache with 16B blocks
    trace = [0, 256, 512, 768] * 10
    res = simulate_fully_associative(trace, 64, 16)
    assert res.misses == 4


def test_fully_associative_capacity_eviction():
    trace = [0, 16, 32, 48, 64, 0]  # 5 blocks through a 4-block cache
    res = simulate_fully_associative(trace, 64, 16, policy="lru")
    assert res.misses == 6  # 0 was evicted


def test_tag_overhead_band_matches_paper():
    """Fig 6 caption: tags for 32-bit addresses add an extra 11-18%."""
    sizes = [1 << k for k in range(10, 18)]  # 1KB .. 128KB
    lo, hi = overhead_band(sizes, block_size=16)
    assert 10.5 <= lo <= 13.0
    assert 17.0 <= hi <= 18.5


def test_tag_overhead_formula():
    # 1KB direct-mapped, 16B blocks: 64 sets -> 6 index + 4 offset bits
    ov = tag_overhead(1024, 16)
    assert ov.tag_bits == 32 - 6 - 4
    assert ov.bits_per_block == 23  # + valid bit
    assert ov.overhead_percent == (23 / 128) * 100


def test_tag_overhead_grows_with_smaller_cache():
    small = tag_overhead(1024, 16).overhead_percent
    big = tag_overhead(65536, 16).overhead_percent
    assert small > big
