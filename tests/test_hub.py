"""The multilevel (hub/L2) chunk cache."""

import pytest

from repro.net import HubChannel, LinkModel, with_hub
from repro.sim import run_native
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def image():
    return build_workload("sensor", 0.05)


@pytest.fixture(scope="module")
def native(image):
    return run_native(image)


def hub_system(image, tcache=768, capacity=64 * 1024, far=None):
    system = SoftCacheSystem(image, SoftCacheConfig(
        tcache_size=tcache, policy="fifo"))
    hub = with_hub(system, far=far, capacity_bytes=capacity)
    return system, hub


def test_correctness_preserved(image, native):
    system, hub = hub_system(image)
    report = system.run()
    assert report.output == native.output_text


def test_hub_absorbs_refetches(image, native):
    """A thrashing client re-requests evicted chunks; the hub serves
    them without touching the origin."""
    system, hub = hub_system(image)
    system.run()
    stats = hub.hub_stats
    assert stats.requests > 2 * stats.origin_fetches
    assert stats.hit_rate > 0.5
    # the origin saw each distinct chunk once
    assert stats.origin_fetches == system.mc.stats.chunks_built


def test_no_thrash_no_hub_value(image, native):
    """With a roomy client cache every chunk is requested once, so the
    hub cannot hit."""
    system, hub = hub_system(image, tcache=64 * 1024)
    system.run()
    assert hub.hub_stats.hit_rate == 0.0


def test_small_hub_evicts(image, native):
    system, hub = hub_system(image, capacity=512)
    system.run()
    assert hub.hub_stats.evictions > 0
    # still correct and still some hits
    assert hub.hub_stats.requests > 0


def test_hub_reduces_miss_time(image, native):
    """Cycles with a hub in front of a slow origin must beat cycles
    with every miss crossing the slow origin link."""
    slow_far = LinkModel(bandwidth_bps=1e6, latency_s=10e-3)

    system_hub, hub = hub_system(image, far=slow_far)
    report_hub = system_hub.run()

    # same topology but a hub too small to ever hit
    system_nohub, _ = hub_system(image, capacity=0, far=slow_far)
    report_nohub = system_nohub.run()

    assert report_hub.output == report_nohub.output
    assert report_hub.cycles < report_nohub.cycles


def test_data_traffic_bypasses_hub_cache(image):
    hub = HubChannel(LinkModel(), LinkModel())
    t = hub.exchange("data", 64)
    assert hub.hub_stats.requests == 0
    assert t > 0


def test_far_hop_recorded_in_link_stats():
    """Hub misses traverse the far link; its seconds/bytes must land
    in LinkStats, not only in the returned time."""
    near = LinkModel()
    far = LinkModel(bandwidth_bps=2e6, latency_s=5e-3)
    hub = HubChannel(near, far)

    hub.next_key = 0x1000
    t_miss = hub.exchange("chunk", 100)
    assert t_miss == pytest.approx(
        near.exchange_time(100) + far.exchange_time(100))
    stats = hub.stats
    assert stats.busy_seconds == pytest.approx(t_miss)
    assert stats.payload_bytes == 200          # both hops carried it
    assert stats.overhead_bytes == 60 + 60
    assert stats.exchanges == 1                # one logical RPC
    # §2.4 metric stays the near-hop per-exchange overhead
    assert stats.overhead_per_exchange() == pytest.approx(60.0)

    # a hub hit pays (and records) the near hop only
    hub.next_key = 0x1000
    t_hit = hub.exchange("chunk", 100)
    assert t_hit == pytest.approx(near.exchange_time(100))
    assert stats.busy_seconds == pytest.approx(t_miss + t_hit)
    assert stats.payload_bytes == 300


def test_non_chunk_pass_through_records_both_hops():
    near = LinkModel()
    far = LinkModel(bandwidth_bps=2e6, latency_s=5e-3)
    hub = HubChannel(near, far)
    t = hub.exchange("data", 64)
    assert t == pytest.approx(
        near.exchange_time(64) + far.exchange_time(64))
    assert hub.stats.busy_seconds == pytest.approx(t)
    assert hub.stats.payload_bytes == 128


def test_batch_populates_hub_with_every_chunk():
    near = LinkModel()
    far = LinkModel(bandwidth_bps=2e6, latency_s=5e-3)
    hub = HubChannel(near, far)
    hub.next_keys = [0x100, 0x200, 0x300]
    hub.batch_exchange("chunk", [40, 60, 80])
    assert hub.hub_stats.origin_fetches == 3
    # a later demand for a chunk that arrived only as batch cargo hits
    hub.next_key = 0x300
    t = hub.exchange("chunk", 80)
    assert hub.hub_stats.hub_hits == 1
    assert t == pytest.approx(near.exchange_time(80))


def test_batch_forwards_only_missing_chunks_upstream():
    near = LinkModel()
    far = LinkModel(bandwidth_bps=2e6, latency_s=5e-3)
    hub = HubChannel(near, far)
    hub.next_key = 0x100
    hub.exchange("chunk", 40)              # warm one chunk
    hub.next_keys = [0x100, 0x200, 0x300]
    t = hub.batch_exchange("chunk", [40, 60, 80])
    assert hub.hub_stats.hub_hits == 1
    # far leg carried only the two missing chunks
    assert t == pytest.approx(near.batch_exchange_time([40, 60, 80]) +
                              far.batch_exchange_time([60, 80]))


def test_second_client_hits_hub_on_prefetched_chunk(image):
    """The fleet scenario: client A's prefetch warms the shared hub,
    so client B's *demand* miss for that chunk never reaches the
    origin."""
    config = SoftCacheConfig(tcache_size=8 * 1024, prefetch_depth=4,
                             record_timeline=False)
    sys_a = SoftCacheSystem(image, config)
    hub = with_hub(sys_a)
    sys_a.cc.start()           # one batched demand miss at the entry
    assert sys_a.stats.prefetch_installs > 0
    prefetched = [b for b in sys_a.cc.tcache.order if b.prefetched]
    assert prefetched          # chunks A holds but never executed
    target = prefetched[0].orig

    sys_b = SoftCacheSystem(image, SoftCacheConfig(
        tcache_size=8 * 1024, prefetch_depth=0,
        record_timeline=False), shared_mc=sys_a.mc)
    assert with_hub(sys_b, hub=hub) is hub
    before = hub.hub_stats.origin_fetches
    hits_before = hub.hub_stats.hub_hits
    block = sys_b.cc.ensure_translated(target)
    assert block.alive and not block.prefetched
    assert hub.hub_stats.hub_hits == hits_before + 1
    assert hub.hub_stats.origin_fetches == before
