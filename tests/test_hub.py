"""The multilevel (hub/L2) chunk cache."""

import pytest

from repro.net import HubChannel, LinkModel, with_hub
from repro.sim import run_native
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def image():
    return build_workload("sensor", 0.05)


@pytest.fixture(scope="module")
def native(image):
    return run_native(image)


def hub_system(image, tcache=768, capacity=64 * 1024, far=None):
    system = SoftCacheSystem(image, SoftCacheConfig(
        tcache_size=tcache, policy="fifo"))
    hub = with_hub(system, far=far, capacity_bytes=capacity)
    return system, hub


def test_correctness_preserved(image, native):
    system, hub = hub_system(image)
    report = system.run()
    assert report.output == native.output_text


def test_hub_absorbs_refetches(image, native):
    """A thrashing client re-requests evicted chunks; the hub serves
    them without touching the origin."""
    system, hub = hub_system(image)
    system.run()
    stats = hub.hub_stats
    assert stats.requests > 2 * stats.origin_fetches
    assert stats.hit_rate > 0.5
    # the origin saw each distinct chunk once
    assert stats.origin_fetches == system.mc.stats.chunks_built


def test_no_thrash_no_hub_value(image, native):
    """With a roomy client cache every chunk is requested once, so the
    hub cannot hit."""
    system, hub = hub_system(image, tcache=64 * 1024)
    system.run()
    assert hub.hub_stats.hit_rate == 0.0


def test_small_hub_evicts(image, native):
    system, hub = hub_system(image, capacity=512)
    system.run()
    assert hub.hub_stats.evictions > 0
    # still correct and still some hits
    assert hub.hub_stats.requests > 0


def test_hub_reduces_miss_time(image, native):
    """Cycles with a hub in front of a slow origin must beat cycles
    with every miss crossing the slow origin link."""
    slow_far = LinkModel(bandwidth_bps=1e6, latency_s=10e-3)

    system_hub, hub = hub_system(image, far=slow_far)
    report_hub = system_hub.run()

    # same topology but a hub too small to ever hit
    system_nohub, _ = hub_system(image, capacity=0, far=slow_far)
    report_nohub = system_nohub.run()

    assert report_hub.output == report_nohub.output
    assert report_hub.cycles < report_nohub.cycles


def test_data_traffic_bypasses_hub_cache(image):
    hub = HubChannel(LinkModel(), LinkModel())
    t = hub.exchange("data", 64)
    assert hub.hub_stats.requests == 0
    assert t > 0
