"""TCache allocator: circular FIFO, stub area, invariants under
randomized allocate/evict sequences (this is where the silent-overlap
bug class lives, so it gets a hypothesis state machine)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.softcache import TCacheFull, TCacheGeometry
from repro.softcache.records import TBlock
from repro.softcache.tcache import TCache

BASE = 0x10000


def make(size=256, stub=64, redirector=0):
    return TCache(TCacheGeometry(base=BASE, size=size,
                                 stub_capacity=stub,
                                 redirector_capacity=redirector))


def alloc(tc, orig, nbytes):
    while tc.needs_eviction(nbytes):
        tc.retire_oldest()
    addr = tc.place(nbytes)
    block = TBlock(orig=orig, addr=addr, size=nbytes, orig_size=nbytes,
                   extra_words=0)
    tc.commit(block)
    tc.assert_invariants()
    return block


def test_simple_allocation_sequence():
    tc = make()
    b1 = alloc(tc, 1, 64)
    b2 = alloc(tc, 2, 64)
    assert b1.addr == BASE
    assert b2.addr == BASE + 64
    assert tc.lookup(1) is b1
    assert tc.used_bytes == 128


def test_block_too_big():
    tc = make(size=128)
    with pytest.raises(TCacheFull):
        tc.needs_eviction(256)


def test_fifo_eviction_order():
    tc = make(size=128)
    alloc(tc, 1, 64)
    alloc(tc, 2, 64)
    b3 = alloc(tc, 3, 64)  # evicts block 1
    assert tc.lookup(1) is None
    assert tc.lookup(2) is not None
    assert b3.addr == BASE  # wrapped into freed space


def test_wrap_full_state_not_confused_with_empty():
    """Regression: tail == head after a wrap means FULL, not empty."""
    tc = make(size=96)
    alloc(tc, 1, 40)  # [0, 40)
    alloc(tc, 2, 40)  # [40, 80)
    alloc(tc, 3, 40)  # evicts 1, wraps to [0, 40); tail == head == 40
    assert tc.needs_eviction(40)
    b4 = alloc(tc, 4, 40)  # must evict 2
    assert tc.lookup(2) is None
    tc.assert_invariants()
    assert b4.addr == BASE + 40


def test_retire_all():
    tc = make()
    blocks = [alloc(tc, i, 32) for i in range(5)]
    flushed = tc.retire_all()
    assert len(flushed) == 5
    assert all(not b.alive for b in blocks)
    assert tc.resident_blocks == 0
    assert tc.used_bytes == 0
    # allocation restarts at the base
    assert alloc(tc, 99, 32).addr == BASE


def test_stub_alloc_free():
    tc = make(stub=16)  # 4 stubs
    stubs = [tc.alloc_stub() for _ in range(4)]
    assert all(s is not None for s in stubs)
    assert tc.alloc_stub() is None
    assert tc.stub_bytes_in_use == 16
    tc.free_stub(stubs[0])
    assert tc.alloc_stub() == stubs[0]
    tc.reset_stubs()
    assert tc.stub_bytes_in_use == 0


def test_stub_area_is_disjoint_from_blocks():
    tc = make(size=128, stub=32)
    stub = tc.alloc_stub()
    assert stub >= BASE + 128
    block = alloc(tc, 1, 128)
    assert block.addr + block.size <= stub


def test_redirector_allocation():
    tc = make(redirector=24)  # 3 redirectors
    r1 = tc.alloc_redirector()
    r2 = tc.alloc_redirector()
    r3 = tc.alloc_redirector()
    assert tc.alloc_redirector() is None
    assert r2 == r1 + 8 and r3 == r2 + 8
    assert tc.redirector_bytes_in_use == 24
    assert r1 == tc.geom.redirector_base


def test_map_bytes_accounting():
    tc = make()
    alloc(tc, 1, 32)
    alloc(tc, 2, 32)
    assert tc.map_bytes == 16
    assert tc.map_bytes_peak >= 16


def test_block_containing():
    tc = make()
    b = alloc(tc, 1, 64)
    assert tc.block_containing(b.addr + 60) is b
    assert tc.block_containing(b.addr + 64) is None


def test_in_tcache_range():
    tc = make(size=128, stub=32, redirector=16)
    assert tc.in_tcache_range(BASE)
    assert tc.in_tcache_range(BASE + 128 + 32 + 15)
    assert not tc.in_tcache_range(BASE + 128 + 32 + 16)
    assert not tc.in_tcache_range(BASE - 4)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2),
                          st.integers(1, 20)), min_size=1, max_size=60))
def test_hypothesis_alloc_evict_never_overlaps(ops):
    """Random alloc/evict/flush sequences keep blocks disjoint and
    FIFO order consistent."""
    tc = make(size=20 * 8)
    orig = 0
    for action, arg in ops:
        if action == 0:       # allocate arg*8 bytes
            nbytes = arg * 8
            if nbytes > tc.geom.size:
                continue
            orig += 1
            alloc(tc, orig, nbytes)
        elif action == 1:     # evict oldest if any
            if tc.order:
                tc.retire_oldest()
                tc.assert_invariants()
        else:                 # flush
            tc.retire_all()
            tc.assert_invariants()
    # residency map matches the order deque exactly
    assert set(tc.map.values()) == set(tc.order)
