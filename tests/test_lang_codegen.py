"""MinC codegen semantics: compile snippets, run, check outputs.

These are end-to-end language-semantics tests: every operator, control
construct and calling-convention feature is executed on the simulator
and compared against expected C semantics.
"""

import pytest

from repro.lang import CompileError, compile_program

from conftest import run_minc


def outputs(src, **kw):
    return run_minc(src, **kw).output_text


def expr_value(expr, pre=""):
    src = f"""
int main(void) {{
    {pre}
    __putint({expr});
    return 0;
}}
"""
    return int(outputs(src))


def test_arithmetic():
    assert expr_value("2 + 3 * 4") == 14
    assert expr_value("(2 + 3) * 4") == 20
    assert expr_value("-7 / 2") == -3
    assert expr_value("-7 % 2") == -1
    assert expr_value("7 % -2") == 1
    assert expr_value("1 << 10") == 1024
    assert expr_value("-16 >> 2") == -4


def test_comparisons_and_logic():
    assert expr_value("3 < 4") == 1
    assert expr_value("4 <= 3") == 0
    assert expr_value("5 == 5 && 2 != 3") == 1
    assert expr_value("0 || 7") == 1
    assert expr_value("!5") == 0
    assert expr_value("~0") == -1
    assert expr_value("-2147483647 - 1 < 0") == 1


def test_short_circuit_side_effects():
    src = """
int count = 0;
int bump(void) { count++; return 1; }
int main(void) {
    int r = 0 && bump();
    r = r + (1 || bump());
    __putint(count);
    return 0;
}
"""
    assert outputs(src) == "0"


def test_ternary_and_nested():
    assert expr_value("1 ? 10 : 20") == 10
    assert expr_value("0 ? 10 : 0 ? 20 : 30") == 30


def test_compound_assignment():
    assert expr_value("x", pre="int x = 10; x += 5; x -= 2; x *= 3;"
                              " x /= 2; x %= 7;") == 5
    assert expr_value("x", pre="int x = 6; x &= 3; x |= 8; x ^= 1;"
                              " x <<= 2; x >>= 1;") == 22


def test_incdec_semantics():
    src = """
int main(void) {
    int i = 5;
    int a = i++;
    int b = ++i;
    int c = i--;
    int d = --i;
    __putint(a); __putchar(32);
    __putint(b); __putchar(32);
    __putint(c); __putchar(32);
    __putint(d); __putchar(32);
    __putint(i);
    return 0;
}
"""
    assert outputs(src) == "5 7 7 5 5"


def test_pointer_arithmetic_and_deref():
    src = """
int arr[5];
int main(void) {
    int *p = arr;
    int i;
    for (i = 0; i < 5; i++) arr[i] = i * 10;
    p = p + 2;
    __putint(*p); __putchar(32);
    __putint(*(p + 1)); __putchar(32);
    __putint(p - arr); __putchar(32);
    p--;
    __putint(p[0]);
    return 0;
}
"""
    assert outputs(src) == "20 30 2 10"


def test_char_pointers_byte_granularity():
    src = """
char buf[8];
int main(void) {
    char *p = buf;
    *p = 65;
    p++;
    *p = 66;
    __putint(p - buf); __putchar(32);
    __putint(buf[0] + buf[1]);
    return 0;
}
"""
    assert outputs(src) == "1 131"


def test_char_truncation():
    src = """
char c = 0;
int main(void) {
    c = 300;        // truncates to 44
    __putint(c);
    return 0;
}
"""
    assert outputs(src) == "44"


def test_address_of_local_through_call():
    src = """
void set(int *p, int v) { *p = v; }
int main(void) {
    int x = 1;
    set(&x, 99);
    __putint(x);
    return 0;
}
"""
    assert outputs(src) == "99"


def test_more_than_four_args():
    src = """
int sum6(int a, int b, int c, int d, int e, int f) {
    return a + 10 * b + 100 * c + 1000 * d + 10000 * e + 100000 * f;
}
int main(void) {
    __putint(sum6(1, 2, 3, 4, 5, 6));
    return 0;
}
"""
    assert outputs(src) == "654321"


def test_recursion_and_mutual_recursion():
    src = """
int is_odd(int n);
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
int main(void) {
    __putint(is_even(10)); __putint(is_odd(10));
    return 0;
}
"""
    # forward declaration syntax is not supported; use call-before-def
    src = """
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
int main(void) {
    __putint(is_even(10)); __putint(is_odd(10));
    return 0;
}
"""
    assert outputs(src) == "10"


def test_scoping_and_shadowing():
    src = """
int x = 1;
int main(void) {
    int x = 2;
    {
        int x = 3;
        __putint(x);
    }
    __putint(x);
    return 0;
}
"""
    assert outputs(src) == "32"


def test_global_initializers():
    src = """
int a = 5 * 4 + 2;
int b = -a0init;
int a0init = 7;
int tab[4] = { 1, 1 << 4, 'A', -1 };
int main(void) {
    __putint(a); __putchar(32);
    __putint(tab[0] + tab[1] + tab[2] + tab[3]);
    return 0;
}
"""
    # b = -a0init is not constant-foldable (identifier): expect error
    with pytest.raises(CompileError):
        compile_program(src, "bad")
    src_ok = src.replace("int b = -a0init;", "int b = -7;")
    assert outputs(src_ok) == "22 81"


def test_local_array_initializer():
    src = """
int main(void) {
    int v[4] = { 9, 8, 7, 6 };
    char s[4] = { 1, 2, 3, 4 };
    __putint(v[0] + v[3] + s[1]);
    return 0;
}
"""
    assert outputs(src) == "17"


def test_string_literals_and_puts():
    src = """
int main(void) {
    char *msg = "hello world";
    __puts(msg);
    __putchar(10);
    __putint(strlen(msg));
    return 0;
}
"""
    assert outputs(src) == "hello world\n11"


def test_break_continue_depths():
    src = """
int main(void) {
    int i; int j; int acc = 0;
    for (i = 0; i < 5; i++) {
        if (i == 3) continue;
        for (j = 0; j < 5; j++) {
            if (j == 2) break;
            acc += 1;
        }
        if (i == 4) break;
        acc += 100;
    }
    __putint(acc);
    return 0;
}
"""
    # i=0,1,2: inner adds 2, then +100 -> 306; i=3 skipped; i=4: +2
    assert outputs(src) == "308"


def test_while_and_do_while():
    src = """
int main(void) {
    int n = 0;
    while (n < 5) n++;
    do { n++; } while (0);
    __putint(n);
    return 0;
}
"""
    assert outputs(src) == "6"


def test_switch_fallthrough():
    src = """
int main(void) {
    int acc = 0;
    int i;
    for (i = 0; i < 4; i++) {
        switch (i) {
        case 0: acc += 1;   // falls through
        case 1: acc += 10; break;
        case 2: acc += 100; break;
        default: acc += 1000;
        }
    }
    __putint(acc);
    return 0;
}
"""
    assert outputs(src) == "1121"


def test_deep_expression_spills():
    """Force the register stack past its 12 registers."""
    expr = "1" + " + 1" * 40
    nested = ("(1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 + (10 + "
              "(11 + (12 + (13 + (14 + 15))))))))))))))")
    assert expr_value(expr) == 41
    assert expr_value(nested) == 120


def test_deep_call_args_with_live_temps():
    src = """
int f(int a, int b) { return a * 100 + b; }
int main(void) {
    __putint(1 + f(2, 3) + f(4, f(5, 6)) * 1000);
    return 0;
}
"""
    assert outputs(src) == str(1 + 203 + (400 + 506) * 1000)


def test_undefined_variable_error():
    with pytest.raises(CompileError):
        compile_program("int main(void) { return nope; }", "bad")


def test_array_not_assignable():
    with pytest.raises(CompileError):
        compile_program("int a[3]; int main(void) { a = 0; return 0; }",
                        "bad")


def test_break_outside_loop():
    with pytest.raises(CompileError):
        compile_program("int main(void) { break; return 0; }", "bad")


def test_intrinsic_arity_checked():
    with pytest.raises(CompileError):
        compile_program("int main(void) { __putint(1, 2); return 0; }",
                        "bad")


def test_cycles_intrinsic_monotone():
    src = """
int main(void) {
    int t0 = __cycles();
    int i;
    int acc = 0;
    for (i = 0; i < 100; i++) acc += i;
    __putint(__cycles() > t0);
    return 0;
}
"""
    assert outputs(src) == "1"
