"""Evaluation harness: replay fidelity, drivers, renderers.

The key test here validates the Figure-7 shortcut: tcache replay over
a block trace must produce exactly the same translation count as the
live SoftCache system.
"""

import pytest

from repro.eval import (
    chunk_entry_sequence,
    native_trace,
    render_table1,
    replay_tcache,
    table1,
    tagspace,
)
from repro.eval.render import ascii_table, fmt_bytes, series_plot
from repro.net import LOCAL_LINK
from repro.softcache import SoftCacheConfig, SoftCacheSystem


@pytest.fixture(scope="module")
def sensor_run():
    return native_trace("sensor", 0.1)


def test_trace_cached(sensor_run):
    again = native_trace("sensor", 0.1)
    assert again is sensor_run


def test_chunk_entries_subset_of_trace(sensor_run):
    entries = chunk_entry_sequence(sensor_run.image, sensor_run.trace)
    assert 0 < entries.size < sensor_run.trace.size
    # every entry is a fetched pc
    assert set(entries[:50].tolist()) <= set(sensor_run.trace.tolist())


@pytest.mark.parametrize("tcache_size,policy", [
    (48 * 1024, "fifo"), (1024, "fifo"), (1024, "flush"),
    (640, "fifo")])
def test_replay_matches_live_system(sensor_run, tcache_size, policy):
    """The replay's translation count equals the real system's."""
    # generous stub area: the replay does not model the (legitimate)
    # stub-exhaustion flush fallback, so take it out of the picture
    live_config = SoftCacheConfig(tcache_size=tcache_size,
                                  policy=policy, link=LOCAL_LINK,
                                  stub_capacity=8192,
                                  record_timeline=False)
    system = SoftCacheSystem(sensor_run.image, live_config)
    system.run(400_000_000)
    assert system.stats.flushes == 0 or policy == "flush"
    live = system.stats.translations
    replayed = replay_tcache(sensor_run.image, sensor_run.trace,
                             tcache_size, policy=policy).translations
    assert replayed == live


def test_replay_monotone_in_size(sensor_run):
    small = replay_tcache(sensor_run.image, sensor_run.trace, 512)
    big = replay_tcache(sensor_run.image, sensor_run.trace, 65536)
    assert big.translations <= small.translations
    assert big.miss_rate <= small.miss_rate
    assert big.evictions == 0


def test_replay_instruction_count_matches(sensor_run):
    result = replay_tcache(sensor_run.image, sensor_run.trace, 4096)
    assert result.instructions == sensor_run.trace.size


def test_table1_rows_and_render():
    rows = table1(scale=0.05, workloads=("sensor",))
    assert rows[0].dynamic_text < rows[0].static_text
    text = render_table1(rows)
    assert "sensor" in text and "Static" in text


def test_tagspace_values():
    rows = tagspace()
    assert rows[0][1] > rows[-1][1]
    assert all(10 <= pct <= 19 for _, pct in rows)


def test_render_helpers():
    table = ascii_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "333" in table
    plot = series_plot(["x0", "x1"], [1.0, 2.0], label="L")
    assert plot.startswith("L")
    assert plot.count("#") > 0
    assert fmt_bytes(512) == "512B"
    assert fmt_bytes(2048) == "2.0KB"
    assert fmt_bytes(3 * 1024 * 1024) == "3.0MB"
