"""Property-based equivalence: for ANY program, architectural results
under the SoftCache equal native execution.

A hypothesis strategy generates random-but-terminating MinC programs
(nested control flow, calls, recursion, globals, arrays), runs them
natively and under SoftCache configurations spanning both prototypes
and both eviction policies with deliberately thrash-inducing tcache
sizes, and requires identical output and exit codes.  With
``debug_poison`` on, any dangling tcache pointer executes a BREAK and
fails loudly rather than silently.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.lang import compile_program
from repro.sim import run_native
from repro.softcache import SoftCacheConfig, SoftCacheSystem

# -- random program generator ------------------------------------------------

_BINOPS = ["+", "-", "*", "/", "%", "&", "|", "^"]
_CMPS = ["<", "<=", ">", ">=", "==", "!="]


@st.composite
def exprs(draw, depth=0, vars_=("a", "b", "g0")):
    kind = draw(st.integers(0, 5 if depth < 3 else 1))
    if kind == 0:
        value = draw(st.integers(-50, 50))
        return f"({value})" if value < 0 else str(value)
    if kind == 1:
        return draw(st.sampled_from(vars_))
    if kind == 2:
        op = draw(st.sampled_from(_BINOPS))
        left = draw(exprs(depth=depth + 1, vars_=vars_))
        right = draw(exprs(depth=depth + 1, vars_=vars_))
        if op in ("/", "%"):
            # avoid div-by-zero while keeping both operands interesting
            return f"({left} {op} (({right} & 7) + 1))"
        return f"({left} {op} {right})"
    if kind == 3:
        op = draw(st.sampled_from(_CMPS))
        left = draw(exprs(depth=depth + 1, vars_=vars_))
        right = draw(exprs(depth=depth + 1, vars_=vars_))
        return f"({left} {op} {right})"
    if kind == 4:
        inner = draw(exprs(depth=depth + 1, vars_=vars_))
        return f"(-{inner})"
    inner = draw(exprs(depth=depth + 1, vars_=vars_))
    return f"(helper({inner}) )"


@st.composite
def stmts(draw, depth=0):
    kind = draw(st.integers(0, 4 if depth < 2 else 1))
    if kind == 0:
        target = draw(st.sampled_from(["a", "b", "g0"]))
        value = draw(exprs())
        return f"{target} = {value};"
    if kind == 1:
        value = draw(exprs())
        idx = draw(st.integers(0, 7))
        return f"arr[{idx}] = {value}; b = b + arr[{idx} ];"
    if kind == 2:
        cond = draw(exprs())
        then = draw(stmts(depth=depth + 1))
        other = draw(stmts(depth=depth + 1))
        return f"if ({cond}) {{ {then} }} else {{ {other} }}"
    if kind == 3:
        body = draw(stmts(depth=depth + 1))
        bound = draw(st.integers(1, 6))
        # one counter per nesting depth: sharing would not terminate
        return (f"for (k{depth} = 0; k{depth} < {bound}; k{depth}++) "
                f"{{ {body} a = a + 1; }}")
    body = draw(stmts(depth=depth + 1))
    return f"{{ {body} {draw(stmts(depth=depth + 1))} }}"


@st.composite
def programs(draw):
    body = " ".join(draw(st.lists(stmts(), min_size=1, max_size=5)))
    rec_base = draw(st.integers(1, 8))
    return f"""
int arr[8];
int g0 = {draw(st.integers(-9, 9))};

int helper(int x) {{
    return (x & 15) * 3 - 7;
}}

int rec(int n) {{
    if (n <= 0) return 1;
    return rec(n - 1) + (n & 3);
}}

int main(void) {{
    int a = 0;
    int b = 1;
    int k0 = 0; int k1 = 0; int k2 = 0;
    {body}
    a = a + rec({rec_base});
    __putint(a);
    __putchar(44);
    __putint(b);
    __putchar(44);
    __putint(g0);
    __putchar(10);
    return 0;
}}
"""


def _configs(image):
    """Config matrix: a roomy cache plus thrash-sized ones that still
    admit the largest single chunk of this particular program."""
    from repro.cfg import build_cfg
    biggest_block = max(b.size for b in build_cfg(image).blocks.values())
    thrash = max(512, 2 * biggest_block + 64)
    return [
        SoftCacheConfig(tcache_size=48 * 1024, granularity="block",
                        debug_poison=True),
        SoftCacheConfig(tcache_size=thrash, granularity="block",
                        policy="fifo", debug_poison=True),
        SoftCacheConfig(tcache_size=thrash, granularity="block",
                        policy="flush", debug_poison=True),
        SoftCacheConfig(tcache_size=2 * thrash, granularity="ebb",
                        policy="fifo", debug_poison=True),
        SoftCacheConfig(tcache_size=2 * thrash, granularity="ebb",
                        policy="flush", debug_poison=True),
    ]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(programs())
def test_random_programs_equivalent(source):
    image = compile_program(source, "prop")
    native = run_native(image, max_instructions=2_000_000)
    expected = native.output_text
    for config in _configs(image):
        system = SoftCacheSystem(image, config)
        system.cc.start()
        system.machine.cpu.run(5_000_000)
        assert system.machine.output_text == expected, (
            f"divergence under {config.granularity}/{config.policy}/"
            f"{config.tcache_size}:\n{source}")


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(programs())
def test_random_programs_proc_mode(source):
    image = compile_program(source, "prop_arm", indirect_ok=False)
    native = run_native(image, max_instructions=2_000_000)
    expected = native.output_text
    min_size = max(p.size for p in image.procs) + 128
    for size, policy in ((65536, "fifo"), (min_size, "fifo"),
                         (min_size, "flush")):
        config = SoftCacheConfig(tcache_size=size, granularity="proc",
                                 policy=policy, debug_poison=True)
        system = SoftCacheSystem(image, config)
        system.cc.start()
        system.machine.cpu.run(5_000_000)
        assert system.machine.output_text == expected, (
            f"divergence under proc/{policy}/{size}:\n{source}")
