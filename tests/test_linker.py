"""Linker: layout, symbol resolution, relocations, proc spans."""

import pytest

from repro.asm import LinkError, assemble, assemble_and_link, link
from repro.isa import Op, decode, jump_target
from repro.layout import DATA_BASE, TEXT_BASE


def test_simple_link_has_crt0_entry():
    image = assemble_and_link("""
    .global main
main: li a0, 0
      ret
""")
    assert image.entry == TEXT_BASE
    assert image.symbols["_start"] == TEXT_BASE
    assert "main" in image.symbols


def test_cross_object_call():
    obj_a = assemble("""
    .global main
main:
    jal helper
    ret
""", "a")
    obj_b = assemble("""
    .global helper
helper:
    li a0, 7
    ret
""", "b")
    image = link([obj_a, obj_b])
    main_addr = image.symbols["main"]
    jal_word = image.word_at(main_addr)
    assert decode(jal_word).op is Op.JAL
    assert jump_target(jal_word) == image.symbols["helper"]


def test_undefined_symbol():
    obj = assemble(".global main\nmain: jal missing", "a")
    with pytest.raises(LinkError, match="missing"):
        link([obj])


def test_duplicate_global():
    obj_a = assemble(".global f\nf: ret", "a")
    obj_b = assemble(".global f\nf: ret", "b")
    with pytest.raises(LinkError, match="duplicate"):
        link([obj_a, obj_b], add_crt0=False, entry_symbol="f")


def test_local_symbols_do_not_collide():
    obj_a = assemble(".global main\nmain: j loc\nloc: ret", "a")
    obj_b = assemble(".global other\nother: j loc\nloc: ret", "b")
    image = link([obj_a, obj_b])
    # each object's jump resolves to its own local label
    main_j = image.word_at(image.symbols["main"])
    other_j = image.word_at(image.symbols["other"])
    assert jump_target(main_j) == image.symbols["main"] + 4
    assert jump_target(other_j) == image.symbols["other"] + 4


def test_data_layout_and_w32():
    image = assemble_and_link("""
    .global main
main: ret
    .data
    .global table
table: .word main, 123
""")
    assert image.data_base == DATA_BASE
    addr = image.symbols["table"]
    assert image.word_at(addr) == image.symbols["main"]
    assert image.word_at(addr + 4) == 123


def test_bss_after_data():
    image = assemble_and_link("""
    .global main
main: ret
    .data
d: .word 1
    .bss
    .global buf
buf: .space 64
""")
    assert image.symbols["buf"] >= image.bss_base
    assert image.bss_size >= 64


def test_proc_spans_cover_text():
    image = assemble_and_link("""
    .global main
    .proc main
main:
    nop
    ret
    .global f2
    .proc f2
f2:
    nop
    nop
    ret
""")
    names = [p.name for p in image.procs]
    assert names == ["_start", "main", "f2"]
    main = image.proc_named("main")
    f2 = image.proc_named("f2")
    assert main.size == 8
    assert f2.size == 12
    assert image.proc_at(main.addr + 4) is main
    assert image.proc_at(f2.addr) is f2


def test_hi_lo_relocation():
    image = assemble_and_link("""
    .global main
main:
    la t0, big
    ret
    .data
    .global big
big: .word 42
""")
    addr = image.symbols["main"]
    lui = decode(image.word_at(addr))
    ori = decode(image.word_at(addr + 4))
    value = (lui.imm << 16) | ori.imm
    assert value == image.symbols["big"]


def test_branch_reloc_cross_label():
    image = assemble_and_link("""
    .global main
main:
    beq zero, zero, skip
    nop
skip:
    ret
""")
    from repro.isa import branch_target
    addr = image.symbols["main"]
    assert branch_target(image.word_at(addr), addr) == addr + 8


def test_misaligned_jump_target_rejected():
    obj = assemble("""
    .global main
main: j odd
    .data
odd_base: .byte 1
""", "a")
    # no such symbol at all -> undefined error path also works
    with pytest.raises(LinkError):
        link([obj])


def test_static_text_includes_everything():
    """No dead-code GC: unused functions still occupy text."""
    small = assemble_and_link("""
    .global main
main: ret
""")
    big = assemble_and_link("""
    .global main
main: ret
    .global unused
unused:
    nop
    nop
    nop
    nop
    ret
""")
    assert big.static_text_size == small.static_text_size + 20
