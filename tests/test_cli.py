"""Command-line interface."""

import pytest

from repro.cli import main


def test_workloads_lists_all(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("compress95", "adpcm_enc", "sensor"):
        assert name in out


def test_run_native(capsys):
    code = main(["run", "sensor", "--scale", "0.05", "--native"])
    out = capsys.readouterr().out
    assert code == 0
    assert "day_events=" in out
    assert "[native]" in out


def test_run_softcache(capsys):
    code = main(["run", "sensor", "--scale", "0.05",
                 "--tcache", "4096", "--local-link"])
    out = capsys.readouterr().out
    assert code == 0
    assert "translations" in out
    assert "[softcache block/fifo" in out


def test_run_with_dcache(capsys):
    code = main(["run", "sensor", "--scale", "0.05",
                 "--tcache", "16384", "--dcache", "1024",
                 "--local-link"])
    out = capsys.readouterr().out
    assert code == 0
    assert "dcache" in out


def test_run_proc_granularity(capsys):
    code = main(["run", "adpcm_enc", "--scale", "0.05",
                 "--granularity", "proc", "--tcache", "8192",
                 "--local-link"])
    assert code == 0
    assert "proc/fifo" in capsys.readouterr().out


def test_profile(capsys):
    assert main(["profile", "sensor", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "norm footprint" in out
    assert "day_step" in out


def test_disasm_proc(capsys):
    assert main(["disasm", "sensor", "--proc", "day_step"]) == 0
    out = capsys.readouterr().out
    assert "ret" in out
    assert out.count("\n") > 10


def test_figures_subset(capsys):
    assert main(["figures", "--only", "tagspace"]) == 0
    assert "11" in capsys.readouterr().out


def test_figures_unknown(capsys):
    assert main(["figures", "--only", "fig99"]) == 2


def test_bad_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nonexistent"])
