"""Command-line interface."""

import pytest

from repro.cli import main


def test_workloads_lists_all(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("compress95", "adpcm_enc", "sensor"):
        assert name in out


def test_run_native(capsys):
    code = main(["run", "sensor", "--scale", "0.05", "--native"])
    out = capsys.readouterr().out
    assert code == 0
    assert "day_events=" in out
    assert "[native]" in out


def test_run_softcache(capsys):
    code = main(["run", "sensor", "--scale", "0.05",
                 "--tcache", "4096", "--local-link"])
    out = capsys.readouterr().out
    assert code == 0
    assert "translations" in out
    assert "[softcache block/fifo" in out


def test_run_with_dcache(capsys):
    code = main(["run", "sensor", "--scale", "0.05",
                 "--tcache", "16384", "--dcache", "1024",
                 "--local-link"])
    out = capsys.readouterr().out
    assert code == 0
    assert "dcache" in out


def test_run_proc_granularity(capsys):
    code = main(["run", "adpcm_enc", "--scale", "0.05",
                 "--granularity", "proc", "--tcache", "8192",
                 "--local-link"])
    assert code == 0
    assert "proc/fifo" in capsys.readouterr().out


def test_profile(capsys):
    assert main(["profile", "sensor", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "norm footprint" in out
    assert "day_step" in out


def test_disasm_proc(capsys):
    assert main(["disasm", "sensor", "--proc", "day_step"]) == 0
    out = capsys.readouterr().out
    assert "ret" in out
    assert out.count("\n") > 10


def test_figures_subset(capsys):
    assert main(["figures", "--only", "tagspace"]) == 0
    assert "11" in capsys.readouterr().out


def test_figures_unknown(capsys):
    assert main(["figures", "--only", "fig99"]) == 2


def test_bad_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nonexistent"])


def _check_trace_outputs(base):
    """The two export files exist and convert/load as advertised."""
    import json

    from repro.obs import TRACE_SCHEMA_VERSION, load_jsonl
    meta, events = load_jsonl(f"{base}.jsonl")
    assert meta["schema"] == TRACE_SCHEMA_VERSION and events
    doc = json.loads(open(f"{base}.trace.json").read())
    assert doc["traceEvents"]
    assert {r["ph"] for r in doc["traceEvents"]} <= {"i", "X", "M"}


@pytest.mark.parametrize("workload", ["sensor", "adpcm_enc"])
def test_trace_subcommand(capsys, tmp_path, monkeypatch, workload):
    monkeypatch.chdir(tmp_path)
    code = main(["trace", workload, "--scale", "0.05",
                 "--tcache", "2048", "--out", f"t-{workload}"])
    out = capsys.readouterr().out
    assert code == 0
    assert "event counts:" in out
    assert "timeline:" in out
    assert "hot chunks" in out
    assert "metrics highlights:" in out
    _check_trace_outputs(tmp_path / f"t-{workload}")


def test_run_with_trace_flag(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["run", "sensor", "--scale", "0.05",
                 "--tcache", "2048", "--local-link",
                 "--trace", "out"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[trace]" in out
    _check_trace_outputs(tmp_path / "out")


def test_debug_subcommand(capsys):
    code = main(["debug", "sensor", "--scale", "0.05",
                 "--tcache", "2048", "--poison"])
    captured = capsys.readouterr()
    assert code == 0
    assert "tcache:" in captured.out
    assert "consistency OK" in captured.err


def test_debug_dot(capsys):
    code = main(["debug", "sensor", "--scale", "0.05",
                 "--tcache", "2048", "--dot"])
    out = capsys.readouterr().out
    assert code == 0
    assert out.startswith("digraph tcache {")
    assert "->" in out


def test_run_with_fault_plan(capsys):
    code = main(["run", "sensor", "--scale", "0.05",
                 "--tcache", "2048", "--local-link",
                 "--fault-plan", "lossy", "--seed", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "faults" in out
    assert "retries" in out and "delivered" in out


def test_chaos_subcommand_ok(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["chaos", "--workloads", "sensor", "--plans", "2",
                 "--scale", "0.05", "--tcache", "2048"])
    out = capsys.readouterr().out
    assert code == 0
    assert "all 2 cells reached the fault-free architectural state" \
        in out
    assert not (tmp_path / "chaos-artifacts").exists()


def test_chaos_failure_writes_artifacts(capsys, tmp_path, monkeypatch):
    """A diverging cell exits nonzero and leaves its plan + trace."""
    monkeypatch.chdir(tmp_path)
    digests = iter(["baseline", "diverged-cell"])
    monkeypatch.setattr("repro.softcache.debug.architectural_state",
                        lambda system: next(digests))
    code = main(["chaos", "--workloads", "sensor", "--plans", "1",
                 "--scale", "0.05", "--tcache", "2048",
                 "--out-dir", "arts"])
    captured = capsys.readouterr()
    assert code == 1
    assert "FAIL sensor-seed0" in captured.err
    assert (tmp_path / "arts" / "chaos-sensor-seed0.plan.txt").exists()
    plan_text = (tmp_path / "arts" /
                 "chaos-sensor-seed0.plan.txt").read_text()
    assert "FaultPlan" in plan_text and "error:" in plan_text
    _check_trace_outputs(tmp_path / "arts" / "chaos-sensor-seed0")


def test_fleet_subcommand(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["fleet", "sensor", "--scale", "0.05",
                 "--tcache", "2048", "--clients", "3",
                 "--stagger", "0.001", "--trace", "fleet"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[fleet] 3 clients" in out
    assert "event queue model" in out
    assert "uplink" in out
    _check_trace_outputs(tmp_path / "fleet")


def test_fleet_sharded_with_hub_and_prom(capsys, tmp_path,
                                         monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["fleet", "sensor", "--scale", "0.05",
                 "--tcache", "2048", "--clients", "6",
                 "--shards", "4", "--hub-capacity", "65536",
                 "--prom-out", "fleet.prom"])
    out = capsys.readouterr().out
    assert code == 0
    assert "shards            : 4" in out
    assert "edge hub" in out
    prom = (tmp_path / "fleet.prom").read_text()
    assert "repro_fleet_clients_total 6" in prom
    assert "repro_fleet_shard3_requests_total" in prom


def test_fleet_legacy_queue_model(capsys):
    code = main(["fleet", "sensor", "--scale", "0.05",
                 "--tcache", "2048", "--clients", "2",
                 "--queue-model", "legacy"])
    out = capsys.readouterr().out
    assert code == 0
    assert "legacy queue model" in out


def test_run_prom_out(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["run", "sensor", "--scale", "0.05",
                 "--tcache", "2048", "--local-link",
                 "--prom-out", "run.prom"])
    out = capsys.readouterr().out
    assert code == 0
    assert "prometheus" in out
    prom = (tmp_path / "run.prom").read_text()
    assert "# TYPE repro_cc_translations_total counter" in prom
    assert "repro_sim_cycles" in prom
