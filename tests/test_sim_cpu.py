"""CPU semantics: one test per instruction class, plus control flow,
traps and accounting."""

import pytest

from repro.sim import BreakHit, CycleLimitExceeded, FetchFault
from repro.sim.errors import SimError

from conftest import run_asm


def run_expr(body: str, max_instructions: int = 100_000) -> int:
    """Run asm that leaves its result in a0; return the printed value."""
    machine = run_asm(f"""
    .global main
main:
{body}
    syscall putint
    li a0, 0
    ret
""", max_instructions)
    return int(machine.output_text)


def test_add_sub():
    assert run_expr("li a0, 40\nli t0, 2\nadd a0, a0, t0") == 42
    assert run_expr("li a0, 40\nli t0, 100\nsub a0, a0, t0") == -60


def test_add_wraps_32bit():
    assert run_expr("li a0, 0x7FFFFFFF\naddi a0, a0, 1") == -2147483648


def test_logic_ops():
    assert run_expr("li a0, 0xF0\nli t0, 0x3C\nand a0, a0, t0") == 0x30
    assert run_expr("li a0, 0xF0\nli t0, 0x0F\nor a0, a0, t0") == 0xFF
    assert run_expr("li a0, 0xFF\nli t0, 0x0F\nxor a0, a0, t0") == 0xF0
    assert run_expr("li a0, 0\nli t0, 0\nnor a0, a0, t0") == -1


def test_slt_signed_unsigned():
    assert run_expr("li a0, -1\nli t0, 1\nslt a0, a0, t0") == 1
    assert run_expr("li a0, -1\nli t0, 1\nsltu a0, a0, t0") == 0
    assert run_expr("li a0, 5\nslti a0, a0, 6") == 1
    assert run_expr("li a0, 5\nsltiu a0, a0, 5") == 0


def test_shifts():
    assert run_expr("li a0, 1\nslli a0, a0, 31") == -2147483648
    assert run_expr("li a0, -8\nsrai a0, a0, 2") == -2
    assert run_expr("li a0, -8\nsrli a0, a0, 2") == 0x3FFFFFFE
    assert run_expr("li a0, 3\nli t0, 4\nsll a0, a0, t0") == 48
    # shift amounts use the low 5 bits
    assert run_expr("li a0, 1\nli t0, 33\nsll a0, a0, t0") == 2


def test_mul_div_rem():
    assert run_expr("li a0, -7\nli t0, 6\nmul a0, a0, t0") == -42
    assert run_expr("li a0, -7\nli t0, 2\ndiv a0, a0, t0") == -3
    assert run_expr("li a0, -7\nli t0, 2\nrem a0, a0, t0") == -1
    assert run_expr("li a0, 7\nli t0, -2\ndiv a0, a0, t0") == -3


def test_div_by_zero_conventions():
    assert run_expr("li a0, 5\nli t0, 0\ndiv a0, a0, t0") == -1
    assert run_expr("li a0, 5\nli t0, 0\nrem a0, a0, t0") == 5


def test_lui_ori():
    assert run_expr("lui a0, 0x1234\nori a0, a0, 0x5678") == 0x12345678


def test_writes_to_zero_discarded():
    assert run_expr("li a0, 3\nadd zero, a0, a0\nadd a0, zero, zero") == 0


def test_loads_stores_word():
    assert run_expr("""
    la t0, buf
    li t1, 0x11223344
    sw t1, 0(t0)
    lw a0, 0(t0)
    .data
buf: .word 0
    .text
""") == 0x11223344


def test_byte_halfword_sign_extension():
    assert run_expr("""
    la t0, buf
    li t1, 0xFF
    sb t1, 0(t0)
    lb a0, 0(t0)
    .data
buf: .word 0
    .text
""") == -1
    assert run_expr("""
    la t0, buf
    li t1, 0x8000
    sh t1, 0(t0)
    lh a0, 0(t0)
    .data
buf: .word 0
    .text
""") == -32768
    assert run_expr("""
    la t0, buf
    li t1, 0x8000
    sh t1, 0(t0)
    lhu a0, 0(t0)
    .data
buf: .word 0
    .text
""") == 0x8000


def test_branches_taken_and_not():
    assert run_expr("""
    li a0, 0
    li t0, 5
    li t1, 5
    bne t0, t1, bad
    addi a0, a0, 1
    beq t0, t1, good
bad:
    li a0, 99
    j end
good:
    addi a0, a0, 1
end:
""") == 2


def test_branch_signedness():
    assert run_expr("""
    li a0, 1
    li t0, -1
    li t1, 1
    blt t0, t1, ok      ; signed: -1 < 1
    li a0, 0
ok:
    bltu t0, t1, bad    ; unsigned: 0xffffffff > 1
    j end
bad:
    li a0, 0
end:
""") == 1


def test_jal_jalr_ret():
    assert run_expr("""
    mv s0, ra
    jal f
    j end
f:
    li a0, 77
    ret
end:
    mv ra, s0
""") == 77
    assert run_expr("""
    mv s0, ra
    la t0, f
    jalr ra, t0
    j end
f:
    li a0, 88
    ret
end:
    mv ra, s0
""") == 88


def test_jr_through_table():
    assert run_expr("""
    la t0, table
    lw t0, 4(t0)
    jr t0
a0case:
    li a0, 10
    j end
a1case:
    li a0, 20
    j end
end:
    nop
    j out
    .data
table: .word a0case, a1case
    .text
out:
""") == 20


def test_break_raises():
    with pytest.raises(BreakHit):
        run_asm(".global main\nmain: break 3\nret")


def test_halt_instruction():
    machine = run_asm(".global main\nmain: halt\nret")
    assert machine.cpu.exit_code == 0


def test_fetch_fault_on_data():
    with pytest.raises(FetchFault):
        run_asm("""
    .global main
main:
    la t0, blob
    jr t0
    .data
blob: .word 0
""")


def test_cycle_limit():
    with pytest.raises(CycleLimitExceeded):
        run_asm(".global main\nmain: j main", max_instructions=10_000)


def test_unknown_trap_without_handler():
    with pytest.raises(SimError):
        run_asm(".global main\nmain: trap miss_branch, 0\nret")


def test_icount_and_cycles():
    machine = run_asm("""
    .global main
main:
    li a0, 0
    ret
""")
    # crt0: li(1) + add + jal, main: li + ret, crt0: syscall = 6
    assert machine.cpu.icount == 6
    assert machine.cpu.cycles >= machine.cpu.icount


def test_cycles_reflect_op_costs():
    m1 = run_asm(".global main\nmain: li a0, 0\nret")
    m2 = run_asm(".global main\nmain: li t0, 1\nli t1, 1\ndiv t2, t0, t1\nli a0, 0\nret")
    # div costs 12 cycles vs 1 for the extra li instructions
    base = m1.cpu.cycles
    assert m2.cpu.cycles == base + 1 + 1 + 12


def test_rewriting_invalidates_decode_cache():
    """Writing a new instruction word over executed code takes effect."""
    machine = run_asm("""
    .global main
main:
    mv s1, ra
    jal target                ; execute target once (decodes it)
    la  t0, target
    la  t1, newcode
    lw  t2, 0(t1)
    sw  t2, 0(t0)             ; overwrite 'li a0, 1' with 'li a0, 42'
    syscall invalidate
    jal target
    syscall putint
    li a0, 0
    mv ra, s1
    ret
target:
    li a0, 1
    ret
newcode:
    li a0, 42
""")
    assert machine.output_text == "42"
