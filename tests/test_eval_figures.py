"""Smoke tests of every figure driver at tiny scales, so the unit
suite alone exercises the whole evaluation surface (the benchmarks
re-run them at larger scales with shape assertions)."""

import pytest

from repro.eval import (
    PAPER_FIG5,
    PAPER_FIG9,
    PAPER_TABLE1,
    dcache_eval,
    extra_instruction_ablation,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    netcost,
    render_ablation,
    render_dcache,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_netcost,
)

TINY = 0.05


def test_fig5_driver():
    bars = fig5(scale=TINY, sizes=(48 * 1024, 512))
    assert bars[0].label == "ideal"
    assert bars[1].relative_time >= 1.0
    text = render_fig5(bars)
    assert "ideal" in text
    assert set(PAPER_FIG5) == {"48KB", "24KB", "1KB"}


def test_fig6_driver():
    curves = fig6(scale=TINY, sizes=(256, 4096),
                  workloads=("sensor",))
    assert curves[0].results[0].miss_rate >= \
        curves[0].results[1].miss_rate
    assert "sensor" in render_fig6(curves)


def test_fig7_driver():
    curves = fig7(scale=TINY, sizes=(256, 4096),
                  workloads=("sensor",))
    assert curves[0].results[0].miss_rate >= \
        curves[0].results[1].miss_rate
    assert "sensor" in render_fig7(curves)


def test_fig8_driver():
    series = fig8(scale=0.1, nbins=6)
    assert len(series) == 3
    assert all(len(s.rates) == 6 for s in series)
    text = render_fig8(series)
    assert "evictions per second" in text


def test_fig9_driver():
    bars = fig9(scale=TINY, workloads=("adpcm_enc",))
    assert 0 < bars[0].normalized_footprint < 1
    assert "adpcm_enc" in render_fig9(bars)
    assert set(PAPER_FIG9) == {"adpcm_enc", "adpcm_dec", "gzip",
                               "cjpeg"}
    assert set(PAPER_TABLE1) == {"compress95", "adpcm_enc", "hextobdd",
                                 "mpeg2enc"}


def test_netcost_driver():
    result = netcost(scale=TINY)
    assert result.overhead_per_exchange == 60.0
    assert "60B" in render_netcost(result)


def test_ablation_driver():
    rows = extra_instruction_ablation(scale=TINY)
    assert [r.granularity for r in rows] == ["block", "ebb"]
    assert "ebb" in render_ablation(rows)


def test_dcache_driver():
    rows = dcache_eval(scale=0.03, dcache_sizes=(512,),
                       predictions=("last",))
    assert rows[0].fast_hits > 0
    assert "512" in render_dcache(rows)


def test_fig5_asserts_on_divergence(monkeypatch):
    """The driver itself guards correctness: outputs must match."""
    # a tcache too small for the largest chunk raises rather than
    # silently producing a wrong bar
    from repro.softcache import TCacheFull
    with pytest.raises(TCacheFull):
        fig5(scale=TINY, sizes=(16,))
