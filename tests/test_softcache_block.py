"""The SPARC-style (block/EBB) cache controller: behavior, patching,
eviction, invalidation, steady-state guarantees."""

import pytest

from repro.lang import compile_program
from repro.sim import run_native
from repro.softcache import (
    SoftCacheConfig,
    SoftCacheError,
    SoftCacheSystem,
    run_softcache,
)

from conftest import assert_equivalent

LOOP_SRC = r"""
int work(int x) { return x * 2 + 1; }

int main(void) {
    int i;
    int acc = 0;
    for (i = 0; i < 100; i++) acc += work(i);
    __putint(acc);
    return 0;
}
"""


@pytest.fixture(scope="module")
def loop_image():
    return compile_program(LOOP_SRC, "loop")


def test_basic_equivalence(loop_image):
    assert_equivalent(loop_image,
                      SoftCacheConfig(tcache_size=8192,
                                      debug_poison=True))


def test_steady_state_no_retranslation(loop_image):
    """Once the loop's blocks are chained, no further misses occur:
    the paper's zero-tag-check steady state."""
    config = SoftCacheConfig(tcache_size=16384, debug_poison=True)
    report, system = run_softcache(loop_image, config)
    stats = system.stats
    # every chunk translated exactly once (no eviction, no rework)
    assert stats.evictions == 0 and stats.flushes == 0
    assert stats.translations == system.mc.stats.chunks_built
    # trap counts are bounded by translations (each site patched once)
    assert stats.branch_miss_traps <= stats.translations * 2


def test_translations_bounded_by_static_blocks(loop_image):
    from repro.cfg import build_cfg
    config = SoftCacheConfig(tcache_size=16384)
    _, system = run_softcache(loop_image, config)
    cfg = build_cfg(loop_image)
    # without eviction, cannot translate more chunks than blocks exist
    assert system.stats.translations <= len(cfg.blocks)


def test_infinite_cache_one_miss_per_block(loop_image):
    config = SoftCacheConfig(tcache_size=64 * 1024)
    report, system = run_softcache(loop_image, config)
    # every miss trap translates at most one chunk, plus the entry
    assert system.stats.translations <= system.stats.miss_traps + 1


def test_jr_hash_fallback_counts():
    src = r"""
int f1(int x) { return x + 1; }
int f2(int x) { return x + 2; }
int main(void) {
    int i;
    int acc = 0;
    int fp;
    for (i = 0; i < 20; i++) {
        if (i & 1) fp = &f1;
        else fp = &f2;
        acc += fp(i);
    }
    __putint(acc);
    return 0;
}
"""
    image = compile_program(src, "indirect")
    native, report, system = assert_equivalent(
        image, SoftCacheConfig(tcache_size=16384, debug_poison=True))
    # every indirect call pays the hash lookup: >= 20 lookups
    assert system.stats.jr_lookups >= 20


def test_switch_jump_table_under_softcache():
    src = r"""
int main(void) {
    int i;
    int acc = 0;
    for (i = 0; i < 32; i++) {
        switch (i % 8) {
        case 0: acc += 1; break;
        case 1: acc += 2; break;
        case 2: acc += 3; break;
        case 3: acc += 5; break;
        case 4: acc += 7; break;
        case 5: acc += 11; break;
        case 6: acc += 13; break;
        default: acc += 17; break;
        }
    }
    __putint(acc);
    return 0;
}
"""
    image = compile_program(src, "switchy")
    native, report, system = assert_equivalent(
        image, SoftCacheConfig(tcache_size=16384, debug_poison=True))
    # 28 of 32 iterations go through the jump table (4 hit default)
    assert system.stats.jr_lookups == 28


@pytest.mark.parametrize("granularity", ["block", "ebb"])
@pytest.mark.parametrize("policy", ["fifo", "flush"])
@pytest.mark.parametrize("size", [160, 256, 1024])
def test_tiny_tcache_equivalence(loop_image, granularity, policy, size):
    """Thrash-mode correctness across the config matrix."""
    config = SoftCacheConfig(tcache_size=size, granularity=granularity,
                             policy=policy, debug_poison=True)
    assert_equivalent(loop_image, config)


def test_recursion_deep_stack_eviction():
    """Deep recursion plants many return addresses on the stack; a
    thrashing tcache must fix all of them on each eviction."""
    src = r"""
int sum(int n) {
    if (n == 0) return 0;
    return n + sum(n - 1);
}
int main(void) {
    __putint(sum(200));
    return 0;
}
"""
    image = compile_program(src, "recur")
    for policy in ("fifo", "flush"):
        config = SoftCacheConfig(tcache_size=256, policy=policy,
                                 debug_poison=True)
        native, report, system = assert_equivalent(image, config)
        assert system.stats.stack_slots_fixed > 0


def test_extra_instructions_per_block(loop_image):
    """§2.2: the block chunker adds ~1-2 instructions per translated
    block; the EBB chunker optimizes them away."""
    block_cfg = SoftCacheConfig(tcache_size=32768, granularity="block")
    ebb_cfg = SoftCacheConfig(tcache_size=32768, granularity="ebb")
    _, sys_block = run_softcache(loop_image, block_cfg)
    _, sys_ebb = run_softcache(loop_image, ebb_cfg)
    assert sys_block.stats.extra_instructions_per_translation() > 0.3
    assert sys_ebb.stats.extra_instructions_per_translation() < 0.1


def test_ebb_faster_than_block(loop_image):
    native = run_native(loop_image)
    _, sys_block = run_softcache(
        loop_image, SoftCacheConfig(tcache_size=32768,
                                    granularity="block"))
    _, sys_ebb = run_softcache(
        loop_image, SoftCacheConfig(tcache_size=32768, granularity="ebb"))
    assert sys_ebb.machine.cpu.cycles < sys_block.machine.cpu.cycles


def test_fetch_can_never_escape_tcache(loop_image):
    """Remote text is non-executable under the SoftCache."""
    system = SoftCacheSystem(loop_image, SoftCacheConfig())
    assert not system.machine.mem.region_named("text").executable


def test_run_report_fields(loop_image):
    report, system = run_softcache(loop_image, SoftCacheConfig())
    assert report.exit_code == 0
    assert report.instructions > 0
    assert report.cycles >= report.instructions
    assert report.seconds == pytest.approx(
        report.cycles / system.config.costs.cpu_hz)


def test_local_memory_accounting(loop_image):
    _, system = run_softcache(loop_image,
                              SoftCacheConfig(tcache_size=4096))
    usage = system.local_memory_in_use
    assert usage["tcache_capacity"] == 4096
    assert 0 < usage["tcache_used"] <= 4096
    assert usage["map_bytes"] == 8 * system.cc.tcache.resident_blocks


def test_link_traffic_accounted(loop_image):
    _, system = run_softcache(loop_image, SoftCacheConfig())
    stats = system.link_stats
    assert stats.exchanges == system.stats.translations
    assert stats.overhead_per_exchange() == 60.0
    assert stats.payload_bytes == system.mc.stats.bytes_served


def test_guest_invalidate_flushes(loop_image):
    src = r"""
int main(void) {
    int i;
    int acc = 0;
    for (i = 0; i < 10; i++) acc += i;
    __invalidate(0, 4096);
    for (i = 0; i < 10; i++) acc += i;
    __putint(acc);
    return 0;
}
"""
    image = compile_program(src, "inval")
    config = SoftCacheConfig(tcache_size=16384, debug_poison=True)
    native, report, system = assert_equivalent(image, config)
    assert system.stats.guest_invalidations == 1


def test_stub_exhaustion_raises_helpfully(loop_image):
    config = SoftCacheConfig(tcache_size=8192, stub_capacity=4,
                             policy="fifo")
    with pytest.raises(SoftCacheError, match="stub"):
        run_softcache(loop_image, config)


def test_chunk_larger_than_tcache():
    from repro.softcache import TCacheFull
    image = compile_program(LOOP_SRC, "loop2")
    with pytest.raises(TCacheFull):
        run_softcache(image, SoftCacheConfig(tcache_size=16,
                                             granularity="block"))
