"""Template-JIT tier: equivalence, invalidation, persistence.

The JIT tier compiles fused superblocks to specialized Python source
(registers as locals, constants folded, batched cycle accounting).
Like the closure tier it must be architecturally invisible — identical
registers, output, instruction and cycle counts to per-instruction
dispatch — including under dynamic rewriting: a patch overlapping a
JIT'd block must drop it exactly like a closure.  Compiled artifacts
persist in the trace cache, so a warm process binds blocks with zero
codegen.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble_and_link
from repro.isa import Insn, Op, encode
from repro.sim import (
    CycleLimitExceeded,
    JIT_CODEGEN_VERSION,
    Machine,
    MachineConfig,
)
from repro.sim import jitcache
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.workloads import build_workload

MASK32 = 0xFFFFFFFF

# Same shape as the PR 1 overlap goldens (test_superblock.LOOP_SRC):
# the prologue falls through into ``loop``, so the body words are
# covered by two superblocks and a patch must kill both.
LOOP_SRC = """
    .global main
    .global loop
    .global done
main:
    li   s0, 6
    li   s1, 0
loop:
    addi t0, s1, 3
    slli t1, t0, 1
    add  t2, t1, t0
    xori t3, t2, 0x55
    add  s1, t3, s1
    subi s0, s0, 1
    bne  s0, zero, loop
done:
    mv   a0, s1
    syscall putint
    li   a0, 0
    ret
"""

BODY_LEN = 7  # six straight-line words + the bne terminator

_IMAGE = assemble_and_link(LOOP_SRC, "loop")

#: Configs whose architectural results must be indistinguishable.
_MODES = {
    "per_insn": MachineConfig(superblocks=False),
    "closure": MachineConfig(superblocks=True, jit="off"),
    "jit_hot": MachineConfig(superblocks=True, jit="hot",
                             jit_threshold=2),
    "jit_all": MachineConfig(superblocks=True, jit="all"),
}


def _run_mode(image, config):
    machine = Machine(image, config)
    exit_code = machine.run()
    return (exit_code, machine.cpu.icount, machine.cpu.cycles,
            machine.output_text, list(machine.cpu.regs)), machine


# -- cycle-identity across tiers --------------------------------------


@pytest.mark.parametrize("mode", ["closure", "jit_hot", "jit_all"])
def test_jit_equivalent_on_loop(mode):
    want, _ = _run_mode(_IMAGE, _MODES["per_insn"])
    got, machine = _run_mode(_IMAGE, _MODES[mode])
    assert got == want
    if mode != "closure":
        assert machine.cpu.jit_stats.jit_blocks > 0


def test_jit_equivalent_on_workload():
    image = build_workload("sensor", 0.02)
    want, _ = _run_mode(image, _MODES["per_insn"])
    for mode in ("closure", "jit_hot", "jit_all"):
        got, machine = _run_mode(image, _MODES[mode])
        assert got == want, mode
    js = machine.cpu.jit_stats  # jit_all: everything fused is JIT'd
    assert js.jit_blocks > 0
    assert js.jit_instructions > 0


def test_softcache_jit_equivalent():
    image = build_workload("sensor", 0.02)
    reports = []
    for jit in ("all", "off"):
        system = SoftCacheSystem(image, SoftCacheConfig(
            tcache_size=768, debug_poison=True, jit=jit))
        report = system.run()
        reports.append((report.exit_code, report.instructions,
                        report.cycles, report.output))
    assert reports[0] == reports[1]


# -- invalidation: SMC patches drop JIT'd blocks ----------------------


def _probe_warm_count() -> int:
    """Instructions until the third arrival at ``loop`` (a superblock
    boundary, so block dispatch stops exactly there too)."""
    machine = Machine(_IMAGE, MachineConfig(superblocks=False))
    loop = _IMAGE.symbols["loop"]
    visits = 0
    while True:
        if machine.cpu.pc == loop:
            visits += 1
            if visits == 3:
                return machine.cpu.icount
        machine.cpu.step()


WARM = _probe_warm_count()


def _warm_jit_machine() -> Machine:
    """Warm two loop trips so both overlapping blocks are JIT'd."""
    machine = Machine(_IMAGE, MachineConfig(superblocks=True,
                                            jit="all"))
    loop = _IMAGE.symbols["loop"]
    with pytest.raises(CycleLimitExceeded):
        machine.cpu.run(max_instructions=WARM)
    assert machine.cpu.icount == WARM
    assert machine.cpu.pc == loop
    tiers = {info["tier"] for info in machine.cpu.superblock_info(
        loop + 4)}
    assert tiers == {"jit"}
    return machine


def _finish(machine):
    machine.cpu.run()
    return (machine.cpu.exit_code, machine.cpu.icount,
            machine.cpu.cycles, machine.output_text,
            list(machine.cpu.regs))


@pytest.mark.parametrize("offset", range(BODY_LEN))
def test_patch_any_offset_drops_jit_block(offset):
    """A ``j done`` backpatched over any body word of a warm JIT'd
    block redirects the loop exactly as fresh per-instruction decode
    — and the block is gone from the dispatch table."""
    machine = _warm_jit_machine()
    killed_before = machine.cpu.sb_stats.invalidated_blocks
    addr = _IMAGE.symbols["loop"] + 4 * offset
    done = _IMAGE.symbols["done"]
    machine.mem.write_word(addr, encode(Insn(Op.J, imm=done >> 2)))
    assert machine.cpu.sb_stats.invalidated_blocks > killed_before
    assert machine.cpu.superblock_info(addr) == []

    # replay the same patch at the same warm point per-instruction
    ref = Machine(_IMAGE, MachineConfig(superblocks=False))
    with pytest.raises(CycleLimitExceeded):
        ref.cpu.run(max_instructions=WARM)
    assert ref.cpu.pc == machine.cpu.pc
    ref.mem.write_word(addr, encode(Insn(Op.J, imm=done >> 2)))
    assert _finish(machine) == _finish(ref)


def test_store_inside_jit_block_takes_effect():
    """A JIT'd block whose own store rewrites its body side-exits and
    re-dispatches the patched words (the cw-generation guard)."""
    src = """
        .global main
    main:
        li   t0, 8
        la   t1, patchme
        lw   t2, 0(t1)
        sw   t2, 0(t1)
        addi t3, zero, 1
    patchme:
        addi t3, t3, 2
        mv   a0, t3
        syscall putint
        li   a0, 0
        ret
    """
    image = assemble_and_link(src)
    results = []
    for config in (MachineConfig(superblocks=True, jit="all"),
                   MachineConfig(superblocks=False)):
        machine = Machine(image, config)
        machine.run()
        results.append((machine.cpu.icount, machine.cpu.cycles,
                        machine.output_text))
    assert results[0] == results[1]


# -- hypothesis property: jit=all ≡ jit=off ---------------------------

_REGS = list(range(8, 24))

_ALU_R = [Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.NOR, Op.SLT,
          Op.SLTU, Op.SLL, Op.SRL, Op.SRA, Op.MUL, Op.DIV, Op.REM]
_ALU_I = [Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI, Op.SLTIU,
          Op.SLLI, Op.SRLI, Op.SRAI, Op.LUI]

_HARNESS = """
    .global main
main:
    li a0, 0
    ret
"""

_SCRATCH = 0x0001_0000  # local RAM, executable in the test images


@st.composite
def programs(draw):
    """Random straight-line programs: ALU plus loads/stores into a
    data window, ending in HALT (unfusable, so the random body is
    exactly one superblock)."""
    seeds = {reg: draw(st.integers(0, MASK32)) for reg in _REGS}
    data = _SCRATCH + 0x800  # in-region scratch the stores may hit
    instructions = []
    for _ in range(draw(st.integers(1, 40))):
        kind = draw(st.integers(0, 5))
        if kind <= 2:
            op = draw(st.sampled_from(_ALU_R))
            instructions.append(Insn(
                op, rd=draw(st.sampled_from(_REGS)),
                rs1=draw(st.sampled_from(_REGS)),
                rs2=draw(st.sampled_from(_REGS))))
        elif kind == 3:
            op = draw(st.sampled_from(_ALU_I))
            imm = (draw(st.integers(0, 0xFFFF))
                   if op in (Op.ANDI, Op.ORI, Op.XORI, Op.SLTIU,
                             Op.SLLI, Op.SRLI, Op.SRAI, Op.LUI)
                   else draw(st.integers(-32768, 32767)))
            instructions.append(Insn(
                op, rd=draw(st.sampled_from(_REGS)),
                rs1=draw(st.sampled_from(_REGS)), imm=imm))
        else:
            # aligned load/store relative to a constant base register
            base_reg = 8
            instructions.append(Insn(Op.LUI, rd=base_reg,
                                     imm=data >> 16))
            instructions.append(Insn(Op.ORI, rd=base_reg, rs1=base_reg,
                                     imm=data & 0xFFFF))
            off = draw(st.integers(0, 31))
            mem_op = draw(st.sampled_from(
                [Op.LW, Op.LH, Op.LHU, Op.LB, Op.LBU, Op.SW, Op.SH,
                 Op.SB]))
            width = {Op.LW: 4, Op.SW: 4, Op.LH: 2, Op.LHU: 2,
                     Op.SH: 2}.get(mem_op, 1)
            instructions.append(Insn(
                mem_op, rd=draw(st.sampled_from(_REGS)),
                rs1=base_reg, imm=off * width))
    return instructions, seeds


def _run_random(instructions, seeds, config):
    machine = Machine(assemble_and_link(_HARNESS), config)
    words = [encode(ins) for ins in instructions]
    words.append(encode(Insn(Op.HALT)))
    machine.mem.write_bytes(_SCRATCH, b"".join(
        w.to_bytes(4, "little") for w in words))
    cpu = machine.cpu
    for reg, value in seeds.items():
        cpu.set_reg(reg, value)
    cpu.pc = _SCRATCH
    cpu.run(max_instructions=1000)
    return (cpu.icount, cpu.cycles, list(cpu.regs),
            machine.mem.read_bytes(_SCRATCH + 0x800, 128))


@settings(max_examples=60, deadline=None)
@given(programs())
def test_jit_differential_random_programs(program):
    instructions, seeds = program
    jit = _run_random(instructions, seeds,
                      MachineConfig(superblocks=True, jit="all"))
    ref = _run_random(instructions, seeds,
                      MachineConfig(superblocks=True, jit="off"))
    assert jit == ref


# -- persistent artifacts ---------------------------------------------


@pytest.fixture
def artifact_dir(tmp_path):
    jitcache.set_artifact_dir(tmp_path)
    try:
        yield tmp_path
    finally:
        jitcache.set_artifact_dir(None)


def test_jitcache_round_trip(artifact_dir):
    code = compile("def _sb(pc):\n    return pc + 4\n", "<t>", "exec")
    fixups = {5: (0, 1, 2, ((8, "x8"),))}
    digest = jitcache.artifact_key((1, 2), (0xDEAD, 0xBEEF))
    assert jitcache.store(digest, code, fixups, "src text")
    loaded = jitcache.load(digest)
    assert loaded is not None
    got_code, got_fixups, got_src = loaded
    assert got_fixups == fixups
    assert got_src == "src text"
    ns: dict = {}
    exec(got_code, ns)
    assert ns["_sb"](100) == 104


def test_jitcache_corrupt_file_is_a_miss(artifact_dir):
    digest = jitcache.artifact_key((1,), (1, 2, 3))
    jitcache.artifact_path(digest).write_bytes(b"not marshal data")
    assert jitcache.load(digest) is None


def test_jitcache_key_depends_on_version_and_content():
    a = jitcache.artifact_key((1, 2), (10, 20))
    assert a == jitcache.artifact_key((1, 2), (10, 20))
    assert a != jitcache.artifact_key((1, 2), (10, 21))
    assert a != jitcache.artifact_key((1, 3), (10, 20))
    assert f"jit-v{JIT_CODEGEN_VERSION}-" in jitcache.artifact_path(
        a).name


def test_sweep_stale_versions(artifact_dir):
    stale = [
        artifact_dir / "jit-v0-cpython-311-deadbeef.sbc",
        artifact_dir / f"jit-v{JIT_CODEGEN_VERSION}-otherpy-aa.sbc",
    ]
    for path in stale:
        path.write_bytes(b"x")
    fresh = artifact_dir / f"{jitcache.ARTIFACT_PREFIX}bb.sbc"
    fresh.write_bytes(b"x")
    unrelated = artifact_dir / "trace-v2-cc.npz"
    unrelated.write_bytes(b"x")
    assert jitcache.sweep_stale(artifact_dir) == len(stale)
    assert fresh.exists() and unrelated.exists()
    assert not any(p.exists() for p in stale)


def test_eval_sweep_covers_jit_artifacts(tmp_path):
    from repro.eval.common import _CACHE_VERSION, \
        sweep_stale_cache_versions
    stale_jit = tmp_path / "jit-v0-cpython-311-dead.sbc"
    stale_trace = tmp_path / "trace-v1-beef.npz"
    keep_jit = tmp_path / f"{jitcache.ARTIFACT_PREFIX}aa.sbc"
    keep_trace = tmp_path / f"trace-v{_CACHE_VERSION}-bb.npz"
    for path in (stale_jit, stale_trace, keep_jit, keep_trace):
        path.write_bytes(b"x")
    assert sweep_stale_cache_versions(tmp_path) == 2
    assert keep_jit.exists() and keep_trace.exists()
    assert not stale_jit.exists() and not stale_trace.exists()


_WARM_SNIPPET = """
import json, sys
from repro.sim import Machine, MachineConfig
from repro.workloads import build_workload
machine = Machine(build_workload("sensor", 0.02),
                  MachineConfig(superblocks=True, jit="all"))
machine.run()
js = machine.cpu.jit_stats
print(json.dumps({"codegen": js.jit_codegen,
                  "disk_hits": js.jit_disk_hits,
                  "disk_stores": js.jit_disk_stores,
                  "blocks": js.jit_blocks,
                  "cycles": machine.cpu.cycles,
                  "icount": machine.cpu.icount}))
"""


def test_warm_process_skips_codegen(tmp_path):
    """The warm-run contract: a second process on the same workload
    loads every compiled artifact from the store and never runs
    codegen."""
    src_dir = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ,
               REPRO_TRACE_CACHE=str(tmp_path),
               PYTHONPATH=str(src_dir))

    def run_once() -> dict:
        proc = subprocess.run(
            [sys.executable, "-c", _WARM_SNIPPET], env=env,
            capture_output=True, text=True, check=True)
        return json.loads(proc.stdout)

    cold = run_once()
    assert cold["codegen"] > 0
    assert cold["disk_stores"] == cold["codegen"]
    assert list(tmp_path.glob(f"{jitcache.ARTIFACT_PREFIX}*.sbc"))

    warm = run_once()
    assert warm["codegen"] == 0
    assert warm["disk_hits"] > 0
    assert warm["blocks"] == cold["blocks"]
    assert (warm["cycles"], warm["icount"]) == \
        (cold["cycles"], cold["icount"])


# -- observability ----------------------------------------------------


def test_dump_superblock_report():
    from repro.softcache.debug import dump_superblock
    machine = _warm_jit_machine()
    loop = _IMAGE.symbols["loop"]
    report = dump_superblock(machine.cpu, loop + 4)
    assert "tier=jit" in report
    assert "guest code:" in report
    assert "generated source:" in report
    assert "def _sb(" in report
    miss = dump_superblock(machine.cpu, 0x0A00_0000)
    assert "no live superblock" in miss


def test_cli_dump_superblock(capsys):
    from repro.cli import main
    code = main(["debug", "sensor", "--scale", "0.02",
                 "--tcache", "4096", "--jit", "all",
                 "--dump-superblock", "0x10000"])
    out = capsys.readouterr().out
    assert code == 0
    assert "superblock" in out
