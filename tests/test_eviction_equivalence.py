"""Eviction-path equivalence with the seed's scan-based unlink.

The indexed unlink (per-block incoming-link indexes, `LinkIndex`) must
be *observationally identical* to the seed's linear scans: the goldens
below were captured from the scan-based implementation on thrashing
workloads and pin down cycles, translations, evictions and patches
exactly.  A hypothesis property then drives random translate / flush
interleavings through the controller (with `debug_poison` active) and
audits that no interleaving ever leaves a dangling incoming-link.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import compile_program
from repro.net import LOCAL_LINK
from repro.softcache import (
    FifoPolicy,
    FlushPolicy,
    NhitPolicy,
    SeqCutoffPolicy,
    SoftCacheConfig,
    SoftCacheSystem,
    TrripPolicy,
    policy_names,
)
from repro.softcache.debug import check_consistency
from repro.workloads import build_workload

#: (workload, scale, config kwargs) -> exact counters captured from the
#: seed's scan-based eviction path.  The compress95 row matches the
#: Figure 5 "512B" bar of the seed byte for byte.
GOLDENS = [
    ("sensor", 0.05,
     dict(tcache_size=768, granularity="block", policy="fifo"),
     dict(cycles=1_622_021, translations=2040, evictions=2018,
          blocks_flushed=0, patches=2827)),
    ("sensor", 0.05,
     dict(tcache_size=1024, granularity="block", policy="flush"),
     dict(cycles=922_955, translations=109, evictions=0,
          blocks_flushed=103, patches=108)),
    ("sensor", 0.05,
     dict(tcache_size=1536, granularity="proc", policy="fifo"),
     dict(cycles=889_025, translations=18, evictions=12,
          blocks_flushed=0, patches=17)),
    ("compress95", 0.05,
     dict(tcache_size=512, granularity="block", policy="fifo"),
     dict(cycles=8_710_851, translations=21_693, evictions=21_681,
          blocks_flushed=0, patches=23_871)),
]


@pytest.mark.parametrize("workload,scale,kwargs,expected", GOLDENS,
                         ids=[f"{w}-{k['granularity']}-{k['policy']}-"
                              f"{k['tcache_size']}B"
                              for w, _, k, _ in GOLDENS])
def test_eviction_golden_equivalence(workload, scale, kwargs, expected):
    image = build_workload(workload, scale)
    system = SoftCacheSystem(image, SoftCacheConfig(
        link=LOCAL_LINK, record_timeline=False, **kwargs))
    report = system.run(600_000_000)
    s = system.stats
    got = dict(cycles=report.cycles, translations=s.translations,
               evictions=s.evictions, blocks_flushed=s.blocks_flushed,
               patches=s.patches)
    assert got == expected


@pytest.mark.parametrize("workload,scale,kwargs,expected", GOLDENS,
                         ids=[f"{w}-{k['granularity']}-{k['policy']}-"
                              f"{k['tcache_size']}B-object"
                              for w, _, k, _ in GOLDENS])
def test_policy_object_golden_equivalence(workload, scale, kwargs,
                                          expected):
    """The same goldens, word for word, through policy *objects*: a
    `FifoPolicy()` / `FlushPolicy()` instance handed to the config must
    be indistinguishable from the baked-in name — every hook on the
    fifo object is a no-op and the admission predicate stays the raw
    residency check, so the counters cannot move by even one cycle."""
    objects = {"fifo": FifoPolicy, "flush": FlushPolicy}
    kwargs = dict(kwargs)
    kwargs["policy"] = objects[kwargs["policy"]]()
    image = build_workload(workload, scale)
    system = SoftCacheSystem(image, SoftCacheConfig(
        link=LOCAL_LINK, record_timeline=False, **kwargs))
    report = system.run(600_000_000)
    s = system.stats
    got = dict(cycles=report.cycles, translations=s.translations,
               evictions=s.evictions, blocks_flushed=s.blocks_flushed,
               patches=s.patches)
    assert got == expected


_temperature_cache = {}


def _temperature(image):
    """Profile-derived temperature map, cached per image (profiling
    runs the program natively once)."""
    if id(image) not in _temperature_cache:
        from repro.profiling import temperature_for_image
        _temperature_cache[id(image)] = temperature_for_image(image)
    return _temperature_cache[id(image)]


def _policy_instance(spec: str, image):
    """A *fresh* policy object per call — metadata must not leak
    between test cases."""
    if spec == "trrip-temp":
        return TrripPolicy(_temperature(image))
    if spec == "trrip-preempt":
        return TrripPolicy(_temperature(image), preemptive_flush=True)
    if spec == "nhit":
        return NhitPolicy(n=2)
    if spec == "seqcutoff":
        return SeqCutoffPolicy(cutoff=2)
    return {"fifo": FifoPolicy, "flush": FlushPolicy,
            "trrip": TrripPolicy}[spec]()


#: Every registered policy plus the trrip variants that only engage
#: with a temperature map (admission filtering, preemptive flush).
POLICY_SPECS = sorted(set(policy_names())
                      | {"trrip-temp", "trrip-preempt"})


@pytest.mark.parametrize("spec", POLICY_SPECS)
def test_policy_structural_invariants_sensor(spec):
    """Whole-workload invariant run: sensor through a thrashing tcache
    with deep prefetch under every policy must finish with the link
    graph closed, the residency map exact and the policy's own
    metadata clean (`check_consistency` audits all three)."""
    image = build_workload("sensor", 0.05)
    system = SoftCacheSystem(image, SoftCacheConfig(
        tcache_size=1024, link=LOCAL_LINK, prefetch_depth=2,
        policy=_policy_instance(spec, image), record_timeline=False,
        debug_poison=True))
    report = system.run(600_000_000)
    assert report.exit_code == 0
    assert check_consistency(system.cc) > 0


# -- property: no interleaving leaves a dangling incoming-link --------

CHURN_SRC = r"""
int f1(int x) { return x * 3 + 1; }
int f2(int x) { if (x & 1) return f1(x); return x - 2; }
int f3(int n) {
    int i; int acc = 0;
    for (i = 0; i < n; i++) acc += f2(i);
    return acc;
}
int main(void) {
    int round;
    int acc = 0;
    for (round = 0; round < 8; round++) acc += f3(12 + round);
    __putint(acc);
    return 0;
}
"""

_churn_image = None


def churn_image():
    global _churn_image
    if _churn_image is None:
        _churn_image = compile_program(CHURN_SRC, "churn")
    return _churn_image


def _assert_no_dangling_links(cc):
    """Every incoming link's source must be alive and still claim the
    link, and every outgoing link's destination must know about it."""
    resident = list(cc.tcache.order) + list(cc.tcache.pinned_blocks)
    for block in resident:
        for link in block.incoming:
            if link.src is not None:
                assert link.src.alive, (
                    f"incoming link at {link.site_addr:#x} from a dead "
                    f"block")
                assert link in link.src.outgoing
        for link in block.outgoing:
            assert link.dst.alive
            assert link in link.dst.incoming


@settings(max_examples=20, deadline=None)
@given(
    depth=st.integers(min_value=0, max_value=3),
    actions=st.lists(st.integers(min_value=0, max_value=4),
                     min_size=1, max_size=30),
)
def test_random_interleavings_never_dangle(depth, actions):
    """Random translate/evict/flush interleavings keep the link graph
    closed.  Translations into a tiny tcache force evictions; the
    sentinel action flushes; `debug_poison` makes any stale pointer
    fault loudly inside the controller itself."""
    image = churn_image()
    system = SoftCacheSystem(image, SoftCacheConfig(
        tcache_size=512, link=LOCAL_LINK, prefetch_depth=depth,
        record_timeline=False, debug_poison=True))
    cc = system.cc
    cc.start()
    targets = [image.symbols[name] for name in ("f1", "f2", "f3")]
    targets.append(image.entry)
    for action in actions:
        if action == len(targets):
            cc.flush()
        else:
            block = cc.ensure_translated(targets[action])
            assert block.alive
        _assert_no_dangling_links(cc)
        check_consistency(cc)   # raises ConsistencyError on any drift
    cc.ensure_translated(image.entry)
    assert check_consistency(cc) > 0


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2 ** 16),
    drop=st.floats(min_value=0.0, max_value=0.3),
    corrupt=st.floats(min_value=0.0, max_value=0.2),
    partition=st.booleans(),
    depth=st.integers(min_value=0, max_value=2),
    actions=st.lists(st.integers(min_value=0, max_value=4),
                     min_size=1, max_size=25),
)
def test_faulty_interleavings_never_dangle(seed, drop, corrupt,
                                           partition, depth, actions):
    """The eviction property under fire: random fault plans (loss,
    corruption, partitions that exhaust the tight retry budget and
    force degraded-mode replays) composed with random translate/flush
    interleavings into a tiny tcache must never dangle a backpatch or
    leave a resident block unreachable from the residency map —
    `check_consistency` audits both after every action."""
    from repro.net import FaultPlan, RetryPolicy
    plan = FaultPlan(seed=seed, drop_request_p=drop / 2,
                     drop_reply_p=drop / 2, corrupt_p=corrupt,
                     partitions=((6, 26),) if partition else ())
    image = churn_image()
    system = SoftCacheSystem(image, SoftCacheConfig(
        tcache_size=512, link=LOCAL_LINK, prefetch_depth=depth,
        record_timeline=False, debug_poison=True, fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=3, jitter=0.0)))
    cc = system.cc
    cc.start()
    targets = [image.symbols[name] for name in ("f1", "f2", "f3")]
    targets.append(image.entry)
    for action in actions:
        if action == len(targets):
            cc.flush()
        else:
            block = cc.ensure_translated(targets[action])
            assert block.alive
        _assert_no_dangling_links(cc)
        check_consistency(cc)
    cc.ensure_translated(image.entry)
    assert check_consistency(cc) > 0
    if system.faults is not None:
        assert not cc.pending_misses


@settings(max_examples=15, deadline=None)
@given(
    spec=st.sampled_from(POLICY_SPECS),
    chaos=st.booleans(),
    seed=st.integers(min_value=0, max_value=2 ** 16),
    depth=st.integers(min_value=0, max_value=2),
    actions=st.lists(st.integers(min_value=0, max_value=4),
                     min_size=1, max_size=25),
)
def test_policy_interleavings_never_dangle(spec, chaos, seed, depth,
                                           actions):
    """The eviction property × the policy layer: every policy (and the
    trrip admission/preemptive variants) under random translate/flush
    interleavings — optionally through a `chaos`-preset fault plan —
    must keep the link graph closed, the residency map exact and its
    own metadata free of stale block references.  `check_consistency`
    runs the policy's `audit()` against the resident set after every
    action, so a policy that forgets to drop state on evict or flush
    fails here, not in a later run."""
    from repro.net import FaultPlan, RetryPolicy

    plan = FaultPlan.chaos(seed) if chaos else None
    image = churn_image()
    system = SoftCacheSystem(image, SoftCacheConfig(
        tcache_size=512, link=LOCAL_LINK, prefetch_depth=depth,
        policy=_policy_instance(spec, image),
        record_timeline=False, debug_poison=True, fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=3, jitter=0.0)))
    cc = system.cc
    cc.start()
    targets = [image.symbols[name] for name in ("f1", "f2", "f3")]
    targets.append(image.entry)
    for action in actions:
        if action == len(targets):
            cc.flush()
        else:
            block = cc.ensure_translated(targets[action])
            assert block.alive
        _assert_no_dangling_links(cc)
        check_consistency(cc)
    cc.ensure_translated(image.entry)
    assert check_consistency(cc) > 0
    if system.faults is not None:
        assert not cc.pending_misses
