"""Fault injection: plans, retries, checksums, degraded mode.

The determinism contract is the backbone: a :class:`FaultPlan` is a
pure function of its seed, so every test here is exactly reproducible
and a failing chaos cell can be replayed from its plan spec alone.
"""

import random

import pytest

from repro.net import (
    LOCAL_LINK,
    Channel,
    FaultPlan,
    FaultyChannel,
    LinkModel,
    RetryPolicy,
    chunk_checksum,
    install_faults,
)
from repro.net.faults import _REACHES_SERVER, _Decider
from repro.net.hub import HubChannel, with_hub
from repro.obs import FlightRecorder
from repro.softcache import SoftCacheConfig, SoftCacheSystem
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def sensor_image():
    return build_workload("sensor", 0.05)


# -- the plan is a pure function of its seed ---------------------------


def test_decisions_are_deterministic():
    plan = FaultPlan.lossy(seed=42)
    assert plan.decisions(500) == plan.decisions(500)


def test_seeds_decorrelate_streams():
    a = FaultPlan.lossy(seed=1).decisions(300)
    b = FaultPlan.lossy(seed=2).decisions(300)
    assert a != b


def test_none_plan_never_faults():
    plan = FaultPlan.none()
    assert plan.is_none()
    assert set(plan.decisions(100)) == {"ok"}


def test_decider_outcomes_cover_the_mix():
    plan = FaultPlan(seed=3, drop_request_p=0.2, drop_reply_p=0.2,
                     corrupt_p=0.2, duplicate_p=0.1, delay_p=0.2,
                     partitions=((10, 14),), mc_crash_epochs=(5,))
    outcomes = plan.decisions(400)
    assert outcomes[5] == "mc_crash"
    assert outcomes[10:14] == ["partition"] * 4
    for kind in ("drop_request", "drop_reply", "corrupt", "duplicate",
                 "delay", "ok"):
        assert kind in outcomes, kind


def test_partition_and_crash_are_positional_not_probabilistic():
    """Windows are attempt-indexed, so they land identically whatever
    the probabilistic draws did before them."""
    base = dict(drop_request_p=0.3, partitions=((7, 9),),
                mc_crash_epochs=(3,))
    for seed in (0, 9, 77):
        outcomes = FaultPlan(seed=seed, **base).decisions(10)
        assert outcomes[3] == "mc_crash"
        assert outcomes[7:9] == ["partition", "partition"]


def test_corrupt_and_delay_carry_extra_draws():
    plan = FaultPlan(seed=11, corrupt_p=0.5, delay_p=0.5, delay_s=2e-3)
    decider = _Decider(plan)
    seen = set()
    for _ in range(200):
        outcome, info = decider.next()
        seen.add(outcome)
        if outcome == "corrupt":
            assert 0.0 <= info["where"] < 1.0
        elif outcome == "delay":
            assert 1e-3 <= info["seconds"] <= 3e-3
    assert {"corrupt", "delay"} <= seen


# -- spec parsing ------------------------------------------------------


def test_parse_presets():
    assert FaultPlan.parse("none").is_none()
    assert FaultPlan.parse("", seed=5) == FaultPlan(seed=5)
    assert FaultPlan.parse("lossy", seed=5) == FaultPlan.lossy(5)
    assert FaultPlan.parse("chaos", seed=5) == FaultPlan.chaos(5)


def test_parse_terms():
    plan = FaultPlan.parse(
        "drop=0.1,corrupt=0.05,dup=0.02,delay=0.1:0.002,"
        "partition=40:60,crash=100", seed=9)
    assert plan.seed == 9
    assert plan.drop_request_p == pytest.approx(0.05)
    assert plan.drop_reply_p == pytest.approx(0.05)
    assert plan.corrupt_p == pytest.approx(0.05)
    assert plan.duplicate_p == pytest.approx(0.02)
    assert plan.delay_p == pytest.approx(0.1)
    assert plan.delay_s == pytest.approx(0.002)
    assert plan.partitions == ((40, 60),)
    assert plan.mc_crash_epochs == (100,)


def test_parse_individual_drop_sides():
    plan = FaultPlan.parse("drop_req=0.2,drop_reply=0.1")
    assert plan.drop_request_p == pytest.approx(0.2)
    assert plan.drop_reply_p == pytest.approx(0.1)


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        FaultPlan.parse("drop")
    with pytest.raises(ValueError):
        FaultPlan.parse("warp=0.5")


def test_chaos_cells_vary_by_seed():
    plans = [FaultPlan.chaos(seed) for seed in range(12)]
    assert len(set(plans)) == len(plans)
    assert any(p.partitions for p in plans)
    assert any(p.mc_crash_epochs for p in plans)
    assert all(not p.is_none() for p in plans)


# -- retry policy ------------------------------------------------------


def test_backoff_schedule_exact_without_jitter():
    policy = RetryPolicy(backoff_base_s=1e-3, backoff_factor=2.0,
                         backoff_max_s=6e-3, jitter=0.0)
    schedule = [policy.backoff_s(i, None) for i in (1, 2, 3, 4, 5)]
    assert schedule == [1e-3, 2e-3, 4e-3, 6e-3, 6e-3]  # capped


def test_backoff_jitter_is_bounded_and_seeded():
    policy = RetryPolicy(backoff_base_s=1e-3, jitter=0.25)
    draws = [policy.backoff_s(1, random.Random(7)) for _ in range(8)]
    assert len(set(draws)) == 1  # same rng state => same jitter
    rng = random.Random(7)
    for _ in range(50):
        b = policy.backoff_s(2, rng)
        assert 2e-3 * 0.75 <= b <= 2e-3 * 1.25


def test_backoff_attempt_is_one_based():
    with pytest.raises(ValueError):
        RetryPolicy().backoff_s(0, None)


# -- checksum ----------------------------------------------------------


def test_checksum_rejects_any_single_byte_flip():
    payload = bytes(range(256)) * 3
    want = chunk_checksum(payload)
    for pos in range(0, len(payload), 37):
        corrupted = bytearray(payload)
        corrupted[pos] ^= 0xFF
        assert chunk_checksum(bytes(corrupted)) != want


def test_checksum_is_stable():
    assert chunk_checksum(b"") == 0
    assert chunk_checksum(b"abc") == chunk_checksum(b"abc")


# -- FaultyChannel unit behaviour --------------------------------------


def test_install_none_plan_is_a_noop(sensor_image):
    system = SoftCacheSystem(sensor_image,
                             SoftCacheConfig(tcache_size=2048))
    chan = system.channel
    assert install_faults(system, FaultPlan.none()) is None
    assert install_faults(system, None) is None
    assert system.channel is chan
    assert system.faults is None


def test_faulty_channel_delegates_and_charges_retries():
    chan = FaultyChannel(Channel(LinkModel()),
                         FaultPlan(seed=1, drop_request_p=0.5),
                         RetryPolicy(max_attempts=8, jitter=0.0))
    seconds = chan.exchange("chunk", 256)
    clean = Channel(LinkModel()).exchange("chunk", 256)
    st = chan.fault_stats
    assert st.delivered == 1
    assert seconds >= clean
    if st.retries:
        assert seconds > clean
        assert st.timeout_seconds > 0
        assert st.backoff_seconds > 0
    assert chan.stats.exchanges == st.attempts - st.drops_request \
        - st.partition_drops - st.mc_restarts


def test_one_way_send_reconnects_instead_of_raising():
    """Non-chunk traffic rides an acknowledged transport: even a
    partition that exhausts the retry budget reconnects internally."""
    chan = FaultyChannel(Channel(LinkModel()),
                         FaultPlan(seed=0, partitions=((0, 10),)),
                         RetryPolicy(max_attempts=3, jitter=0.0))
    seconds = chan.send("writeback", 64)
    st = chan.fault_stats
    assert st.delivered == 1
    assert st.link_down_events == 1
    assert st.reconnects == 1
    assert st.partition_drops == 3
    assert seconds > Channel(LinkModel()).send("writeback", 64)
    assert not chan.down  # delivery clears the degraded flag


def test_reaches_server_set_matches_decider_outcomes():
    """Every outcome the decider can emit is classified."""
    all_outcomes = {"ok", "delay", "duplicate", "corrupt", "drop_reply",
                    "drop_request", "partition", "mc_crash"}
    assert _REACHES_SERVER < all_outcomes


# -- hub replay accounting ---------------------------------------------


def test_hub_replay_does_not_inflate_hit_rate():
    hub = HubChannel(LinkModel(), LinkModel(bandwidth_bps=2e6,
                                            latency_s=5e-3))
    hub.next_key = 0x8000
    hub.exchange("chunk", 512)          # fresh: miss, fills the cache
    assert hub.hub_stats.requests == 1
    assert hub.hub_stats.hub_hits == 0
    before = hub.stats.payload_bytes
    hub.next_key = 0x8000
    hub.replaying = True
    hub.exchange("chunk", 512)          # link-layer retry of the same
    stats = hub.hub_stats
    assert stats.requests == 1          # not double counted
    assert stats.hub_hits == 0          # and no manufactured hit
    assert stats.replayed_requests == 1
    assert hub.stats.payload_bytes > before  # wire cost still real
    assert stats.hit_rate == 0.0


def test_hub_replay_batch_keeps_denominator():
    hub = HubChannel(LinkModel(), LinkModel(bandwidth_bps=2e6,
                                            latency_s=5e-3))
    hub.next_keys = [1, 2, 3]
    hub.batch_exchange("chunk", [100, 200, 300])
    assert hub.hub_stats.requests == 3
    hub.next_keys = [1, 2, 3]
    hub.replaying = True
    hub.batch_exchange("chunk", [100, 200, 300])
    assert hub.hub_stats.requests == 3
    assert hub.hub_stats.replayed_requests == 3
    assert hub.hub_stats.replayed_far_bytes == 0  # all cached by now


# -- end to end: faults never change what the program computes ---------


def _run(image, plan=None, policy=None, recorder=None, **kw):
    config = SoftCacheConfig(tcache_size=2048, fault_plan=plan,
                             retry_policy=policy, recorder=recorder,
                             **kw)
    system = SoftCacheSystem(image, config)
    report = system.run()
    return system, report


def test_lossy_run_is_transparent_to_the_guest(sensor_image):
    base_system, base = _run(sensor_image)
    system, report = _run(sensor_image, FaultPlan.lossy(seed=4))
    st = system.faults.fault_stats
    assert st.retries > 0
    assert st.checksum_failures > 0
    assert st.attempts > st.delivered
    assert report.output == base.output
    assert report.exit_code == base.exit_code
    assert system.stats.translations == base_system.stats.translations
    # the faults cost simulated time
    assert report.cycles > base.cycles


def test_same_seed_same_faults(sensor_image):
    a, _ = _run(sensor_image, FaultPlan.lossy(seed=6))
    b, _ = _run(sensor_image, FaultPlan.lossy(seed=6))
    assert a.faults.fault_stats == b.faults.fault_stats


def test_partition_enters_degraded_mode(sensor_image):
    plan = FaultPlan(seed=0, partitions=((6, 48),))
    system, report = _run(sensor_image, plan,
                          RetryPolicy(max_attempts=3, jitter=0.0),
                          debug_poison=True)
    s = system.stats
    assert s.link_down_traps > 0
    assert s.degraded_entries > 0
    assert s.pending_miss_replays == s.degraded_entries
    assert s.degraded_stall_cycles > 0
    assert s.link_down_by_chunk  # per-chunk attribution
    assert not system.cc.pending_misses  # all replayed by run end
    base_system, base = _run(sensor_image, debug_poison=True)
    assert report.output == base.output
    assert system.stats.translations == base_system.stats.translations


def test_mc_crash_recovers_bit_identically(sensor_image):
    plan = FaultPlan(seed=2, drop_request_p=0.05,
                     mc_crash_epochs=(12, 30))
    system, report = _run(sensor_image, plan)
    assert system.faults.fault_stats.mc_restarts == 2
    assert system.mc.stats.restarts == 2
    _, base = _run(sensor_image)
    assert report.output == base.output


def test_fault_events_and_metrics_published(sensor_image):
    recorder = FlightRecorder()
    system, _ = _run(sensor_image, FaultPlan.lossy(seed=4),
                     recorder=recorder)
    names = {ev.name for ev in recorder.events}
    assert "fault.retry" in names
    assert "fault.drop" in names
    assert "fault.corrupt" in names
    snap = recorder.metrics.snapshot()
    st = system.faults.fault_stats
    assert snap["fault.attempts"] == st.attempts
    assert snap["fault.retries"] == st.retries
    assert snap["fault.checksum_failures"] == st.checksum_failures


def test_faults_compose_with_hub(sensor_image):
    """with_hub first, install_faults second: the faults wrap the near
    hop and replays stay out of the hub hit-rate."""
    config = SoftCacheConfig(tcache_size=2048, link=LinkModel())
    system = SoftCacheSystem(sensor_image, config)
    hub = with_hub(system)
    faults = install_faults(system, FaultPlan.lossy(seed=8))
    report = system.run()
    assert faults.fault_stats.retries > 0
    hs = hub.hub_stats
    assert hs.replayed_requests > 0
    assert hs.requests + hs.replayed_requests >= \
        faults.fault_stats.delivered
    plain = SoftCacheSystem(sensor_image, SoftCacheConfig(
        tcache_size=2048, link=LinkModel()))
    plain_hub = with_hub(plain)
    plain_report = plain.run()
    assert report.output == plain_report.output
    # replays never change which chunks the hub genuinely served
    assert hs.requests == plain_hub.hub_stats.requests
    assert hs.hub_hits == plain_hub.hub_stats.hub_hits


def test_prefetch_batches_survive_faults(sensor_image):
    config_kw = dict(prefetch_depth=3, link=LinkModel())
    system, report = _run(sensor_image, FaultPlan.lossy(seed=3),
                          **config_kw)
    assert system.faults.fault_stats.retries > 0
    assert system.stats.prefetch_installs > 0
    _, base = _run(sensor_image, **config_kw)
    assert report.output == base.output
