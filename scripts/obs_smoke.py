#!/usr/bin/env python
"""CI scrape smoke for the live ops plane.

Two checks, both against real HTTP:

1. **Subprocess scrape** — launch ``repro run --serve`` as a child
   process, scrape ``/metrics`` and ``/inspect/tcache`` *while the
   simulation is still running*, validate both payloads, and save
   them as CI artifacts.
2. **Digest differential** — run the same workload twice in-process,
   once unserved and once served with a scraper thread hammering
   every GET route, and require bit-identical architectural state
   (the served run must be observably identical to the unserved one).

Exit nonzero on any failure.  Usage::

    python scripts/obs_smoke.py [--artifact-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "src"))

WORKLOAD = ("sensor", "0.4")
TCACHE = "2048"

# one Prometheus text-0.4 sample or comment line
_PROM_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN))$")


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _get(url: str, timeout: float = 5.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode()


def _validate_metrics(text: str) -> int:
    lines = text.splitlines()
    assert lines, "empty /metrics payload"
    for line in lines:
        assert _PROM_LINE.match(line), \
            f"unparseable exposition line: {line!r}"
    assert any(ln.startswith("repro_cc_translations_total ")
               for ln in lines), "no cc.translations in scrape"
    assert any(ln.startswith("repro_build_info{") for ln in lines), \
        "no build-info gauge in scrape"
    return len(lines)


def _validate_tcache(snap: dict) -> None:
    assert snap["capacity"] == int(TCACHE)
    assert 0 <= snap["used"] <= snap["capacity"]
    assert snap["resident_blocks"] == len(snap["blocks"])
    for block in snap["blocks"]:
        assert block["size"] > 0 and block["orig"] >= 0


def subprocess_scrape(artifact_dir: Path) -> None:
    """Scrape a live ``repro run --serve`` child mid-simulation."""
    port = _free_port()
    base = f"http://127.0.0.1:{port}"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "run", WORKLOAD[0],
         "--scale", WORKLOAD[1], "--tcache", TCACHE, "--local-link",
         "--serve", f"127.0.0.1:{port}"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        cwd=_REPO, env=env)
    try:
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                out = proc.stdout.read() if proc.stdout else ""
                raise SystemExit(
                    f"FAIL: run exited before it could be scraped "
                    f"(rc={proc.returncode}):\n{out}")
            try:
                health = json.loads(_get(base + "/healthz",
                                         timeout=1.0))
                if health.get("system"):
                    break
            except (urllib.error.URLError, OSError):
                time.sleep(0.05)
        else:
            raise SystemExit("FAIL: /healthz never came up")

        metrics = _get(base + "/metrics")
        tcache = _get(base + "/inspect/tcache")
        mid_run = proc.poll() is None
        n_lines = _validate_metrics(metrics)
        snap = json.loads(tcache)
        _validate_tcache(snap)

        artifact_dir.mkdir(parents=True, exist_ok=True)
        (artifact_dir / "scrape-metrics.prom").write_text(metrics)
        (artifact_dir / "scrape-tcache.json").write_text(tcache)

        rc = proc.wait(timeout=300)
        if rc != 0:
            out = proc.stdout.read() if proc.stdout else ""
            raise SystemExit(f"FAIL: served run exited rc={rc}:\n{out}")
        print(f"ok   subprocess scrape: {n_lines} exposition lines, "
              f"{snap['resident_blocks']} resident blocks "
              f"({'mid-run' if mid_run else 'post-run'} scrape)")
        if not mid_run:
            print("warn: the run finished before the scrape landed; "
                  "payloads were still validated", file=sys.stderr)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def digest_differential() -> None:
    """Served-and-scraped must equal unserved, bit for bit."""
    from repro.obs import ObsServer
    from repro.softcache import SoftCacheConfig, SoftCacheSystem
    from repro.softcache.debug import architectural_state
    from repro.workloads import build_workload

    image = build_workload("sensor", 0.1)
    config = SoftCacheConfig(tcache_size=int(TCACHE),
                             debug_poison=True)
    plain = SoftCacheSystem(image, config)
    plain_report = plain.run()
    want = architectural_state(plain)

    served = SoftCacheSystem(image, config)
    scrapes = []
    with ObsServer("127.0.0.1", 0) as server:
        server.attach_system(served)
        stop = threading.Event()

        def scraper():
            routes = ("/metrics", "/inspect/tcache",
                      "/inspect/superblocks", "/inspect/shards",
                      "/healthz")
            while not stop.is_set():
                for route in routes:
                    try:
                        _get(server.url + route, timeout=5)
                        scrapes.append(route)
                    except urllib.error.HTTPError:
                        pass

        thread = threading.Thread(target=scraper, daemon=True)
        thread.start()
        report = served.run()
        stop.set()
        thread.join(timeout=10)

    got = architectural_state(served)
    assert report.output == plain_report.output, \
        "FAIL: served run produced different output"
    assert report.cycles == plain_report.cycles, \
        f"FAIL: served run cycle count diverged " \
        f"({report.cycles} != {plain_report.cycles})"
    assert got == want, \
        f"FAIL: served digest {got[:16]}… != unserved {want[:16]}…"
    print(f"ok   digest differential: {len(scrapes)} scrapes landed, "
          f"architectural state identical ({want[:16]}…)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact-dir", default="obs-smoke-artifacts",
                        help="scraped payloads land here (CI uploads)")
    args = parser.parse_args(argv)
    subprocess_scrape(Path(args.artifact_dir))
    digest_differential()
    print("\n[obs-smoke] live ops plane OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
