"""repro.fleet — the Figure-1 deployment: one server, many devices.

:func:`simulate_fleet` runs a fleet of identical embedded clients
against one shared memory controller and uplink, reporting server-side
chunk-cache sharing, link utilization and queueing delay.
"""

from .fleet import ClientResult, FleetResult, simulate_fleet

__all__ = ["ClientResult", "FleetResult", "simulate_fleet"]
