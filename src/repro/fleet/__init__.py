"""repro.fleet — the Figure-1 deployment: one server tier, many devices.

:func:`simulate_fleet` runs a fleet of identical embedded clients
against a shared server tier and uplink under a discrete-event
scheduler (one simulated clock, live queueing feedback), reporting
server-side chunk-cache sharing, link utilization, queueing delay and
per-shard load.  :class:`ShardedMemoryController` is the
consistent-hash origin tier; :mod:`repro.fleet.sched` holds the
capture/replay machinery.  See docs/FLEET.md.
"""

from .fleet import ClientResult, FleetResult, ShardLoad, simulate_fleet
from .sched import (
    ClientTrace,
    MCProbe,
    RpcRecord,
    SimOutcome,
    WireTap,
    run_event_sim,
    run_legacy_sim,
)
from .shard import (
    ConsistentHashRing,
    ShardedMemoryController,
    aggregate_mc_stats,
)

__all__ = [
    "ClientResult", "FleetResult", "ShardLoad", "simulate_fleet",
    "ClientTrace", "MCProbe", "RpcRecord", "SimOutcome", "WireTap",
    "run_event_sim", "run_legacy_sim",
    "ConsistentHashRing", "ShardedMemoryController",
    "aggregate_mc_stats",
]
