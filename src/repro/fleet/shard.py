"""Consistent-hash sharded MC tier: the fleet's origin servers.

One :class:`~repro.softcache.mc.MemoryController` per shard, with
chunk ownership decided by a consistent-hash ring over original
addresses (Open-CAS keeps per-core cache statistics the same way:
each worker owns a stable slice of the key space and reports its own
counters).  The :class:`ShardedMemoryController` is a drop-in for a
single ``MemoryController``: the cache controller and fault layer see
the usual ``serve_chunk`` / ``serve_batch`` / ``payload_of`` surface,
while every request lands on the shard that owns the chunk and is
accounted in that shard's :class:`~repro.softcache.mc.MCStats`.

Rewriting is deterministic and chunks are keyed by original address,
so sharding is architecturally invisible: a sharded fleet run reaches
the same digest and the same simulated seconds as an unsharded one
(tests pin this).  What sharding changes is *load*: the event-driven
scheduler (:mod:`repro.fleet.sched`) models each shard as its own
queueing server, so shard imbalance shows up as emergent queueing
delay instead of a post-hoc estimate.
"""

from __future__ import annotations

import dataclasses
import hashlib
from bisect import bisect_right
from typing import Callable, Iterable

from ..asm.image import Image
from ..softcache.chunks import Chunk, ChunkError
from ..softcache.mc import MCStats, MemoryController


def _ring_hash(data: bytes) -> int:
    """Stable 64-bit point on the ring (host-hash-salt independent)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big")


class ConsistentHashRing:
    """A classic consistent-hash ring with virtual nodes.

    Each shard id contributes *vnodes* points; a key is owned by the
    first point clockwise from its hash.  Adding or removing a shard
    moves only the keys that point's arcs covered — on average K/N of
    K keys for a removal, K/(N+1) for an addition — which is the whole
    reason to prefer it over ``key % N`` for an origin tier that may
    be resized while clients hold warm caches.
    """

    def __init__(self, shard_ids: Iterable[int] | int, *,
                 vnodes: int = 64):
        if isinstance(shard_ids, int):
            shard_ids = range(shard_ids)
        self.vnodes = vnodes
        self._shards: set[int] = set()
        self._points: list[tuple[int, int]] = []  # (hash, shard id)
        for sid in shard_ids:
            self.add_shard(sid)
        if not self._shards:
            raise ValueError("ring needs at least one shard")

    def __len__(self) -> int:
        return len(self._shards)

    @property
    def shard_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._shards))

    def _rebuild(self) -> None:
        self._points = sorted(
            (_ring_hash(f"shard:{sid}:{r}".encode()), sid)
            for sid in self._shards for r in range(self.vnodes))
        self._hashes = [h for h, _ in self._points]

    def add_shard(self, sid: int) -> None:
        if sid in self._shards:
            raise ValueError(f"shard {sid} already on the ring")
        self._shards.add(sid)
        self._rebuild()

    def remove_shard(self, sid: int) -> None:
        if sid not in self._shards:
            raise ValueError(f"shard {sid} not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.discard(sid)
        self._rebuild()

    def owner(self, key: int) -> int:
        """The shard owning *key* (an original chunk address)."""
        h = _ring_hash(key.to_bytes(8, "little", signed=False))
        i = bisect_right(self._hashes, h)
        if i == len(self._points):
            i = 0  # wrap: first point clockwise from the top
        return self._points[i][1]


def aggregate_mc_stats(parts: Iterable[MCStats]) -> MCStats:
    """Sum per-shard server counters into one fleet-wide MCStats."""
    total = MCStats()
    for part in parts:
        for f in dataclasses.fields(MCStats):
            setattr(total, f.name,
                    getattr(total, f.name) + getattr(part, f.name))
    return total


class ShardedMemoryController:
    """N origin shards behind one MemoryController-shaped facade.

    Chunk requests route to the consistent-hash owner of the original
    address; batched prefetch assembly walks the shared successor
    graph across shards (each prefetched chunk is produced — and
    billed — by its own owner).  ``invalidate_chunks`` and
    ``restart`` fan out to every shard: guest invalidation is a
    correctness broadcast, and the fault layer's MC crash models a
    correlated origin outage (per-shard fault plans are a fleet-level
    concern, not a server-side one).
    """

    def __init__(self, image: Image, n_shards: int,
                 granularity: str = "block", ebb_limit: int = 8, *,
                 vnodes: int = 64):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.image = image
        self.granularity = granularity
        self.ebb_limit = ebb_limit
        self.shards = [MemoryController(image, granularity=granularity,
                                        ebb_limit=ebb_limit)
                       for _ in range(n_shards)]
        self.ring = ConsistentHashRing(n_shards, vnodes=vnodes)
        #: Successor addresses that failed to chunk, shared across
        #: shards so a batch walk skips them regardless of owner.
        self._unchunkable: set[int] = set()
        #: Epoch that produced the bytes of the most recent serve
        #: (mirrors the owning shard's value; the hub keys entries
        #: with it).
        self.last_served_epoch = 0

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    # -- MemoryController facade ---------------------------------------

    @property
    def stats(self) -> MCStats:
        """Fleet-wide aggregate of the per-shard counters."""
        return aggregate_mc_stats(s.stats for s in self.shards)

    @property
    def tracer(self):
        return self.shards[0].tracer

    @tracer.setter
    def tracer(self, value) -> None:
        for shard in self.shards:
            shard.tracer = value

    @property
    def data_rewriter(self):
        return self.shards[0].data_rewriter

    @data_rewriter.setter
    def data_rewriter(self, value) -> None:
        for shard in self.shards:
            shard.data_rewriter = value

    # -- live code update (versioned image) ----------------------------
    # Every shard sees the same publish sequence, so shard epochs stay
    # in lockstep; version queries delegate to shard 0 and publishes
    # fan out.

    @property
    def epoch(self) -> int:
        return self.shards[0].epoch

    @property
    def image_digest(self) -> str:
        return self.shards[0].image_digest

    @property
    def group(self) -> str:
        return self.shards[0].group

    @property
    def client_epoch(self):
        return self.shards[0].client_epoch

    @client_epoch.setter
    def client_epoch(self, value) -> None:
        for shard in self.shards:
            shard.client_epoch = value

    def knows_image(self, image: Image) -> bool:
        return self.shards[0].knows_image(image)

    def publish(self, new_image: Image, *, durable: bool = True) -> int:
        """Publish *new_image* on every shard (one logical epoch bump).

        The successor graph changes with the image, so the shared
        unchunkable set is dropped along with the per-shard caches.
        """
        epochs = {s.publish(new_image, durable=durable)
                  for s in self.shards}
        if len(epochs) != 1:
            raise ChunkError(f"shard epochs diverged on publish: "
                             f"{sorted(epochs)}")
        self._unchunkable.clear()
        self.image = self.shards[0].image
        return epochs.pop()

    def dirty_spans_between(self, a: int, b: int):
        return self.shards[0].dirty_spans_between(a, b)

    def image_at(self, epoch: int) -> Image:
        return self.shards[0].image_at(epoch)

    def epoch_of_digest(self, digest: str):
        return self.shards[0].epoch_of_digest(digest)

    def epoch_servable(self, epoch: int) -> bool:
        return self.shards[0].epoch_servable(epoch)

    def version_info(self) -> dict:
        return self.shards[0].version_info()

    # -- routing -------------------------------------------------------

    def owner_of(self, orig_addr: int) -> int:
        return self.ring.owner(orig_addr)

    def shard_for(self, orig_addr: int) -> MemoryController:
        return self.shards[self.ring.owner(orig_addr)]

    # -- miss service --------------------------------------------------

    def serve_chunk(self, orig_addr: int) -> Chunk:
        shard = self.shard_for(orig_addr)
        chunk = shard.serve_chunk(orig_addr)
        self.last_served_epoch = shard.last_served_epoch
        return chunk

    def payload_of(self, chunk: Chunk) -> bytes:
        return self.shard_for(chunk.orig).payload_of(chunk)

    def checksum_of(self, chunk: Chunk) -> int:
        return self.shard_for(chunk.orig).checksum_of(chunk)

    def successors_of(self, orig_addr: int) -> tuple[int, ...]:
        return self.shard_for(orig_addr).successors_of(orig_addr)

    def serve_batch(self, orig_addr: int, depth: int,
                    is_resident: Callable[[int], bool]
                    ) -> list[tuple[Chunk, bytes]]:
        """The MemoryController batch walk, routed per chunk owner.

        The BFS order and residency checks are identical to the
        single-MC :meth:`~repro.softcache.mc.MemoryController.
        serve_batch`, so a sharded batch reply carries exactly the
        same chunks; only the serving (and billing) shard differs.
        """
        demand_shard = self.shard_for(orig_addr)
        demand = demand_shard.serve_chunk(orig_addr)
        self.last_served_epoch = demand_shard.last_served_epoch
        batch = [(demand, demand_shard.payload_of(demand))]
        if depth <= 0:
            return batch
        demand_shard.stats.batch_requests += 1
        picked = {orig_addr}
        frontier = list(demand.successors)
        seen = set(frontier) | picked
        while frontier and len(batch) <= depth:
            addr = frontier.pop(0)
            if addr in self._unchunkable:
                continue
            shard = self.shard_for(addr)
            if not is_resident(addr):
                try:
                    batch.append(shard.prefetch_one(addr))
                except ChunkError:
                    self._unchunkable.add(addr)
                    continue
                picked.add(addr)
            try:
                successors = shard.successors_of(addr)
            except ChunkError:
                self._unchunkable.add(addr)
                continue
            for succ in successors:
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        if demand_shard.tracer is not None:
            demand_shard.tracer.emit(
                "mc.batch", "mc", orig=orig_addr, chunks=len(batch),
                prefetch_bytes=sum(c.payload_bytes
                                   for c, _ in batch[1:]))
        return batch

    # -- data path (full-system mode) ----------------------------------

    def serve_data(self, addr: int, length: int) -> bytes:
        return self.shard_for(addr).serve_data(addr, length)

    def accept_writeback(self, addr: int, data: bytes) -> None:
        self.shard_for(addr).accept_writeback(addr, data)

    # -- invalidation / faults -----------------------------------------

    def invalidate_chunks(self, addr: int, length: int) -> int:
        self._unchunkable.clear()
        return sum(s.invalidate_chunks(addr, length)
                   for s in self.shards)

    def restart(self) -> None:
        """Correlated origin restart (the fault layer's MC crash)."""
        self._unchunkable.clear()
        for shard in self.shards:
            shard.restart()

    # -- replication accounting ----------------------------------------

    def credit_replicated(self, shard_demands: dict[int, int]) -> None:
        """Account a replicated client's demand fetches as per-shard
        chunk-cache hits (the server did the rewriting once; a
        replicated client would have been served from each owner's
        chunk cache)."""
        for sid, n in shard_demands.items():
            stats = self.shards[sid if 0 <= sid < len(self.shards)
                                else 0].stats
            stats.requests += n
            stats.chunk_cache_hits += n
