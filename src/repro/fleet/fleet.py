"""Fleet simulation: the paper's Figure-1 deployment, event-driven.

"Two examples of this class include a distributed network of low-cost
sensors with embedded processing and distributed cell phones which
communicate with cell towers" — one server tier (MC) feeds many
embedded clients (CCs) over a shared uplink.

Each *distinct* client is a full :class:`~repro.softcache.
SoftCacheSystem` run once under a :class:`~repro.fleet.sched.WireTap`
(capture); the whole fleet — replicated clients included — is then
advanced by the discrete-event scheduler on one simulated clock, so
uplink queueing, origin-shard contention behind the edge hub, and
fault-retry storms emerge from the event interleaving instead of
being estimated post hoc (``queue_model="event"``, the default;
``"legacy"`` keeps the old post-hoc FIFO as a convergence baseline).
The server side is either one shared
:class:`~repro.softcache.MemoryController` or — with ``shards > 1`` —
a consistent-hash :class:`~repro.fleet.shard.ShardedMemoryController`
whose per-shard rewrite/serve/bytes counters feed the metrics
registry.  See docs/FLEET.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..asm.image import Image
from ..net import LinkModel
from ..softcache import (
    MemoryController,
    RunReport,
    SoftCacheConfig,
    SoftCacheSystem,
)
from .sched import (
    ClientTrace,
    MCProbe,
    SimOutcome,
    WireTap,
    run_event_sim,
    run_legacy_sim,
)
from .shard import ShardedMemoryController


@dataclass
class ClientResult:
    """One device's run within the fleet."""

    client_id: int
    start_s: float
    report: RunReport
    translations: int
    bytes_requested: int
    #: Total queueing wait (uplink + shard) this client accumulated
    #: on the shared clock; 0 under the legacy model, which does not
    #: feed delays back into client timelines.
    queue_delay_s: float = 0.0
    #: Image epoch the client finished on (0: never updated).
    final_epoch: int = 0
    #: Absolute fleet time (s) at which the client crossed its last
    #: update barrier; equals start_s when no update was scheduled.
    converged_s: float = 0.0

    @property
    def end_s(self) -> float:
        return self.start_s + self.report.seconds + self.queue_delay_s


@dataclass
class ShardLoad:
    """One origin shard's view of the fleet run."""

    shard: int
    #: Demand chunk RPCs the scheduler routed to this shard.
    requests: int
    #: Origin service occupancy, seconds.
    busy_s: float
    #: Server-side counters (rewrites, serves, bytes) of the shard's
    #: MemoryController; the whole fleet for an unsharded MC.
    mc_requests: int = 0
    mc_chunks_built: int = 0
    mc_bytes_served: int = 0


@dataclass
class FleetResult:
    """Aggregate outcome of a fleet simulation."""

    n_clients: int
    link: LinkModel
    clients: list[ClientResult]
    #: chunks rewritten server-side vs requests served: sharing factor
    mc_requests: int
    mc_chunks_built: int
    #: shared-uplink queue analysis
    total_transfer_s: float
    makespan_s: float
    mean_queue_delay_s: float
    max_queue_delay_s: float
    delayed_requests: int
    #: Link-layer retries across the fleet (fault injection); the
    #: replayed exchanges are real uplink load and are queued like any
    #: other request.
    link_retries: int = 0
    #: Which queueing model produced the delay figures.
    queue_model: str = "event"
    #: Clients actually executed (the rest replayed captured traces).
    distinct_clients: int = 0
    n_shards: int = 1
    shard_loads: list[ShardLoad] = field(default_factory=list)
    #: Origin-shard FIFO queueing (event model only).
    mean_shard_delay_s: float = 0.0
    max_shard_delay_s: float = 0.0
    #: Edge-hub traffic (event model with ``hub_capacity > 0``).
    hub_capacity: int = 0
    hub_requests: int = 0
    hub_hits: int = 0
    #: Architectural digest of the reference client (every client of a
    #: deterministic fleet reaches the same one); None for n=0.
    architectural_digest: str | None = None
    #: Image epoch the fleet converged on (0: no update scheduled).
    final_epoch: int = 0
    #: Clients that reached :attr:`final_epoch` by the end of their
    #: run (with a schedule and durable publishes this is everyone —
    #: the quiescent sync at run exit applies every due publish).
    clients_converged: int = 0
    #: Sorted absolute times (s) at which each client crossed its last
    #: update barrier — the rollout wavefront.  Empty when no client
    #: observed an update.
    rollout_wavefront_s: list[float] = field(default_factory=list)

    @property
    def rollout_makespan_s(self) -> float:
        """Time from fleet t=0 until the last client converged."""
        return self.rollout_wavefront_s[-1] \
            if self.rollout_wavefront_s else 0.0

    @property
    def link_utilization(self) -> float:
        """Busy fraction of the shared uplink over the makespan."""
        return (self.total_transfer_s / self.makespan_s
                if self.makespan_s > 0.0 else 0.0)

    @property
    def chunk_cache_sharing(self) -> float:
        """Fraction of requests served from the MC's chunk cache
        (work the server did once instead of once per client)."""
        if not self.mc_requests:
            return 0.0
        return 1.0 - self.mc_chunks_built / self.mc_requests

    @property
    def shard_balance(self) -> float:
        """Hottest shard's demand load relative to the mean (1.0 is
        perfectly balanced; 0.0 when no chunk traffic was routed)."""
        total = sum(s.requests for s in self.shard_loads)
        if not total or not self.shard_loads:
            return 0.0
        mean = total / len(self.shard_loads)
        return max(s.requests for s in self.shard_loads) / mean

    @property
    def hub_hit_rate(self) -> float:
        return (self.hub_hits / self.hub_requests
                if self.hub_requests else 0.0)

    def publish(self, registry) -> None:
        """Publish fleet aggregates and per-shard counters into a
        :class:`~repro.obs.metrics.MetricsRegistry` (the Prometheus
        exporter serializes exactly this)."""
        g = registry.gauge
        c = registry.counter
        c("fleet.clients").inc(self.n_clients - c("fleet.clients").value)
        c("fleet.distinct_clients").inc(
            self.distinct_clients - c("fleet.distinct_clients").value)
        c("fleet.mc_requests").inc(
            self.mc_requests - c("fleet.mc_requests").value)
        c("fleet.mc_chunks_built").inc(
            self.mc_chunks_built - c("fleet.mc_chunks_built").value)
        c("fleet.delayed_requests").inc(
            self.delayed_requests - c("fleet.delayed_requests").value)
        c("fleet.link_retries").inc(
            self.link_retries - c("fleet.link_retries").value)
        c("fleet.hub_requests").inc(
            self.hub_requests - c("fleet.hub_requests").value)
        c("fleet.hub_hits").inc(
            self.hub_hits - c("fleet.hub_hits").value)
        g("fleet.makespan_s").set(self.makespan_s)
        g("fleet.total_transfer_s").set(self.total_transfer_s)
        g("fleet.link_utilization").set(self.link_utilization)
        g("fleet.mean_queue_delay_s").set(self.mean_queue_delay_s)
        g("fleet.max_queue_delay_s").set(self.max_queue_delay_s)
        g("fleet.mean_shard_delay_s").set(self.mean_shard_delay_s)
        g("fleet.chunk_cache_sharing").set(self.chunk_cache_sharing)
        g("fleet.shard_balance").set(self.shard_balance)
        g("update.final_epoch").set(self.final_epoch)
        g("update.clients_converged").set(self.clients_converged)
        g("update.rollout_makespan_s").set(self.rollout_makespan_s)
        for load in self.shard_loads:
            p = f"fleet.shard{load.shard}"
            c(f"{p}.requests").inc(
                load.requests - c(f"{p}.requests").value)
            c(f"{p}.mc_requests").inc(
                load.mc_requests - c(f"{p}.mc_requests").value)
            c(f"{p}.mc_chunks_built").inc(
                load.mc_chunks_built - c(f"{p}.mc_chunks_built").value)
            c(f"{p}.mc_bytes_served").inc(
                load.mc_bytes_served - c(f"{p}.mc_bytes_served").value)
            g(f"{p}.busy_s").set(load.busy_s)


def _empty_result(config: SoftCacheConfig, queue_model: str,
                  shards: int) -> FleetResult:
    return FleetResult(
        n_clients=0, link=config.link, clients=[], mc_requests=0,
        mc_chunks_built=0, total_transfer_s=0.0, makespan_s=0.0,
        mean_queue_delay_s=0.0, max_queue_delay_s=0.0,
        delayed_requests=0, queue_model=queue_model,
        distinct_clients=0, n_shards=max(1, shards),
        shard_loads=[ShardLoad(shard=i, requests=0, busy_s=0.0)
                     for i in range(max(1, shards))])


def simulate_fleet(image: Image, n_clients: int,
                   config: SoftCacheConfig | None = None, *,
                   stagger_s: float = 0.0,
                   max_instructions: int = 400_000_000,
                   recorder=None, fault_plan=None,
                   retry_policy=None,
                   queue_model: str = "event",
                   shards: int = 1,
                   hub_capacity: int = 0,
                   distinct_clients: int | None = None,
                   metrics=None, server=None) -> FleetResult:
    """Run *n_clients* identical devices against one server tier.

    *stagger_s* offsets each client's boot time; 0 means all devices
    power on together (worst case for the shared uplink, e.g. after a
    region-wide reset of a sensor network).

    *queue_model* selects the shared-uplink simulation: ``"event"``
    (default) advances every client on one heap-ordered simulated
    clock with live queueing feedback; ``"legacy"`` reproduces the
    old post-hoc FIFO pass.  *shards* > 1 splits the MC into a
    consistent-hash sharded tier; *hub_capacity* (bytes) interposes a
    shared edge hub that shields the origin shards (event model).

    *distinct_clients* caps how many clients actually execute — the
    rest replay captured wire timelines (devices are identical and
    deterministic, so trace replay is exact; the default captures the
    cold client plus enough warm ones to cover fault decorrelation).

    *recorder* (a :class:`repro.obs.FlightRecorder`) collects a
    fleet-wide timeline: distinct clients run under child recorders
    merged back shifted by boot offset and tagged pid=client_id;
    every client gets a ``fleet.client`` span, every queueing wait a
    ``fleet.queue`` event, and each shard a ``fleet.shard`` summary.
    *metrics* (a :class:`repro.obs.MetricsRegistry`) receives
    :meth:`FleetResult.publish` — so does ``recorder.metrics``.

    *server* (a :class:`repro.obs.ObsServer`) serves the run live:
    the shared MC tier is attached for ``/inspect/shards`` and each
    distinct client is attached read-only while it captures (control
    verbs are fleet-unsafe: the replay contract requires identical
    clients).

    *fault_plan* (a :class:`repro.net.FaultPlan`; defaults to
    ``config.fault_plan``) subjects every distinct client's uplink to
    faults, each under its own seed (``plan.seed + client_id``) so
    outages are decorrelated across the fleet; transient faults never
    change a client's output or translations, so the fleet-divergence
    assertion still holds.  Retry traversals are captured as extra
    wire occupancy, so under the event model a retry storm is live
    uplink load.
    """
    if n_clients < 0:
        raise ValueError("n_clients must be >= 0")
    if queue_model not in ("event", "legacy"):
        raise ValueError(f"unknown queue model {queue_model!r}")
    config = config or SoftCacheConfig()
    if n_clients == 0:
        return _empty_result(config, queue_model, shards)
    if fault_plan is None:
        fault_plan = config.fault_plan
    if retry_policy is None:
        retry_policy = config.retry_policy
    if config.fault_plan is not None or config.retry_policy is not None:
        # per-client plans are re-derived below; strip the shared
        # config so a client never installs the base seed twice
        config = replace(config, fault_plan=None, retry_policy=None)
    faults_on = fault_plan is not None and not fault_plan.is_none()
    recorder = recorder if (recorder is not None
                            and recorder.enabled) else None
    costs = config.costs
    cpu_hz = costs.cpu_hz
    link = config.link

    if shards > 1:
        shared_mc = ShardedMemoryController(
            image, shards, granularity=config.granularity,
            ebb_limit=config.ebb_limit)
    else:
        shared_mc = MemoryController(image,
                                     granularity=config.granularity,
                                     ebb_limit=config.ebb_limit)
        shards = 1
    if server is not None:
        # live ops plane (repro fleet --serve): /inspect/shards and
        # /metrics track the shared server tier while the fleet runs
        server.attach_fleet(shared_mc, shards)
    probe = MCProbe(shared_mc)

    if distinct_clients is None:
        # cold client + one warm chunk-cache-hit client; under faults,
        # a few more so decorrelated fault seeds shape distinct
        # timelines instead of one storm replayed in lockstep
        distinct_clients = 4 if faults_on else 2
    n_distinct = max(1, min(n_clients, distinct_clients))

    # -- capture phase: run the distinct clients ----------------------
    updates_on = bool(config.update_at)
    traces: list[ClientTrace] = []
    reports: list[RunReport] = []
    translations: list[int] = []
    bytes_requested: list[int] = []
    final_epochs: list[int] = []
    #: per distinct client: cycle count at its last barrier (None if
    #: it never crossed one)
    converge_cycles: list[int | None] = []
    digest: str | None = None
    for client_id in range(n_distinct):
        start = client_id * stagger_s
        child = None
        if recorder is not None:
            from ..obs import FlightRecorder
            child = FlightRecorder(pid=client_id)
        client_config = config
        if faults_on:
            client_config = replace(
                config,
                fault_plan=replace(fault_plan,
                                   seed=fault_plan.seed + client_id),
                retry_policy=retry_policy)
        system = SoftCacheSystem(image, client_config,
                                 shared_mc=shared_mc,
                                 recorder=child)
        if server is not None:
            # read-only: mid-capture retuning would break the
            # clients-are-identical replay contract
            server.attach_system(system, control=False)
        tap = WireTap(system, probe)
        report = system.run(max_instructions)
        if child is not None:
            recorder.merge(child, cycle_offset=int(start * cpu_hz))
        retries = (system.faults.fault_stats.retries
                   if system.faults is not None else 0)
        traces.append(tap.to_trace(report.cycles, retries))
        reports.append(report)
        translations.append(system.stats.translations)
        bytes_requested.append(system.link_stats.payload_bytes)
        transitions = system.cc.epoch_transitions
        final_epochs.append(system.cc._epoch)
        converge_cycles.append(transitions[-1][0] if transitions
                               else None)
        if client_id == 0:
            from ..softcache.debug import architectural_state
            digest = architectural_state(system)
        elif report.output != reports[0].output or \
                (not updates_on and
                 translations[-1] != translations[0]):
            # under a live update, barrier timing depends on each
            # client's miss pattern (cold vs warm), so invalidation /
            # refetch counts legitimately differ — output equality is
            # the divergence contract that must still hold
            raise AssertionError(
                "chunk-cache-served client diverged from the first "
                "client")
        if updates_on and final_epochs[-1] != final_epochs[0]:
            raise AssertionError(
                "fleet clients finished on different image epochs")

    # -- assignment: replicated clients replay warm traces ------------
    def trace_index(client_id: int) -> int:
        if client_id < n_distinct:
            return client_id
        if n_distinct == 1:
            return 0
        # cycle over the warm captures (never the cold client 0: a
        # replicated device joins a fleet whose server caches are hot)
        return 1 + (client_id - n_distinct) % (n_distinct - 1)

    assignment = [trace_index(i) for i in range(n_clients)]
    all_traces = [traces[i] for i in assignment]
    boots = [i * stagger_s for i in range(n_clients)]
    link_retries = 0
    for client_id, t_idx in enumerate(assignment):
        link_retries += traces[t_idx].retries
        if client_id >= n_distinct:
            # the server served this client from its chunk caches:
            # credit each owning shard with the demand fetches
            demands = traces[t_idx].shard_demands
            if isinstance(shared_mc, ShardedMemoryController):
                shared_mc.credit_replicated(demands)
            else:
                n_demands = sum(demands.values())
                shared_mc.stats.requests += n_demands
                shared_mc.stats.chunk_cache_hits += n_demands

    # -- queueing phase: one simulated clock over the whole fleet -----
    if queue_model == "event":
        sim: SimOutcome = run_event_sim(
            all_traces, boots, costs=costs, n_shards=shards,
            origin_service_s=costs.cycles_to_seconds(
                costs.mc_service_cycles),
            hub_capacity=hub_capacity, recorder=recorder)
    else:
        sim = run_legacy_sim(all_traces, boots, costs=costs,
                             n_shards=shards, recorder=recorder)

    clients: list[ClientResult] = []
    wavefront: list[float] = []
    for client_id, t_idx in enumerate(assignment):
        boot = boots[client_id]
        cyc = converge_cycles[t_idx]
        converged = (boot + costs.cycles_to_seconds(cyc)
                     if cyc is not None else boot)
        result = ClientResult(
            client_id=client_id, start_s=boot,
            report=reports[t_idx],
            translations=translations[t_idx],
            bytes_requested=bytes_requested[t_idx],
            queue_delay_s=sim.waits[client_id],
            final_epoch=final_epochs[t_idx],
            converged_s=converged)
        if cyc is not None:
            wavefront.append(converged)
        clients.append(result)
        if recorder is not None:
            recorder.emit(
                "fleet.client", "fleet",
                cycles=int(result.start_s * cpu_hz),
                dur=int((result.report.seconds +
                         result.queue_delay_s) * cpu_hz),
                pid=client_id,
                client=client_id, start_s=result.start_s,
                seconds=result.report.seconds,
                translations=result.translations,
                delay_s=result.queue_delay_s)

    makespan = max(sim.ends) if sim.ends else 0.0
    if sim.busy_until > makespan:
        makespan = sim.busy_until

    if isinstance(shared_mc, ShardedMemoryController):
        shard_loads = [
            ShardLoad(shard=i, requests=sim.shard_requests[i],
                      busy_s=sim.shard_busy_s[i]
                      if i < len(sim.shard_busy_s) else 0.0,
                      mc_requests=part.stats.requests,
                      mc_chunks_built=part.stats.chunks_built,
                      mc_bytes_served=part.stats.bytes_served)
            for i, part in enumerate(shared_mc.shards)]
    else:
        shard_loads = [ShardLoad(
            shard=0, requests=sim.shard_requests[0],
            busy_s=sim.shard_busy_s[0] if sim.shard_busy_s else 0.0,
            mc_requests=shared_mc.stats.requests,
            mc_chunks_built=shared_mc.stats.chunks_built,
            mc_bytes_served=shared_mc.stats.bytes_served)]

    mc_stats = shared_mc.stats
    fleet = FleetResult(
        n_clients=n_clients, link=link, clients=clients,
        mc_requests=mc_stats.requests,
        mc_chunks_built=mc_stats.chunks_built,
        total_transfer_s=sim.uplink_busy_s,
        makespan_s=makespan,
        mean_queue_delay_s=sim.mean_queue_delay_s,
        max_queue_delay_s=sim.max_queue_delay_s,
        delayed_requests=sim.delayed_requests,
        link_retries=link_retries,
        queue_model=queue_model,
        distinct_clients=n_distinct,
        n_shards=shards,
        shard_loads=shard_loads,
        mean_shard_delay_s=sim.mean_shard_delay_s,
        max_shard_delay_s=sim.max_shard_delay_s,
        hub_capacity=hub_capacity,
        hub_requests=sim.hub_requests,
        hub_hits=sim.hub_hits,
        architectural_digest=digest,
        final_epoch=final_epochs[0] if final_epochs else 0,
        clients_converged=sum(
            1 for r in clients
            if r.final_epoch == (final_epochs[0] if final_epochs
                                 else 0)),
        rollout_wavefront_s=sorted(wavefront))

    if recorder is not None:
        end_cycles = int(makespan * cpu_hz)
        for load in shard_loads:
            util = (load.busy_s / makespan) if makespan > 0.0 else 0.0
            recorder.emit("fleet.shard", "fleet", cycles=end_cycles,
                          shard=load.shard, requests=load.requests,
                          busy_s=load.busy_s, util=util)
        if hub_capacity > 0:
            recorder.emit("fleet.hub", "fleet", cycles=end_cycles,
                          requests=fleet.hub_requests,
                          hits=fleet.hub_hits,
                          hit_rate=fleet.hub_hit_rate)
        fleet.publish(recorder.metrics)
    if metrics is not None:
        fleet.publish(metrics)
    return fleet
