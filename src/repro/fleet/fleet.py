"""Fleet simulation: the paper's Figure-1 deployment.

"Two examples of this class include a distributed network of low-cost
sensors with embedded processing and distributed cell phones which
communicate with cell towers" — one server (MC) feeds many embedded
clients (CCs) over a shared uplink.

Each client is a full :class:`~repro.softcache.SoftCacheSystem`; the
fleet shares one server-side memory controller (so chunk rewriting is
done once per chunk, not once per client) and one uplink.  Clients run
staggered in time; after the per-client runs, the merged miss-request
timeline is pushed through a FIFO single-server queue to estimate link
utilization and the queueing delay a real shared uplink would add.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..asm.image import Image
from ..net import LinkModel
from ..softcache import (
    MemoryController,
    RunReport,
    SoftCacheConfig,
    SoftCacheSystem,
)


@dataclass
class ClientResult:
    """One device's run within the fleet."""

    client_id: int
    start_s: float
    report: RunReport
    translations: int
    bytes_requested: int

    @property
    def end_s(self) -> float:
        return self.start_s + self.report.seconds


@dataclass
class FleetResult:
    """Aggregate outcome of a fleet simulation."""

    n_clients: int
    link: LinkModel
    clients: list[ClientResult]
    #: chunks rewritten server-side vs requests served: sharing factor
    mc_requests: int
    mc_chunks_built: int
    #: shared-uplink queue analysis
    total_transfer_s: float
    makespan_s: float
    mean_queue_delay_s: float
    max_queue_delay_s: float
    delayed_requests: int
    #: Link-layer retries across the fleet (fault injection); the
    #: replayed exchanges are real uplink load and are queued like any
    #: other request.
    link_retries: int = 0

    @property
    def link_utilization(self) -> float:
        """Busy fraction of the shared uplink over the makespan."""
        return (self.total_transfer_s / self.makespan_s
                if self.makespan_s else 0.0)

    @property
    def chunk_cache_sharing(self) -> float:
        """Fraction of requests served from the MC's chunk cache
        (work the server did once instead of once per client)."""
        if not self.mc_requests:
            return 0.0
        return 1.0 - self.mc_chunks_built / self.mc_requests


def simulate_fleet(image: Image, n_clients: int,
                   config: SoftCacheConfig | None = None, *,
                   stagger_s: float = 0.0,
                   max_instructions: int = 400_000_000,
                   recorder=None, fault_plan=None,
                   retry_policy=None) -> FleetResult:
    """Run *n_clients* identical devices against one server.

    *stagger_s* offsets each client's boot time; 0 means all devices
    power on together (worst case for the shared uplink, e.g. after a
    region-wide reset of a sensor network).

    *recorder* (a :class:`repro.obs.FlightRecorder`) collects a
    fleet-wide timeline: each *simulated* client runs under its own
    child recorder whose events are merged back shifted by the
    client's boot offset and tagged pid=client_id; every client
    (simulated or replicated) gets a ``fleet.client`` span, and each
    queued uplink request that actually waited gets a ``fleet.queue``
    event.

    *fault_plan* (a :class:`repro.net.FaultPlan`; defaults to
    ``config.fault_plan``) subjects every simulated client's uplink to
    faults, each client under its own seed (``plan.seed + client_id``)
    so outages are decorrelated across the fleet; transient faults
    never change a client's output or translations, so the
    fleet-divergence assertion still holds.  Replayed exchanges are
    appended to the shared-uplink queue as real load.
    """
    if n_clients < 1:
        raise ValueError("need at least one client")
    config = config or SoftCacheConfig()
    if fault_plan is None:
        fault_plan = config.fault_plan
    if retry_policy is None:
        retry_policy = config.retry_policy
    if config.fault_plan is not None or config.retry_policy is not None:
        # per-client plans are re-derived below; strip the shared
        # config so a client never installs the base seed twice
        config = replace(config, fault_plan=None, retry_policy=None)
    faults_on = fault_plan is not None and not fault_plan.is_none()
    recorder = recorder if (recorder is not None
                            and recorder.enabled) else None
    cpu_hz = config.costs.cpu_hz
    shared_mc = MemoryController(image, granularity=config.granularity,
                                 ebb_limit=config.ebb_limit)
    clients: list[ClientResult] = []
    events: list[tuple[float, float]] = []  # (arrival_s, service_s)
    link = config.link
    # devices are identical and deterministic: simulate two against
    # the shared MC (the second exercises the chunk-cache-hit path and
    # must behave identically), then replicate the timeline
    reference: ClientResult | None = None
    link_retries = 0
    ref_retries = 0
    for client_id in range(n_clients):
        start = client_id * stagger_s
        if client_id < 2 or reference is None:
            child = None
            if recorder is not None:
                from ..obs import FlightRecorder
                child = FlightRecorder(pid=client_id)
            client_config = config
            if faults_on:
                client_config = replace(
                    config,
                    fault_plan=replace(fault_plan,
                                       seed=fault_plan.seed + client_id),
                    retry_policy=retry_policy)
            system = SoftCacheSystem(image, client_config,
                                     shared_mc=shared_mc,
                                     recorder=child)
            report = system.run(max_instructions)
            if system.faults is not None:
                ref_retries = system.faults.fault_stats.retries
                link_retries += ref_retries
            if child is not None:
                recorder.merge(child,
                               cycle_offset=int(start * cpu_hz))
            result = ClientResult(
                client_id=client_id, start_s=start, report=report,
                translations=system.stats.translations,
                bytes_requested=system.link_stats.payload_bytes)
            if reference is not None and (
                    report.output != reference.report.output
                    or result.translations != reference.translations):
                raise AssertionError(
                    "chunk-cache-served client diverged from the "
                    "first client")
            reference = reference or result
            timestamps = system.stats.translation_timestamps
            payloads = _per_request_payloads(system)
            timeline = [
                (config.costs.cycles_to_seconds(cycle), payload)
                for cycle, payload in zip(timestamps, payloads)]
            if faults_on and timestamps and \
                    len(payloads) > len(timestamps):
                # link-layer retries made more wire exchanges than
                # translations; the replays are real uplink load, so
                # queue them too, spread over the same arrival times
                for i in range(len(payloads) - len(timestamps)):
                    cycle = timestamps[i % len(timestamps)]
                    timeline.append(
                        (config.costs.cycles_to_seconds(cycle),
                         payloads[len(timestamps) + i]))
        else:
            result = ClientResult(
                client_id=client_id, start_s=start,
                report=reference.report,
                translations=reference.translations,
                bytes_requested=reference.bytes_requested)
            shared_mc.stats.requests += reference.translations
            shared_mc.stats.chunk_cache_hits += reference.translations
            link_retries += ref_retries
        clients.append(result)
        if recorder is not None:
            recorder.emit(
                "fleet.client", "fleet",
                cycles=int(start * cpu_hz),
                dur=int(result.report.seconds * cpu_hz),
                pid=client_id,
                client=client_id, start_s=start,
                seconds=result.report.seconds,
                translations=result.translations)
        for offset, payload in timeline:
            service = (payload + link.exchange_overhead_bytes) * 8 \
                / link.bandwidth_bps
            events.append((start + offset, service))

    events.sort()
    busy_until = 0.0
    total_delay = 0.0
    max_delay = 0.0
    delayed = 0
    total_service = 0.0
    for arrival, service in events:
        begin = max(arrival, busy_until)
        delay = begin - arrival
        if delay > 0:
            delayed += 1
            if recorder is not None:
                recorder.emit(
                    "fleet.queue", "fleet",
                    cycles=int(arrival * cpu_hz),
                    dur=int(delay * cpu_hz),
                    arrival_s=arrival, delay_s=delay,
                    service_s=service)
        total_delay += delay
        max_delay = max(max_delay, delay)
        busy_until = begin + service
        total_service += service

    makespan = max((c.end_s for c in clients), default=0.0)
    makespan = max(makespan, busy_until)
    return FleetResult(
        n_clients=n_clients, link=link, clients=clients,
        mc_requests=shared_mc.stats.requests,
        mc_chunks_built=shared_mc.stats.chunks_built,
        total_transfer_s=total_service,
        makespan_s=makespan,
        mean_queue_delay_s=(total_delay / len(events)) if events else 0.0,
        max_queue_delay_s=max_delay,
        delayed_requests=delayed,
        link_retries=link_retries)


def _per_request_payloads(system: SoftCacheSystem) -> list[int]:
    """Approximate per-request payload sizes for the queue model.

    The channel records only totals; spreading the total evenly over
    the requests keeps the queue analysis first-order while preserving
    total transfer time exactly.
    """
    stats = system.link_stats
    n = stats.exchanges or 1
    return [stats.payload_bytes // n] * stats.exchanges
