"""Discrete-event fleet scheduler: capture once, contend live.

The fleet's clients are blocking-RPC state machines: resident code
runs locally and the only points where a client touches the shared
world are its CC miss-path exchanges.  Queueing delay on a shared
uplink therefore *shifts a client's timeline without changing its
architectural execution* — the reply bytes are the same whether they
arrive late or on time.  That invariant is what makes a 10k-client
fleet tractable, and this module exploits it in two phases:

**Capture.**  A small number of *distinct* clients actually execute
under a :class:`~repro.softcache.SoftCacheSystem` (sharing the MC
chunk cache, the content-keyed superblock compile cache and the
decode memos — see docs/FLEET.md).  A :class:`WireTap` wraps the
client's channel and records every RPC as an :class:`RpcRecord`: the
client-clock cycle at which it was issued, the wire occupancy of
every real traversal (fault-layer retries traverse the inner wire
channel once per delivered attempt, so retry storms are captured as
extra occupancy, not estimated), and the consistent-hash owner of the
demanded chunk (staged by an :class:`MCProbe` on the shared MC).

**Replay.**  Every fleet client is then a resumable state machine
over a captured timeline, advanced by one heap-ordered event queue on
a single simulated clock (:func:`run_event_sim`).  Each RPC queues
FIFO on the shared uplink, then — for chunk traffic — on its origin
shard, unless the shared edge hub (an
:class:`~repro.net.hub.LruChunkCache`) already holds the chunk; every
queueing wait pushes the client's subsequent arrivals later, so
contention feeds back into the arrival process instead of being
reconstructed after the fact.  Arrival times are computed as
``boot + cycles_to_seconds(start_cycles) + accumulated_wait`` — one
expression from the captured integer cycle counts — so a 1-client
fleet reproduces the solo run's simulated seconds *bit-identically*.

:func:`run_legacy_sim` keeps the old post-hoc model (one FIFO pass
over the merged arrival timeline, no feedback) over the *same*
captured records; the two models differ only in feedback and the
shard tier, which is why they converge at low uplink utilization.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..net.hub import LruChunkCache


@dataclass(slots=True)
class RpcRecord:
    """One captured blocking RPC on a client's wire timeline."""

    #: Client cycle counter when the RPC was issued.
    start_cycles: int
    kind: str
    #: Shared-medium occupancy (serialization seconds) summed over
    #: every real wire traversal, retries included.
    wire_s: float
    wire_bytes: int
    #: Real wire trips (> 1 when the fault layer retried).
    traversals: int
    #: Consistent-hash owner of the demanded chunk, -1 for non-chunk
    #: traffic (which never visits the origin-shard tier).
    shard: int
    #: ``(orig, payload_bytes)`` per chunk the reply carried (demand
    #: first); the edge hub is warmed and probed with these.
    keys: tuple[tuple[int, int], ...]


@dataclass
class ClientTrace:
    """A distinct client's captured run, replayable N times."""

    records: list[RpcRecord]
    #: Total cycles of the run (the report's cycle count).
    total_cycles: int
    #: Demand chunk fetches per owning shard (for crediting the
    #: server when this trace is replayed for a replicated client).
    shard_demands: dict[int, int] = field(default_factory=dict)
    #: Link-layer retries the capture run performed.
    retries: int = 0

    @property
    def chunk_rpcs(self) -> int:
        return sum(1 for r in self.records if r.shard >= 0)


class MCProbe:
    """Stages (owner shard, chunk keys) of each MC serve for the tap.

    Installed once per shared MC (the same instance-method wrapping
    the hub's ``with_hub`` uses): the CC serves a chunk/batch *then*
    exchanges it, so whatever was staged last belongs to the next
    ``chunk`` RPC the :class:`WireTap` brackets.  Works with both the
    plain :class:`~repro.softcache.mc.MemoryController` (everything
    owned by shard 0) and the sharded tier (ring ownership).
    """

    def __init__(self, mc):
        owner = getattr(mc, "owner_of", None)
        self._owner = owner if owner is not None else (lambda orig: 0)
        self._shard = -1
        self._keys: tuple[tuple[int, int], ...] = ()
        orig_serve = mc.serve_chunk
        orig_batch = mc.serve_batch
        probe = self

        def serve_chunk(orig_addr):
            chunk = orig_serve(orig_addr)
            probe._stage(orig_addr,
                         ((orig_addr, chunk.payload_bytes),))
            return chunk

        def serve_batch(orig_addr, depth, is_resident):
            batch = orig_batch(orig_addr, depth, is_resident)
            probe._stage(orig_addr,
                         tuple((c.orig, c.payload_bytes)
                               for c, _ in batch))
            return batch

        mc.serve_chunk = serve_chunk
        mc.serve_batch = serve_batch

    def _stage(self, demand: int,
               keys: tuple[tuple[int, int], ...]) -> None:
        self._shard = self._owner(demand)
        self._keys = keys

    def take(self) -> tuple[int, tuple[tuple[int, int], ...]]:
        out = (self._shard, self._keys)
        self._shard, self._keys = -1, ()
        return out


class WireTap:
    """Brackets every RPC of one capture client into RpcRecords.

    Wraps the system's outer channel (the :class:`FaultyChannel` when
    faults are installed, else the plain :class:`Channel`) to mark RPC
    boundaries at the client clock, and the inner wire channel to
    accumulate per-traversal occupancy — so a retried exchange records
    one RPC with several traversals.  Pure observation: the wrapped
    methods are called unchanged, so a tapped run is bit-identical to
    an untapped one.
    """

    def __init__(self, system, probe: MCProbe | None = None):
        self.records: list[RpcRecord] = []
        self._cpu = system.machine.cpu
        self._probe = probe
        outer = system.channel
        inner = getattr(outer, "inner", outer)
        self.link = inner.link
        self._depth = 0
        self._start = 0
        self._wire_s = 0.0
        self._wire_bytes = 0
        self._traversals = 0
        self._shard = -1
        self._keys: tuple[tuple[int, int], ...] = ()
        # wire wrappers go on first: when faults are off, inner IS
        # outer and the bracket must wrap the wire accounting (the
        # bracket resets the traversal accumulators on entry)
        self._wrap_wire(inner)
        self._wrap_bracket(outer)

    # -- wrapping ------------------------------------------------------

    def _wrap_bracket(self, chan) -> None:
        orig_ex = chan.exchange
        orig_batch = chan.batch_exchange
        orig_send = chan.send

        def exchange(kind, payload_bytes):
            with self._rpc(kind):
                return orig_ex(kind, payload_bytes)

        def batch_exchange(kind, sizes):
            with self._rpc(kind):
                return orig_batch(kind, sizes)

        def send(kind, payload_bytes):
            with self._rpc(kind):
                return orig_send(kind, payload_bytes)

        chan.exchange = exchange
        chan.batch_exchange = batch_exchange
        chan.send = send

    def _wrap_wire(self, chan) -> None:
        # NB: when faults are off the bracket and wire wrappers stack
        # on the same channel object; the bracket's depth guard keeps
        # nested calls (Channel.batch_exchange of a single chunk
        # delegates to .exchange) inside one record.
        link = chan.link
        orig_ex = chan.exchange
        orig_batch = chan.batch_exchange
        orig_send = chan.send

        def exchange(kind, payload_bytes):
            self._traverse(payload_bytes + link.exchange_overhead_bytes)
            return orig_ex(kind, payload_bytes)

        def batch_exchange(kind, sizes):
            if len(sizes) > 1:
                self._traverse(sum(sizes) +
                               link.batch_overhead_bytes(len(sizes)))
            # a batch of <= 1 delegates to .exchange, which accounts
            return orig_batch(kind, sizes)

        def send(kind, payload_bytes):
            self._traverse(payload_bytes + link.request_bytes)
            return orig_send(kind, payload_bytes)

        chan.exchange = exchange
        chan.batch_exchange = batch_exchange
        chan.send = send

    # -- recording -----------------------------------------------------

    def _traverse(self, total_bytes: int) -> None:
        self._wire_bytes += total_bytes
        self._wire_s += self.link.wire_time(total_bytes)
        self._traversals += 1

    @contextmanager
    def _rpc(self, kind: str):
        if self._depth:
            self._depth += 1
            try:
                yield
            finally:
                self._depth -= 1
            return
        self._depth = 1
        self._start = self._cpu.cycles
        self._wire_s = 0.0
        self._wire_bytes = 0
        self._traversals = 0
        self._shard, self._keys = -1, ()
        if kind == "chunk" and self._probe is not None:
            self._shard, self._keys = self._probe.take()
        try:
            # a LinkDown mid-RPC still closes the record: traversals
            # that reached the wire are real load, and the degraded-
            # mode replays arrive as fresh records of their own
            yield
        finally:
            self._depth = 0
            self.records.append(RpcRecord(
                start_cycles=self._start, kind=kind,
                wire_s=self._wire_s, wire_bytes=self._wire_bytes,
                traversals=self._traversals,
                shard=self._shard, keys=self._keys))

    # -- trace assembly ------------------------------------------------

    def to_trace(self, total_cycles: int, retries: int = 0
                 ) -> ClientTrace:
        demands: dict[int, int] = {}
        for r in self.records:
            if r.shard >= 0:
                demands[r.shard] = demands.get(r.shard, 0) + 1
        return ClientTrace(records=self.records,
                           total_cycles=total_cycles,
                           shard_demands=demands, retries=retries)


@dataclass
class SimOutcome:
    """What one queueing simulation (event or legacy) produced."""

    #: Per-client total queueing wait (uplink + shard), seconds.
    waits: list[float]
    #: Per-client completion time on the shared clock, seconds.
    ends: list[float]
    #: Total shared-medium occupancy scheduled, seconds.
    uplink_busy_s: float
    #: Instant the uplink last went idle.
    busy_until: float
    mean_queue_delay_s: float
    max_queue_delay_s: float
    delayed_requests: int
    #: Demand chunk RPCs routed to each origin shard.
    shard_requests: list[int]
    #: Origin service occupancy per shard, seconds.
    shard_busy_s: list[float]
    mean_shard_delay_s: float = 0.0
    max_shard_delay_s: float = 0.0
    hub_requests: int = 0
    hub_hits: int = 0


def run_event_sim(traces, boots, *, costs, n_shards: int = 1,
                  origin_service_s: float = 0.0,
                  hub_capacity: int = 0, recorder=None) -> SimOutcome:
    """Advance every client's state machine on one simulated clock.

    *traces* holds each client's :class:`ClientTrace` (replicated
    clients share trace objects), *boots* its boot offset.  One heap
    orders the next pending RPC of every client; popping an event
    queues it FIFO on the shared uplink and — for chunk traffic that
    misses the shared edge hub — on its origin shard, and the waits
    incurred shift all of that client's later arrivals (the feedback
    the legacy model lacks).
    """
    n = len(traces)
    cts = costs.cycles_to_seconds
    hz = costs.cpu_hz
    idx = [0] * n
    waits = [0.0] * n
    ends = [0.0] * n
    heap: list[tuple[float, int, int]] = []
    seq = 0
    for c in range(n):
        recs = traces[c].records
        if recs:
            heap.append((boots[c] + cts(recs[0].start_cycles), seq, c))
            seq += 1
        else:
            ends[c] = boots[c] + cts(traces[c].total_cycles)
    heapq.heapify(heap)

    uplink_free = 0.0
    uplink_busy = 0.0
    shard_free = [0.0] * n_shards
    shard_busy = [0.0] * n_shards
    shard_req = [0] * n_shards
    hub = LruChunkCache(hub_capacity) if hub_capacity > 0 else None
    hub_requests = 0
    hub_hits = 0
    q_total = 0.0
    q_max = 0.0
    q_n = 0
    delayed = 0
    s_total = 0.0
    s_max = 0.0

    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        t, _, c = pop(heap)
        trace = traces[c]
        r = trace.records[idx[c]]
        begin = t if t >= uplink_free else uplink_free
        du = begin - t
        uplink_free = begin + r.wire_s
        uplink_busy += r.wire_s
        ds = 0.0
        if r.shard >= 0:
            sid = r.shard if r.shard < n_shards else 0
            at_hub = False
            if hub is not None:
                hub_requests += 1
                if r.keys and r.keys[0][0] in hub:
                    hub.touch(r.keys[0][0])
                    hub_hits += 1
                    at_hub = True
            if not at_hub:
                shard_req[sid] += 1
            if not at_hub and origin_service_s > 0.0:
                arrive = begin + r.wire_s
                sbegin = (arrive if arrive >= shard_free[sid]
                          else shard_free[sid])
                ds = sbegin - arrive
                shard_free[sid] = sbegin + origin_service_s
                shard_busy[sid] += origin_service_s
                s_total += ds
                if ds > s_max:
                    s_max = ds
            if hub is not None:
                for key, size in r.keys:
                    hub.insert(key, size)
        wait = du + ds
        q_n += 1
        q_total += wait
        if wait > q_max:
            q_max = wait
        if wait > 0:
            delayed += 1
            if recorder is not None:
                where = "uplink" if ds == 0.0 else f"shard{r.shard}"
                recorder.emit("fleet.queue", "fleet",
                              cycles=int(t * hz), dur=int(wait * hz),
                              where=where, arrival_s=t, delay_s=wait,
                              service_s=r.wire_s)
        waits[c] += wait
        idx[c] += 1
        if idx[c] < len(trace.records):
            nxt = trace.records[idx[c]]
            push(heap, (boots[c] + cts(nxt.start_cycles) + waits[c],
                        seq, c))
            seq += 1
        else:
            ends[c] = boots[c] + cts(trace.total_cycles) + waits[c]

    chunk_visits = sum(shard_req)
    return SimOutcome(
        waits=waits, ends=ends, uplink_busy_s=uplink_busy,
        busy_until=uplink_free,
        mean_queue_delay_s=(q_total / q_n) if q_n else 0.0,
        max_queue_delay_s=q_max, delayed_requests=delayed,
        shard_requests=shard_req, shard_busy_s=shard_busy,
        mean_shard_delay_s=(s_total / chunk_visits)
        if chunk_visits else 0.0,
        max_shard_delay_s=s_max,
        hub_requests=hub_requests, hub_hits=hub_hits)


def run_legacy_sim(traces, boots, *, costs, n_shards: int = 1,
                   recorder=None) -> SimOutcome:
    """The pre-event post-hoc model over the same captured records.

    Merges every client's arrivals (unshifted — no feedback) into one
    timeline and pushes it through a single FIFO server.  Kept as
    ``--queue-model legacy`` both as a regression baseline and as the
    convergence oracle: at low utilization the feedback the event
    model adds is negligible and the two must agree.
    """
    n = len(traces)
    cts = costs.cycles_to_seconds
    hz = costs.cpu_hz
    waits = [0.0] * n
    ends = [0.0] * n
    shard_req = [0] * n_shards
    events: list[tuple[float, float]] = []
    for c in range(n):
        trace = traces[c]
        boot = boots[c]
        for r in trace.records:
            events.append((boot + cts(r.start_cycles), r.wire_s))
        ends[c] = boot + cts(trace.total_cycles)
        for sid, cnt in trace.shard_demands.items():
            shard_req[sid if sid < n_shards else 0] += cnt
    events.sort()
    busy_until = 0.0
    total_delay = 0.0
    max_delay = 0.0
    delayed = 0
    total_service = 0.0
    for arrival, service in events:
        begin = arrival if arrival >= busy_until else busy_until
        delay = begin - arrival
        if delay > 0:
            delayed += 1
            if recorder is not None:
                recorder.emit("fleet.queue", "fleet",
                              cycles=int(arrival * hz),
                              dur=int(delay * hz), where="uplink",
                              arrival_s=arrival, delay_s=delay,
                              service_s=service)
        total_delay += delay
        if delay > max_delay:
            max_delay = delay
        busy_until = begin + service
        total_service += service
    return SimOutcome(
        waits=waits, ends=ends, uplink_busy_s=total_service,
        busy_until=busy_until,
        mean_queue_delay_s=(total_delay / len(events))
        if events else 0.0,
        max_queue_delay_s=max_delay, delayed_requests=delayed,
        shard_requests=shard_req,
        shard_busy_s=[0.0] * n_shards)
