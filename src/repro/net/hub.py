"""A mid-tier chunk cache: the paper's multilevel-caching remark.

"Software caching may be used to implement a particular level in a
multilevel caching system" (§1).  In the cell-phone scenario the cell
tower can keep a chunk cache so that most misses are served one fast
hop away instead of across the backhaul to the origin server.

:class:`HubChannel` wraps the CC's channel: an exchange first costs
the near link; on a hub miss the far link is traversed too and the
chunk (keyed by original address) is cached at the hub with LRU
replacement.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .link import Channel, LinkModel


@dataclass
class HubStats:
    requests: int = 0
    hub_hits: int = 0
    origin_fetches: int = 0
    hub_bytes: int = 0
    origin_bytes: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hub_hits / self.requests if self.requests else 0.0


class HubChannel(Channel):
    """A two-hop channel with an LRU chunk cache at the near hop.

    Drop-in replacement for :class:`~repro.net.Channel`: the
    SoftCacheSystem is constructed normally and its ``channel`` is
    swapped for a HubChannel (see ``with_hub``).  Only ``chunk``
    exchanges are cached; data traffic always goes to the origin.
    """

    def __init__(self, near: LinkModel, far: LinkModel,
                 capacity_bytes: int = 64 * 1024):
        super().__init__(near)
        self.far = far
        self.capacity = capacity_bytes
        self.hub_stats = HubStats()
        self._cache: OrderedDict[int, int] = OrderedDict()  # key->bytes
        self._cached_bytes = 0
        #: set per-request by the CC wrapper; identifies the chunk
        self.next_key: int | None = None

    def exchange(self, kind: str, payload_bytes: int) -> float:
        if kind != "chunk" or self.next_key is None:
            seconds = super().exchange(kind, payload_bytes)
            return seconds + self.far.exchange_time(payload_bytes)
        key = self.next_key
        self.next_key = None
        self.hub_stats.requests += 1
        seconds = super().exchange(kind, payload_bytes)  # near hop
        if key in self._cache:
            self._cache.move_to_end(key)
            self.hub_stats.hub_hits += 1
            self.hub_stats.hub_bytes += payload_bytes
            return seconds
        # hub miss: fetch from the origin over the far link and cache
        self.hub_stats.origin_fetches += 1
        self.hub_stats.origin_bytes += payload_bytes
        seconds += self.far.exchange_time(payload_bytes)
        self._cached_bytes += payload_bytes
        self._cache[key] = payload_bytes
        while self._cached_bytes > self.capacity and self._cache:
            _, evicted = self._cache.popitem(last=False)
            self._cached_bytes -= evicted
            self.hub_stats.evictions += 1
        return seconds


def with_hub(system, near: LinkModel | None = None,
             far: LinkModel | None = None,
             capacity_bytes: int = 64 * 1024) -> HubChannel:
    """Insert a hub cache between *system*'s CC and its MC.

    Returns the installed :class:`HubChannel` (whose ``hub_stats``
    report hit rates).  Call before ``system.run()``.
    """
    near = near or LinkModel()
    far = far or LinkModel(bandwidth_bps=2e6, latency_s=5e-3)
    hub = HubChannel(near, far, capacity_bytes)
    system.channel = hub
    system.cc.channel = hub

    mc = system.mc
    original = mc.serve_chunk

    def serving(orig_addr: int):
        hub.next_key = orig_addr
        return original(orig_addr)

    mc.serve_chunk = serving
    return hub
