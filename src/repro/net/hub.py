"""A mid-tier chunk cache: the paper's multilevel-caching remark.

"Software caching may be used to implement a particular level in a
multilevel caching system" (§1).  In the cell-phone scenario the cell
tower can keep a chunk cache so that most misses are served one fast
hop away instead of across the backhaul to the origin server.

:class:`HubChannel` wraps the CC's channel: an exchange first costs
the near link; on a hub miss the far link is traversed too and the
chunk (keyed by original address) is cached at the hub with LRU
replacement.  Batched (prefetch) replies populate the hub with every
chunk they carry, so one client's prefetch warms the hub for the whole
fleet.

Only ``chunk`` traffic is cached.  Every other kind (data refills,
writebacks, invalidations) is a deliberate **pass-through**: the hub
holds immutable rewritten code, not data, so non-chunk exchanges
always pay both hops end to end.  Both hops are recorded in
:class:`~repro.net.link.LinkStats` — ``busy_seconds``,
``payload_bytes`` and ``overhead_bytes`` count the near *and* far legs
of every origin round trip, while ``exchanges`` counts logical RPCs
(one per client request) and ``exchange_overhead_bytes`` keeps the
near-hop §2.4 per-exchange metric.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

from .link import Channel, LinkModel


@dataclass
class HubStats:
    requests: int = 0
    hub_hits: int = 0
    origin_fetches: int = 0
    hub_bytes: int = 0
    origin_bytes: int = 0
    evictions: int = 0
    #: Chunk requests that were link-layer retries of an exchange the
    #: hub already served once.  Counted here instead of ``requests``
    #: / ``hub_hits`` — a replayed request would otherwise always hit
    #: (the first attempt populated the cache) and inflate the rate.
    replayed_requests: int = 0
    #: Far-hop payload bytes moved on behalf of replayed requests.
    replayed_far_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hub_hits / self.requests if self.requests else 0.0


class LruChunkCache:
    """A byte-capacity LRU over chunk keys.

    Keys are original addresses for a single-version MC, and
    ``(group, epoch, orig)`` tuples once an MC is versioned or serves
    a non-default tenant group (see :func:`hub_key`) — entries from
    different image versions or different programs can then never
    alias each other while sharing one hub's byte budget.

    The storage half of a hub: used in-line by :class:`HubChannel`
    (per-exchange, blocking semantics) and by the fleet's event-driven
    scheduler as the shared edge hub in the edge-hub → origin-shard
    topology (:mod:`repro.fleet.sched`), so both tiers evict the same
    way.  ``capacity_bytes == 0`` disables caching entirely: nothing
    is ever held, every lookup misses.
    """

    __slots__ = ("capacity", "cached_bytes", "evictions", "_entries")

    def __init__(self, capacity_bytes: int):
        self.capacity = capacity_bytes
        self.cached_bytes = 0
        self.evictions = 0
        self._entries: OrderedDict = OrderedDict()

    def __contains__(self, key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def touch(self, key) -> None:
        """Mark *key* most recently used."""
        self._entries.move_to_end(key)

    def insert(self, key, payload_bytes: int) -> None:
        if self.capacity <= 0:
            return
        if key in self._entries:
            self.cached_bytes -= self._entries.pop(key)
        self.cached_bytes += payload_bytes
        self._entries[key] = payload_bytes
        while self.cached_bytes > self.capacity and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self.cached_bytes -= evicted
            self.evictions += 1


def hub_key(mc, orig_addr: int):
    """The hub-cache key for a chunk just served by *mc*.

    A plain original address while the MC is unversioned (epoch 0)
    and serving the default tenant group — byte-identical behaviour
    with pre-update hubs.  Once an image has been republished (or the
    MC serves a named group), keys become ``(group, epoch, orig)``:
    the *serving* epoch tags the entry, so a lagging client drawing a
    stale version and an updated client drawing the current one can
    never hand each other's bytes through the hub.
    """
    epoch = getattr(mc, "last_served_epoch", 0)
    group = getattr(mc, "group", "default")
    if epoch or group != "default":
        return (group, epoch, orig_addr)
    return orig_addr


class HubChannel(Channel):
    """A two-hop channel with an LRU chunk cache at the near hop.

    Drop-in replacement for :class:`~repro.net.Channel`: the
    SoftCacheSystem is constructed normally and its ``channel`` is
    swapped for a HubChannel (see ``with_hub``).  Only ``chunk``
    exchanges are cached; everything else passes through to the
    origin (both hops paid and recorded).
    """

    def __init__(self, near: LinkModel, far: LinkModel,
                 capacity_bytes: int = 64 * 1024):
        super().__init__(near)
        self.far = far
        self.capacity = capacity_bytes
        self.hub_stats = HubStats()
        self._cache = LruChunkCache(capacity_bytes)
        #: set per-request by the CC wrapper; identifies the chunk
        self.next_key: int | None = None
        #: set per-batch by the CC wrapper; one key per batched chunk,
        #: demanded chunk first.
        self.next_keys: list[int] | None = None
        #: set by the fault layer before re-traversing this channel
        #: for an exchange the hub already saw (a link-layer retry);
        #: replayed requests keep their wire accounting but are kept
        #: out of the hub hit-rate denominator.
        self.replaying = False

    # -- far-hop accounting -------------------------------------------

    def _record_far_exchange(self, payload_bytes: int, *,
                             replay: bool = False) -> float:
        """Traverse the far link for one chunk/pass-through exchange.

        The far leg is real traffic: its seconds and bytes land in the
        channel's LinkStats (they used to be added to the returned time
        only, undercounting ``busy_seconds``/``payload_bytes`` on every
        hub miss).  ``exchanges`` is not bumped — the client made one
        logical RPC — and ``exchange_overhead_bytes`` keeps the
        near-hop §2.4 per-exchange metric.  *replay* marks a retried
        exchange: the wire cost is real and recorded, but the bytes
        are tallied as :attr:`HubStats.replayed_far_bytes` instead of
        fresh origin traffic.
        """
        seconds = self.far.exchange_time(payload_bytes)
        stats = self.stats
        stats.busy_seconds += seconds
        stats.payload_bytes += payload_bytes
        stats.overhead_bytes += self.far.exchange_overhead_bytes
        if replay:
            self.hub_stats.replayed_far_bytes += payload_bytes
        if self.tracer is not None:
            self.tracer.emit("hub.far", "hub", bytes=payload_bytes,
                             seconds=seconds)
        return seconds

    def _record_far_batch(self, payload_sizes: Sequence[int], *,
                          replay: bool = False) -> float:
        seconds = self.far.batch_exchange_time(payload_sizes)
        stats = self.stats
        stats.busy_seconds += seconds
        stats.payload_bytes += sum(payload_sizes)
        stats.overhead_bytes += self.far.batch_overhead_bytes(
            len(payload_sizes))
        if replay:
            self.hub_stats.replayed_far_bytes += sum(payload_sizes)
        if self.tracer is not None:
            self.tracer.emit("hub.far", "hub",
                             bytes=sum(payload_sizes), seconds=seconds)
        return seconds

    # -- cache management ---------------------------------------------

    def _cache_insert(self, key: int, payload_bytes: int) -> None:
        self._cache.insert(key, payload_bytes)
        self.hub_stats.evictions = self._cache.evictions

    # -- exchanges ----------------------------------------------------

    def exchange(self, kind: str, payload_bytes: int) -> float:
        replay = self.replaying
        self.replaying = False
        if kind != "chunk" or self.next_key is None:
            # non-chunk pass-through: the hub caches code only, so
            # both hops are always paid (and now recorded).
            seconds = super().exchange(kind, payload_bytes)
            return seconds + self._record_far_exchange(payload_bytes,
                                                       replay=replay)
        key = self.next_key
        self.next_key = None
        stats = self.hub_stats
        if replay:
            # link-layer retry of a request this hub already served:
            # pay the wire again, but keep it out of the hit rate —
            # the first attempt cached the chunk, so counting the
            # replay would manufacture a hit out of packet loss.
            stats.replayed_requests += 1
            seconds = super().exchange(kind, payload_bytes)
            if key in self._cache:
                self._cache.touch(key)
                return seconds
            return seconds + self._record_far_exchange(payload_bytes,
                                                       replay=True)
        stats.requests += 1
        seconds = super().exchange(kind, payload_bytes)  # near hop
        if key in self._cache:
            self._cache.touch(key)
            stats.hub_hits += 1
            stats.hub_bytes += payload_bytes
            if self.tracer is not None:
                self.tracer.emit("hub.hit", "hub", key=key,
                                 bytes=payload_bytes)
            return seconds
        # hub miss: fetch from the origin over the far link and cache
        stats.origin_fetches += 1
        stats.origin_bytes += payload_bytes
        seconds += self._record_far_exchange(payload_bytes)
        self._cache_insert(key, payload_bytes)
        return seconds

    def batch_exchange(self, kind: str,
                       payload_sizes: Sequence[int]) -> float:
        """Batched chunk delivery through the hub.

        The hub forwards one far-link batch for the chunks it lacks
        and serves the rest from its cache; **every** chunk in the
        reply is keyed into the hub cache, so chunks a client merely
        prefetched are hub hits for the next client's demand miss.
        """
        replay = self.replaying
        self.replaying = False
        keys = self.next_keys
        self.next_keys = None
        if kind != "chunk" or keys is None or \
                len(keys) != len(payload_sizes):
            self.replaying = replay  # exchange() pass-through reads it
            seconds = super().batch_exchange(kind, payload_sizes)
            if len(payload_sizes) <= 1:
                # super() routed through exchange(); far hop already
                # recorded by the pass-through path above.
                return seconds
            self.replaying = False
            return seconds + self._record_far_batch(payload_sizes,
                                                    replay=replay)
        if len(payload_sizes) == 1:
            # a batch of one is exactly a single keyed exchange; do
            # not let Channel.batch_exchange re-enter our exchange()
            # with the key already consumed (that path would treat it
            # as a pass-through and double-pay the far hop).
            self.next_key = keys[0]
            self.replaying = replay
            return self.exchange(kind, payload_sizes[0])
        stats = self.hub_stats
        seconds = super().batch_exchange(kind, payload_sizes)  # near
        missing: list[int] = []
        for key, size in zip(keys, payload_sizes):
            if replay:
                stats.replayed_requests += 1
                if key in self._cache:
                    self._cache.touch(key)
                else:
                    missing.append(size)
                continue
            stats.requests += 1
            if key in self._cache:
                self._cache.touch(key)
                stats.hub_hits += 1
                stats.hub_bytes += size
                if self.tracer is not None:
                    self.tracer.emit("hub.hit", "hub", key=key,
                                     bytes=size)
            else:
                stats.origin_fetches += 1
                stats.origin_bytes += size
                missing.append(size)
        if missing:
            seconds += self._record_far_batch(missing, replay=replay)
        for key, size in zip(keys, payload_sizes):
            self._cache_insert(key, size)
        return seconds


def with_hub(system, near: LinkModel | None = None,
             far: LinkModel | None = None,
             capacity_bytes: int = 64 * 1024,
             hub: HubChannel | None = None) -> HubChannel:
    """Insert a hub cache between *system*'s CC and its MC.

    Returns the installed :class:`HubChannel` (whose ``hub_stats``
    report hit rates).  Call before ``system.run()``.  Pass an
    existing *hub* to share one mid-tier cache between several client
    systems (the cell-tower scenario: systems built with a
    ``shared_mc`` and one hub see each other's chunks).
    """
    if hub is None:
        near = near or LinkModel()
        far = far or LinkModel(bandwidth_bps=2e6, latency_s=5e-3)
        hub = HubChannel(near, far, capacity_bytes)
    if hub.tracer is None:
        # inherit the flight recorder the system wired into the
        # channel this hub replaces
        hub.tracer = system.channel.tracer
    system.channel = hub
    system.cc.channel = hub

    mc = system.mc
    if getattr(mc, "_hub_wrapped", None) is hub:
        return hub  # shared MC already feeds this hub's key plumbing

    original = mc.serve_chunk
    original_batch = mc.serve_batch

    def serving(orig_addr: int):
        # key AFTER serving: the serve resolves which epoch this
        # client is drawing from (mc.last_served_epoch), and the key
        # must carry the epoch that produced the bytes
        result = original(orig_addr)
        hub.next_key = hub_key(mc, orig_addr)
        return result

    def serving_batch(orig_addr: int, depth: int, is_resident):
        batch = original_batch(orig_addr, depth, is_resident)
        hub.next_keys = [hub_key(mc, chunk.orig) for chunk, _ in batch]
        return batch

    mc.serve_chunk = serving
    mc.serve_batch = serving_batch
    mc._hub_wrapped = hub
    return hub
