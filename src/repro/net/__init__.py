"""repro.net — the CC<->MC interconnect models.

A parameterized bandwidth/latency/overhead link (:class:`LinkModel`),
an accounting RPC channel (:class:`Channel`), the zero-cost
:data:`LOCAL_LINK` of the SPARC prototype, a two-hop
:class:`HubChannel` with a mid-tier chunk cache (the paper's
multilevel-caching remark), and a fault-injection layer
(:class:`FaultyChannel` driven by a seed-deterministic
:class:`FaultPlan` + :class:`RetryPolicy`) for exercising lossy links
and degraded resident mode.  Defaults match the paper's testbed:
10 Mbps Ethernet, 60 application bytes of protocol overhead per chunk
exchange.
"""

from .faults import (FaultPlan, FaultStats, FaultyChannel, LinkDown,
                     RetryPolicy, chunk_checksum, install_faults)
from .hub import HubChannel, HubStats, with_hub
from .link import Channel, LOCAL_LINK, LinkModel, LinkStats

__all__ = ["Channel", "FaultPlan", "FaultStats", "FaultyChannel",
           "HubChannel", "HubStats", "LOCAL_LINK", "LinkDown",
           "LinkModel", "LinkStats", "RetryPolicy", "chunk_checksum",
           "install_faults", "with_hub"]
