"""repro.net — the CC<->MC interconnect models.

A parameterized bandwidth/latency/overhead link (:class:`LinkModel`),
an accounting RPC channel (:class:`Channel`), the zero-cost
:data:`LOCAL_LINK` of the SPARC prototype, and a two-hop
:class:`HubChannel` with a mid-tier chunk cache (the paper's
multilevel-caching remark).  Defaults match the paper's testbed:
10 Mbps Ethernet, 60 application bytes of protocol overhead per chunk
exchange.
"""

from .hub import HubChannel, HubStats, with_hub
from .link import Channel, LOCAL_LINK, LinkModel, LinkStats

__all__ = ["Channel", "HubChannel", "HubStats", "LOCAL_LINK",
           "LinkModel", "LinkStats", "with_hub"]
