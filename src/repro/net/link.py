"""Network link model between the embedded client (CC) and server (MC).

The paper's ARM prototype ran over 10 Mbps Ethernet with TCP/IP and
measured **60 application bytes of protocol overhead per code chunk
exchanged** (Section 2.4).  This model reproduces exactly those
parameters: a bandwidth term, a fixed per-message latency, and
per-message protocol overhead bytes, with the request/reply header
sizes chosen so one miss exchange costs 60 bytes beyond the payload.

No queueing is modeled — the client blocks on each miss (RPC
semantics), matching the prototypes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class LinkModel:
    """Timing/overhead parameters of the CC<->MC interconnect."""

    #: Raw link bandwidth in bits per second (10 Mbps Ethernet).
    bandwidth_bps: float = 10e6
    #: One-way message latency in seconds (LAN + protocol stack).
    latency_s: float = 150e-6
    #: Application-level header bytes on a request message.
    request_bytes: int = 24
    #: Application-level header bytes on a reply message.
    reply_header_bytes: int = 36
    #: Sub-header bytes per *additional* chunk in a batched reply
    #: (original address + size + exit count).  The demanded chunk
    #: rides under the main reply header, so a batch of one costs
    #: exactly :meth:`exchange_time`.
    batch_subheader_bytes: int = 12

    @property
    def exchange_overhead_bytes(self) -> int:
        """Protocol bytes per request/reply exchange beyond the payload.

        24 + 36 = 60, the paper's measured per-chunk overhead.
        """
        return self.request_bytes + self.reply_header_bytes

    def exchange_time(self, payload_bytes: int) -> float:
        """Seconds for one blocking RPC carrying *payload_bytes* back."""
        total_bytes = self.exchange_overhead_bytes + payload_bytes
        return 2 * self.latency_s + total_bytes * 8 / self.bandwidth_bps

    def batch_overhead_bytes(self, nchunks: int) -> int:
        """Protocol bytes for a batched reply carrying *nchunks* chunks:
        one request header, one reply header, one sub-header per extra
        chunk.  This is what amortizes the paper's 60-byte-per-exchange
        overhead across a prefetch batch."""
        return (self.exchange_overhead_bytes +
                self.batch_subheader_bytes * max(0, nchunks - 1))

    def batch_exchange_time(self, payload_sizes: Sequence[int]) -> float:
        """Seconds for one RPC returning several chunks in one reply.

        One latency pair regardless of batch size; the wire carries the
        shared headers plus every chunk back to back.  Degenerates to
        :meth:`exchange_time` for a single chunk.
        """
        total_bytes = (self.batch_overhead_bytes(len(payload_sizes)) +
                       sum(payload_sizes))
        return 2 * self.latency_s + total_bytes * 8 / self.bandwidth_bps

    def wire_time(self, total_bytes: int) -> float:
        """Seconds *total_bytes* occupy the shared medium.

        Pure serialization time — no latency term.  This is the
        occupancy one message contributes to a shared uplink: while
        its bytes are on the wire nobody else can transmit, whereas
        propagation latency overlaps freely.  The fleet's queueing
        models (event-driven and legacy) both charge exactly this per
        exchange, which is what lets them converge at low load.
        """
        return total_bytes * 8 / self.bandwidth_bps

    def one_way_time(self, payload_bytes: int) -> float:
        """Seconds for a one-way message (writebacks, invalidations)."""
        total_bytes = self.request_bytes + payload_bytes
        return self.latency_s + total_bytes * 8 / self.bandwidth_bps


@dataclass
class LinkStats:
    """Traffic accounting for one CC<->MC channel."""

    exchanges: int = 0
    one_way_messages: int = 0
    payload_bytes: int = 0
    overhead_bytes: int = 0
    #: Base request/reply header bytes of RPC exchanges only (the
    #: §2.4 per-exchange overhead; batch sub-headers excluded so
    #: :meth:`overhead_per_exchange` stays the paper's metric).
    exchange_overhead_bytes: int = 0
    busy_seconds: float = 0.0
    #: Exchanges whose reply carried more than one chunk.
    batch_exchanges: int = 0
    #: Chunks delivered inside batched replies (demand + prefetch).
    batched_chunks: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.payload_bytes + self.overhead_bytes

    def overhead_per_exchange(self) -> float:
        """Mean protocol overhead per RPC exchange (the 60-byte
        result of §2.4); one-way messages are excluded."""
        if not self.exchanges:
            return 0.0
        return self.exchange_overhead_bytes / self.exchanges


#: The SPARC-prototype configuration: MC and CC are one program on one
#: machine ("communication ... is accomplished by jumping back and
#: forth", §2.1), so transfers cost no wire time; only the cost-model
#: cycle charges (MC service, install, patch) remain.
LOCAL_LINK = LinkModel(bandwidth_bps=1e15, latency_s=0.0,
                       request_bytes=24, reply_header_bytes=36)


class Channel:
    """A blocking RPC channel with traffic and time accounting.

    ``exchange`` returns the simulated transfer time in seconds; the
    caller (the CC) converts it to client cycles via the cost model
    and charges the CPU.
    """

    def __init__(self, link: LinkModel | None = None):
        self.link = link or LinkModel()
        self.stats = LinkStats()
        #: Flight recorder (repro.obs), attached by the system.
        self.tracer = None

    def exchange(self, kind: str, payload_bytes: int) -> float:
        """One request/reply RPC returning *payload_bytes* of payload."""
        link = self.link
        seconds = link.exchange_time(payload_bytes)
        stats = self.stats
        stats.exchanges += 1
        stats.payload_bytes += payload_bytes
        stats.overhead_bytes += link.exchange_overhead_bytes
        stats.exchange_overhead_bytes += link.exchange_overhead_bytes
        stats.busy_seconds += seconds
        stats.by_kind[kind] = stats.by_kind.get(kind, 0) + 1
        if self.tracer is not None:
            self.tracer.emit("link.exchange", "link", kind=kind,
                             payload=payload_bytes,
                             overhead=link.exchange_overhead_bytes,
                             seconds=seconds)
        return seconds

    def batch_exchange(self, kind: str,
                       payload_sizes: Sequence[int]) -> float:
        """One RPC whose reply carries several chunks (miss batching).

        A single-chunk batch is accounted exactly like :meth:`exchange`
        so ``prefetch_depth=0`` configurations are bit-identical to the
        unbatched protocol.
        """
        if len(payload_sizes) <= 1:
            return self.exchange(kind, sum(payload_sizes))
        link = self.link
        seconds = link.batch_exchange_time(payload_sizes)
        stats = self.stats
        stats.exchanges += 1
        stats.batch_exchanges += 1
        stats.batched_chunks += len(payload_sizes)
        stats.payload_bytes += sum(payload_sizes)
        stats.overhead_bytes += link.batch_overhead_bytes(
            len(payload_sizes))
        stats.exchange_overhead_bytes += link.exchange_overhead_bytes
        stats.busy_seconds += seconds
        stats.by_kind[kind] = stats.by_kind.get(kind, 0) + 1
        if self.tracer is not None:
            self.tracer.emit("link.batch", "link", kind=kind,
                             chunks=len(payload_sizes),
                             payload=sum(payload_sizes),
                             seconds=seconds)
        return seconds

    def send(self, kind: str, payload_bytes: int) -> float:
        """One one-way message carrying *payload_bytes*."""
        link = self.link
        seconds = link.one_way_time(payload_bytes)
        stats = self.stats
        stats.one_way_messages += 1
        stats.payload_bytes += payload_bytes
        stats.overhead_bytes += link.request_bytes
        stats.busy_seconds += seconds
        stats.by_kind[kind] = stats.by_kind.get(kind, 0) + 1
        if self.tracer is not None:
            self.tracer.emit("link.send", "link", kind=kind,
                             payload=payload_bytes, seconds=seconds)
        return seconds
