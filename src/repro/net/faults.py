"""Fault injection for the CC<->MC link: lossy channels, retries,
degraded resident mode.

The paper assumes the embedded client is "permanently connected" to
the MC over a reliable RPC link (§2.4) — misses block, replies always
arrive, the server never restarts.  At production scale none of that
holds, and the translation cache becomes the survivability layer: a
client with a warm tcache keeps executing resident chunks even while
the MC is away.  This module supplies the machinery:

* :class:`FaultPlan` — a frozen, seed-driven specification of link
  faults: drop/duplicate/corrupt/delay probabilities, partition
  windows and MC crash-restart epochs, all resolved from one seeded
  PRNG so the same plan always produces the same fault sequence.
* :class:`RetryPolicy` — timeout, exponential backoff with seeded
  jitter, and a per-exchange retry budget.
* :class:`FaultyChannel` — a drop-in wrapper over
  :class:`~repro.net.link.Channel` (or
  :class:`~repro.net.hub.HubChannel`) that replays each RPC through
  the plan: failed attempts cost the client a timeout plus backoff,
  corrupted replies are caught by the chunk checksum carried in the
  MC reply header and charged as a re-fetch, and exhausting the retry
  budget on the miss path raises the typed :class:`LinkDown` trap
  that sends the CC into **degraded resident mode** (see
  ``BaseCacheController._replay_after_reconnect``).

Zero cost when absent: no plan installed means no wrapper — the
system's channel is the plain seed :class:`Channel` and every code
path is bit-identical to a fault-free build (``FaultPlan.none()``
installs nothing).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Sequence


def chunk_checksum(payload: bytes) -> int:
    """The integrity word the MC puts in each chunk reply header.

    CRC32 of the pre-encoded payload bytes; the client verifies it
    before installing, so a corrupted reply is detected and re-fetched
    instead of silently installed as garbage code.
    """
    return zlib.crc32(payload) & 0xFFFFFFFF


class LinkDown(Exception):
    """Retry budget exhausted: the CC<->MC link is (transiently) down.

    Raised by :class:`FaultyChannel` on the chunk miss path only; the
    cache controller catches it per-miss, records it against the
    demanded chunk and enters degraded resident mode until the next
    reconnect epoch.
    """

    def __init__(self, kind: str, attempts: int, seconds: float = 0.0):
        super().__init__(f"link down after {attempts} attempts "
                         f"({kind} exchange)")
        self.kind = kind
        self.attempts = attempts
        #: Client seconds already burned on timeouts/backoff before
        #: the budget ran out (the CC charges them to the miss).
        self.seconds = seconds


class FaultConfigError(RuntimeError):
    """A fault plan that can never deliver (e.g. drop probability 1
    with no partition end), detected by the reconnect-epoch cap."""


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry behaviour for one RPC exchange."""

    #: Seconds the client waits for a reply before declaring the
    #: attempt lost.
    timeout_s: float = 2e-3
    #: Attempts (1 + retries) before the exchange raises LinkDown.
    max_attempts: int = 4
    #: First backoff interval; doubles (``backoff_factor``) per retry.
    backoff_base_s: float = 0.5e-3
    backoff_factor: float = 2.0
    #: Backoff ceiling.
    backoff_max_s: float = 8e-3
    #: Fractional jitter: each backoff is scaled by a factor drawn
    #: uniformly from [1-jitter, 1+jitter] using the channel's seeded
    #: PRNG (deterministic per seed, decorrelated across clients).
    jitter: float = 0.1

    def backoff_s(self, attempt: int, rng: random.Random | None) -> float:
        """Backoff before retry number *attempt* (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(self.backoff_max_s,
                   self.backoff_base_s *
                   self.backoff_factor ** (attempt - 1))
        if self.jitter and rng is not None:
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic, seed-driven fault specification for one link.

    Per-attempt fault outcomes are drawn from ``random.Random(seed)``
    in a fixed order, so the same plan instance always yields the same
    event sequence (:meth:`decisions` exposes the stream for tests).
    ``partitions`` and ``mc_crash_epochs`` are expressed in *attempt
    index* units — the global count of RPC attempts the channel has
    made — which keeps them exactly reproducible regardless of
    workload timing.
    """

    seed: int = 0
    #: Request lost before reaching the MC (client times out).
    drop_request_p: float = 0.0
    #: Reply lost on the way back (server did the work, client times
    #: out and re-fetches).
    drop_reply_p: float = 0.0
    #: Reply payload corrupted in transit (caught by the reply-header
    #: checksum, charged as a re-fetch).
    corrupt_p: float = 0.0
    #: Reply duplicated (wasted wire time, client unaffected).
    duplicate_p: float = 0.0
    #: Reply delayed by ~``delay_s`` extra seconds.
    delay_p: float = 0.0
    delay_s: float = 1e-3
    #: ``(start, end)`` attempt-index windows during which every
    #: attempt is dropped (link partition).
    partitions: tuple[tuple[int, int], ...] = ()
    #: Attempt indexes at which the MC crash-restarts: the in-flight
    #: attempt is lost and the server's chunk cache comes back cold.
    mc_crash_epochs: tuple[int, ...] = ()

    def is_none(self) -> bool:
        """True if this plan can never produce a fault."""
        return (self.drop_request_p <= 0 and self.drop_reply_p <= 0
                and self.corrupt_p <= 0 and self.duplicate_p <= 0
                and self.delay_p <= 0 and not self.partitions
                and not self.mc_crash_epochs)

    # -- presets ------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The fault-free plan: installing it is a no-op."""
        return cls()

    @classmethod
    def lossy(cls, seed: int = 0, p: float = 0.05) -> "FaultPlan":
        """A uniformly lossy link: drops, corruption, dups, delays."""
        return cls(seed=seed, drop_request_p=p / 2, drop_reply_p=p / 2,
                   corrupt_p=p / 2, duplicate_p=p / 4, delay_p=p,
                   delay_s=1e-3)

    @classmethod
    def chaos(cls, seed: int = 0) -> "FaultPlan":
        """One cell of the chaos matrix: the seed picks both the PRNG
        stream and the fault mix, so ``chaos(0..N)`` spans light loss,
        heavy loss, partitions and MC crash-restarts.  Every fault is
        transient, so a run under any chaos cell must reach the exact
        fault-free architectural state."""
        r = random.Random(seed)
        partitions: tuple[tuple[int, int], ...] = ()
        crashes: tuple[int, ...] = ()
        if seed % 3 == 0:
            start = 20 + r.randrange(30)
            partitions = ((start, start + 8 + r.randrange(12)),)
        if seed % 4 == 1:
            crashes = (15 + r.randrange(40),)
        return cls(seed=seed,
                   drop_request_p=0.01 + 0.04 * r.random(),
                   drop_reply_p=0.01 + 0.04 * r.random(),
                   corrupt_p=0.01 + 0.04 * r.random(),
                   duplicate_p=0.02 * r.random(),
                   delay_p=0.05 * r.random(), delay_s=1e-3,
                   partitions=partitions, mc_crash_epochs=crashes)

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a CLI spec string.

        Either a preset name (``none``, ``lossy``, ``chaos``) or a
        comma-separated list of ``key=value`` terms::

            drop=0.1,corrupt=0.05,dup=0.02,delay=0.1:0.002,
            partition=40:60,crash=100

        ``drop`` splits evenly between request and reply loss
        (``drop_req=`` / ``drop_reply=`` set them individually);
        ``delay`` takes ``p`` or ``p:seconds``; ``partition`` takes
        ``start:end`` attempt indexes (repeatable); ``crash`` takes an
        attempt index (repeatable).
        """
        spec = spec.strip()
        if spec in ("", "none"):
            return cls(seed=seed)
        if spec == "lossy":
            return cls.lossy(seed)
        if spec == "chaos":
            return cls.chaos(seed)
        kwargs: dict = {}
        partitions: list[tuple[int, int]] = []
        crashes: list[int] = []
        for term in spec.split(","):
            key, sep, value = term.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(f"bad fault-plan term {term!r}")
            if key == "drop":
                p = float(value)
                kwargs["drop_request_p"] = p / 2
                kwargs["drop_reply_p"] = p / 2
            elif key in ("drop_req", "drop_request"):
                kwargs["drop_request_p"] = float(value)
            elif key == "drop_reply":
                kwargs["drop_reply_p"] = float(value)
            elif key == "corrupt":
                kwargs["corrupt_p"] = float(value)
            elif key in ("dup", "duplicate"):
                kwargs["duplicate_p"] = float(value)
            elif key == "delay":
                p, _, secs = value.partition(":")
                kwargs["delay_p"] = float(p)
                if secs:
                    kwargs["delay_s"] = float(secs)
            elif key == "partition":
                start, _, end = value.partition(":")
                partitions.append((int(start), int(end)))
            elif key == "crash":
                crashes.append(int(value))
            else:
                raise ValueError(f"unknown fault-plan key {key!r}")
        return cls(seed=seed, partitions=tuple(partitions),
                   mc_crash_epochs=tuple(crashes), **kwargs)

    # -- the decision stream ------------------------------------------

    def decisions(self, n: int) -> list[str]:
        """The first *n* fault outcomes this plan produces — a fresh
        decider each call, so the list is a pure function of the plan
        (the determinism contract the tests pin)."""
        decider = _Decider(self)
        return [decider.next()[0] for _ in range(n)]


class _Decider:
    """Resolves a FaultPlan into per-attempt outcomes.

    One ``random()`` draw per probabilistic attempt (plus one extra
    draw for corruption position or delay magnitude), so the stream is
    a deterministic function of the seed.
    """

    __slots__ = ("plan", "rng", "index")

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.index = 0

    def next(self) -> tuple[str, dict]:
        plan = self.plan
        i = self.index
        self.index = i + 1
        if i in plan.mc_crash_epochs:
            return "mc_crash", {}
        for start, end in plan.partitions:
            if start <= i < end:
                return "partition", {}
        total = (plan.drop_request_p + plan.drop_reply_p +
                 plan.corrupt_p + plan.duplicate_p + plan.delay_p)
        if total <= 0.0:
            return "ok", {}
        r = self.rng.random()
        if r < plan.drop_request_p:
            return "drop_request", {}
        r -= plan.drop_request_p
        if r < plan.drop_reply_p:
            return "drop_reply", {}
        r -= plan.drop_reply_p
        if r < plan.corrupt_p:
            return "corrupt", {"where": self.rng.random()}
        r -= plan.corrupt_p
        if r < plan.duplicate_p:
            return "duplicate", {}
        r -= plan.duplicate_p
        if r < plan.delay_p:
            return "delay", {"seconds":
                             plan.delay_s * (0.5 + self.rng.random())}
        return "ok", {}


@dataclass
class FaultStats:
    """Everything the fault layer did to one channel."""

    #: RPC attempts made (delivered + failed).
    attempts: int = 0
    #: Exchanges that completed (one per logical RPC).
    delivered: int = 0
    #: Failed attempts that were retried within the budget.
    retries: int = 0
    drops_request: int = 0
    drops_reply: int = 0
    #: Attempts swallowed by a partition window.
    partition_drops: int = 0
    corruptions: int = 0
    #: Corrupted replies rejected by the chunk checksum.
    checksum_failures: int = 0
    duplicates: int = 0
    #: Wire time wasted by duplicated replies (not charged to the
    #: client, which already had the first copy).
    duplicate_wasted_s: float = 0.0
    delays: int = 0
    delay_seconds: float = 0.0
    #: Client seconds spent waiting out lost attempts.
    timeout_seconds: float = 0.0
    #: Client seconds spent backing off between retries.
    backoff_seconds: float = 0.0
    #: MC crash-restart epochs hit.
    mc_restarts: int = 0
    #: Retry budgets exhausted (LinkDown raised or auto-reconnected).
    link_down_events: int = 0
    #: Reconnect epochs (explicit waits after a LinkDown).
    reconnects: int = 0
    reconnect_stall_seconds: float = 0.0

    @property
    def failed_attempts(self) -> int:
        return self.attempts - self.delivered

    def retry_overhead(self) -> float:
        """Failed attempts per delivered exchange."""
        if not self.delivered:
            return 0.0
        return self.failed_attempts / self.delivered


#: Outcomes whose request reaches the server (the inner channel is
#: traversed and its traffic recorded) even if the reply is lost.
_REACHES_SERVER = frozenset(
    ("ok", "delay", "duplicate", "corrupt", "drop_reply"))

#: Hard cap on reconnect epochs inside one internally-retried exchange
#: (non-chunk kinds never raise LinkDown); hitting it means the plan
#: can never deliver.
_MAX_EPOCHS = 1000


class FaultyChannel:
    """A Channel/HubChannel wrapper that injects plan-driven faults.

    Duck-typed as a :class:`~repro.net.link.Channel`: unknown
    attributes (``stats``, ``hub_stats``, ``next_key``…) delegate to
    the wrapped channel, so the rest of the stack is oblivious.  Every
    returned ``seconds`` value folds in timeouts and backoff, so the
    CC's existing ``_charge_link`` conversion charges retries to the
    simulated CPU without modification.

    Chunk exchanges carry staged ``(payload, checksum)`` pairs (set by
    the CC via :meth:`stage_payloads`); a ``corrupt`` outcome flips a
    byte of the in-flight copy and verifies the reply-header checksum
    actually rejects it.  On the chunk miss path an exhausted retry
    budget raises :class:`LinkDown`; all other kinds (data refills,
    writebacks on an acknowledged transport) reconnect internally and
    always deliver.
    """

    def __init__(self, inner, plan: FaultPlan,
                 policy: RetryPolicy | None = None, *, mc=None):
        self.inner = inner
        self.link = inner.link
        self.plan = plan
        self.policy = policy or RetryPolicy()
        self.mc = mc
        self.fault_stats = FaultStats()
        self._decider = _Decider(plan)
        #: Separate stream for backoff jitter so the fault-outcome
        #: sequence is independent of how many retries jitter draws.
        self._backoff_rng = random.Random(
            (plan.seed * 0x9E3779B1 + 1) & 0xFFFFFFFF)
        self.tracer = None
        self._staged: list[tuple[bytes, int]] | None = None
        #: True between a retry-budget exhaustion and the next
        #: successful delivery (the CC's degraded-mode window).
        self.down = False

    def __getattr__(self, name):
        return getattr(self.__dict__["inner"], name)

    # -- staging ------------------------------------------------------

    def stage_payloads(self, items: Sequence[tuple[bytes, int]]) -> None:
        """Attach the (payload, checksum) pairs of the next chunk
        exchange so corruption outcomes operate on real bytes."""
        self._staged = list(items)

    # -- channel interface --------------------------------------------

    def exchange(self, kind: str, payload_bytes: int) -> float:
        return self._deliver(kind, (payload_bytes,), batched=False)

    def batch_exchange(self, kind: str,
                       payload_sizes: Sequence[int]) -> float:
        return self._deliver(kind, tuple(payload_sizes), batched=True)

    def send(self, kind: str, payload_bytes: int) -> float:
        # one-way messages ride an acknowledged transport: a lost one
        # is re-sent after a timeout, never silently dropped (a lost
        # writeback would corrupt server state).
        return self._deliver(kind, (payload_bytes,), batched=False,
                             one_way=True)

    def wait_reconnect(self) -> float:
        """Stall until the link is plausibly back, returning the
        stalled seconds (the CC charges them as degraded-mode time).

        If the current attempt index sits inside a partition window
        the stall covers the remainder of the window (one timeout per
        skipped attempt slot); otherwise one max-backoff interval.
        """
        st = self.fault_stats
        st.reconnects += 1
        stall = self.policy.backoff_max_s
        decider = self._decider
        for start, end in self.plan.partitions:
            if start <= decider.index < end:
                stall += (end - decider.index) * self.policy.timeout_s
                decider.index = end
                break
        # ``down`` stays set until a delivery actually succeeds
        # (_deliver clears it): the reconnect is only presumptive.
        st.reconnect_stall_seconds += stall
        if self.tracer is not None:
            self.tracer.emit("fault.reconnect", "fault", stall_s=stall)
        return stall

    # -- the retry loop -----------------------------------------------

    def _deliver(self, kind: str, sizes: tuple[int, ...],
                 batched: bool, one_way: bool = False) -> float:
        policy = self.policy
        st = self.fault_stats
        trc = self.tracer
        payloads = self._staged
        self._staged = None
        inner = self.inner
        key = getattr(inner, "next_key", None)
        batch_keys = getattr(inner, "next_keys", None)
        if batch_keys is not None:
            batch_keys = list(batch_keys)
        can_trap = kind == "chunk" and not one_way
        seconds = 0.0
        attempt = 0
        epochs = 0
        reached = False  # a prior attempt already traversed the hub
        while True:
            outcome, info = self._decider.next()
            attempt += 1
            st.attempts += 1
            if outcome in _REACHES_SERVER:
                inner_s = self._call_inner(kind, sizes, batched, one_way,
                                           key, batch_keys,
                                           replay=reached)
                reached = True
                if outcome == "drop_reply":
                    st.drops_reply += 1
                    st.timeout_seconds += policy.timeout_s
                    seconds += policy.timeout_s
                    if trc is not None:
                        trc.emit("fault.drop", "fault", kind=kind,
                                 attempt=attempt, where="reply")
                elif outcome == "corrupt" and not self._corrupt_slips(
                        payloads, info, kind, attempt):
                    seconds += inner_s  # reply arrived, then rejected
                else:
                    st.delivered += 1
                    if outcome == "delay":
                        extra = info["seconds"]
                        st.delays += 1
                        st.delay_seconds += extra
                        inner_s += extra
                        if trc is not None:
                            trc.emit("fault.delay", "fault", kind=kind,
                                     seconds=extra)
                    elif outcome == "duplicate":
                        st.duplicates += 1
                        st.duplicate_wasted_s += \
                            self.link.exchange_time(sum(sizes))
                        if trc is not None:
                            trc.emit("fault.duplicate", "fault",
                                     kind=kind)
                    self.down = False
                    return seconds + inner_s
            else:
                # request never reached the server
                if outcome == "mc_crash":
                    self._mc_restart()
                elif outcome == "partition":
                    st.partition_drops += 1
                else:
                    st.drops_request += 1
                st.timeout_seconds += policy.timeout_s
                seconds += policy.timeout_s
                if trc is not None:
                    trc.emit("fault.drop", "fault", kind=kind,
                             attempt=attempt,
                             where="crash" if outcome == "mc_crash"
                             else "partition" if outcome == "partition"
                             else "request")
            # the attempt failed: back off, retry, or give up
            if attempt >= policy.max_attempts:
                st.link_down_events += 1
                self.down = True
                if trc is not None:
                    trc.emit("fault.link_down", "fault", kind=kind,
                             attempts=attempt)
                if can_trap:
                    raise LinkDown(kind, attempt, seconds)
                epochs += 1
                if epochs >= _MAX_EPOCHS:
                    raise FaultConfigError(
                        f"{kind} exchange never delivered after "
                        f"{epochs} reconnect epochs; the fault plan "
                        f"cannot make progress")
                seconds += self.wait_reconnect()
                attempt = 0
            else:
                backoff = policy.backoff_s(attempt, self._backoff_rng)
                st.retries += 1
                st.backoff_seconds += backoff
                seconds += backoff
                if trc is not None:
                    trc.emit("fault.retry", "fault", kind=kind,
                             attempt=attempt, backoff_s=backoff)
        raise AssertionError("unreachable")  # pragma: no cover

    def _call_inner(self, kind, sizes, batched, one_way, key,
                    batch_keys, replay: bool) -> float:
        """Traverse the wrapped channel once, restoring hub key
        plumbing and flagging replays so hub hit-rate accounting can
        tell a replayed request from a fresh one."""
        inner = self.inner
        is_hub = hasattr(inner, "replaying")
        if replay:
            if key is not None:
                inner.next_key = key
            if batch_keys is not None:
                inner.next_keys = list(batch_keys)
            if is_hub:
                inner.replaying = True
        try:
            if one_way:
                return inner.send(kind, sizes[0])
            if batched and len(sizes) > 1:
                return inner.batch_exchange(kind, sizes)
            return inner.exchange(kind, sizes[0])
        finally:
            if replay and is_hub:
                inner.replaying = False

    def _corrupt_slips(self, payloads, info, kind, attempt) -> bool:
        """Model one corrupted reply; True if it evades the checksum
        (never, for CRC32 over a single flipped byte — the return
        value exists so the verification is real, not assumed)."""
        st = self.fault_stats
        st.corruptions += 1
        if self.tracer is not None:
            self.tracer.emit("fault.corrupt", "fault", kind=kind,
                             attempt=attempt)
        if not payloads:
            # non-chunk traffic: transport-level checksum catches it
            st.checksum_failures += 1
            return False
        where = info["where"]
        payload, checksum = payloads[int(where * len(payloads))
                                     % len(payloads)]
        if not payload:
            st.checksum_failures += 1
            return False
        corrupted = bytearray(payload)
        pos = int(where * len(corrupted)) % len(corrupted)
        corrupted[pos] ^= 0xFF
        if chunk_checksum(bytes(corrupted)) == checksum:
            return True  # pragma: no cover - CRC32 catches bit flips
        st.checksum_failures += 1
        return False

    def _mc_restart(self) -> None:
        """The MC crash-restarted: the in-flight request is lost and
        the server's caches come back cold."""
        self.fault_stats.mc_restarts += 1
        if self.mc is not None:
            self.mc.restart()


def install_faults(system, plan: FaultPlan | None,
                   policy: RetryPolicy | None = None):
    """Wrap *system*'s channel in a :class:`FaultyChannel`.

    Returns the installed channel, or None for a no-fault plan (in
    which case nothing changes and the system keeps its seed-identical
    fast path).  If a hub is in play, call :func:`~repro.net.hub.
    with_hub` first so the faults wrap the near hop.
    """
    if plan is None or plan.is_none():
        return None
    chan = FaultyChannel(system.channel, plan, policy, mc=system.mc)
    chan.tracer = getattr(system.channel, "tracer", None)
    system.channel = chan
    system.cc.channel = chan
    system.cc._stager = chan.stage_payloads
    if getattr(system, "dcache", None) is not None:
        system.dcache.channel = chan
    return chan
