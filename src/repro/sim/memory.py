"""Byte-addressable memory built from named regions.

Regions model the paper's split address space: the embedded client's
**local RAM** (tcache + runtime), the server-resident **remote text
and data**, and the stack.  Each region carries permissions; in
SoftCache mode the remote text region is mapped *non-executable* so
any fetch escaping the translation cache faults immediately instead of
silently running untranslated code.

Writes into executable regions invoke ``code_write_hooks`` so the
CPU's decode cache can invalidate stale closures — this is what makes
dynamic binary rewriting visible to the interpreter.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable

from .errors import MemoryFault

_LITTLE_ENDIAN_HOST = sys.byteorder == "little"


@dataclass(slots=True)
class Region:
    """A contiguous mapped range ``[base, base + size)``."""

    name: str
    base: int
    size: int
    readable: bool = True
    writable: bool = True
    executable: bool = False
    buf: bytearray = field(default_factory=bytearray)
    #: ``base + size``, precomputed for the accessors' hot path.
    end_addr: int = field(default=0, repr=False)
    #: 32/16-bit views over ``buf`` (little-endian hosts only); aligned
    #: word/half accesses go through these instead of slice+from_bytes.
    view32: "memoryview | None" = field(default=None, repr=False)
    view16: "memoryview | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.buf:
            self.buf = bytearray(self.size)
        elif len(self.buf) != self.size:
            raise ValueError("buffer length != region size")
        self.end_addr = self.base + self.size
        if _LITTLE_ENDIAN_HOST:
            view = memoryview(self.buf)
            if self.base % 4 == 0 and self.size % 4 == 0:
                self.view32 = view.cast("I")
            if self.base % 2 == 0 and self.size % 2 == 0:
                self.view16 = view.cast("H")

    @property
    def end(self) -> int:
        return self.end_addr

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end_addr


class Memory:
    """The machine's physical memory: an ordered set of regions."""

    def __init__(self) -> None:
        self.regions: list[Region] = []
        #: Called as ``hook(addr, length)`` after a write into any
        #: executable region (decode-cache invalidation).
        self.code_write_hooks: list[Callable[[int, int], None]] = []
        self._last: Region | None = None
        #: 4K-page number -> region, for pages fully inside one region;
        #: O(1) lookup when accesses ping-pong between regions (code in
        #: local RAM, data on the stack) and the ``_last`` cache misses.
        self._page_map: dict[int, Region] = {}

    # -- mapping --------------------------------------------------------

    def map_region(self, region: Region) -> Region:
        """Map *region*; overlapping ranges are rejected."""
        for existing in self.regions:
            if region.base < existing.end and existing.base < region.end:
                raise ValueError(
                    f"region {region.name} overlaps {existing.name}")
        self.regions.append(region)
        self.regions.sort(key=lambda r: r.base)
        pages = self._page_map
        for page in range(region.base >> 12,
                          (region.end_addr + 0xFFF) >> 12):
            if (page << 12) >= region.base and \
                    ((page + 1) << 12) <= region.end_addr:
                pages[page] = region
        return region

    def region_named(self, name: str) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(name)

    def region_at(self, addr: int) -> Region:
        """Find the region containing *addr* (fast path: last hit)."""
        last = self._last
        if last is not None and last.base <= addr < last.end_addr:
            return last
        region = self._page_map.get(addr >> 12)
        if region is not None:
            self._last = region
            return region
        for region in self.regions:
            if region.base <= addr < region.end_addr:
                self._last = region
                return region
        raise MemoryFault(addr, "unmapped")

    # -- typed access ----------------------------------------------------

    def read_word(self, addr: int) -> int:
        if addr & 3:
            raise MemoryFault(addr, "misaligned word read")
        region = self._last
        if region is None or addr < region.base or addr >= region.end_addr:
            region = self.region_at(addr)
        if not region.readable:
            raise MemoryFault(addr, "read from non-readable region")
        view = region.view32
        if view is not None:
            return view[(addr - region.base) >> 2]
        off = addr - region.base
        return int.from_bytes(region.buf[off:off + 4], "little")

    def write_word(self, addr: int, value: int) -> None:
        if addr & 3:
            raise MemoryFault(addr, "misaligned word write")
        region = self._last
        if region is None or addr < region.base or addr >= region.end_addr:
            region = self.region_at(addr)
        if not region.writable:
            raise MemoryFault(addr, "write to read-only region")
        view = region.view32
        if view is not None:
            view[(addr - region.base) >> 2] = value & 0xFFFFFFFF
        else:
            off = addr - region.base
            region.buf[off:off + 4] = (
                value & 0xFFFFFFFF).to_bytes(4, "little")
        if region.executable:
            for hook in self.code_write_hooks:
                hook(addr, 4)

    def read_half(self, addr: int) -> int:
        if addr & 1:
            raise MemoryFault(addr, "misaligned half read")
        region = self._last
        if region is None or addr < region.base or addr >= region.end_addr:
            region = self.region_at(addr)
        view = region.view16
        if view is not None:
            return view[(addr - region.base) >> 1]
        off = addr - region.base
        return int.from_bytes(region.buf[off:off + 2], "little")

    def write_half(self, addr: int, value: int) -> None:
        if addr & 1:
            raise MemoryFault(addr, "misaligned half write")
        region = self._last
        if region is None or addr < region.base or addr >= region.end_addr:
            region = self.region_at(addr)
        if not region.writable:
            raise MemoryFault(addr, "write to read-only region")
        view = region.view16
        if view is not None:
            view[(addr - region.base) >> 1] = value & 0xFFFF
        else:
            off = addr - region.base
            region.buf[off:off + 2] = (value & 0xFFFF).to_bytes(2, "little")
        if region.executable:
            for hook in self.code_write_hooks:
                hook(addr, 2)

    def read_byte(self, addr: int) -> int:
        region = self._last
        if region is None or addr < region.base or addr >= region.end_addr:
            region = self.region_at(addr)
        return region.buf[addr - region.base]

    def write_byte(self, addr: int, value: int) -> None:
        region = self._last
        if region is None or addr < region.base or addr >= region.end_addr:
            region = self.region_at(addr)
        if not region.writable:
            raise MemoryFault(addr, "write to read-only region")
        region.buf[addr - region.base] = value & 0xFF
        if region.executable:
            for hook in self.code_write_hooks:
                hook(addr, 1)

    # -- bulk access ------------------------------------------------------

    def read_bytes(self, addr: int, length: int) -> bytes:
        region = self.region_at(addr)
        if addr + length > region.end_addr:
            raise MemoryFault(addr, f"read of {length} bytes crosses region")
        off = addr - region.base
        return bytes(region.buf[off:off + length])

    def write_bytes(self, addr: int, data: bytes) -> None:
        region = self.region_at(addr)
        if addr + len(data) > region.end_addr:
            raise MemoryFault(addr, "write crosses region")
        if not region.writable:
            raise MemoryFault(addr, "write to read-only region")
        off = addr - region.base
        region.buf[off:off + len(data)] = data
        if region.executable:
            for hook in self.code_write_hooks:
                hook(addr, len(data))

    def read_cstring(self, addr: int, max_len: int = 4096) -> str:
        """Read a NUL-terminated latin-1 string (for the PUTS syscall)."""
        out = bytearray()
        for i in range(max_len):
            b = self.read_byte(addr + i)
            if b == 0:
                break
            out.append(b)
        return out.decode("latin-1")

    def is_executable(self, addr: int) -> bool:
        try:
            return self.region_at(addr).executable
        except MemoryFault:
            return False
