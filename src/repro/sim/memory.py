"""Byte-addressable memory built from named regions.

Regions model the paper's split address space: the embedded client's
**local RAM** (tcache + runtime), the server-resident **remote text
and data**, and the stack.  Each region carries permissions; in
SoftCache mode the remote text region is mapped *non-executable* so
any fetch escaping the translation cache faults immediately instead of
silently running untranslated code.

Writes into executable regions invoke ``code_write_hooks`` so the
CPU's decode cache can invalidate stale closures — this is what makes
dynamic binary rewriting visible to the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .errors import MemoryFault


@dataclass(slots=True)
class Region:
    """A contiguous mapped range ``[base, base + size)``."""

    name: str
    base: int
    size: int
    readable: bool = True
    writable: bool = True
    executable: bool = False
    buf: bytearray = field(default_factory=bytearray)

    def __post_init__(self) -> None:
        if not self.buf:
            self.buf = bytearray(self.size)
        elif len(self.buf) != self.size:
            raise ValueError("buffer length != region size")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class Memory:
    """The machine's physical memory: an ordered set of regions."""

    def __init__(self) -> None:
        self.regions: list[Region] = []
        #: Called as ``hook(addr, length)`` after a write into any
        #: executable region (decode-cache invalidation).
        self.code_write_hooks: list[Callable[[int, int], None]] = []
        self._last: Region | None = None

    # -- mapping --------------------------------------------------------

    def map_region(self, region: Region) -> Region:
        """Map *region*; overlapping ranges are rejected."""
        for existing in self.regions:
            if region.base < existing.end and existing.base < region.end:
                raise ValueError(
                    f"region {region.name} overlaps {existing.name}")
        self.regions.append(region)
        self.regions.sort(key=lambda r: r.base)
        return region

    def region_named(self, name: str) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(name)

    def region_at(self, addr: int) -> Region:
        """Find the region containing *addr* (fast path: last hit)."""
        last = self._last
        if last is not None and last.base <= addr < last.end:
            return last
        for region in self.regions:
            if region.base <= addr < region.end:
                self._last = region
                return region
        raise MemoryFault(addr, "unmapped")

    # -- typed access ----------------------------------------------------

    def read_word(self, addr: int) -> int:
        if addr & 3:
            raise MemoryFault(addr, "misaligned word read")
        region = self.region_at(addr)
        if not region.readable:
            raise MemoryFault(addr, "read from non-readable region")
        off = addr - region.base
        return int.from_bytes(region.buf[off:off + 4], "little")

    def write_word(self, addr: int, value: int) -> None:
        if addr & 3:
            raise MemoryFault(addr, "misaligned word write")
        region = self.region_at(addr)
        if not region.writable:
            raise MemoryFault(addr, "write to read-only region")
        off = addr - region.base
        region.buf[off:off + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")
        if region.executable:
            for hook in self.code_write_hooks:
                hook(addr, 4)

    def read_half(self, addr: int) -> int:
        if addr & 1:
            raise MemoryFault(addr, "misaligned half read")
        region = self.region_at(addr)
        off = addr - region.base
        return int.from_bytes(region.buf[off:off + 2], "little")

    def write_half(self, addr: int, value: int) -> None:
        if addr & 1:
            raise MemoryFault(addr, "misaligned half write")
        region = self.region_at(addr)
        if not region.writable:
            raise MemoryFault(addr, "write to read-only region")
        off = addr - region.base
        region.buf[off:off + 2] = (value & 0xFFFF).to_bytes(2, "little")
        if region.executable:
            for hook in self.code_write_hooks:
                hook(addr, 2)

    def read_byte(self, addr: int) -> int:
        region = self.region_at(addr)
        return region.buf[addr - region.base]

    def write_byte(self, addr: int, value: int) -> None:
        region = self.region_at(addr)
        if not region.writable:
            raise MemoryFault(addr, "write to read-only region")
        region.buf[addr - region.base] = value & 0xFF
        if region.executable:
            for hook in self.code_write_hooks:
                hook(addr, 1)

    # -- bulk access ------------------------------------------------------

    def read_bytes(self, addr: int, length: int) -> bytes:
        region = self.region_at(addr)
        if addr + length > region.end:
            raise MemoryFault(addr, f"read of {length} bytes crosses region")
        off = addr - region.base
        return bytes(region.buf[off:off + length])

    def write_bytes(self, addr: int, data: bytes) -> None:
        region = self.region_at(addr)
        if addr + len(data) > region.end:
            raise MemoryFault(addr, "write crosses region")
        if not region.writable:
            raise MemoryFault(addr, "write to read-only region")
        off = addr - region.base
        region.buf[off:off + len(data)] = data
        if region.executable:
            for hook in self.code_write_hooks:
                hook(addr, len(data))

    def read_cstring(self, addr: int, max_len: int = 4096) -> str:
        """Read a NUL-terminated latin-1 string (for the PUTS syscall)."""
        out = bytearray()
        for i in range(max_len):
            b = self.read_byte(addr + i)
            if b == 0:
                break
            out.append(b)
        return out.decode("latin-1")

    def is_executable(self, addr: int) -> bool:
        try:
            return self.region_at(addr).executable
        except MemoryFault:
            return False
