"""Central cost model: cycles per instruction class, runtime overheads
and the CPU clock used to convert cycles to seconds.

The paper's measurements are wall-clock on a 200 MHz SA-110 (ARM
results, Figure 8) and on UltraSPARC workstations (Figure 5).  Our
substrate is an interpreter, so absolute times are synthetic; every
tunable lives here so experiments state their assumptions in one
place, and ratio-shaped results (relative execution time, evictions
per second) are well defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..isa import Op


def _default_op_cycles() -> dict[Op, int]:
    cycles = {op: 1 for op in Op}
    cycles[Op.MUL] = 3
    cycles[Op.DIV] = 12
    cycles[Op.REM] = 12
    for op in (Op.LW, Op.LH, Op.LHU, Op.LB, Op.LBU):
        cycles[op] = 2
    for op in (Op.SW, Op.SH, Op.SB):
        cycles[op] = 1
    # Taken-or-not branches and jumps: single cycle (simple in-order
    # embedded core, no speculation — like the SA-110).
    return cycles


@dataclass(frozen=True)
class CostModel:
    """All timing assumptions of the simulated embedded client.

    ``*_cycles`` values are charged by the cache controller on top of
    the instructions actually interpreted; they model the runtime work
    (hash probes, stub bookkeeping, patching) that the real prototypes
    execute as native code.
    """

    #: CPU clock; 200 MHz matches the SA-110 on the Skiff boards.
    cpu_hz: float = 200e6

    #: Cycles per executed instruction, by opcode.
    op_cycles: dict[Op, int] = field(default_factory=_default_op_cycles)

    #: CC entry/exit for any miss trap (register save/restore, dispatch).
    trap_overhead_cycles: int = 40

    #: Hash probe of the tcache map (per lookup; computed-jump fallback
    #: and miss-path lookups).
    map_lookup_cycles: int = 24

    #: Per translated instruction word: CC-side copy/patch cost.
    install_per_word_cycles: int = 4

    #: Fixed CC-side cost of installing one chunk (allocation, map
    #: insert, stub creation).
    install_fixed_cycles: int = 60

    #: Backpatching one branch/jump word after a miss resolves.
    patch_cycles: int = 12

    #: Evicting one block: unlink incoming pointers, scrub map entry.
    evict_per_block_cycles: int = 80

    #: Stack walk per frame examined at invalidation time.
    stack_walk_per_frame_cycles: int = 10

    #: MC-side processing per miss, *expressed in client cycles*.
    #: "could easily be reduced to near zero by more powerful MC
    #: systems" — so the default is small.
    mc_service_cycles: int = 100

    # -- software data cache (Section 3) --------------------------------

    #: Fast (predicted) dcache hit: Fig 10's inline sequence ~8 insns.
    dcache_hit_cycles: int = 8
    #: Slow hit: binary search of the sorted dcache, per probe step.
    dcache_slow_hit_per_step_cycles: int = 6
    #: scache presence check at procedure entry/exit.
    scache_check_cycles: int = 4
    #: Specialized (rewritten constant-address) access: one load.
    dcache_pinned_cycles: int = 2

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert a cycle count to seconds at the configured clock."""
        return cycles / self.cpu_hz

    def with_(self, **kw) -> "CostModel":
        """Return a copy with selected fields replaced."""
        return replace(self, **kw)


#: Default cost model used across tests and benchmarks.
DEFAULT_COSTS = CostModel()
