"""repro.sim — the embedded-client CPU simulator.

A closure-caching interpreter for the repro ISA (:mod:`repro.sim.cpu`),
region-based memory with executable permissions and code-write hooks
(:mod:`repro.sim.memory`), the centralized cost model
(:mod:`repro.sim.costs`) and the machine/syscall layer
(:mod:`repro.sim.machine`).
"""

from .costs import DEFAULT_COSTS, CostModel
from .cpu import CPU, FUSE_LIMIT, HaltExecution, SuperblockStats
from .jit import JIT_CODEGEN_VERSION, JIT_MODES, JitStats
from .errors import (
    BreakHit,
    CycleLimitExceeded,
    FetchFault,
    IllegalInstruction,
    MemoryFault,
    SimError,
)
from .machine import Machine, MachineConfig, run_native
from .memory import Memory, Region

__all__ = [
    "BreakHit", "CPU", "CostModel", "CycleLimitExceeded", "DEFAULT_COSTS",
    "FUSE_LIMIT", "FetchFault", "HaltExecution", "IllegalInstruction",
    "JIT_CODEGEN_VERSION", "JIT_MODES", "JitStats",
    "Machine", "MachineConfig", "Memory", "MemoryFault", "Region",
    "SimError", "SuperblockStats", "run_native",
]
