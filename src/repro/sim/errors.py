"""Simulator exception hierarchy."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulator faults."""


class MemoryFault(SimError):
    """Access to an unmapped or misaligned address."""

    def __init__(self, addr: int, what: str = "access"):
        super().__init__(f"memory fault: {what} at {addr:#010x}")
        self.addr = addr


class FetchFault(SimError):
    """Instruction fetch from a non-executable or unmapped address.

    In SoftCache mode this fires if control ever escapes the translation
    cache — i.e. a rewriter bug — so it is deliberately loud.
    """

    def __init__(self, pc: int, reason: str = "not executable"):
        super().__init__(f"fetch fault at pc={pc:#010x}: {reason}")
        self.pc = pc


class IllegalInstruction(SimError):
    """Undecodable instruction word reached the pipeline."""

    def __init__(self, pc: int, word: int):
        super().__init__(
            f"illegal instruction {word:#010x} at pc={pc:#010x}")
        self.pc = pc
        self.word = word


class BreakHit(SimError):
    """A BREAK instruction executed (assertion failure in guest code)."""

    def __init__(self, pc: int, code: int):
        super().__init__(f"break {code} at pc={pc:#010x}")
        self.pc = pc
        self.code = code


class CycleLimitExceeded(SimError):
    """The run exceeded its configured cycle budget (runaway guard)."""

    def __init__(self, limit: int):
        super().__init__(f"cycle limit exceeded: {limit}")
        self.limit = limit
