"""Persistent compiled-superblock artifact store (the JIT warm path).

Lives alongside the native-trace cache in ``.cache/traces/`` (same
directory resolution: an explicit override, else ``$REPRO_TRACE_CACHE``,
else ``.cache/traces``).  Each artifact is ``marshal``-serialized
``(code object, fault fix-ups, source text)`` keyed by a blake2b digest
of ``(codegen version, cost signature, raw instruction words)`` — the
same content identity the in-process superblock caches use, so a warm
process can bind a compiled block without ever running codegen.

File names are fully self-describing:

    jit-v{JIT_CODEGEN_VERSION}-{interpreter cache_tag}-{digest}.sbc

where *digest* is ``i{image_tag}-{hex}`` for versioned images (live
code update) and a bare hex digest for legacy/unversioned runs — the
image tag participates in both the key material and the filename, so a
republished image can never hit a pre-update artifact, and
:func:`sweep_stale` can garbage-collect artifacts from retired image
versions when told which tags are still live.

``marshal`` byte streams are only readable by the interpreter version
that wrote them, so the interpreter's ``cache_tag`` participates in the
name (not just the key) and :func:`sweep_stale` deletes any ``jit-*``
artifact whose prefix doesn't match the running process — codegen bumps
and interpreter upgrades garbage-collect themselves.  Loads treat any
undecodable file as a miss; stores are atomic (tmp file + rename) and
best-effort: a read-only or missing cache directory degrades to
cold-compiling every block, never to an error.
"""

from __future__ import annotations

import hashlib
import marshal
import os
import sys
import tempfile
from pathlib import Path

from .jit import JIT_CODEGEN_VERSION

_TAG = sys.implementation.cache_tag or "python"

#: Current artifact filename prefix; anything else under ``jit-*`` is
#: a stale generation and fair game for :func:`sweep_stale`.
ARTIFACT_PREFIX = f"jit-v{JIT_CODEGEN_VERSION}-{_TAG}-"
ARTIFACT_SUFFIX = ".sbc"

_dir_override: Path | None = None
_swept_dirs: set[Path] = set()


def artifact_dir() -> Path:
    """Directory holding compiled-superblock artifacts."""
    if _dir_override is not None:
        return _dir_override
    env = os.environ.get("REPRO_TRACE_CACHE")
    if env:
        return Path(env)
    return Path(".cache") / "traces"


def set_artifact_dir(path) -> None:
    """Override the artifact directory (``None`` restores defaults).

    :func:`repro.eval.common.set_trace_cache_dir` forwards here so the
    trace cache and the JIT store always share one directory.
    """
    global _dir_override
    _dir_override = Path(path) if path is not None else None


def artifact_key(cost_sig, words, image_tag: str = "") -> str:
    """Content digest for one superblock's compiled artifact.

    *image_tag* is the content tag of the image version the words came
    from (live code update): a republished image gets a disjoint
    artifact namespace, so a pre-update ``.sbc`` file can never be
    resurrected for post-update code.  The empty default keeps the
    legacy keys of unversioned (native-mode) runs.
    """
    h = hashlib.blake2b(digest_size=20)
    h.update(repr((JIT_CODEGEN_VERSION, _TAG, cost_sig, image_tag,
                   tuple(words))).encode())
    if image_tag:
        return f"i{image_tag}-{h.hexdigest()}"
    return h.hexdigest()


def artifact_path(digest: str) -> Path:
    return artifact_dir() / f"{ARTIFACT_PREFIX}{digest}{ARTIFACT_SUFFIX}"


def load(digest: str):
    """Return ``(code, fixups, src)`` or ``None`` (miss / undecodable)."""
    try:
        blob = artifact_path(digest).read_bytes()
        code, fixups, src = marshal.loads(blob)
    except Exception:
        return None
    if not isinstance(src, str) or not isinstance(fixups, dict):
        return None
    return code, fixups, src


def store(digest: str, code, fixups, src: str) -> bool:
    """Persist one artifact atomically; best-effort (returns success)."""
    path = artifact_path(digest)
    directory = path.parent
    try:
        directory.mkdir(parents=True, exist_ok=True)
        if directory not in _swept_dirs:
            _swept_dirs.add(directory)
            sweep_stale(directory)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(marshal.dumps((code, fixups, src)))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except (OSError, ValueError):
        return False
    return True


def sweep_stale(directory=None, image_tags=None) -> int:
    """Delete ``jit-*`` artifacts from other codegen versions or
    interpreters.  Returns the number of files removed.

    When *image_tags* is given (a collection of live image tags),
    additionally delete artifacts from image versions *not* in the set
    — the stale-epoch sweep after a live code update retires old
    versions.  Legacy artifacts without an image-tag component are
    kept: they belong to unversioned runs, not to any retired epoch.
    """
    directory = Path(directory) if directory is not None else artifact_dir()
    if not directory.is_dir():
        return 0
    live = set(image_tags) if image_tags is not None else None
    removed = 0
    for entry in directory.glob(f"jit-*{ARTIFACT_SUFFIX}"):
        stale = not entry.name.startswith(ARTIFACT_PREFIX)
        if not stale and live is not None:
            digest = entry.name[len(ARTIFACT_PREFIX):-len(ARTIFACT_SUFFIX)]
            if digest.startswith("i") and "-" in digest:
                stale = digest[1:].split("-", 1)[0] not in live
        if not stale:
            continue
        try:
            entry.unlink()
        except OSError:
            continue
        removed += 1
    return removed
