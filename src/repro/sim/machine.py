"""Machine: memory map construction, OS services, and native execution.

A :class:`Machine` wires an :class:`~repro.asm.image.Image` into a
:class:`~repro.sim.memory.Memory`, provides the syscall layer (exit,
console output, cycle counter, explicit code invalidation) and runs
programs either **natively** — fetching straight out of remote text,
the paper's "ideal" configuration of Figure 5 — or under a SoftCache,
in which case the SoftCache system builds the machine with remote text
non-executable and installs its trap hook.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

from ..asm.image import Image
from ..isa import Sys
from ..layout import (
    LOCAL_BASE,
    LOCAL_MAX_SIZE,
    STACK_SIZE,
    STACK_TOP,
)
from .costs import DEFAULT_COSTS, CostModel
from .cpu import CPU, HaltExecution
from .errors import SimError
from .memory import Memory, Region


@dataclass
class MachineConfig:
    """Construction parameters for a :class:`Machine`."""

    #: Size of the embedded client's local RAM in bytes.
    local_ram_size: int = 64 * 1024
    #: Map remote text executable (native mode) or not (SoftCache mode).
    text_executable: bool = True
    #: Stack region size.
    stack_size: int = STACK_SIZE
    #: Extra heap bytes mapped beyond the image's static data.
    heap_size: int = 256 * 1024
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    #: Fuse straight-line code into superblocks (host-side speed only;
    #: simulated instruction/cycle counts are identical either way).
    superblocks: bool = True
    #: Template-JIT tier: "off", "hot" (promote after jit_threshold
    #: executions) or "all" (compile every fused block eagerly).  Like
    #: superblocks, host speed only — cycle-identical by construction.
    jit: str = "hot"
    #: Executions of a superblock's content before JIT promotion.
    jit_threshold: int = 16


class Machine:
    """One embedded client plus the memory image it runs."""

    def __init__(self, image: Image, config: MachineConfig | None = None):
        self.image = image
        self.config = config or MachineConfig()
        if self.config.local_ram_size > LOCAL_MAX_SIZE:
            raise ValueError("local RAM too large for the memory map")
        self.mem = Memory()
        self._build_memory()
        self.cpu = CPU(self.mem, self.config.costs,
                       superblocks=self.config.superblocks,
                       jit=self.config.jit,
                       jit_threshold=self.config.jit_threshold)
        self.cpu.pc = image.entry
        self.output = bytearray()
        #: Hook invoked by the INVALIDATE syscall: ``fn(addr, length)``.
        self.invalidate_hook = None
        #: Coherent string reader used by PUTS when a data cache holds
        #: dirty copies: ``fn(addr) -> str``.
        self.coherent_reader = None
        self.cpu.sys_hook = self._syscall

    # -- memory map -------------------------------------------------------

    def _build_memory(self) -> None:
        cfg = self.config
        image = self.image
        self.local = self.mem.map_region(Region(
            "local", LOCAL_BASE, cfg.local_ram_size, executable=True))
        text = bytearray(image.text)
        # text is writable so the explicit self-modifying-code contract
        # (§2.1: write, then INVALIDATE) can be exercised natively; the
        # decode cache invalidates through the code-write hooks.
        self.text = self.mem.map_region(Region(
            "text", image.text_base, len(text),
            executable=cfg.text_executable,
            writable=True, buf=text))
        data_size = len(image.data)
        bss_pad = image.bss_base - image.data_end
        total = data_size + bss_pad + image.bss_size + cfg.heap_size
        total = (total + 15) & ~15
        if total:
            buf = bytearray(total)
            buf[:data_size] = image.data
            self.data = self.mem.map_region(Region(
                "data", image.data_base, total, buf=buf))
        else:
            self.data = None
        self.stack = self.mem.map_region(Region(
            "stack", STACK_TOP - cfg.stack_size, cfg.stack_size))

    # -- syscalls -----------------------------------------------------------

    def _syscall(self, cpu: CPU, service: int, pc: int) -> int:
        regs = cpu.regs
        if service == Sys.EXIT:
            cpu.halt(regs[4])  # a0; raises HaltExecution
        elif service == Sys.PUTINT:
            value = regs[4]
            if value & 0x80000000:
                value -= 0x100000000
            self.output += str(value).encode()
        elif service == Sys.PUTCHAR:
            self.output.append(regs[4] & 0xFF)
        elif service == Sys.PUTS:
            if self.coherent_reader is not None:
                text = self.coherent_reader(regs[4])
            else:
                text = self.mem.read_cstring(regs[4])
            self.output += text.encode("latin-1")
        elif service == Sys.GETCYCLES:
            cpu.set_reg(4, cpu.cycles & 0xFFFFFFFF)
        elif service == Sys.INVALIDATE:
            if self.invalidate_hook is not None:
                self.invalidate_hook(regs[4], regs[5])
        elif service == Sys.WRITEHEX:
            self.output += f"{regs[4]:08x}".encode()
        else:
            raise SimError(f"unknown syscall {service} at pc={pc:#x}")
        return pc + 4

    # -- execution ------------------------------------------------------------

    def run(self, max_instructions: int = 2_000_000_000) -> int:
        """Run to completion natively; returns the exit code."""
        return self.cpu.run(max_instructions)

    def run_traced(self, max_instructions: int = 2_000_000_000
                   ) -> tuple[int, array]:
        """Run natively collecting the full pc fetch trace."""
        trace = array("I")
        code = self.cpu.run_traced(trace, max_instructions)
        return code, trace

    # -- conveniences --------------------------------------------------------

    @property
    def output_text(self) -> str:
        return self.output.decode("latin-1")

    def snapshot_data(self) -> bytes:
        """Copy of the data region (for native-vs-cached equivalence)."""
        return bytes(self.data.buf) if self.data is not None else b""


def run_native(image: Image, config: MachineConfig | None = None,
               max_instructions: int = 2_000_000_000) -> Machine:
    """Run *image* natively to completion and return the machine."""
    machine = Machine(image, config)
    machine.run(max_instructions)
    return machine


__all__ = ["Machine", "MachineConfig", "run_native", "HaltExecution"]
