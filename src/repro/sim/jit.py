"""Template-JIT: superblocks compiled to specialized Python source.

This module is the code generator for the interpreter's hottest tier.
Where the closure tier (:func:`repro.sim.cpu._sb_codegen`) keeps guest
registers in the shared ``r[...]`` list and pays one subscript per
operand, the JIT template promotes every guest register the block
touches into a **Python local variable**: registers read before being
written are loaded once in a prologue, intermediate values flow
local-to-local, and modified registers are spilled back to ``r[...]``
only at the block's exits (terminator, fall-through, the
self-modification side exit after a store, and the fault fix-up path).
Constants are folded at generation time — ``LUI`` seeds a known
constant, and any ALU op whose sources are all known constants is
evaluated during codegen by ``eval``-ing the *same expression text*
that would otherwise be emitted, so folding can never diverge from the
runtime semantics.  Guards and side exits appear only where the
architecture demands them: at the branch terminator and at memory
operations (which may trap) — straight-line arithmetic runs unguarded
and the simulated (instruction, cycle) counters are accumulated as one
batched literal add per exit.

The generated function is *cycle-identical* to per-instruction
dispatch by construction: exit paths commit exactly the counts the
executed prefix would have produced, and a mid-block memory fault maps
the traceback line back to the faulting instruction, commits the
prefix counts, records the precise fault pc and spills the registers
that were architecturally written before the fault.

Artifacts are pure functions of (cost table, raw instruction words):
:data:`JIT_CODEGEN_VERSION` participates in every cache key, in-process
and on disk (:mod:`repro.sim.jitcache`), so changing the template here
can never resurrect stale generated code.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import Op, to_signed32
from ..isa.registers import RA

MASK32 = 0xFFFFFFFF
_SIGN_FLIP = 0x80000000

_M = "4294967295"       # MASK32 literal
_S = "2147483648"       # sign-flip literal

#: Bump on ANY change to the generated source or the fix-up table
#: layout: keys every in-memory and on-disk artifact cache.
#: v2: memory ops inline a bounds-checked fast path against one bound
#: data region (stack, typically) and only fall back to the accessor
#: call — and its self-modification guard — for addresses outside it.
JIT_CODEGEN_VERSION = 2

#: Valid values of the ``jit`` knob (MachineConfig / SoftCacheConfig).
JIT_MODES = ("off", "hot", "all")


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        return MASK32  # divide by zero -> -1 (RISC-V convention)
    sa, sb = to_signed32(a), to_signed32(b)
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & MASK32


def _srem(a: int, b: int) -> int:
    if b == 0:
        return a
    sa, sb = to_signed32(a), to_signed32(b)
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & MASK32


_SB_ALU_R = {
    Op.ADD: lambda a, b: f"({a} + {b}) & {_M}",
    Op.SUB: lambda a, b: f"({a} - {b}) & {_M}",
    Op.AND: lambda a, b: f"{a} & {b}",
    Op.OR: lambda a, b: f"{a} | {b}",
    Op.XOR: lambda a, b: f"{a} ^ {b}",
    Op.NOR: lambda a, b: f"~({a} | {b}) & {_M}",
    Op.SLT: lambda a, b: f"1 if ({a} ^ {_S}) < ({b} ^ {_S}) else 0",
    Op.SLTU: lambda a, b: f"1 if {a} < {b} else 0",
    Op.SLL: lambda a, b: f"({a} << ({b} & 31)) & {_M}",
    Op.SRL: lambda a, b: f"{a} >> ({b} & 31)",
    Op.SRA: lambda a, b: f"(sgn({a}) >> ({b} & 31)) & {_M}",
    Op.MUL: lambda a, b: f"({a} * {b}) & {_M}",
    Op.DIV: lambda a, b: f"sdiv({a}, {b})",
    Op.REM: lambda a, b: f"srem({a}, {b})",
}

#: helper names each R-type op pulls into the generated function.
_SB_ALU_R_HELPERS = {Op.SRA: ("sgn",), Op.DIV: ("sdiv",),
                     Op.REM: ("srem",)}

#: op -> (reader binding name, sign bits or None)
_SB_LOADS = {
    Op.LW: ("rw", None),
    Op.LH: ("rh", 16),
    Op.LHU: ("rh", None),
    Op.LB: ("rb", 8),
    Op.LBU: ("rb", None),
}

_SB_STORES = {Op.SW: "ww", Op.SH: "wh", Op.SB: "wb"}

_SB_BRANCH_COND = {
    Op.BEQ: lambda a, b: f"{a} == {b}",
    Op.BNE: lambda a, b: f"{a} != {b}",
    Op.BLT: lambda a, b: f"({a} ^ {_S}) < ({b} ^ {_S})",
    Op.BGE: lambda a, b: f"({a} ^ {_S}) >= ({b} ^ {_S})",
    Op.BLTU: lambda a, b: f"{a} < {b}",
    Op.BGEU: lambda a, b: f"{a} >= {b}",
}

_SB_ALU_I_OPS = frozenset({
    Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI, Op.SLTIU, Op.SLLI,
    Op.SRLI, Op.SRAI, Op.LUI,
})

#: Straight-line instructions the fuser may place mid-block.
_SB_STRAIGHT_OPS = (frozenset(_SB_ALU_R) | _SB_ALU_I_OPS |
                    frozenset(_SB_LOADS) | frozenset(_SB_STORES))

#: Control transfers the fuser may inline as a block terminator.
_SB_TERM_OPS = (frozenset(_SB_BRANCH_COND) |
                frozenset({Op.J, Op.JAL, Op.JR, Op.JALR, Op.RET}))


def _sb_alu_i_expr(ins, a: str) -> str:
    """Expression for a register-immediate ALU op with source text *a*
    (``r[n]`` in the closure tier, a local or folded literal in the
    JIT tier); immediates are folded into the text."""
    op, imm = ins.op, ins.imm
    if op is Op.ADDI:
        return f"({a} + ({imm})) & {_M}"
    if op is Op.ANDI:
        return f"{a} & {imm}"
    if op is Op.ORI:
        return f"{a} | {imm}"
    if op is Op.XORI:
        return f"{a} ^ {imm}"
    if op is Op.SLTI:
        folded = ((imm & 0xFFFFFFFF) ^ _SIGN_FLIP)
        return f"1 if ({a} ^ {_S}) < {folded} else 0"
    if op is Op.SLTIU:
        return f"1 if {a} < {imm} else 0"
    if op is Op.SLLI:
        return f"({a} << {imm & 31}) & {_M}"
    if op is Op.SRLI:
        return f"{a} >> {imm & 31}"
    if op is Op.SRAI:
        return f"(sgn({a}) >> {imm & 31}) & {_M}"
    if op is Op.LUI:
        return str((imm << 16) & 0xFFFFFFFF)  # constant-folded
    raise AssertionError(op)  # pragma: no cover


@dataclass
class JitStats:
    """Counters for the template-JIT tier (published as ``cpu.jit_*``).

    The warm-run contract lives here: a process that finds every
    artifact in the persistent store ends a run with
    ``jit_codegen == 0`` and ``jit_disk_hits > 0``.
    """

    #: JIT-tier block functions bound for this CPU (per content key).
    jit_blocks: int = 0
    #: Instructions covered by those blocks.
    jit_instructions: int = 0
    #: Dispatch-table swaps closure -> JIT (hot tier promotions).
    jit_promotions: int = 0
    #: Source generations actually executed (cold compiles).
    jit_codegen: int = 0
    #: Artifacts reused from the in-process compiled cache.
    jit_mem_hits: int = 0
    #: Artifacts loaded from the persistent store (warm processes).
    jit_disk_hits: int = 0
    #: Artifacts written to the persistent store.
    jit_disk_stores: int = 0


#: Environment for generation-time constant folding: the exact helper
#: objects the generated code would call at runtime.
_CONST_ENV = {"sgn": to_signed32, "sdiv": _sdiv, "srem": _srem,
              "__builtins__": {}}

#: Source text -> compiled code object (JIT template instances).
_JIT_CODE_CACHE: dict[str, object] = {}


def jit_codegen(costs, insns, term):
    """Generate ``(code object, fault fix-ups, source)`` for one
    superblock in the register-as-locals template.

    *insns* is a list of ``(offset, Insn)`` with offsets relative to
    the block entry; *term* is ``(offset, Insn)`` for an optional fused
    control-transfer terminator.  *costs* maps opcodes to cycle costs
    (baked into the batched stats literals).

    The fix-up table maps a source line number (of a memory operation)
    to ``(offset, instructions, cycles, writebacks)`` where
    *writebacks* is a tuple of ``(reg, local-name-or-constant)`` pairs
    for every register architecturally written before that point.
    """
    # -- pre-scan: registers read before written (block live-ins) -----
    live_in: list[int] = []
    _seen: set[int] = set()
    written: set[int] = set()

    def note_read(reg: int) -> None:
        if reg and reg not in written and reg not in _seen:
            _seen.add(reg)
            live_in.append(reg)

    def note_write(reg: int) -> None:
        if reg:
            written.add(reg)

    for _off, ins in insns:
        op = ins.op
        if op in _SB_ALU_R:
            note_read(ins.rs1)
            note_read(ins.rs2)
            note_write(ins.rd)
        elif op is Op.LUI:
            note_write(ins.rd)
        elif op in _SB_ALU_I_OPS:
            note_read(ins.rs1)
            note_write(ins.rd)
        elif op in _SB_LOADS:
            note_read(ins.rs1)
            note_write(ins.rd)
        elif op in _SB_STORES:
            note_read(ins.rs1)
            note_read(ins.rd)
        else:  # pragma: no cover - fuser admits only straight ops
            raise AssertionError(op)
    if term is not None:
        tins = term[1]
        top = tins.op
        if top in _SB_BRANCH_COND:
            note_read(tins.rs1)
            note_read(tins.rs2)
        elif top in (Op.JR, Op.JALR):
            note_read(tins.rs1)
        elif top is Op.RET:
            note_read(RA)

    # -- emission -----------------------------------------------------
    #: reg -> "x{reg}" (live local) or int (known constant).
    loc: dict[int, object] = {r: f"x{r}" for r in live_in}
    #: registers modified so far, in program order (spill set).
    dirty: dict[int, None] = {}
    body: list[str] = []
    used: set[str] = set()
    has_mem = False
    has_store = False
    tot_n = 0
    tot_c = 0
    #: (body index, offset, counts incl. the op, writebacks) per mem op.
    mem_marks: list[tuple[int, int, int, int, tuple]] = []

    def operand(reg: int) -> str:
        if reg == 0:
            return "0"
        v = loc[reg]
        return v if v.__class__ is str else str(v)

    def const_of(reg: int):
        if reg == 0:
            return 0
        v = loc.get(reg)
        return v if v.__class__ is int else None

    def snapshot() -> tuple:
        return tuple((r, loc[r]) for r in dirty)

    def addr_text(ins) -> str:
        base = const_of(ins.rs1)
        if base is not None:
            return str((base + ins.imm) & MASK32)
        return f"({operand(ins.rs1)} + ({ins.imm})) & {_M}"

    for off, ins in insns:
        op = ins.op
        tot_n += 1
        tot_c += costs[op]
        if op in _SB_LOADS:
            reader, sign_bits = _SB_LOADS[op]
            used.add(reader)
            has_mem = True
            rd = ins.rd
            body.append(f"a = {addr_text(ins)}")
            # fast path: one bound data region (B, E, views supplied at
            # bind time) served by a direct memoryview index; anything
            # else — other regions, misalignment, faults — falls back to
            # the accessor call, which is the only part that can raise
            if reader == "rw":
                used.add("V")
                fast = (f"V[(a - B) >> 2] "
                        f"if B <= a < E and not a & 3 else rw(a)")
            elif reader == "rh":
                used.add("H")
                fast = (f"H[(a - B) >> 1] "
                        f"if B <= a < E and not a & 1 else rh(a)")
            else:
                used.add("BUF")
                fast = f"BUF[a - B] if B <= a < E else rb(a)"
            mem_marks.append((len(body), off, tot_n, tot_c, snapshot()))
            if rd == 0:
                # read for fault semantics, discard the value
                body.append(f"v = {fast}")
                continue
            if sign_bits is None:
                body.append(f"x{rd} = {fast}")
            else:
                flip = 1 << (sign_bits - 1)
                wrap = 1 << sign_bits
                body.append(f"v = {fast}")
                body.append(
                    f"x{rd} = (v - {wrap}) & {_M} if v & {flip} else v")
            loc[rd] = f"x{rd}"
            dirty[rd] = None
        elif op in _SB_STORES:
            writer = _SB_STORES[op]
            used.add(writer)
            has_mem = True
            has_store = True
            val = operand(ins.rd)
            body.append(f"a = {addr_text(ins)}")
            # the fast region is never executable, so an in-bounds store
            # cannot rewrite code and needs no self-modification check;
            # the slow path may have patched code (even this block):
            # spill the dirty registers, commit the executed prefix and
            # fall back to fresh dispatch so patched words take effect
            # exactly as they would under per-instruction decode
            if writer == "ww":
                used.add("V")
                body.append(f"if B <= a < E and not a & 3: "
                            f"V[(a - B) >> 2] = {val}")
            elif writer == "wh":
                used.add("H")
                body.append(f"if B <= a < E and not a & 1: "
                            f"H[(a - B) >> 1] = {val} & 65535")
            else:
                used.add("BUF")
                body.append(f"if B <= a < E: BUF[a - B] = {val} & 255")
            body.append("else:")
            mem_marks.append((len(body), off, tot_n, tot_c, snapshot()))
            body.append(f"    {writer}(a, {val})")
            spill = "".join(f"r[{r}] = {operand(r)}; " for r in dirty)
            body.append(f"    if cw[0] != g: {spill}st[0] += {tot_n}; "
                        f"st[1] += {tot_c}; return pc + {off + 4}")
        else:
            rd = ins.rd
            if op in _SB_ALU_R:
                srcs = (ins.rs1, ins.rs2)
                expr = _SB_ALU_R[op](operand(ins.rs1), operand(ins.rs2))
                helpers = _SB_ALU_R_HELPERS.get(op, ())
            elif op is Op.LUI:
                srcs = ()
                expr = str((ins.imm << 16) & MASK32)
                helpers = ()
            else:
                srcs = (ins.rs1,)
                expr = _sb_alu_i_expr(ins, operand(ins.rs1))
                helpers = ("sgn",) if op is Op.SRAI else ()
            if rd == 0:
                continue  # cost counted; architecturally a nop
            if all(const_of(s) is not None for s in srcs):
                # every source is a known constant: evaluate the exact
                # expression the runtime would have executed
                loc[rd] = eval(expr, dict(_CONST_ENV))
            else:
                used.update(helpers)
                body.append(f"x{rd} = {expr}")
                loc[rd] = f"x{rd}"
            dirty[rd] = None

    def spill_lines() -> list[str]:
        return [f"r[{r}] = {operand(r)}" for r in dirty]

    if term is not None:
        toff, tins = term
        top = tins.op
        tot_n += 1
        tot_c += costs[top]
        body.append(f"st[0] += {tot_n}; st[1] += {tot_c}")
        body.extend(spill_lines())
        if top in _SB_BRANCH_COND:
            taken = toff + 4 + (tins.imm << 2)
            fall = toff + 4
            cond = _SB_BRANCH_COND[top](operand(tins.rs1),
                                        operand(tins.rs2))
            body.append(f"return pc + {taken} if {cond} "
                        f"else pc + {fall}")
        elif top is Op.J:
            body.append(f"return {tins.imm << 2}")
        elif top is Op.JAL:
            body.append(f"r[{RA}] = pc + {toff + 4}")
            body.append(f"return {tins.imm << 2}")
        elif top is Op.JR:
            body.append(f"return {operand(tins.rs1)}")
        elif top is Op.JALR:
            if tins.rd:
                body.append(f"v = {operand(tins.rs1)}")
                body.append(f"r[{tins.rd}] = pc + {toff + 4}")
                body.append("return v")
            else:
                body.append(f"return {operand(tins.rs1)}")
        elif top is Op.RET:
            body.append(f"return {operand(RA)}")
        else:  # pragma: no cover - terminator set is closed
            raise AssertionError(top)
    else:
        body.append(f"st[0] += {tot_n}; st[1] += {tot_c}")
        body.extend(spill_lines())
        body.append(f"return pc + {insns[-1][0] + 4}")

    params = ["pc", "r=_r", "st=_st"]
    if has_store:
        params.append("cw=_cw")
    if has_mem:
        params.append("C=_C")
        params.append("F=_F")
        params.append("B=_fB")
        params.append("E=_fE")
    for name in ("rw", "rh", "rb", "ww", "wh", "wb",
                 "sgn", "sdiv", "srem"):
        if name in used:
            params.append(f"{name}=_{name}")
    for name in ("V", "H", "BUF"):
        if name in used:
            params.append(f"{name}=_f{name}")

    lines = [f"def _sb({', '.join(params)}):"]
    n_prologue = 0
    if live_in:
        lines.append("    " + "; ".join(f"x{r} = r[{r}]"
                                        for r in live_in))
        n_prologue = 1
    fixups: dict[int, tuple] = {}
    if has_mem:
        if has_store:
            lines.append("    g = cw[0]")
        lines.append("    try:")
        lines.extend("        " + stmt for stmt in body)
        lines.append("    except Exception as e:")
        lines.append("        f = F.get(e.__traceback__.tb_lineno)")
        lines.append("        if f is not None:")
        lines.append("            st[0] += f[1]; st[1] += f[2]")
        lines.append("            C._fault_pc = pc + f[0]")
        lines.append("            if f[3]:")
        lines.append("                L = locals()")
        lines.append("                for _rg, _v in f[3]:")
        lines.append("                    r[_rg] = L[_v] "
                     "if _v.__class__ is str else _v")
        lines.append("        raise")
        # body line i sits at source line i + base (def line, optional
        # prologue, optional generation snapshot, try:, 1-based)
        base = 3 + n_prologue + (1 if has_store else 0)
        fixups = {i + base: (off, n, c, wb)
                  for i, off, n, c, wb in mem_marks}
    else:
        lines.extend("    " + stmt for stmt in body)
    src = "\n".join(lines) + "\n"

    code = _JIT_CODE_CACHE.get(src)
    if code is None:
        code = compile(src, "<superblock-jit>", "exec")
        _JIT_CODE_CACHE[src] = code
    return code, fixups, src
