"""The repro RISC CPU: a closure-caching, superblock-threading interpreter.

Each instruction word is decoded once into a specialized Python closure
stored in a per-address decode cache.  On top of that sits a
**superblock layer**: at first dispatch of a pc, the straight-line run
of instructions starting there (up to the next control transfer) is
fused into one generated-and-compiled Python function that executes the
whole block with a single dispatch, batching the instruction/cycle
stats updates; the run loop is then ``pc = blocks[pc](pc)``.  Traced
runs, :meth:`CPU.step` and TRAP/SYSCALL/BREAK/HALT words always use the
per-instruction closures, so hook-visible state is exact at those
boundaries.

Writes into executable regions (i.e. dynamic binary rewriting by the
SoftCache) invalidate the affected decode-cache entries *and every
superblock overlapping the written words*, so patched branch words and
``debug_poison`` BREAK words take effect exactly like they would on
real hardware with coherent fetch.  A store executed from inside a
fused block re-checks a code-generation counter so even self-modifying
stores fall back to fresh decode mid-block.

The CPU knows nothing about caching.  The SoftCache hooks in through
two narrow interfaces:

* ``trap_hook(cpu, code, operand, pc) -> next_pc`` — invoked by TRAP
  instructions (miss stubs, dcache ops);
* the executable-region permissions — in SoftCache mode only local RAM
  is executable, so any escape from the translation cache raises
  :class:`~repro.sim.errors.FetchFault` instead of silently running
  untranslated code.

Cycle accounting: every closure bumps an (instruction, cycle) stats
cell; runtime components charge additional cycles through
:meth:`CPU.add_cycles`.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Callable

from ..isa import Op, Trap, decode, to_signed32
from ..isa.registers import RA
from .costs import DEFAULT_COSTS, CostModel
from .errors import (
    BreakHit,
    CycleLimitExceeded,
    FetchFault,
    IllegalInstruction,
    SimError,
)
from .memory import Memory

MASK32 = 0xFFFFFFFF
_SIGN_FLIP = 0x80000000


class HaltExecution(Exception):
    """Raised internally to unwind the run loop on HALT/exit."""


TrapHook = Callable[["CPU", int, int, int], int]
SysHook = Callable[["CPU", int, int], int]

#: Word -> decoded Insn.  Insn is frozen, decoding is pure, and real
#: programs use a few thousand distinct words, so one process-wide memo
#: makes repeated decode (tcache retranslation after eviction) a dict
#: hit.  Words that fail to decode are not memoized.
_DECODE_MEMO: dict[int, object] = {}

#: Max instructions fused into one superblock (prefix + terminator).
FUSE_LIMIT = 64
#: Dispatches per instruction-limit check in the fast loop.
_CHUNK = 16384
#: With every fused block bounded by FUSE_LIMIT instructions, a chunk
#: of _CHUNK dispatches can execute at most this many instructions, so
#: the fast loop cannot overshoot the cap while more than this remains.
_SAFE_MARGIN = _CHUNK * FUSE_LIMIT


@dataclass
class SuperblockStats:
    """Fusion and invalidation counters for the superblock layer."""

    #: Superblocks compiled (>= 2 instructions fused into one closure).
    fused_blocks: int = 0
    #: Total instructions covered by those superblocks.
    fused_instructions: int = 0
    #: Dispatch entries that stayed single per-instruction closures
    #: (TRAP/SYSCALL/BREAK/HALT words, lone control transfers).
    single_closures: int = 0
    #: Blocks killed because a code write overlapped their span.
    invalidated_blocks: int = 0
    #: Whole-cache flushes (tcache flush / invalidate_all_decoded).
    flushes: int = 0
    #: Executable-region write events seen by the invalidation hook.
    code_writes: int = 0

    @property
    def mean_block_length(self) -> float:
        """Mean fused instructions per superblock."""
        if not self.fused_blocks:
            return 0.0
        return self.fused_instructions / self.fused_blocks


class CPU:
    """A single in-order core executing the repro ISA."""

    def __init__(self, memory: Memory, costs: CostModel = DEFAULT_COSTS,
                 superblocks: bool = True):
        self.mem = memory
        self.costs = costs
        self.regs: list[int] = [0] * 32
        self.pc = 0
        self.exit_code: int | None = None
        #: [instructions executed, cycles consumed]
        self.stats = [0, 0]
        self.trap_hook: TrapHook | None = None
        self.sys_hook: SysHook | None = None
        #: Fuse straight-line code into superblocks in :meth:`run`.
        self.superblocks = superblocks
        self.sb_stats = SuperblockStats()
        #: Flight-recorder hook: ``hook(kind, pc, n)`` with kind one of
        #: "fuse" (superblock compiled, n = fused instructions),
        #: "sb_invalidate" (a code write killed the block at pc) or
        #: "flush" (whole decode/superblock cache dropped).  None keeps
        #: the hot paths hook-free.
        self.trace_hook: Callable[[str, int, int], None] | None = None
        self._decoded: dict[int, Callable[[int], int]] = {}
        #: Superblock dispatch table: block-start pc -> closure.
        self._blocks: dict[int, Callable[[int], int]] = {}
        #: Block-start pc -> end address (exclusive) of its span.
        self._block_span: dict[int, int] = {}
        #: Word address -> set of block starts whose span covers it.
        self._block_cover: dict[int, set[int]] = {}
        #: Generation counter cell, bumped on every code write; fused
        #: blocks re-check it after stores to catch self-modification.
        self._code_gen = [0]
        #: Precise pc of a fault raised from inside a fused block.
        self._fault_pc: int | None = None
        #: Content-keyed superblock function cache: raw word tuple ->
        #: compiled closure.  Generated superblock code is entirely
        #: offset-relative (absolute targets come from the words
        #: themselves) and binds only per-CPU state, so identical word
        #: runs reuse one closure across evict/flush/retranslate cycles
        #: without re-running codegen or ``exec``.
        self._sb_fn_cache: dict[tuple[int, ...], Callable[[int], int]] = {}
        #: Interned id of this CPU's per-op cost table; part of the
        #: module-level codegen cache key (costs are baked into the
        #: generated source as literals).
        sig = tuple(sorted((op.value, c) for op, c in
                           costs.op_cycles.items()))
        self._sb_cost_tag = _COST_TAGS.setdefault(sig, len(_COST_TAGS))
        memory.code_write_hooks.append(self._invalidate_decoded)

    # -- public accounting ------------------------------------------------

    @property
    def icount(self) -> int:
        """Instructions executed so far."""
        return self.stats[0]

    @property
    def cycles(self) -> int:
        """Cycles consumed so far (instructions + runtime charges)."""
        return self.stats[1]

    def add_cycles(self, n: int) -> None:
        """Charge *n* runtime cycles (CC/MC work, link transfer time)."""
        self.stats[1] += n

    def halt(self, exit_code: int = 0) -> None:
        """Stop execution at the end of the current instruction."""
        self.exit_code = exit_code
        raise HaltExecution

    # -- register helpers (used by the SoftCache runtime) -----------------

    def get_reg(self, num: int) -> int:
        return self.regs[num]

    def set_reg(self, num: int, value: int) -> None:
        if num != 0:
            self.regs[num] = value & MASK32

    # -- decode cache -------------------------------------------------------

    def _invalidate_decoded(self, addr: int, length: int) -> None:
        """Code-write hook: drop closures and superblocks made stale by
        a write to ``[addr, addr + length)``.

        Every superblock whose span merely *overlaps* a patched word is
        killed, not just the block starting there — backpatched branch
        words and ``debug_poison`` BREAK words in the middle of a fused
        run must take effect on the next dispatch.
        """
        self._code_gen[0] += 1
        self.sb_stats.code_writes += 1
        pop = self._decoded.pop
        cover_get = self._block_cover.get
        kill = self._kill_block
        for a in range(addr & ~3, addr + length, 4):
            pop(a, None)
            starts = cover_get(a)
            if starts:
                for start in tuple(starts):
                    kill(start)

    def _kill_block(self, start: int) -> None:
        self._blocks.pop(start, None)
        end = self._block_span.pop(start, None)
        self.sb_stats.invalidated_blocks += 1
        if self.trace_hook is not None:
            self.trace_hook("sb_invalidate", start, 0)
        if end is None:
            return
        cover = self._block_cover
        for a in range(start, end, 4):
            starts = cover.get(a)
            if starts is not None:
                starts.discard(start)
                if not starts:
                    del cover[a]

    def invalidate_all_decoded(self) -> None:
        """Drop every cached closure and superblock (tcache flush)."""
        self._decoded.clear()
        self._blocks.clear()
        self._block_span.clear()
        self._block_cover.clear()
        self._code_gen[0] += 1
        self.sb_stats.flushes += 1
        if self.trace_hook is not None:
            self.trace_hook("flush", 0, 0)

    def _decode_at(self, pc: int) -> Callable[[int], int]:
        region = self.mem.region_at(pc)  # raises MemoryFault if unmapped
        if not region.executable:
            raise FetchFault(pc, f"region '{region.name}' not executable")
        if pc & 3:
            raise FetchFault(pc, "misaligned pc")
        off = pc - region.base
        word = int.from_bytes(region.buf[off:off + 4], "little")
        ins = _DECODE_MEMO.get(word)
        if ins is None:
            try:
                ins = decode(word)
            except Exception as exc:
                raise IllegalInstruction(pc, word) from exc
            _DECODE_MEMO[word] = ins
        factory = _FACTORIES.get(ins.op)
        if factory is None:  # pragma: no cover - table is exhaustive
            raise IllegalInstruction(pc, word)
        fn = factory(self, ins, pc)
        self._decoded[pc] = fn
        return fn

    # -- superblock construction ------------------------------------------

    def _register_block(self, start: int, end: int,
                        fn: Callable[[int], int], fused: int
                        ) -> Callable[[int], int]:
        self._blocks[start] = fn
        self._block_span[start] = end
        cover = self._block_cover
        for a in range(start, end, 4):
            starts = cover.get(a)
            if starts is None:
                cover[a] = {start}
            else:
                starts.add(start)
        if fused:
            self.sb_stats.fused_blocks += 1
            self.sb_stats.fused_instructions += fused
            if self.trace_hook is not None:
                self.trace_hook("fuse", start, fused)
        else:
            self.sb_stats.single_closures += 1
        return fn

    def _build_block(self, pc: int) -> Callable[[int], int]:
        """Fuse the straight-line run starting at *pc* into one closure.

        Falls back to the per-instruction closure when the word at *pc*
        is a control transfer, a trap-class instruction, or fusion would
        cover fewer than two instructions.  Decode problems *inside* the
        straight-line run just end the block early; the offending word
        raises with exact pc/stats when (and only when) it is reached.
        """
        region = self.mem.region_at(pc)  # raises MemoryFault if unmapped
        if pc & 3 or not region.executable:
            # _decode_at raises the precise FetchFault
            return self._register_block(pc, pc + 4, self._decode_at(pc), 0)
        base, end, buf = region.base, region.end, region.buf
        view = region.view32
        memo = _DECODE_MEMO
        insns: list[tuple[int, object]] = []
        words: list[int] = []
        term: tuple[int, object] | None = None
        addr = pc
        while addr + 4 <= end and len(insns) < FUSE_LIMIT - 1:
            if view is not None:
                word = view[(addr - base) >> 2]
            else:
                word = int.from_bytes(
                    buf[addr - base:addr - base + 4], "little")
            ins = memo.get(word)
            if ins is None:
                try:
                    ins = decode(word)
                except Exception:
                    break
                memo[word] = ins
            op = ins.op
            if op in _SB_TERM_OPS:
                term = (addr, ins)
                words.append(word)
                break
            if op not in _SB_STRAIGHT_OPS:
                break  # TRAP/SYSCALL/BREAK/HALT: per-instruction only
            insns.append((addr, ins))
            words.append(word)
            addr += 4
        fused = len(insns) + (1 if term is not None else 0)
        if fused < 2:
            return self._register_block(pc, pc + 4, self._decode_at(pc), 0)
        key = tuple(words)
        fn = self._sb_fn_cache.get(key)
        if fn is None:
            fn = _compile_superblock(self, pc, insns, term, key)
            self._sb_fn_cache[key] = fn
        end_addr = term[0] + 4 if term is not None else addr
        return self._register_block(pc, end_addr, fn, fused)

    # -- execution ---------------------------------------------------------

    def run(self, max_instructions: int = 2_000_000_000) -> int:
        """Run until HALT/exit; returns the exit code.

        Raises :class:`CycleLimitExceeded` once *max_instructions* have
        executed without halting (runaway-loop guard for tests).  The
        guard is exact at dispatch granularity: no new block is entered
        once the limit is reached, so a run can only exceed the cap by
        the tail of the final superblock (< ``FUSE_LIMIT``), and never
        at all with ``superblocks=False``.
        """
        if not self.superblocks:
            return self._run_per_instruction(max_instructions)
        blocks = self._blocks
        build = self._build_block
        stats = self.stats
        pc = self.pc
        try:
            while True:
                remaining = max_instructions - stats[0]
                if remaining <= 0:
                    self.pc = pc
                    raise CycleLimitExceeded(max_instructions)
                if remaining > _SAFE_MARGIN:
                    for _ in range(_CHUNK):
                        fn = blocks.get(pc)
                        if fn is None:
                            fn = build(pc)
                        pc = fn(pc)
                else:
                    while stats[0] < max_instructions:
                        fn = blocks.get(pc)
                        if fn is None:
                            fn = build(pc)
                        pc = fn(pc)
        except HaltExecution:
            self.pc = pc
        except Exception:
            fault_pc = self._fault_pc
            self._fault_pc = None
            self.pc = pc if fault_pc is None else fault_pc
            raise
        return self.exit_code if self.exit_code is not None else 0

    def _run_per_instruction(self, max_instructions: int) -> int:
        """Per-instruction dispatch loop (exact instruction cap)."""
        decoded = self._decoded
        decode_at = self._decode_at
        stats = self.stats
        pc = self.pc
        try:
            while True:
                remaining = max_instructions - stats[0]
                if remaining <= 0:
                    self.pc = pc
                    raise CycleLimitExceeded(max_instructions)
                for _ in range(_CHUNK if remaining > _CHUNK else remaining):
                    fn = decoded.get(pc)
                    if fn is None:
                        fn = decode_at(pc)
                    pc = fn(pc)
        except HaltExecution:
            self.pc = pc
        except Exception:
            self.pc = pc
            raise
        return self.exit_code if self.exit_code is not None else 0

    def run_traced(self, trace: array,
                   max_instructions: int = 2_000_000_000) -> int:
        """Like :meth:`run` but appends every executed pc to *trace*.

        *trace* should be ``array('I')``; it becomes the instruction
        fetch trace consumed by the hardware-cache simulator (Fig 6)
        and the block-trace extractor (Fig 7).  Always runs with
        per-instruction dispatch so the trace is complete, and enforces
        *max_instructions* exactly.
        """
        decoded = self._decoded
        decode_at = self._decode_at
        append = trace.append
        stats = self.stats
        pc = self.pc
        try:
            while True:
                remaining = max_instructions - stats[0]
                if remaining <= 0:
                    self.pc = pc
                    raise CycleLimitExceeded(max_instructions)
                for _ in range(_CHUNK if remaining > _CHUNK else remaining):
                    fn = decoded.get(pc)
                    if fn is None:
                        fn = decode_at(pc)
                    append(pc)
                    pc = fn(pc)
        except HaltExecution:
            self.pc = pc
        except Exception:
            self.pc = pc
            raise
        return self.exit_code if self.exit_code is not None else 0

    def step(self) -> None:
        """Execute exactly one instruction (debugger granularity)."""
        fn = self._decoded.get(self.pc)
        if fn is None:
            fn = self._decode_at(self.pc)
        try:
            self.pc = fn(self.pc)
        except HaltExecution:
            pass


# ---------------------------------------------------------------------------
# Closure factories, one per opcode.  Each returns ``fn(pc) -> next_pc``.
# The factories aggressively specialize: rd == zero becomes a pure nop
# with correct cost, constants are folded into the closure.
# ---------------------------------------------------------------------------

_Factory = Callable[["CPU", object, int], Callable[[int], int]]
_FACTORIES: dict[Op, _Factory] = {}


def _register(op: Op):
    def deco(fn: _Factory) -> _Factory:
        _FACTORIES[op] = fn
        return fn
    return deco


def _alu_factory(op: Op, compute):
    """Build a factory for a 3-register ALU op with semantics *compute*."""
    def factory(cpu: CPU, ins, pc: int):
        regs = cpu.regs
        st = cpu.stats
        cost = cpu.costs.op_cycles[op]
        rd, rs1, rs2 = ins.rd, ins.rs1, ins.rs2
        if rd == 0:
            def ex(pc: int) -> int:
                st[0] += 1
                st[1] += cost
                return pc + 4
            return ex

        def ex(pc: int) -> int:
            st[0] += 1
            st[1] += cost
            regs[rd] = compute(regs[rs1], regs[rs2])
            return pc + 4
        return ex
    _FACTORIES[op] = factory
    return factory


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        return MASK32  # divide by zero -> -1 (RISC-V convention)
    sa, sb = to_signed32(a), to_signed32(b)
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & MASK32


def _srem(a: int, b: int) -> int:
    if b == 0:
        return a
    sa, sb = to_signed32(a), to_signed32(b)
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & MASK32


_alu_factory(Op.ADD, lambda a, b: (a + b) & MASK32)
_alu_factory(Op.SUB, lambda a, b: (a - b) & MASK32)
_alu_factory(Op.AND, lambda a, b: a & b)
_alu_factory(Op.OR, lambda a, b: a | b)
_alu_factory(Op.XOR, lambda a, b: a ^ b)
_alu_factory(Op.NOR, lambda a, b: ~(a | b) & MASK32)
_alu_factory(Op.SLT,
             lambda a, b: 1 if (a ^ _SIGN_FLIP) < (b ^ _SIGN_FLIP) else 0)
_alu_factory(Op.SLTU, lambda a, b: 1 if a < b else 0)
_alu_factory(Op.SLL, lambda a, b: (a << (b & 31)) & MASK32)
_alu_factory(Op.SRL, lambda a, b: a >> (b & 31))
_alu_factory(Op.SRA,
             lambda a, b: (to_signed32(a) >> (b & 31)) & MASK32)
_alu_factory(Op.MUL, lambda a, b: (a * b) & MASK32)
_alu_factory(Op.DIV, _sdiv)
_alu_factory(Op.REM, _srem)


def _alui_factory(op: Op, compute):
    """Factory builder for register-immediate ALU ops."""
    def factory(cpu: CPU, ins, pc: int):
        regs = cpu.regs
        st = cpu.stats
        cost = cpu.costs.op_cycles[op]
        rd, rs1, imm = ins.rd, ins.rs1, ins.imm
        if rd == 0:
            def ex(pc: int) -> int:
                st[0] += 1
                st[1] += cost
                return pc + 4
            return ex

        def ex(pc: int) -> int:
            st[0] += 1
            st[1] += cost
            regs[rd] = compute(regs[rs1], imm)
            return pc + 4
        return ex
    _FACTORIES[op] = factory
    return factory


_alui_factory(Op.ADDI, lambda a, i: (a + i) & MASK32)
_alui_factory(Op.ANDI, lambda a, i: a & i)
_alui_factory(Op.ORI, lambda a, i: a | i)
_alui_factory(Op.XORI, lambda a, i: a ^ i)
_alui_factory(Op.SLTI,
              lambda a, i: 1 if (a ^ _SIGN_FLIP) < ((i & MASK32) ^ _SIGN_FLIP)
              else 0)
_alui_factory(Op.SLTIU, lambda a, i: 1 if a < i else 0)
_alui_factory(Op.SLLI, lambda a, i: (a << (i & 31)) & MASK32)
_alui_factory(Op.SRLI, lambda a, i: a >> (i & 31))
_alui_factory(Op.SRAI, lambda a, i: (to_signed32(a) >> (i & 31)) & MASK32)


@_register(Op.LUI)
def _f_lui(cpu: CPU, ins, pc: int):
    # LUI ignores rs1: specialize to a pure constant store instead of
    # the generic register-immediate closure (which would read a source
    # register it never uses).
    regs = cpu.regs
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.LUI]
    rd = ins.rd
    value = (ins.imm << 16) & MASK32
    if rd == 0:
        def ex(pc: int) -> int:
            st[0] += 1
            st[1] += cost
            return pc + 4
        return ex

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        regs[rd] = value
        return pc + 4
    return ex


def _load_factory(op: Op, reader_name: str, sign_bits: int | None):
    def factory(cpu: CPU, ins, pc: int):
        regs = cpu.regs
        st = cpu.stats
        mem = cpu.mem
        cost = cpu.costs.op_cycles[op]
        rd, rs1, imm = ins.rd, ins.rs1, ins.imm
        read = getattr(mem, reader_name)
        if sign_bits is None:
            def ex(pc: int) -> int:
                st[0] += 1
                st[1] += cost
                value = read((regs[rs1] + imm) & MASK32)
                if rd:
                    regs[rd] = value
                return pc + 4
        else:
            flip = 1 << (sign_bits - 1)
            wrap = 1 << sign_bits

            def ex(pc: int) -> int:
                st[0] += 1
                st[1] += cost
                value = read((regs[rs1] + imm) & MASK32)
                if value & flip:
                    value = (value - wrap) & MASK32
                if rd:
                    regs[rd] = value
                return pc + 4
        return ex
    _FACTORIES[op] = factory


_load_factory(Op.LW, "read_word", None)
_load_factory(Op.LH, "read_half", 16)
_load_factory(Op.LHU, "read_half", None)
_load_factory(Op.LB, "read_byte", 8)
_load_factory(Op.LBU, "read_byte", None)


def _store_factory(op: Op, writer_name: str):
    def factory(cpu: CPU, ins, pc: int):
        regs = cpu.regs
        st = cpu.stats
        mem = cpu.mem
        cost = cpu.costs.op_cycles[op]
        rd, rs1, imm = ins.rd, ins.rs1, ins.imm
        write = getattr(mem, writer_name)

        def ex(pc: int) -> int:
            st[0] += 1
            st[1] += cost
            write((regs[rs1] + imm) & MASK32, regs[rd])
            return pc + 4
        return ex
    _FACTORIES[op] = factory


_store_factory(Op.SW, "write_word")
_store_factory(Op.SH, "write_half")
_store_factory(Op.SB, "write_byte")


def _branch_factory(op: Op, test):
    def factory(cpu: CPU, ins, pc: int):
        regs = cpu.regs
        st = cpu.stats
        cost = cpu.costs.op_cycles[op]
        rs1, rs2 = ins.rs1, ins.rs2
        taken = pc + 4 + (ins.imm << 2)
        fallthrough = pc + 4

        def ex(pc: int) -> int:
            st[0] += 1
            st[1] += cost
            return taken if test(regs[rs1], regs[rs2]) else fallthrough
        return ex
    _FACTORIES[op] = factory


_branch_factory(Op.BEQ, lambda a, b: a == b)
_branch_factory(Op.BNE, lambda a, b: a != b)
_branch_factory(Op.BLT, lambda a, b: (a ^ _SIGN_FLIP) < (b ^ _SIGN_FLIP))
_branch_factory(Op.BGE, lambda a, b: (a ^ _SIGN_FLIP) >= (b ^ _SIGN_FLIP))
_branch_factory(Op.BLTU, lambda a, b: a < b)
_branch_factory(Op.BGEU, lambda a, b: a >= b)


@_register(Op.J)
def _f_j(cpu: CPU, ins, pc: int):
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.J]
    target = ins.imm << 2

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        return target
    return ex


@_register(Op.JAL)
def _f_jal(cpu: CPU, ins, pc: int):
    regs = cpu.regs
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.JAL]
    target = ins.imm << 2
    link = pc + 4

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        regs[RA] = link
        return target
    return ex


@_register(Op.JR)
def _f_jr(cpu: CPU, ins, pc: int):
    regs = cpu.regs
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.JR]
    rs1 = ins.rs1

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        return regs[rs1]
    return ex


@_register(Op.JALR)
def _f_jalr(cpu: CPU, ins, pc: int):
    regs = cpu.regs
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.JALR]
    rd, rs1 = ins.rd, ins.rs1
    link = pc + 4

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        target = regs[rs1]
        if rd:
            regs[rd] = link
        return target
    return ex


@_register(Op.RET)
def _f_ret(cpu: CPU, ins, pc: int):
    regs = cpu.regs
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.RET]

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        return regs[RA]
    return ex


@_register(Op.TRAP)
def _f_trap(cpu: CPU, ins, pc: int):
    st = cpu.stats
    code, operand = ins.rd, ins.imm

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += 1
        hook = cpu.trap_hook
        if hook is None:
            raise SimError(
                f"TRAP {Trap(code).name if code in Trap._value2member_map_ else code} "
                f"at pc={pc:#x} with no handler installed")
        return hook(cpu, code, operand, pc)
    return ex


@_register(Op.SYSCALL)
def _f_syscall(cpu: CPU, ins, pc: int):
    st = cpu.stats
    service = ins.imm

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += 1
        hook = cpu.sys_hook
        if hook is None:
            raise SimError(f"SYSCALL {service} with no handler installed")
        return hook(cpu, service, pc)
    return ex


@_register(Op.BREAK)
def _f_break(cpu: CPU, ins, pc: int):
    code = ins.imm

    def ex(pc: int) -> int:
        raise BreakHit(pc, code)
    return ex


@_register(Op.HALT)
def _f_halt(cpu: CPU, ins, pc: int):
    def ex(pc: int) -> int:
        cpu.stats[0] += 1
        cpu.stats[1] += 1
        cpu.halt(cpu.exit_code if cpu.exit_code is not None else 0)
        return pc  # pragma: no cover - halt() raises
    return ex


# ---------------------------------------------------------------------------
# Superblock compiler.  A straight-line run of simple instructions (ALU,
# loads, stores) plus an optional fused control-transfer terminator is
# compiled into ONE Python function executing the whole block per
# dispatch.  Stats are batched into a single update at the block end;
# if a memory access faults mid-block, the except handler maps the
# traceback line back to the faulting instruction and commits exactly
# the per-instruction counts for the executed prefix (including the
# faulting op), so a mid-block MemoryFault is indistinguishable from
# per-instruction execution.  All addresses are emitted relative to the
# entry pc, so blocks with identical instruction content share one
# compiled code object through ``_SB_CODE_CACHE`` — retranslation under
# tcache thrashing never pays the compile cost twice.
# ---------------------------------------------------------------------------

_M = "4294967295"       # MASK32 literal
_S = "2147483648"       # sign-flip literal

_SB_CODE_CACHE: dict[str, object] = {}

#: (cost tag, word tuple) -> (code object, fault-fixup table).  Lets a
#: fresh CPU (new benchmark round, new client system) skip source
#: generation entirely for content it has seen under the same cost
#: model; only the per-CPU ``exec`` binding runs.
_SB_COMPILED_CACHE: dict[tuple, tuple[object, dict]] = {}

#: Cost-table signature -> small interned tag (see CPU._sb_cost_tag).
_COST_TAGS: dict[tuple, int] = {}

_SB_ALU_R = {
    Op.ADD: lambda a, b: f"({a} + {b}) & {_M}",
    Op.SUB: lambda a, b: f"({a} - {b}) & {_M}",
    Op.AND: lambda a, b: f"{a} & {b}",
    Op.OR: lambda a, b: f"{a} | {b}",
    Op.XOR: lambda a, b: f"{a} ^ {b}",
    Op.NOR: lambda a, b: f"~({a} | {b}) & {_M}",
    Op.SLT: lambda a, b: f"1 if ({a} ^ {_S}) < ({b} ^ {_S}) else 0",
    Op.SLTU: lambda a, b: f"1 if {a} < {b} else 0",
    Op.SLL: lambda a, b: f"({a} << ({b} & 31)) & {_M}",
    Op.SRL: lambda a, b: f"{a} >> ({b} & 31)",
    Op.SRA: lambda a, b: f"(sgn({a}) >> ({b} & 31)) & {_M}",
    Op.MUL: lambda a, b: f"({a} * {b}) & {_M}",
    Op.DIV: lambda a, b: f"sdiv({a}, {b})",
    Op.REM: lambda a, b: f"srem({a}, {b})",
}

#: helper names each R-type op pulls into the generated function.
_SB_ALU_R_HELPERS = {Op.SRA: ("sgn",), Op.DIV: ("sdiv",),
                     Op.REM: ("srem",)}

#: op -> (reader binding name, sign bits or None)
_SB_LOADS = {
    Op.LW: ("rw", None),
    Op.LH: ("rh", 16),
    Op.LHU: ("rh", None),
    Op.LB: ("rb", 8),
    Op.LBU: ("rb", None),
}

_SB_STORES = {Op.SW: "ww", Op.SH: "wh", Op.SB: "wb"}

_SB_BRANCH_COND = {
    Op.BEQ: lambda a, b: f"{a} == {b}",
    Op.BNE: lambda a, b: f"{a} != {b}",
    Op.BLT: lambda a, b: f"({a} ^ {_S}) < ({b} ^ {_S})",
    Op.BGE: lambda a, b: f"({a} ^ {_S}) >= ({b} ^ {_S})",
    Op.BLTU: lambda a, b: f"{a} < {b}",
    Op.BGEU: lambda a, b: f"{a} >= {b}",
}

_SB_ALU_I_OPS = frozenset({
    Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI, Op.SLTIU, Op.SLLI,
    Op.SRLI, Op.SRAI, Op.LUI,
})

#: Straight-line instructions the fuser may place mid-block.
_SB_STRAIGHT_OPS = (frozenset(_SB_ALU_R) | _SB_ALU_I_OPS |
                    frozenset(_SB_LOADS) | frozenset(_SB_STORES))

#: Control transfers the fuser may inline as a block terminator.
_SB_TERM_OPS = (frozenset(_SB_BRANCH_COND) |
                frozenset({Op.J, Op.JAL, Op.JR, Op.JALR, Op.RET}))


def _sb_alu_i_expr(ins) -> str:
    """Expression for a register-immediate ALU op, constants folded."""
    op, rs1, imm = ins.op, ins.rs1, ins.imm
    a = f"r[{rs1}]"
    if op is Op.ADDI:
        return f"({a} + ({imm})) & {_M}"
    if op is Op.ANDI:
        return f"{a} & {imm}"
    if op is Op.ORI:
        return f"{a} | {imm}"
    if op is Op.XORI:
        return f"{a} ^ {imm}"
    if op is Op.SLTI:
        folded = ((imm & 0xFFFFFFFF) ^ _SIGN_FLIP)
        return f"1 if ({a} ^ {_S}) < {folded} else 0"
    if op is Op.SLTIU:
        return f"1 if {a} < {imm} else 0"
    if op is Op.SLLI:
        return f"({a} << {imm & 31}) & {_M}"
    if op is Op.SRLI:
        return f"{a} >> {imm & 31}"
    if op is Op.SRAI:
        return f"(sgn({a}) >> {imm & 31}) & {_M}"
    if op is Op.LUI:
        return str((imm << 16) & 0xFFFFFFFF)  # constant-folded
    raise AssertionError(op)  # pragma: no cover


def _sb_term_lines(ins, off: int) -> list[str]:
    """Statement lines for a fused terminator at block offset *off*."""
    op = ins.op
    if op in _SB_BRANCH_COND:
        taken = off + 4 + (ins.imm << 2)
        fall = off + 4
        cond = _SB_BRANCH_COND[op](f"r[{ins.rs1}]", f"r[{ins.rs2}]")
        return [f"return pc + {taken} if {cond} else pc + {fall}"]
    if op is Op.J:
        return [f"return {ins.imm << 2}"]
    if op is Op.JAL:
        return [f"r[{RA}] = pc + {off + 4}", f"return {ins.imm << 2}"]
    if op is Op.JR:
        return [f"return r[{ins.rs1}]"]
    if op is Op.JALR:
        if ins.rd:
            return [f"v = r[{ins.rs1}]",
                    f"r[{ins.rd}] = pc + {off + 4}",
                    "return v"]
        return [f"return r[{ins.rs1}]"]
    if op is Op.RET:
        return [f"return r[{RA}]"]
    raise AssertionError(op)  # pragma: no cover


def _compile_superblock(cpu: CPU, start: int, insns, term, key=None):
    """Generate, compile and bind the superblock closure for *insns*
    (list of ``(addr, Insn)``) with optional fused terminator *term*.

    With *key* (the raw word tuple) the generated code object and its
    fault-fixup table are reused from :data:`_SB_COMPILED_CACHE`
    across CPUs sharing a cost table; only the ``exec`` that binds
    this CPU's registers/stats/memory runs per CPU.
    """
    cache_key = (cpu._sb_cost_tag, key) if key is not None else None
    cached = (_SB_COMPILED_CACHE.get(cache_key)
              if cache_key is not None else None)
    if cached is not None:
        code, fixups = cached
    else:
        code, fixups = _sb_codegen(cpu.costs.op_cycles, start, insns, term)
        if cache_key is not None:
            _SB_COMPILED_CACHE[cache_key] = (code, fixups)
    mem = cpu.mem
    ns = {
        "_r": cpu.regs, "_st": cpu.stats, "_cw": cpu._code_gen,
        "_C": cpu, "_F": fixups, "_rw": mem.read_word,
        "_rh": mem.read_half, "_rb": mem.read_byte,
        "_ww": mem.write_word, "_wh": mem.write_half,
        "_wb": mem.write_byte, "_sgn": to_signed32, "_sdiv": _sdiv,
        "_srem": _srem,
    }
    exec(code, ns)
    return ns["_sb"]


def _sb_codegen(costs, start: int, insns, term):
    """Generate (code object, fixup table) for one superblock."""
    body: list[str] = []
    used: set[str] = set()
    has_mem = False
    has_store = False
    tot_n = 0
    tot_c = 0
    #: (body line index, block offset, counts incl. that op) per mem op.
    mem_marks: list[tuple[int, int, int, int]] = []

    for addr, ins in insns:
        op = ins.op
        off = addr - start
        tot_n += 1
        tot_c += costs[op]
        if op in _SB_LOADS:
            reader, sign_bits = _SB_LOADS[op]
            used.add(reader)
            has_mem = True
            addr_expr = f"(r[{ins.rs1}] + ({ins.imm})) & {_M}"
            rd = ins.rd
            mem_marks.append((len(body), off, tot_n, tot_c))
            if rd == 0:
                # read for fault semantics, discard the value
                body.append(f"{reader}({addr_expr})")
            elif sign_bits is None:
                body.append(f"r[{rd}] = {reader}({addr_expr})")
            else:
                flip = 1 << (sign_bits - 1)
                wrap = 1 << sign_bits
                body.append(f"v = {reader}({addr_expr})")
                body.append(
                    f"r[{rd}] = (v - {wrap}) & {_M} if v & {flip} else v")
        elif op in _SB_STORES:
            writer = _SB_STORES[op]
            used.add(writer)
            has_mem = True
            has_store = True
            mem_marks.append((len(body), off, tot_n, tot_c))
            body.append(f"{writer}((r[{ins.rs1}] + ({ins.imm})) & {_M}, "
                        f"r[{ins.rd}])")
            # the store may have rewritten code (even this block):
            # commit the executed prefix and fall back to fresh dispatch
            # so patched words take effect exactly as they would under
            # per-instruction decode
            body.append(f"if cw[0] != g: st[0] += {tot_n}; "
                        f"st[1] += {tot_c}; return pc + {off + 4}")
        else:
            if op in _SB_ALU_R:
                expr = _SB_ALU_R[op](f"r[{ins.rs1}]", f"r[{ins.rs2}]")
                used.update(_SB_ALU_R_HELPERS.get(op, ()))
            else:
                expr = _sb_alu_i_expr(ins)
                if op is Op.SRAI:
                    used.add("sgn")
            if ins.rd:
                body.append(f"r[{ins.rd}] = {expr}")

    if term is not None:
        taddr, tins = term
        tot_n += 1
        tot_c += costs[tins.op]
        body.append(f"st[0] += {tot_n}; st[1] += {tot_c}")
        body.extend(_sb_term_lines(tins, taddr - start))
    else:
        body.append(f"st[0] += {tot_n}; st[1] += {tot_c}")
        body.append(f"return pc + {insns[-1][0] + 4 - start}")

    params = ["pc", "r=_r", "st=_st"]
    if has_store:
        params.append("cw=_cw")
    if has_mem:
        params.append("C=_C")
        params.append("F=_F")
    for name in ("rw", "rh", "rb", "ww", "wh", "wb",
                 "sgn", "sdiv", "srem"):
        if name in used:
            params.append(f"{name}=_{name}")
    lines = [f"def _sb({', '.join(params)}):"]
    fixups: dict[int, tuple[int, int, int]] = {}
    if has_mem:
        if has_store:
            lines.append("    g = cw[0]")
        lines.append("    try:")
        lines.extend("        " + stmt for stmt in body)
        lines.append("    except Exception as e:")
        lines.append("        f = F.get(e.__traceback__.tb_lineno)")
        lines.append("        if f is not None:")
        lines.append("            st[0] += f[1]; st[1] += f[2]")
        lines.append("            C._fault_pc = pc + f[0]")
        lines.append("        raise")
        # body line i sits at source line i + base (def line, optional
        # generation snapshot, try:, then 1-based numbering)
        base = 3 + (1 if has_store else 0)
        fixups = {i + base: (off, n, c) for i, off, n, c in mem_marks}
    else:
        lines.extend("    " + stmt for stmt in body)
    src = "\n".join(lines) + "\n"

    code = _SB_CODE_CACHE.get(src)
    if code is None:
        code = compile(src, "<superblock>", "exec")
        _SB_CODE_CACHE[src] = code
    return code, fixups
