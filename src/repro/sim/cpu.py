"""The repro RISC CPU: a closure-caching, superblock-threading interpreter.

Each instruction word is decoded once into a specialized Python closure
stored in a per-address decode cache.  On top of that sits a
**superblock layer**: at first dispatch of a pc, the straight-line run
of instructions starting there (up to the next control transfer) is
fused into one generated-and-compiled Python function that executes the
whole block with a single dispatch, batching the instruction/cycle
stats updates; the run loop is then ``pc = blocks[pc](pc)``.  Traced
runs, :meth:`CPU.step` and TRAP/SYSCALL/BREAK/HALT words always use the
per-instruction closures, so hook-visible state is exact at those
boundaries.

Above the closure tier sits a hotness-driven **template-JIT tier**
(:mod:`repro.sim.jit`): once a superblock's content has executed
``jit_threshold`` times (``jit="hot"``, the default; ``jit="all"``
compiles eagerly, ``jit="off"`` disables the tier) it is recompiled to
specialized source with guest registers as Python locals and constants
folded, and the dispatch-table entries for that content are swapped in
place.  Compiled artifacts persist in the trace-cache directory
(:mod:`repro.sim.jitcache`) keyed by raw words + codegen version, so a
warm process binds JIT blocks without running codegen.  All tiers are
cycle-identical: tiering only changes host speed, never simulated
counters.

Writes into executable regions (i.e. dynamic binary rewriting by the
SoftCache) invalidate the affected decode-cache entries *and every
superblock overlapping the written words*, so patched branch words and
``debug_poison`` BREAK words take effect exactly like they would on
real hardware with coherent fetch.  A store executed from inside a
fused block re-checks a code-generation counter so even self-modifying
stores fall back to fresh decode mid-block.

The CPU knows nothing about caching.  The SoftCache hooks in through
two narrow interfaces:

* ``trap_hook(cpu, code, operand, pc) -> next_pc`` — invoked by TRAP
  instructions (miss stubs, dcache ops);
* the executable-region permissions — in SoftCache mode only local RAM
  is executable, so any escape from the translation cache raises
  :class:`~repro.sim.errors.FetchFault` instead of silently running
  untranslated code.

Cycle accounting: every closure bumps an (instruction, cycle) stats
cell; runtime components charge additional cycles through
:meth:`CPU.add_cycles`.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Callable

from ..isa import Op, Trap, decode, to_signed32
from ..isa.registers import RA
from .costs import DEFAULT_COSTS, CostModel
from .errors import (
    BreakHit,
    CycleLimitExceeded,
    FetchFault,
    IllegalInstruction,
    SimError,
)
from .jit import (
    JIT_MODES,
    JitStats,
    _SB_ALU_R,
    _SB_ALU_R_HELPERS,
    _SB_BRANCH_COND,
    _SB_LOADS,
    _SB_STORES,
    _SB_STRAIGHT_OPS,
    _SB_TERM_OPS,
    _sb_alu_i_expr,
    _sdiv,
    _srem,
    jit_codegen,
)
from . import jitcache
from .memory import Memory

MASK32 = 0xFFFFFFFF
_SIGN_FLIP = 0x80000000


class HaltExecution(Exception):
    """Raised internally to unwind the run loop on HALT/exit."""


TrapHook = Callable[["CPU", int, int, int], int]
SysHook = Callable[["CPU", int, int], int]

#: Word -> decoded Insn.  Insn is frozen, decoding is pure, and real
#: programs use a few thousand distinct words, so one process-wide memo
#: makes repeated decode (tcache retranslation after eviction) a dict
#: hit.  Words that fail to decode are not memoized.
_DECODE_MEMO: dict[int, object] = {}

#: Word -> fusion class (0 = straight-line, 1 = terminator, 2 = not
#: fusable / undecodable).  The block scanner consults this instead of
#: decoding, so retranslation churn (tcache thrash) classifies each
#: word with one dict hit.
_WORD_CLASS: dict[int, int] = {}

#: Max instructions fused into one superblock (prefix + terminator).
FUSE_LIMIT = 64

#: Bucket granularity of the block cover map: block spans are indexed
#: by 64-byte bucket, not by word, so registering/killing a block costs
#: O(span / 64B) dict operations instead of O(span / 4B).
_COVER_SHIFT = 6
#: Dispatches per instruction-limit check in the fast loop.
_CHUNK = 16384
#: With every fused block bounded by FUSE_LIMIT instructions, a chunk
#: of _CHUNK dispatches can execute at most this many instructions, so
#: the fast loop cannot overshoot the cap while more than this remains.
_SAFE_MARGIN = _CHUNK * FUSE_LIMIT


def _classify_word(word: int) -> int:
    """Decode *word* once and memoize its fusion class (and the Insn)."""
    ins = _DECODE_MEMO.get(word)
    if ins is None:
        try:
            ins = decode(word)
        except Exception:
            _WORD_CLASS[word] = 2
            return 2
        _DECODE_MEMO[word] = ins
    op = ins.op
    cls = 0 if op in _SB_STRAIGHT_OPS else 1 if op in _SB_TERM_OPS else 2
    _WORD_CLASS[word] = cls
    return cls


@dataclass
class SuperblockStats:
    """Fusion and invalidation counters for the superblock layer."""

    #: Superblocks compiled (>= 2 instructions fused into one closure).
    fused_blocks: int = 0
    #: Total instructions covered by those superblocks.
    fused_instructions: int = 0
    #: Dispatch entries that stayed single per-instruction closures
    #: (TRAP/SYSCALL/BREAK/HALT words, lone control transfers).
    single_closures: int = 0
    #: Blocks killed because a code write overlapped their span.
    invalidated_blocks: int = 0
    #: Whole-cache flushes (tcache flush / invalidate_all_decoded).
    flushes: int = 0
    #: Executable-region write events seen by the invalidation hook.
    code_writes: int = 0

    @property
    def mean_block_length(self) -> float:
        """Mean fused instructions per superblock."""
        if not self.fused_blocks:
            return 0.0
        return self.fused_instructions / self.fused_blocks


class CPU:
    """A single in-order core executing the repro ISA."""

    def __init__(self, memory: Memory, costs: CostModel = DEFAULT_COSTS,
                 superblocks: bool = True, jit: str = "hot",
                 jit_threshold: int = 16):
        self.mem = memory
        self.costs = costs
        self.regs: list[int] = [0] * 32
        self.pc = 0
        self.exit_code: int | None = None
        #: [instructions executed, cycles consumed]
        self.stats = [0, 0]
        self.trap_hook: TrapHook | None = None
        self.sys_hook: SysHook | None = None
        #: Fuse straight-line code into superblocks in :meth:`run`.
        self.superblocks = superblocks
        if jit not in JIT_MODES:
            raise ValueError(
                f"jit must be one of {JIT_MODES}, got {jit!r}")
        #: Template-JIT tier policy: "off" keeps every fused block on
        #: the closure path, "hot" promotes a block's content after
        #: ``jit_threshold`` executions, "all" JIT-compiles every fused
        #: block at first dispatch.
        self.jit = jit
        self.jit_threshold = max(1, int(jit_threshold))
        #: Content tag of the image this CPU executes (live code
        #: update): part of the in-process and persistent JIT cache
        #: keys, so artifacts from one image version can never be
        #: resurrected for another.  "" (native/unversioned runs)
        #: keeps legacy keys and filenames.
        self.image_tag = ""
        self.jit_stats = JitStats()
        self.sb_stats = SuperblockStats()
        #: Flight-recorder hook: ``hook(kind, pc, n)`` with kind one of
        #: "fuse" (superblock compiled, n = fused instructions),
        #: "sb_invalidate" (a code write killed the block at pc) or
        #: "flush" (whole decode/superblock cache dropped).  None keeps
        #: the hot paths hook-free.
        self.trace_hook: Callable[[str, int, int], None] | None = None
        self._decoded: dict[int, Callable[[int], int]] = {}
        #: Superblock dispatch table: block-start pc -> closure.
        self._blocks: dict[int, Callable[[int], int]] = {}
        #: Block-start pc -> end address (exclusive) of its span.
        self._block_span: dict[int, int] = {}
        #: 64-byte bucket (addr >> _COVER_SHIFT) -> set of block starts
        #: whose span touches the bucket; consumers filter candidates
        #: through ``_block_span`` for word precision.
        self._block_cover: dict[int, set[int]] = {}
        #: Generation counter cell, bumped on every code write; fused
        #: blocks re-check it after stores to catch self-modification.
        self._code_gen = [0]
        #: Precise pc of a fault raised from inside a fused block.
        self._fault_pc: int | None = None
        #: Content-keyed superblock function cache: raw word tuple ->
        #: compiled closure.  Generated superblock code is entirely
        #: offset-relative (absolute targets come from the words
        #: themselves) and binds only per-CPU state, so identical word
        #: runs reuse one closure across evict/flush/retranslate cycles
        #: without re-running codegen or ``exec``.
        self._sb_fn_cache: dict[tuple[int, ...], Callable[[int], int]] = {}
        #: Reusable ``exec`` namespace for superblock binding (built
        #: lazily; generated code captures everything through default
        #: arguments, so one dict serves every bind).
        self._sb_exec_ns: dict | None = None
        #: Content key -> shared hotness cell ([execution count]); one
        #: cell per distinct word run, so retranslated copies of the
        #: same code pool their heat (jit="hot" tier selection).
        self._sb_counts: dict[tuple[int, ...], list[int]] = {}
        #: Content key -> bound JIT-tier function for this CPU.
        self._sb_jit_fns: dict[tuple[int, ...], Callable[[int], int]] = {}
        #: Block-start pc -> content key of the block registered there
        #: (introspection + promotion rebinding).
        self._block_key: dict[int, tuple[int, ...]] = {}
        #: Interned id of this CPU's per-op cost table; part of the
        #: module-level codegen cache key (costs are baked into the
        #: generated source as literals).
        sig = tuple(sorted((op.value, c) for op, c in
                           costs.op_cycles.items()))
        self._sb_cost_sig = sig
        self._sb_cost_tag = _COST_TAGS.setdefault(sig, len(_COST_TAGS))
        memory.code_write_hooks.append(self._invalidate_decoded)

    # -- public accounting ------------------------------------------------

    @property
    def icount(self) -> int:
        """Instructions executed so far."""
        return self.stats[0]

    @property
    def cycles(self) -> int:
        """Cycles consumed so far (instructions + runtime charges)."""
        return self.stats[1]

    def add_cycles(self, n: int) -> None:
        """Charge *n* runtime cycles (CC/MC work, link transfer time)."""
        self.stats[1] += n

    def halt(self, exit_code: int = 0) -> None:
        """Stop execution at the end of the current instruction."""
        self.exit_code = exit_code
        raise HaltExecution

    # -- register helpers (used by the SoftCache runtime) -----------------

    def get_reg(self, num: int) -> int:
        return self.regs[num]

    def set_reg(self, num: int, value: int) -> None:
        if num != 0:
            self.regs[num] = value & MASK32

    # -- decode cache -------------------------------------------------------

    def _invalidate_decoded(self, addr: int, length: int) -> None:
        """Code-write hook: drop closures and superblocks made stale by
        a write to ``[addr, addr + length)``.

        Every superblock whose span merely *overlaps* a patched word is
        killed, not just the block starting there — backpatched branch
        words and ``debug_poison`` BREAK words in the middle of a fused
        run must take effect on the next dispatch.
        """
        self._code_gen[0] += 1
        self.sb_stats.code_writes += 1
        lo = addr & ~3
        hi = addr + length
        pop = self._decoded.pop
        for a in range(lo, hi, 4):
            pop(a, None)
        cover_get = self._block_cover.get
        span_get = self._block_span.get
        kill = self._kill_block
        for bucket in range(lo >> _COVER_SHIFT,
                            ((hi - 1) >> _COVER_SHIFT) + 1):
            starts = cover_get(bucket)
            if starts:
                for start in tuple(starts):
                    end = span_get(start)
                    if end is not None and start < hi and end > lo:
                        kill(start)

    def _kill_block(self, start: int) -> None:
        self._blocks.pop(start, None)
        self._block_key.pop(start, None)
        end = self._block_span.pop(start, None)
        self.sb_stats.invalidated_blocks += 1
        if self.trace_hook is not None:
            self.trace_hook("sb_invalidate", start, 0)
        if end is None:
            return
        cover = self._block_cover
        for bucket in range(start >> _COVER_SHIFT,
                            ((end - 1) >> _COVER_SHIFT) + 1):
            starts = cover.get(bucket)
            if starts is not None:
                starts.discard(start)
                if not starts:
                    del cover[bucket]

    def invalidate_all_decoded(self) -> None:
        """Drop every cached closure and superblock (tcache flush)."""
        self._decoded.clear()
        self._blocks.clear()
        self._block_span.clear()
        self._block_cover.clear()
        self._block_key.clear()
        self._code_gen[0] += 1
        self.sb_stats.flushes += 1
        if self.trace_hook is not None:
            self.trace_hook("flush", 0, 0)

    def _decode_at(self, pc: int) -> Callable[[int], int]:
        region = self.mem.region_at(pc)  # raises MemoryFault if unmapped
        if not region.executable:
            raise FetchFault(pc, f"region '{region.name}' not executable")
        if pc & 3:
            raise FetchFault(pc, "misaligned pc")
        off = pc - region.base
        word = int.from_bytes(region.buf[off:off + 4], "little")
        ins = _DECODE_MEMO.get(word)
        if ins is None:
            try:
                ins = decode(word)
            except Exception as exc:
                raise IllegalInstruction(pc, word) from exc
            _DECODE_MEMO[word] = ins
        factory = _FACTORIES.get(ins.op)
        if factory is None:  # pragma: no cover - table is exhaustive
            raise IllegalInstruction(pc, word)
        fn = factory(self, ins, pc)
        self._decoded[pc] = fn
        return fn

    # -- superblock construction ------------------------------------------

    def _register_block(self, start: int, end: int,
                        fn: Callable[[int], int], fused: int
                        ) -> Callable[[int], int]:
        self._blocks[start] = fn
        self._block_span[start] = end
        cover = self._block_cover
        for bucket in range(start >> _COVER_SHIFT,
                            ((end - 1) >> _COVER_SHIFT) + 1):
            starts = cover.get(bucket)
            if starts is None:
                cover[bucket] = {start}
            else:
                starts.add(start)
        if fused:
            self.sb_stats.fused_blocks += 1
            self.sb_stats.fused_instructions += fused
            if self.trace_hook is not None:
                self.trace_hook("fuse", start, fused)
        else:
            self.sb_stats.single_closures += 1
        return fn

    def _build_block(self, pc: int) -> Callable[[int], int]:
        """Fuse the straight-line run starting at *pc* into one closure.

        Falls back to the per-instruction closure when the word at *pc*
        is a control transfer, a trap-class instruction, or fusion would
        cover fewer than two instructions.  Decode problems *inside* the
        straight-line run just end the block early; the offending word
        raises with exact pc/stats when (and only when) it is reached.
        """
        region = self.mem.region_at(pc)  # raises MemoryFault if unmapped
        if pc & 3 or not region.executable:
            # _decode_at raises the precise FetchFault
            return self._register_block(pc, pc + 4, self._decode_at(pc), 0)
        base, end, buf = region.base, region.end, region.buf
        view = region.view32
        classify = _WORD_CLASS.get
        # one batched fetch of the longest possible run, then a plain
        # list walk: far cheaper than per-word view indexing
        limit = min(FUSE_LIMIT, (end - pc) >> 2)
        i0 = (pc - base) >> 2
        if view is not None:
            chunk = view[i0:i0 + limit].tolist()
        else:
            lo = pc - base
            chunk = [int.from_bytes(buf[o:o + 4], "little")
                     for o in range(lo, lo + limit * 4, 4)]
        words: list[int] = []
        has_term = False
        straight = 0
        addr = pc
        for word in chunk:
            if straight >= FUSE_LIMIT - 1:
                break
            cls = classify(word)
            if cls is None:
                cls = _classify_word(word)
            if cls:
                if cls == 1:
                    words.append(word)
                    has_term = True
                # else TRAP/SYSCALL/BREAK/HALT or undecodable:
                # per-instruction only
                break
            words.append(word)
            straight += 1
            addr += 4
        fused = len(words)
        if fused < 2:
            return self._register_block(pc, pc + 4, self._decode_at(pc), 0)
        key = tuple(words)
        end_addr = addr + 4 if has_term else addr
        mode = self.jit
        if mode != "off":
            jfn = self._sb_jit_fns.get(key)
            if jfn is None and mode == "all":
                jfn = self._jit_for_key(key, pc)
            if jfn is not None:
                self._block_key[pc] = key
                return self._register_block(pc, end_addr, jfn, fused)
        fn = self._sb_fn_cache.get(key)
        if fn is None:
            insns, term = self._insns_for_key(key)
            fn = _compile_superblock(self, 0, insns, term, key)
            if mode == "hot":
                fn = self._wrap_hot(key, fn)
            self._sb_fn_cache[key] = fn
        self._block_key[pc] = key
        return self._register_block(pc, end_addr, fn, fused)

    # -- template-JIT tier ------------------------------------------------

    def _wrap_hot(self, key: tuple[int, ...], fn: Callable[[int], int]
                  ) -> Callable[[int], int]:
        """Wrap a closure-tier block in a hotness counter that promotes
        the content to the JIT tier at ``jit_threshold`` executions.

        The count cell is shared per content key, so every pc the same
        word run is translated to contributes heat; at promotion the
        dispatch table entry of *every* live block with this content is
        swapped to the JIT function.  The wrapper adds no simulated
        instructions or cycles — tiering is host-speed policy only.
        """
        cell = self._sb_counts.get(key)
        if cell is None:
            cell = [0]
            self._sb_counts[key] = cell
        threshold = self.jit_threshold
        blocks = self._blocks

        def counting(pc: int, fn=fn, cell=cell) -> int:
            n = cell[0] + 1
            cell[0] = n
            if n == threshold:
                jfn = self._jit_for_key(key, pc)
                self.jit_stats.jit_promotions += 1
                self._sb_fn_cache[key] = jfn
                for start, k in self._block_key.items():
                    if k == key and start in blocks:
                        blocks[start] = jfn
                if self.trace_hook is not None:
                    self.trace_hook("jit_promote", pc, n)
                return jfn(pc)
            return fn(pc)
        return counting

    def _insns_for_key(self, key: tuple[int, ...]):
        """Re-derive the relative ``(offset, Insn)`` list (and optional
        terminator) from a content key.  The fuser only ever places a
        control transfer last, so the split is unambiguous."""
        memo = _DECODE_MEMO
        insns: list[tuple[int, object]] = []
        term: tuple[int, object] | None = None
        last = len(key) - 1
        for i, word in enumerate(key):
            ins = memo.get(word)
            if ins is None:
                ins = decode(word)
                memo[word] = ins
            if i == last and ins.op in _SB_TERM_OPS:
                term = (4 * i, ins)
            else:
                insns.append((4 * i, ins))
        return insns, term

    def _jit_for_key(self, key: tuple[int, ...], pc: int
                     ) -> Callable[[int], int]:
        """Bind the JIT-tier function for a content key: per-CPU cache,
        then the in-process compiled cache, then the persistent
        artifact store, then (cold) codegen + store."""
        jfn = self._sb_jit_fns.get(key)
        if jfn is not None:
            return jfn
        js = self.jit_stats
        cache_key = (self._sb_cost_tag, self.image_tag, key)
        cached = _SB_JIT_COMPILED.get(cache_key)
        kind = None
        if cached is not None:
            js.jit_mem_hits += 1
        else:
            digest = jitcache.artifact_key(self._sb_cost_sig, key,
                                           self.image_tag)
            cached = jitcache.load(digest)
            if cached is not None:
                js.jit_disk_hits += 1
                kind = "jit_load"
            else:
                insns, term = self._insns_for_key(key)
                cached = jit_codegen(self.costs.op_cycles, insns, term)
                js.jit_codegen += 1
                kind = "jit_compile"
                if jitcache.store(digest, *cached):
                    js.jit_disk_stores += 1
            _SB_JIT_COMPILED[cache_key] = cached
        jfn = _bind_superblock(self, cached[0], cached[1])
        self._sb_jit_fns[key] = jfn
        js.jit_blocks += 1
        js.jit_instructions += len(key)
        if kind is not None and self.trace_hook is not None:
            self.trace_hook(kind, pc, len(key))
        return jfn

    def superblock_info(self, pc: int) -> list[dict]:
        """Describe every live block whose span covers *pc* (for
        ``repro debug --dump-superblock``): start/end, tier
        ("jit"/"closure"/"single"), instruction count, hotness count
        (None when untracked, e.g. jit="all") and generated source."""
        span_get = self._block_span.get
        starts = sorted(
            s for s in self._block_cover.get(pc >> _COVER_SHIFT, ())
            if s <= pc < span_get(s, s + 4))
        out: list[dict] = []
        for start in starts:
            end = self._block_span.get(start, start + 4)
            key = self._block_key.get(start)
            if key is None:
                out.append({"start": start, "end": end, "tier": "single",
                            "instructions": (end - start) // 4,
                            "hits": None, "source": None, "words": None})
                continue
            jit = key in self._sb_jit_fns
            cached = (_SB_JIT_COMPILED.get(
                          (self._sb_cost_tag, self.image_tag, key))
                      if jit else
                      _SB_COMPILED_CACHE.get((self._sb_cost_tag, key)))
            cell = self._sb_counts.get(key)
            out.append({
                "start": start, "end": end,
                "tier": "jit" if jit else "closure",
                "instructions": len(key),
                "hits": cell[0] if cell is not None else None,
                "source": cached[2] if cached is not None else None,
                "words": list(key),
            })
        return out

    def superblock_census(self, top: int = 10) -> dict:
        """Tier counts + hottest blocks over every live superblock.

        The ops plane's ``/inspect/superblocks`` snapshot: how many
        live blocks run at each interpreter tier
        ("jit"/"closure"/"single"), the JIT policy knobs, and the
        *top* hottest tracked blocks by hotness-cell count.  Read-only
        over the dispatch tables; hotness cells are None when
        untracked (``jit="all"`` promotes eagerly and keeps no
        counts).
        """
        tiers = {"jit": 0, "closure": 0, "single": 0}
        entries: list[tuple[int, int, str, int, int | None]] = []
        jit_fns = self._sb_jit_fns
        key_get = self._block_key.get
        span_get = self._block_span.get
        count_get = self._sb_counts.get
        for start in list(self._blocks):
            key = key_get(start)
            if key is None:
                tiers["single"] += 1
                continue
            tier = "jit" if key in jit_fns else "closure"
            tiers[tier] += 1
            cell = count_get(key)
            entries.append((start, span_get(start, start + 4), tier,
                            len(key), cell[0] if cell else None))
        entries.sort(key=lambda e: -1 if e[4] is None else e[4],
                     reverse=True)
        return {
            "blocks": tiers["jit"] + tiers["closure"] + tiers["single"],
            "tiers": tiers,
            "jit_mode": self.jit,
            "jit_threshold": self.jit_threshold,
            "jit_codegen": self.jit_stats.jit_codegen,
            "jit_promotions": self.jit_stats.jit_promotions,
            "hottest": [
                {"start": s, "end": e, "tier": t, "instructions": n,
                 "hits": h}
                for s, e, t, n, h in entries[:top]],
        }

    # -- execution ---------------------------------------------------------

    def run(self, max_instructions: int = 2_000_000_000) -> int:
        """Run until HALT/exit; returns the exit code.

        Raises :class:`CycleLimitExceeded` once *max_instructions* have
        executed without halting (runaway-loop guard for tests).  The
        guard is exact at dispatch granularity: no new block is entered
        once the limit is reached, so a run can only exceed the cap by
        the tail of the final superblock (< ``FUSE_LIMIT``), and never
        at all with ``superblocks=False``.
        """
        if not self.superblocks:
            return self._run_per_instruction(max_instructions)
        lookup = self._blocks.get
        build = self._build_block
        stats = self.stats
        pc = self.pc
        try:
            while True:
                remaining = max_instructions - stats[0]
                if remaining <= 0:
                    self.pc = pc
                    raise CycleLimitExceeded(max_instructions)
                if remaining > _SAFE_MARGIN:
                    for _ in range(_CHUNK):
                        fn = lookup(pc)
                        if fn is None:
                            fn = build(pc)
                        pc = fn(pc)
                else:
                    while stats[0] < max_instructions:
                        fn = lookup(pc)
                        if fn is None:
                            fn = build(pc)
                        pc = fn(pc)
        except HaltExecution:
            self.pc = pc
        except Exception:
            fault_pc = self._fault_pc
            self._fault_pc = None
            self.pc = pc if fault_pc is None else fault_pc
            raise
        return self.exit_code if self.exit_code is not None else 0

    def _run_per_instruction(self, max_instructions: int) -> int:
        """Per-instruction dispatch loop (exact instruction cap)."""
        lookup = self._decoded.get
        decode_at = self._decode_at
        stats = self.stats
        pc = self.pc
        try:
            while True:
                remaining = max_instructions - stats[0]
                if remaining <= 0:
                    self.pc = pc
                    raise CycleLimitExceeded(max_instructions)
                for _ in range(_CHUNK if remaining > _CHUNK else remaining):
                    fn = lookup(pc)
                    if fn is None:
                        fn = decode_at(pc)
                    pc = fn(pc)
        except HaltExecution:
            self.pc = pc
        except Exception:
            self.pc = pc
            raise
        return self.exit_code if self.exit_code is not None else 0

    def run_traced(self, trace: array,
                   max_instructions: int = 2_000_000_000) -> int:
        """Like :meth:`run` but appends every executed pc to *trace*.

        *trace* should be ``array('I')``; it becomes the instruction
        fetch trace consumed by the hardware-cache simulator (Fig 6)
        and the block-trace extractor (Fig 7).  Always runs with
        per-instruction dispatch so the trace is complete, and enforces
        *max_instructions* exactly.
        """
        decoded = self._decoded
        decode_at = self._decode_at
        append = trace.append
        stats = self.stats
        pc = self.pc
        try:
            while True:
                remaining = max_instructions - stats[0]
                if remaining <= 0:
                    self.pc = pc
                    raise CycleLimitExceeded(max_instructions)
                for _ in range(_CHUNK if remaining > _CHUNK else remaining):
                    fn = decoded.get(pc)
                    if fn is None:
                        fn = decode_at(pc)
                    append(pc)
                    pc = fn(pc)
        except HaltExecution:
            self.pc = pc
        except Exception:
            self.pc = pc
            raise
        return self.exit_code if self.exit_code is not None else 0

    def step(self) -> None:
        """Execute exactly one instruction (debugger granularity)."""
        fn = self._decoded.get(self.pc)
        if fn is None:
            fn = self._decode_at(self.pc)
        try:
            self.pc = fn(self.pc)
        except HaltExecution:
            pass


# ---------------------------------------------------------------------------
# Closure factories, one per opcode.  Each returns ``fn(pc) -> next_pc``.
# The factories aggressively specialize: rd == zero becomes a pure nop
# with correct cost, constants are folded into the closure.
# ---------------------------------------------------------------------------

_Factory = Callable[["CPU", object, int], Callable[[int], int]]
_FACTORIES: dict[Op, _Factory] = {}


def _register(op: Op):
    def deco(fn: _Factory) -> _Factory:
        _FACTORIES[op] = fn
        return fn
    return deco


def _alu_factory(op: Op, compute):
    """Build a factory for a 3-register ALU op with semantics *compute*."""
    def factory(cpu: CPU, ins, pc: int):
        regs = cpu.regs
        st = cpu.stats
        cost = cpu.costs.op_cycles[op]
        rd, rs1, rs2 = ins.rd, ins.rs1, ins.rs2
        if rd == 0:
            def ex(pc: int) -> int:
                st[0] += 1
                st[1] += cost
                return pc + 4
            return ex

        def ex(pc: int) -> int:
            st[0] += 1
            st[1] += cost
            regs[rd] = compute(regs[rs1], regs[rs2])
            return pc + 4
        return ex
    _FACTORIES[op] = factory
    return factory


_alu_factory(Op.ADD, lambda a, b: (a + b) & MASK32)
_alu_factory(Op.SUB, lambda a, b: (a - b) & MASK32)
_alu_factory(Op.AND, lambda a, b: a & b)
_alu_factory(Op.OR, lambda a, b: a | b)
_alu_factory(Op.XOR, lambda a, b: a ^ b)
_alu_factory(Op.NOR, lambda a, b: ~(a | b) & MASK32)
_alu_factory(Op.SLT,
             lambda a, b: 1 if (a ^ _SIGN_FLIP) < (b ^ _SIGN_FLIP) else 0)
_alu_factory(Op.SLTU, lambda a, b: 1 if a < b else 0)
_alu_factory(Op.SLL, lambda a, b: (a << (b & 31)) & MASK32)
_alu_factory(Op.SRL, lambda a, b: a >> (b & 31))
_alu_factory(Op.SRA,
             lambda a, b: (to_signed32(a) >> (b & 31)) & MASK32)
_alu_factory(Op.MUL, lambda a, b: (a * b) & MASK32)
_alu_factory(Op.DIV, _sdiv)
_alu_factory(Op.REM, _srem)


def _alui_factory(op: Op, compute):
    """Factory builder for register-immediate ALU ops."""
    def factory(cpu: CPU, ins, pc: int):
        regs = cpu.regs
        st = cpu.stats
        cost = cpu.costs.op_cycles[op]
        rd, rs1, imm = ins.rd, ins.rs1, ins.imm
        if rd == 0:
            def ex(pc: int) -> int:
                st[0] += 1
                st[1] += cost
                return pc + 4
            return ex

        def ex(pc: int) -> int:
            st[0] += 1
            st[1] += cost
            regs[rd] = compute(regs[rs1], imm)
            return pc + 4
        return ex
    _FACTORIES[op] = factory
    return factory


_alui_factory(Op.ADDI, lambda a, i: (a + i) & MASK32)
_alui_factory(Op.ANDI, lambda a, i: a & i)
_alui_factory(Op.ORI, lambda a, i: a | i)
_alui_factory(Op.XORI, lambda a, i: a ^ i)
_alui_factory(Op.SLTI,
              lambda a, i: 1 if (a ^ _SIGN_FLIP) < ((i & MASK32) ^ _SIGN_FLIP)
              else 0)
_alui_factory(Op.SLTIU, lambda a, i: 1 if a < i else 0)
_alui_factory(Op.SLLI, lambda a, i: (a << (i & 31)) & MASK32)
_alui_factory(Op.SRLI, lambda a, i: a >> (i & 31))
_alui_factory(Op.SRAI, lambda a, i: (to_signed32(a) >> (i & 31)) & MASK32)


@_register(Op.LUI)
def _f_lui(cpu: CPU, ins, pc: int):
    # LUI ignores rs1: specialize to a pure constant store instead of
    # the generic register-immediate closure (which would read a source
    # register it never uses).
    regs = cpu.regs
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.LUI]
    rd = ins.rd
    value = (ins.imm << 16) & MASK32
    if rd == 0:
        def ex(pc: int) -> int:
            st[0] += 1
            st[1] += cost
            return pc + 4
        return ex

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        regs[rd] = value
        return pc + 4
    return ex


def _load_factory(op: Op, reader_name: str, sign_bits: int | None):
    def factory(cpu: CPU, ins, pc: int):
        regs = cpu.regs
        st = cpu.stats
        mem = cpu.mem
        cost = cpu.costs.op_cycles[op]
        rd, rs1, imm = ins.rd, ins.rs1, ins.imm
        read = getattr(mem, reader_name)
        if sign_bits is None:
            def ex(pc: int) -> int:
                st[0] += 1
                st[1] += cost
                value = read((regs[rs1] + imm) & MASK32)
                if rd:
                    regs[rd] = value
                return pc + 4
        else:
            flip = 1 << (sign_bits - 1)
            wrap = 1 << sign_bits

            def ex(pc: int) -> int:
                st[0] += 1
                st[1] += cost
                value = read((regs[rs1] + imm) & MASK32)
                if value & flip:
                    value = (value - wrap) & MASK32
                if rd:
                    regs[rd] = value
                return pc + 4
        return ex
    _FACTORIES[op] = factory


_load_factory(Op.LW, "read_word", None)
_load_factory(Op.LH, "read_half", 16)
_load_factory(Op.LHU, "read_half", None)
_load_factory(Op.LB, "read_byte", 8)
_load_factory(Op.LBU, "read_byte", None)


def _store_factory(op: Op, writer_name: str):
    def factory(cpu: CPU, ins, pc: int):
        regs = cpu.regs
        st = cpu.stats
        mem = cpu.mem
        cost = cpu.costs.op_cycles[op]
        rd, rs1, imm = ins.rd, ins.rs1, ins.imm
        write = getattr(mem, writer_name)

        def ex(pc: int) -> int:
            st[0] += 1
            st[1] += cost
            write((regs[rs1] + imm) & MASK32, regs[rd])
            return pc + 4
        return ex
    _FACTORIES[op] = factory


_store_factory(Op.SW, "write_word")
_store_factory(Op.SH, "write_half")
_store_factory(Op.SB, "write_byte")


def _branch_factory(op: Op, test):
    def factory(cpu: CPU, ins, pc: int):
        regs = cpu.regs
        st = cpu.stats
        cost = cpu.costs.op_cycles[op]
        rs1, rs2 = ins.rs1, ins.rs2
        taken = pc + 4 + (ins.imm << 2)
        fallthrough = pc + 4

        def ex(pc: int) -> int:
            st[0] += 1
            st[1] += cost
            return taken if test(regs[rs1], regs[rs2]) else fallthrough
        return ex
    _FACTORIES[op] = factory


_branch_factory(Op.BEQ, lambda a, b: a == b)
_branch_factory(Op.BNE, lambda a, b: a != b)
_branch_factory(Op.BLT, lambda a, b: (a ^ _SIGN_FLIP) < (b ^ _SIGN_FLIP))
_branch_factory(Op.BGE, lambda a, b: (a ^ _SIGN_FLIP) >= (b ^ _SIGN_FLIP))
_branch_factory(Op.BLTU, lambda a, b: a < b)
_branch_factory(Op.BGEU, lambda a, b: a >= b)


@_register(Op.J)
def _f_j(cpu: CPU, ins, pc: int):
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.J]
    target = ins.imm << 2

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        return target
    return ex


@_register(Op.JAL)
def _f_jal(cpu: CPU, ins, pc: int):
    regs = cpu.regs
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.JAL]
    target = ins.imm << 2
    link = pc + 4

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        regs[RA] = link
        return target
    return ex


@_register(Op.JR)
def _f_jr(cpu: CPU, ins, pc: int):
    regs = cpu.regs
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.JR]
    rs1 = ins.rs1

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        return regs[rs1]
    return ex


@_register(Op.JALR)
def _f_jalr(cpu: CPU, ins, pc: int):
    regs = cpu.regs
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.JALR]
    rd, rs1 = ins.rd, ins.rs1
    link = pc + 4

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        target = regs[rs1]
        if rd:
            regs[rd] = link
        return target
    return ex


@_register(Op.RET)
def _f_ret(cpu: CPU, ins, pc: int):
    regs = cpu.regs
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.RET]

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        return regs[RA]
    return ex


@_register(Op.TRAP)
def _f_trap(cpu: CPU, ins, pc: int):
    st = cpu.stats
    code, operand = ins.rd, ins.imm

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += 1
        hook = cpu.trap_hook
        if hook is None:
            raise SimError(
                f"TRAP {Trap(code).name if code in Trap._value2member_map_ else code} "
                f"at pc={pc:#x} with no handler installed")
        return hook(cpu, code, operand, pc)
    return ex


@_register(Op.SYSCALL)
def _f_syscall(cpu: CPU, ins, pc: int):
    st = cpu.stats
    service = ins.imm

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += 1
        hook = cpu.sys_hook
        if hook is None:
            raise SimError(f"SYSCALL {service} with no handler installed")
        return hook(cpu, service, pc)
    return ex


@_register(Op.BREAK)
def _f_break(cpu: CPU, ins, pc: int):
    code = ins.imm

    def ex(pc: int) -> int:
        raise BreakHit(pc, code)
    return ex


@_register(Op.HALT)
def _f_halt(cpu: CPU, ins, pc: int):
    def ex(pc: int) -> int:
        cpu.stats[0] += 1
        cpu.stats[1] += 1
        cpu.halt(cpu.exit_code if cpu.exit_code is not None else 0)
        return pc  # pragma: no cover - halt() raises
    return ex


# ---------------------------------------------------------------------------
# Superblock compiler.  A straight-line run of simple instructions (ALU,
# loads, stores) plus an optional fused control-transfer terminator is
# compiled into ONE Python function executing the whole block per
# dispatch.  Stats are batched into a single update at the block end;
# if a memory access faults mid-block, the except handler maps the
# traceback line back to the faulting instruction and commits exactly
# the per-instruction counts for the executed prefix (including the
# faulting op), so a mid-block MemoryFault is indistinguishable from
# per-instruction execution.  All addresses are emitted relative to the
# entry pc, so blocks with identical instruction content share one
# compiled code object through ``_SB_CODE_CACHE`` — retranslation under
# tcache thrashing never pays the compile cost twice.
# ---------------------------------------------------------------------------

_M = "4294967295"       # MASK32 literal
_S = "2147483648"       # sign-flip literal

_SB_CODE_CACHE: dict[str, object] = {}

#: (cost tag, word tuple) -> (code object, fault-fixup table, source)
#: for the closure tier.  Lets a fresh CPU (new benchmark round, new
#: client system) skip source generation entirely for content it has
#: seen under the same cost model; only the per-CPU ``exec`` binding
#: runs.
_SB_COMPILED_CACHE: dict[tuple, tuple[object, dict, str]] = {}

#: Same idea for the JIT tier: (cost tag, image tag, word tuple) -> the
#: ``(code, fixups, src)`` triple produced by :func:`jit_codegen` (or
#: loaded from the persistent store in :mod:`repro.sim.jitcache`).
_SB_JIT_COMPILED: dict[tuple, tuple[object, dict, str]] = {}

#: Cost-table signature -> small interned tag (see CPU._sb_cost_tag).
_COST_TAGS: dict[tuple, int] = {}


def _sb_term_lines(ins, off: int) -> list[str]:
    """Statement lines for a fused terminator at block offset *off*."""
    op = ins.op
    if op in _SB_BRANCH_COND:
        taken = off + 4 + (ins.imm << 2)
        fall = off + 4
        cond = _SB_BRANCH_COND[op](f"r[{ins.rs1}]", f"r[{ins.rs2}]")
        return [f"return pc + {taken} if {cond} else pc + {fall}"]
    if op is Op.J:
        return [f"return {ins.imm << 2}"]
    if op is Op.JAL:
        return [f"r[{RA}] = pc + {off + 4}", f"return {ins.imm << 2}"]
    if op is Op.JR:
        return [f"return r[{ins.rs1}]"]
    if op is Op.JALR:
        if ins.rd:
            return [f"v = r[{ins.rs1}]",
                    f"r[{ins.rd}] = pc + {off + 4}",
                    "return v"]
        return [f"return r[{ins.rs1}]"]
    if op is Op.RET:
        return [f"return r[{RA}]"]
    raise AssertionError(op)  # pragma: no cover


def _compile_superblock(cpu: CPU, start: int, insns, term, key=None):
    """Generate, compile and bind the superblock closure for *insns*
    (list of ``(addr, Insn)``) with optional fused terminator *term*.

    With *key* (the raw word tuple) the generated code object and its
    fault-fixup table are reused from :data:`_SB_COMPILED_CACHE`
    across CPUs sharing a cost table; only the ``exec`` that binds
    this CPU's registers/stats/memory runs per CPU.
    """
    cache_key = (cpu._sb_cost_tag, key) if key is not None else None
    cached = (_SB_COMPILED_CACHE.get(cache_key)
              if cache_key is not None else None)
    if cached is None:
        cached = _sb_codegen(cpu.costs.op_cycles, start, insns, term)
        if cache_key is not None:
            _SB_COMPILED_CACHE[cache_key] = cached
    code, fixups, _src = cached
    return _bind_superblock(cpu, code, fixups)


def _bind_superblock(cpu: CPU, code, fixups):
    """``exec`` a generated superblock code object against this CPU's
    registers/stats/memory and return the bound function.  Shared by
    the closure tier and the JIT tier (both templates draw from the
    same namespace of default-argument bindings).

    The namespace dict is built once per CPU and reused for every
    bind: generated functions capture their bindings as default
    arguments at ``exec`` time, so mutating ``_F`` between binds
    cannot affect already-bound blocks."""
    ns = cpu._sb_exec_ns
    if ns is None:
        mem = cpu.mem
        # the JIT template's inline memory fast path binds one region:
        # the largest plain-RAM mapping (readable, writable, never
        # executable — so in-bounds stores cannot rewrite code and the
        # views can be indexed without permission checks).  Everything
        # else takes the accessor slow path.  With no candidate, the
        # empty interval [1, 0) routes every access to the accessors.
        fast = None
        for region in mem.regions:
            if (region.readable and region.writable
                    and not region.executable
                    and region.view32 is not None
                    and region.view16 is not None
                    and (fast is None or region.size > fast.size)):
                fast = region
        ns = cpu._sb_exec_ns = {
            "_r": cpu.regs, "_st": cpu.stats, "_cw": cpu._code_gen,
            "_C": cpu, "_F": fixups, "_rw": mem.read_word,
            "_rh": mem.read_half, "_rb": mem.read_byte,
            "_ww": mem.write_word, "_wh": mem.write_half,
            "_wb": mem.write_byte, "_sgn": to_signed32, "_sdiv": _sdiv,
            "_srem": _srem,
            "_fB": fast.base if fast else 1,
            "_fE": fast.end_addr if fast else 0,
            "_fV": fast.view32 if fast else None,
            "_fH": fast.view16 if fast else None,
            "_fBUF": fast.buf if fast else None,
        }
    else:
        ns["_F"] = fixups
    exec(code, ns)
    return ns["_sb"]


def _sb_codegen(costs, start: int, insns, term):
    """Generate (code object, fixup table, source) for one superblock
    in the closure-tier template (registers stay in ``r[...]``)."""
    body: list[str] = []
    used: set[str] = set()
    has_mem = False
    has_store = False
    tot_n = 0
    tot_c = 0
    #: (body line index, block offset, counts incl. that op) per mem op.
    mem_marks: list[tuple[int, int, int, int]] = []

    for addr, ins in insns:
        op = ins.op
        off = addr - start
        tot_n += 1
        tot_c += costs[op]
        if op in _SB_LOADS:
            reader, sign_bits = _SB_LOADS[op]
            used.add(reader)
            has_mem = True
            addr_expr = f"(r[{ins.rs1}] + ({ins.imm})) & {_M}"
            rd = ins.rd
            mem_marks.append((len(body), off, tot_n, tot_c))
            if rd == 0:
                # read for fault semantics, discard the value
                body.append(f"{reader}({addr_expr})")
            elif sign_bits is None:
                body.append(f"r[{rd}] = {reader}({addr_expr})")
            else:
                flip = 1 << (sign_bits - 1)
                wrap = 1 << sign_bits
                body.append(f"v = {reader}({addr_expr})")
                body.append(
                    f"r[{rd}] = (v - {wrap}) & {_M} if v & {flip} else v")
        elif op in _SB_STORES:
            writer = _SB_STORES[op]
            used.add(writer)
            has_mem = True
            has_store = True
            mem_marks.append((len(body), off, tot_n, tot_c))
            body.append(f"{writer}((r[{ins.rs1}] + ({ins.imm})) & {_M}, "
                        f"r[{ins.rd}])")
            # the store may have rewritten code (even this block):
            # commit the executed prefix and fall back to fresh dispatch
            # so patched words take effect exactly as they would under
            # per-instruction decode
            body.append(f"if cw[0] != g: st[0] += {tot_n}; "
                        f"st[1] += {tot_c}; return pc + {off + 4}")
        else:
            if op in _SB_ALU_R:
                expr = _SB_ALU_R[op](f"r[{ins.rs1}]", f"r[{ins.rs2}]")
                used.update(_SB_ALU_R_HELPERS.get(op, ()))
            else:
                expr = _sb_alu_i_expr(ins, f"r[{ins.rs1}]")
                if op is Op.SRAI:
                    used.add("sgn")
            if ins.rd:
                body.append(f"r[{ins.rd}] = {expr}")

    if term is not None:
        taddr, tins = term
        tot_n += 1
        tot_c += costs[tins.op]
        body.append(f"st[0] += {tot_n}; st[1] += {tot_c}")
        body.extend(_sb_term_lines(tins, taddr - start))
    else:
        body.append(f"st[0] += {tot_n}; st[1] += {tot_c}")
        body.append(f"return pc + {insns[-1][0] + 4 - start}")

    params = ["pc", "r=_r", "st=_st"]
    if has_store:
        params.append("cw=_cw")
    if has_mem:
        params.append("C=_C")
        params.append("F=_F")
    for name in ("rw", "rh", "rb", "ww", "wh", "wb",
                 "sgn", "sdiv", "srem"):
        if name in used:
            params.append(f"{name}=_{name}")
    lines = [f"def _sb({', '.join(params)}):"]
    fixups: dict[int, tuple[int, int, int]] = {}
    if has_mem:
        if has_store:
            lines.append("    g = cw[0]")
        lines.append("    try:")
        lines.extend("        " + stmt for stmt in body)
        lines.append("    except Exception as e:")
        lines.append("        f = F.get(e.__traceback__.tb_lineno)")
        lines.append("        if f is not None:")
        lines.append("            st[0] += f[1]; st[1] += f[2]")
        lines.append("            C._fault_pc = pc + f[0]")
        lines.append("        raise")
        # body line i sits at source line i + base (def line, optional
        # generation snapshot, try:, then 1-based numbering)
        base = 3 + (1 if has_store else 0)
        fixups = {i + base: (off, n, c) for i, off, n, c in mem_marks}
    else:
        lines.extend("    " + stmt for stmt in body)
    src = "\n".join(lines) + "\n"

    code = _SB_CODE_CACHE.get(src)
    if code is None:
        code = compile(src, "<superblock>", "exec")
        _SB_CODE_CACHE[src] = code
    return code, fixups, src
