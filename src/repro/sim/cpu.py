"""The repro RISC CPU: a closure-caching interpreter.

Each instruction word is decoded once into a specialized Python closure
stored in a per-address decode cache; the run loop is then just
``pc = closure(pc)``.  Writes into executable regions (i.e. dynamic
binary rewriting by the SoftCache) invalidate the affected decode-cache
entries, so patched branch words take effect exactly like they would on
real hardware with coherent fetch.

The CPU knows nothing about caching.  The SoftCache hooks in through
two narrow interfaces:

* ``trap_hook(cpu, code, operand, pc) -> next_pc`` — invoked by TRAP
  instructions (miss stubs, dcache ops);
* the executable-region permissions — in SoftCache mode only local RAM
  is executable, so any escape from the translation cache raises
  :class:`~repro.sim.errors.FetchFault` instead of silently running
  untranslated code.

Cycle accounting: every closure bumps an (instruction, cycle) stats
cell; runtime components charge additional cycles through
:meth:`CPU.add_cycles`.
"""

from __future__ import annotations

from array import array
from typing import Callable

from ..isa import Op, Trap, decode, to_signed32
from ..isa.registers import RA
from .costs import DEFAULT_COSTS, CostModel
from .errors import (
    BreakHit,
    CycleLimitExceeded,
    FetchFault,
    IllegalInstruction,
    SimError,
)
from .memory import Memory

MASK32 = 0xFFFFFFFF
_SIGN_FLIP = 0x80000000


class HaltExecution(Exception):
    """Raised internally to unwind the run loop on HALT/exit."""


TrapHook = Callable[["CPU", int, int, int], int]
SysHook = Callable[["CPU", int, int], int]


class CPU:
    """A single in-order core executing the repro ISA."""

    def __init__(self, memory: Memory, costs: CostModel = DEFAULT_COSTS):
        self.mem = memory
        self.costs = costs
        self.regs: list[int] = [0] * 32
        self.pc = 0
        self.exit_code: int | None = None
        #: [instructions executed, cycles consumed]
        self.stats = [0, 0]
        self.trap_hook: TrapHook | None = None
        self.sys_hook: SysHook | None = None
        self._decoded: dict[int, Callable[[int], int]] = {}
        memory.code_write_hooks.append(self._invalidate_decoded)

    # -- public accounting ------------------------------------------------

    @property
    def icount(self) -> int:
        """Instructions executed so far."""
        return self.stats[0]

    @property
    def cycles(self) -> int:
        """Cycles consumed so far (instructions + runtime charges)."""
        return self.stats[1]

    def add_cycles(self, n: int) -> None:
        """Charge *n* runtime cycles (CC/MC work, link transfer time)."""
        self.stats[1] += n

    def halt(self, exit_code: int = 0) -> None:
        """Stop execution at the end of the current instruction."""
        self.exit_code = exit_code
        raise HaltExecution

    # -- register helpers (used by the SoftCache runtime) -----------------

    def get_reg(self, num: int) -> int:
        return self.regs[num]

    def set_reg(self, num: int, value: int) -> None:
        if num != 0:
            self.regs[num] = value & MASK32

    # -- decode cache -------------------------------------------------------

    def _invalidate_decoded(self, addr: int, length: int) -> None:
        decoded = self._decoded
        for a in range(addr & ~3, addr + length, 4):
            decoded.pop(a, None)

    def invalidate_all_decoded(self) -> None:
        """Drop every cached closure (tcache flush)."""
        self._decoded.clear()

    def _decode_at(self, pc: int) -> Callable[[int], int]:
        region = self.mem.region_at(pc)  # raises MemoryFault if unmapped
        if not region.executable:
            raise FetchFault(pc, f"region '{region.name}' not executable")
        if pc & 3:
            raise FetchFault(pc, "misaligned pc")
        off = pc - region.base
        word = int.from_bytes(region.buf[off:off + 4], "little")
        try:
            ins = decode(word)
        except Exception as exc:
            raise IllegalInstruction(pc, word) from exc
        factory = _FACTORIES.get(ins.op)
        if factory is None:  # pragma: no cover - table is exhaustive
            raise IllegalInstruction(pc, word)
        fn = factory(self, ins, pc)
        self._decoded[pc] = fn
        return fn

    # -- execution ---------------------------------------------------------

    def run(self, max_instructions: int = 2_000_000_000) -> int:
        """Run until HALT/exit; returns the exit code.

        Raises :class:`CycleLimitExceeded` if *max_instructions* is hit
        (runaway-loop guard for tests).
        """
        decoded = self._decoded
        decode_at = self._decode_at
        stats = self.stats
        pc = self.pc
        try:
            while True:
                for _ in range(16384):
                    fn = decoded.get(pc)
                    if fn is None:
                        fn = decode_at(pc)
                    pc = fn(pc)
                if stats[0] > max_instructions:
                    self.pc = pc
                    raise CycleLimitExceeded(max_instructions)
        except HaltExecution:
            self.pc = pc
        except Exception:
            self.pc = pc
            raise
        return self.exit_code if self.exit_code is not None else 0

    def run_traced(self, trace: array,
                   max_instructions: int = 2_000_000_000) -> int:
        """Like :meth:`run` but appends every executed pc to *trace*.

        *trace* should be ``array('I')``; it becomes the instruction
        fetch trace consumed by the hardware-cache simulator (Fig 6)
        and the block-trace extractor (Fig 7).
        """
        decoded = self._decoded
        decode_at = self._decode_at
        append = trace.append
        stats = self.stats
        pc = self.pc
        try:
            while True:
                for _ in range(16384):
                    fn = decoded.get(pc)
                    if fn is None:
                        fn = decode_at(pc)
                    append(pc)
                    pc = fn(pc)
                if stats[0] > max_instructions:
                    self.pc = pc
                    raise CycleLimitExceeded(max_instructions)
        except HaltExecution:
            self.pc = pc
        except Exception:
            self.pc = pc
            raise
        return self.exit_code if self.exit_code is not None else 0

    def step(self) -> None:
        """Execute exactly one instruction (debugger granularity)."""
        fn = self._decoded.get(self.pc)
        if fn is None:
            fn = self._decode_at(self.pc)
        try:
            self.pc = fn(self.pc)
        except HaltExecution:
            pass


# ---------------------------------------------------------------------------
# Closure factories, one per opcode.  Each returns ``fn(pc) -> next_pc``.
# The factories aggressively specialize: rd == zero becomes a pure nop
# with correct cost, constants are folded into the closure.
# ---------------------------------------------------------------------------

_Factory = Callable[["CPU", object, int], Callable[[int], int]]
_FACTORIES: dict[Op, _Factory] = {}


def _register(op: Op):
    def deco(fn: _Factory) -> _Factory:
        _FACTORIES[op] = fn
        return fn
    return deco


def _alu_factory(op: Op, compute):
    """Build a factory for a 3-register ALU op with semantics *compute*."""
    def factory(cpu: CPU, ins, pc: int):
        regs = cpu.regs
        st = cpu.stats
        cost = cpu.costs.op_cycles[op]
        rd, rs1, rs2 = ins.rd, ins.rs1, ins.rs2
        if rd == 0:
            def ex(pc: int) -> int:
                st[0] += 1
                st[1] += cost
                return pc + 4
            return ex

        def ex(pc: int) -> int:
            st[0] += 1
            st[1] += cost
            regs[rd] = compute(regs[rs1], regs[rs2])
            return pc + 4
        return ex
    _FACTORIES[op] = factory
    return factory


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        return MASK32  # divide by zero -> -1 (RISC-V convention)
    sa, sb = to_signed32(a), to_signed32(b)
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & MASK32


def _srem(a: int, b: int) -> int:
    if b == 0:
        return a
    sa, sb = to_signed32(a), to_signed32(b)
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & MASK32


_alu_factory(Op.ADD, lambda a, b: (a + b) & MASK32)
_alu_factory(Op.SUB, lambda a, b: (a - b) & MASK32)
_alu_factory(Op.AND, lambda a, b: a & b)
_alu_factory(Op.OR, lambda a, b: a | b)
_alu_factory(Op.XOR, lambda a, b: a ^ b)
_alu_factory(Op.NOR, lambda a, b: ~(a | b) & MASK32)
_alu_factory(Op.SLT,
             lambda a, b: 1 if (a ^ _SIGN_FLIP) < (b ^ _SIGN_FLIP) else 0)
_alu_factory(Op.SLTU, lambda a, b: 1 if a < b else 0)
_alu_factory(Op.SLL, lambda a, b: (a << (b & 31)) & MASK32)
_alu_factory(Op.SRL, lambda a, b: a >> (b & 31))
_alu_factory(Op.SRA,
             lambda a, b: (to_signed32(a) >> (b & 31)) & MASK32)
_alu_factory(Op.MUL, lambda a, b: (a * b) & MASK32)
_alu_factory(Op.DIV, _sdiv)
_alu_factory(Op.REM, _srem)


def _alui_factory(op: Op, compute):
    """Factory builder for register-immediate ALU ops."""
    def factory(cpu: CPU, ins, pc: int):
        regs = cpu.regs
        st = cpu.stats
        cost = cpu.costs.op_cycles[op]
        rd, rs1, imm = ins.rd, ins.rs1, ins.imm
        if rd == 0:
            def ex(pc: int) -> int:
                st[0] += 1
                st[1] += cost
                return pc + 4
            return ex

        def ex(pc: int) -> int:
            st[0] += 1
            st[1] += cost
            regs[rd] = compute(regs[rs1], imm)
            return pc + 4
        return ex
    _FACTORIES[op] = factory
    return factory


_alui_factory(Op.ADDI, lambda a, i: (a + i) & MASK32)
_alui_factory(Op.ANDI, lambda a, i: a & i)
_alui_factory(Op.ORI, lambda a, i: a | i)
_alui_factory(Op.XORI, lambda a, i: a ^ i)
_alui_factory(Op.SLTI,
              lambda a, i: 1 if (a ^ _SIGN_FLIP) < ((i & MASK32) ^ _SIGN_FLIP)
              else 0)
_alui_factory(Op.SLTIU, lambda a, i: 1 if a < i else 0)
_alui_factory(Op.SLLI, lambda a, i: (a << (i & 31)) & MASK32)
_alui_factory(Op.SRLI, lambda a, i: a >> (i & 31))
_alui_factory(Op.SRAI, lambda a, i: (to_signed32(a) >> (i & 31)) & MASK32)
_alui_factory(Op.LUI, lambda a, i: (i << 16) & MASK32)


def _load_factory(op: Op, reader_name: str, sign_bits: int | None):
    def factory(cpu: CPU, ins, pc: int):
        regs = cpu.regs
        st = cpu.stats
        mem = cpu.mem
        cost = cpu.costs.op_cycles[op]
        rd, rs1, imm = ins.rd, ins.rs1, ins.imm
        read = getattr(mem, reader_name)
        if sign_bits is None:
            def ex(pc: int) -> int:
                st[0] += 1
                st[1] += cost
                value = read((regs[rs1] + imm) & MASK32)
                if rd:
                    regs[rd] = value
                return pc + 4
        else:
            flip = 1 << (sign_bits - 1)
            wrap = 1 << sign_bits

            def ex(pc: int) -> int:
                st[0] += 1
                st[1] += cost
                value = read((regs[rs1] + imm) & MASK32)
                if value & flip:
                    value = (value - wrap) & MASK32
                if rd:
                    regs[rd] = value
                return pc + 4
        return ex
    _FACTORIES[op] = factory


_load_factory(Op.LW, "read_word", None)
_load_factory(Op.LH, "read_half", 16)
_load_factory(Op.LHU, "read_half", None)
_load_factory(Op.LB, "read_byte", 8)
_load_factory(Op.LBU, "read_byte", None)


def _store_factory(op: Op, writer_name: str):
    def factory(cpu: CPU, ins, pc: int):
        regs = cpu.regs
        st = cpu.stats
        mem = cpu.mem
        cost = cpu.costs.op_cycles[op]
        rd, rs1, imm = ins.rd, ins.rs1, ins.imm
        write = getattr(mem, writer_name)

        def ex(pc: int) -> int:
            st[0] += 1
            st[1] += cost
            write((regs[rs1] + imm) & MASK32, regs[rd])
            return pc + 4
        return ex
    _FACTORIES[op] = factory


_store_factory(Op.SW, "write_word")
_store_factory(Op.SH, "write_half")
_store_factory(Op.SB, "write_byte")


def _branch_factory(op: Op, test):
    def factory(cpu: CPU, ins, pc: int):
        regs = cpu.regs
        st = cpu.stats
        cost = cpu.costs.op_cycles[op]
        rs1, rs2 = ins.rs1, ins.rs2
        taken = pc + 4 + (ins.imm << 2)
        fallthrough = pc + 4

        def ex(pc: int) -> int:
            st[0] += 1
            st[1] += cost
            return taken if test(regs[rs1], regs[rs2]) else fallthrough
        return ex
    _FACTORIES[op] = factory


_branch_factory(Op.BEQ, lambda a, b: a == b)
_branch_factory(Op.BNE, lambda a, b: a != b)
_branch_factory(Op.BLT, lambda a, b: (a ^ _SIGN_FLIP) < (b ^ _SIGN_FLIP))
_branch_factory(Op.BGE, lambda a, b: (a ^ _SIGN_FLIP) >= (b ^ _SIGN_FLIP))
_branch_factory(Op.BLTU, lambda a, b: a < b)
_branch_factory(Op.BGEU, lambda a, b: a >= b)


@_register(Op.J)
def _f_j(cpu: CPU, ins, pc: int):
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.J]
    target = ins.imm << 2

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        return target
    return ex


@_register(Op.JAL)
def _f_jal(cpu: CPU, ins, pc: int):
    regs = cpu.regs
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.JAL]
    target = ins.imm << 2
    link = pc + 4

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        regs[RA] = link
        return target
    return ex


@_register(Op.JR)
def _f_jr(cpu: CPU, ins, pc: int):
    regs = cpu.regs
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.JR]
    rs1 = ins.rs1

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        return regs[rs1]
    return ex


@_register(Op.JALR)
def _f_jalr(cpu: CPU, ins, pc: int):
    regs = cpu.regs
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.JALR]
    rd, rs1 = ins.rd, ins.rs1
    link = pc + 4

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        target = regs[rs1]
        if rd:
            regs[rd] = link
        return target
    return ex


@_register(Op.RET)
def _f_ret(cpu: CPU, ins, pc: int):
    regs = cpu.regs
    st = cpu.stats
    cost = cpu.costs.op_cycles[Op.RET]

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += cost
        return regs[RA]
    return ex


@_register(Op.TRAP)
def _f_trap(cpu: CPU, ins, pc: int):
    st = cpu.stats
    code, operand = ins.rd, ins.imm

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += 1
        hook = cpu.trap_hook
        if hook is None:
            raise SimError(
                f"TRAP {Trap(code).name if code in Trap._value2member_map_ else code} "
                f"at pc={pc:#x} with no handler installed")
        return hook(cpu, code, operand, pc)
    return ex


@_register(Op.SYSCALL)
def _f_syscall(cpu: CPU, ins, pc: int):
    st = cpu.stats
    service = ins.imm

    def ex(pc: int) -> int:
        st[0] += 1
        st[1] += 1
        hook = cpu.sys_hook
        if hook is None:
            raise SimError(f"SYSCALL {service} with no handler installed")
        return hook(cpu, service, pc)
    return ex


@_register(Op.BREAK)
def _f_break(cpu: CPU, ins, pc: int):
    code = ins.imm

    def ex(pc: int) -> int:
        raise BreakHit(pc, code)
    return ex


@_register(Op.HALT)
def _f_halt(cpu: CPU, ins, pc: int):
    def ex(pc: int) -> int:
        cpu.stats[0] += 1
        cpu.stats[1] += 1
        cpu.halt(cpu.exit_code if cpu.exit_code is not None else 0)
        return pc  # pragma: no cover - halt() raises
    return ex
