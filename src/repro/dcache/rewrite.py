"""Data-access rewriting (Section 3 + Figure 10).

A post-pass over instruction chunks that the memory controller applies
in full-system mode:

* loads/stores whose base register is not ``sp``/``fp`` are rewritten
  into ``TRAP DC_LOAD/DC_STORE`` sites — the "mapping or tag check"
  sequence of §3, with the inline-sequence cost charged by the handler
  (Fig 10 bottom);
* the ``la``+load idiom addressing a *pinned* global scalar is
  specialized to materialize the object's permanent local address, so
  the access runs natively against local RAM with no check at all
  (Fig 10 top: "the constant address is known to be in-cache");
* procedure prologues (``addi sp, sp, -F`` at a procedure entry) and
  epilogues (``mv sp, fp``) become ``SC_ENTER``/``SC_EXIT`` stack-cache
  presence checks.

All rewrites are word-for-word, so chunk exit indices stay valid.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..asm.image import Image
from ..isa import Insn, Op, Trap, decode, encode
from ..isa.registers import FP, SP
from ..softcache.chunks import Chunk

_LOADS = {Op.LW: (4, True), Op.LH: (2, True), Op.LHU: (2, False),
          Op.LB: (1, True), Op.LBU: (1, False)}
_STORES = {Op.SW: 4, Op.SH: 2, Op.SB: 1}


@dataclass(frozen=True, slots=True)
class DCSite:
    """One rewritten data access site."""

    site_id: int
    is_store: bool
    width: int
    signed: bool
    rd: int       # data register (destination for loads, source for stores)
    rs1: int      # base register of the original access
    imm: int      # immediate offset


@dataclass(frozen=True, slots=True)
class SCSite:
    """One rewritten stack-cache presence-check site."""

    site_id: int
    is_exit: bool
    frame_size: int   # prologue: bytes the frame grows by; 0 for exits


@dataclass
class RewriteStats:
    data_sites: int = 0
    pinned_specializations: int = 0
    scache_sites: int = 0


class DataRewriter:
    """Shared (MC-side) rewriter state: site tables and pinned map."""

    def __init__(self, image: Image, pinned: dict[int, int] | None = None):
        """*pinned* maps original global addresses to permanent local
        addresses (built by the data-cache controller)."""
        self.image = image
        self.pinned = pinned or {}
        self.dc_sites: dict[int, DCSite] = {}
        self.sc_sites: dict[int, SCSite] = {}
        self._next_dc = 0
        self._next_sc = 0
        self.stats = RewriteStats()
        self._proc_entries = {p.addr for p in image.procs}

    # -- site allocation ----------------------------------------------------

    def _new_dc_site(self, **kw) -> DCSite:
        site = DCSite(site_id=self._next_dc, **kw)
        self._next_dc += 1
        self.dc_sites[site.site_id] = site
        self.stats.data_sites += 1
        return site

    def _new_sc_site(self, is_exit: bool, frame_size: int) -> SCSite:
        site = SCSite(site_id=self._next_sc, is_exit=is_exit,
                      frame_size=frame_size)
        self._next_sc += 1
        self.sc_sites[site.site_id] = site
        self.stats.scache_sites += 1
        return site

    # -- the transform ---------------------------------------------------------

    def transform(self, chunk: Chunk) -> Chunk:
        """Rewrite data accesses in *chunk*; returns a new Chunk."""
        words = list(chunk.words)
        exit_indices = {e.index for e in chunk.exits}
        #: registers currently holding a *local pinned* address
        #: (straight-line dataflow; control only enters at index 0)
        local_ptr: dict[int, bool] = {}
        #: value tracking for the lui/ori constant idiom
        lui_value: dict[int, int] = {}

        for i, word in enumerate(words):
            if i in exit_indices:
                local_ptr.clear()  # control may leave/re-enter
                lui_value.clear()
                continue
            ins = decode(word)
            op = ins.op
            if op is Op.LUI:
                lui_value[ins.rd] = (ins.imm << 16) & 0xFFFFFFFF
                local_ptr.pop(ins.rd, None)
                continue
            if op is Op.ORI and ins.rs1 == ins.rd and ins.rd in lui_value:
                addr = lui_value.pop(ins.rd) | ins.imm
                local_addr = self.pinned.get(addr)
                local_ptr.pop(ins.rd, None)
                if local_addr is not None:
                    # Fig 10 top: specialize to the in-cache address
                    words[i - 1] = encode(Insn(
                        Op.LUI, rd=ins.rd,
                        imm=(local_addr >> 16) & 0xFFFF))
                    words[i] = encode(Insn(
                        Op.ORI, rd=ins.rd, rs1=ins.rd,
                        imm=local_addr & 0xFFFF))
                    local_ptr[ins.rd] = True
                    self.stats.pinned_specializations += 1
                continue
            if op in _LOADS or op in _STORES:
                base = ins.rs1
                if base in (SP, FP):
                    continue  # stack access: scache guarantees presence
                if local_ptr.get(base):
                    continue  # specialized pinned access stays native
                if op in _LOADS:
                    width, signed = _LOADS[op]
                    site = self._new_dc_site(
                        is_store=False, width=width, signed=signed,
                        rd=ins.rd, rs1=base, imm=ins.imm)
                    words[i] = encode(Insn(Op.TRAP, rd=Trap.DC_LOAD,
                                           imm=site.site_id))
                else:
                    site = self._new_dc_site(
                        is_store=True, width=_STORES[op], signed=False,
                        rd=ins.rd, rs1=base, imm=ins.imm)
                    words[i] = encode(Insn(Op.TRAP, rd=Trap.DC_STORE,
                                           imm=site.site_id))
                local_ptr.clear()
                lui_value.clear()
                continue
            # prologue / epilogue -> stack-cache checks.  A prologue's
            # frame-allocating addi is always the first word of a chunk
            # whose origin is a procedure entry (compiler idiom), which
            # holds for every chunker including EBB gluing.
            if (op is Op.ADDI and ins.rd == SP and ins.rs1 == SP
                    and ins.imm < 0 and i == 0
                    and chunk.orig in self._proc_entries):
                site = self._new_sc_site(is_exit=False,
                                         frame_size=-ins.imm)
                words[i] = encode(Insn(Op.TRAP, rd=Trap.SC_ENTER,
                                       imm=site.site_id))
            elif (op is Op.ADD and ins.rd == SP and ins.rs1 == FP
                    and ins.rs2 == 0):
                site = self._new_sc_site(is_exit=True, frame_size=0)
                words[i] = encode(Insn(Op.TRAP, rd=Trap.SC_EXIT,
                                       imm=site.site_id))
            # any write to a tracked register invalidates its state
            if ins.op is not Op.TRAP:
                written = _written_reg(ins)
                if written is not None:
                    local_ptr.pop(written, None)
                    lui_value.pop(written, None)

        return Chunk(orig=chunk.orig, words=tuple(words),
                     exits=chunk.exits, orig_size=chunk.orig_size,
                     extra_words=chunk.extra_words, term=chunk.term,
                     name=chunk.name)


def _written_reg(ins: Insn) -> int | None:
    op = ins.op
    if op in _STORES or op.name.startswith("B") or op in (
            Op.J, Op.JR, Op.RET, Op.TRAP, Op.SYSCALL, Op.HALT,
            Op.BREAK):
        return None
    return ins.rd if ins.rd else None
