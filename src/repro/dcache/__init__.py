"""repro.dcache — the Section-3 software data cache.

Implements the paper's D-cache *paper design*: load/store rewriting
(:class:`DataRewriter`, Fig 10), pinned constant-address globals, a
stack cache with entry/exit presence checks, and a fully associative
predicted dcache with slow-hit binary search
(:class:`SoftDataCache`).  Enable it through
``SoftCacheConfig(data_cache=DataCacheConfig(...))``.
"""

from .dcache import DataCacheConfig, DataCacheStats, SoftDataCache
from .rewrite import DataRewriter, DCSite, RewriteStats, SCSite

__all__ = [
    "DCSite", "DataCacheConfig", "DataCacheStats", "DataRewriter",
    "RewriteStats", "SCSite", "SoftDataCache",
]
