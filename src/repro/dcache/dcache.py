"""The software data cache (Section 3): scache + predicted dcache.

Design mirrors §3.1 exactly:

* local memory is statically divided into **pinned globals** (the
  specialized constant-address scalars of Fig 10 top), a **stack
  cache** (circular buffer of frames with presence checks at procedure
  entry/exit, spilling whole frames to the server when it overflows),
  and a **fully associative dcache** of fixed-size blocks kept with
  their tags in sorted order;
* a data access first checks a per-site **prediction** (fast hit =
  Fig 10 bottom's inline sequence), then falls back to a **binary
  search** of the whole dcache — a *slow hit*, whose worst-case cost
  is the paper's guaranteed on-chip latency — and finally misses to
  the server over the link;
* dirty blocks write back on eviction.

Functionally the cache is real: the server's copy of the data segment
is only touched on refill/writeback, so coherence bugs would change
program results, and the test suite compares final memory images
against native runs.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

from ..sim.errors import MemoryFault

MASK32 = 0xFFFFFFFF


@dataclass(frozen=True)
class DataCacheConfig:
    """Sizing and policy of the software data cache."""

    dcache_size: int = 2048     # bytes of block storage
    block_size: int = 16
    scache_size: int = 512      # bytes of stack-frame cache
    pin_globals: bool = True    # pin 4-byte scalar globals locally
    max_pinned_bytes: int = 256
    prediction: str = "last"    # 'last' | 'stride' | 'none'
    #: record the dcache block-access sequence (feeds the §4
    #: multi-bank parallel-access analysis in repro.power)
    record_access_tags: bool = False

    def __post_init__(self):
        if self.block_size & (self.block_size - 1):
            raise ValueError("block size must be a power of two")
        if self.dcache_size % self.block_size:
            raise ValueError("dcache size must be a multiple of the "
                             "block size")
        if self.prediction not in ("last", "stride", "none"):
            raise ValueError(f"unknown prediction {self.prediction!r}")


@dataclass
class DataCacheStats:
    loads: int = 0
    stores: int = 0
    fast_hits: int = 0
    slow_hits: int = 0
    misses: int = 0
    writebacks: int = 0
    pinned_accesses: int = 0
    stack_accesses: int = 0
    scache_enters: int = 0
    scache_exits: int = 0
    scache_spills: int = 0
    scache_refills: int = 0
    worst_slow_hit_cycles: int = 0

    @property
    def accesses(self) -> int:
        return self.loads + self.stores

    @property
    def dcache_accesses(self) -> int:
        return self.fast_hits + self.slow_hits + self.misses

    def prediction_accuracy(self) -> float:
        hits = self.fast_hits + self.slow_hits
        return self.fast_hits / hits if hits else 0.0

    def slow_hit_guarantee_held(self) -> bool:
        """True if every on-chip access resolved without the server."""
        return self.misses == 0


class _Block:
    __slots__ = ("data", "dirty")

    def __init__(self, data: bytearray):
        self.data = data
        self.dirty = False


class SoftDataCache:
    """Client-side data-cache controller (plugs into the CC's traps)."""

    def __init__(self, machine, channel, costs,
                 config: DataCacheConfig, rewriter, local_base: int):
        self.machine = machine
        self.cpu = machine.cpu
        self.mem = machine.mem
        self.channel = channel
        self.costs = costs
        self.config = config
        self.rewriter = rewriter
        self.stats = DataCacheStats()
        self._data_region = machine.mem.region_named("data")
        self._stack_region = machine.mem.region_named("stack")
        self._local_region = machine.mem.region_named("local")
        # pinned area lives in local RAM at local_base
        self.pinned_base = local_base
        self.pinned: dict[int, int] = {}       # orig addr -> local addr
        self._pinned_spans: list[tuple[int, int]] = []
        self._build_pinned_map()
        rewriter.pinned = self.pinned
        # dcache block storage
        self.capacity = config.dcache_size // config.block_size
        self.blocks: OrderedDict[int, _Block] = OrderedDict()
        self._pred_tag: dict[int, int] = {}
        self._pred_stride: dict[int, int] = {}
        self._last_tag: dict[int, int] = {}
        # scache frame tracking: list of frame sizes, oldest first;
        # frames below `resident_from` have been spilled to the server
        self._frames: list[int] = []
        self._resident_from = 0
        #: dcache block-access sequence (when record_access_tags)
        self.access_tags: list[int] = []
        self._attach()

    # -- setup -----------------------------------------------------------

    def _build_pinned_map(self) -> None:
        if not self.config.pin_globals:
            return
        image = self.machine.image
        local = self.pinned_base
        budget = self.config.max_pinned_bytes
        for addr in sorted(image.data_object_sizes):
            size = image.data_object_sizes[addr]
            if size != 4 or budget < 4:
                continue
            self.pinned[addr] = local
            self._pinned_spans.append((addr, local))
            local += 4
            budget -= 4

    @property
    def pinned_bytes(self) -> int:
        return 4 * len(self.pinned)

    def _attach(self) -> None:
        # copy pinned values into local RAM
        buf = self._data_region.buf
        base = self._data_region.base
        for orig, local in self.pinned.items():
            off = orig - base
            self.mem.write_bytes(local, bytes(buf[off:off + 4]))
        # all other data access must come through the traps
        self._data_region.readable = False
        self._data_region.writable = False
        self.machine.coherent_reader = self.coherent_read_cstring

    def finalize(self) -> None:
        """Write everything back to the server copy (end of run)."""
        base = self._data_region.base
        buf = self._data_region.buf
        for tag, block in self.blocks.items():
            if block.dirty:
                start = tag * self.config.block_size - base
                buf[start:start + self.config.block_size] = block.data
                block.dirty = False
        for orig, local in self.pinned.items():
            buf[orig - base:orig - base + 4] = self.mem.read_bytes(
                local, 4)
        self._data_region.readable = True
        self._data_region.writable = True

    # -- trap handlers -----------------------------------------------------------

    def handle_dc(self, cpu, code: int, operand: int, pc: int) -> int:
        from ..isa import Trap
        site = self.rewriter.dc_sites[operand]
        regs = cpu.regs
        addr = (regs[site.rs1] + site.imm) & MASK32
        is_store = code == Trap.DC_STORE
        if is_store:
            self.stats.stores += 1
        else:
            self.stats.loads += 1
        stack = self._stack_region
        if stack.base <= addr < stack.end:
            # scache guarantees residency for stack objects
            self.stats.stack_accesses += 1
            cpu.add_cycles(self.costs.scache_check_cycles)
            self._native_access(site, addr, is_store)
            return pc + 4
        local_addr = self._pinned_local(addr)
        if local_addr is not None:
            self.stats.pinned_accesses += 1
            cpu.add_cycles(self.costs.dcache_hit_cycles)
            self._native_access(site, local_addr, is_store)
            return pc + 4
        self._dcache_access(site, addr, is_store)
        return pc + 4

    def handle_sc(self, cpu, code: int, operand: int, pc: int) -> int:
        from ..isa import Trap
        site = self.rewriter.sc_sites[operand]
        cpu.add_cycles(self.costs.scache_check_cycles)
        regs = cpu.regs
        if code == Trap.SC_ENTER:
            self.stats.scache_enters += 1
            regs[2] = (regs[2] - site.frame_size) & MASK32  # sp -= F
            self._frames.append(site.frame_size)
            self._spill_if_needed()
        else:
            self.stats.scache_exits += 1
            regs[2] = regs[3]  # sp = fp
            if self._frames:
                self._frames.pop()
            if self._resident_from > len(self._frames):
                self._resident_from = len(self._frames)
            if self._frames and self._resident_from == len(self._frames):
                # the caller's frame was spilled: bring it back
                self._refill_frame()
        return pc + 4

    # -- scache internals ------------------------------------------------------------

    def _resident_bytes(self) -> int:
        return sum(self._frames[self._resident_from:])

    def _spill_if_needed(self) -> None:
        while (self._resident_bytes() > self.config.scache_size
               and self._resident_from < len(self._frames) - 1):
            spilled = self._frames[self._resident_from]
            self._resident_from += 1
            self.stats.scache_spills += 1
            self.cpu.add_cycles(int(
                self.channel.send("stack_spill", spilled)
                * self.costs.cpu_hz))

    def _refill_frame(self) -> None:
        if self._resident_from > 0:
            self._resident_from -= 1
            size = self._frames[self._resident_from]
            self.stats.scache_refills += 1
            self.cpu.add_cycles(int(
                self.channel.exchange("stack_refill", size)
                * self.costs.cpu_hz))

    # -- pinned ------------------------------------------------------------------------

    def _pinned_local(self, addr: int) -> int | None:
        entry = self.pinned.get(addr & ~3)
        if entry is None:
            return None
        return entry | (addr & 3)

    # -- dcache internals -----------------------------------------------------------------

    def _dcache_access(self, site, addr: int, is_store: bool) -> None:
        config = self.config
        tag = addr // config.block_size
        if config.record_access_tags:
            self.access_tags.append(tag)
        block = self.blocks.get(tag)
        predicted = self._predict(site.site_id)
        if block is not None and predicted == tag:
            self.stats.fast_hits += 1
            self.cpu.add_cycles(self.costs.dcache_hit_cycles)
        elif block is not None:
            # slow hit: binary search of the sorted tag array
            self.stats.slow_hits += 1
            steps = max(1, math.ceil(math.log2(len(self.blocks) + 1)))
            cost = (self.costs.dcache_hit_cycles
                    + steps * self.costs.dcache_slow_hit_per_step_cycles)
            self.stats.worst_slow_hit_cycles = max(
                self.stats.worst_slow_hit_cycles, cost)
            self.cpu.add_cycles(cost)
        else:
            self.stats.misses += 1
            self.cpu.add_cycles(self.costs.dcache_hit_cycles
                                + self.costs.trap_overhead_cycles)
            block = self._refill(tag)
        self.blocks.move_to_end(tag)
        self._update_prediction(site.site_id, tag)
        offset = addr - tag * config.block_size
        self._block_access(site, block, offset, is_store)

    def _predict(self, site_id: int) -> int | None:
        mode = self.config.prediction
        if mode == "none":
            return None
        if mode == "last":
            return self._pred_tag.get(site_id)
        last = self._pred_tag.get(site_id)
        if last is None:
            return None
        return last + self._pred_stride.get(site_id, 0)

    def _update_prediction(self, site_id: int, tag: int) -> None:
        if self.config.prediction == "stride":
            last = self._pred_tag.get(site_id)
            if last is not None:
                self._pred_stride[site_id] = tag - last
        self._pred_tag[site_id] = tag

    def _refill(self, tag: int) -> _Block:
        config = self.config
        if len(self.blocks) >= self.capacity:
            victim_tag, victim = self.blocks.popitem(last=False)
            if victim.dirty:
                self.stats.writebacks += 1
                self._server_write(victim_tag * config.block_size,
                                   victim.data)
                self.cpu.add_cycles(int(
                    self.channel.send("data_wb", config.block_size)
                    * self.costs.cpu_hz))
        data = bytearray(self._server_read(tag * config.block_size,
                                           config.block_size))
        block = _Block(data)
        self.blocks[tag] = block
        self.cpu.add_cycles(int(
            self.channel.exchange("data", config.block_size)
            * self.costs.cpu_hz))
        return block

    def _server_read(self, addr: int, length: int) -> bytes:
        region = self._data_region
        if not (region.base <= addr and addr + length <= region.end):
            raise MemoryFault(addr, "data access outside data segment")
        off = addr - region.base
        return bytes(region.buf[off:off + length])

    def _server_write(self, addr: int, data: bytes) -> None:
        region = self._data_region
        off = addr - region.base
        region.buf[off:off + len(data)] = data

    def _block_access(self, site, block: _Block, offset: int,
                      is_store: bool) -> None:
        regs = self.cpu.regs
        width = site.width
        if is_store:
            value = regs[site.rd] & ((1 << (8 * width)) - 1)
            block.data[offset:offset + width] = value.to_bytes(
                width, "little")
            block.dirty = True
            return
        raw = int.from_bytes(block.data[offset:offset + width], "little")
        if site.signed and width < 4:
            sign = 1 << (8 * width - 1)
            if raw & sign:
                raw = (raw - (1 << (8 * width))) & MASK32
        if site.rd:
            regs[site.rd] = raw

    def _native_access(self, site, addr: int, is_store: bool) -> None:
        """Perform the access against directly mapped memory."""
        mem = self.mem
        regs = self.cpu.regs
        width = site.width
        if is_store:
            value = regs[site.rd]
            if width == 4:
                mem.write_word(addr, value)
            elif width == 2:
                mem.write_half(addr, value)
            else:
                mem.write_byte(addr, value)
            return
        if width == 4:
            raw = mem.read_word(addr)
        elif width == 2:
            raw = mem.read_half(addr)
        else:
            raw = mem.read_byte(addr)
        if site.signed and width < 4:
            sign = 1 << (8 * width - 1)
            if raw & sign:
                raw = (raw - (1 << (8 * width))) & MASK32
        if site.rd:
            regs[site.rd] = raw

    # -- coherent views for the OS layer -------------------------------------------

    def coherent_read_byte(self, addr: int) -> int:
        local = self._pinned_local(addr)
        if local is not None:
            return self.mem.read_byte(local)
        tag = addr // self.config.block_size
        block = self.blocks.get(tag)
        if block is not None:
            return block.data[addr - tag * self.config.block_size]
        region = self._data_region
        if region.base <= addr < region.end:
            return region.buf[addr - region.base]
        return self.mem.read_byte(addr)

    def coherent_read_cstring(self, addr: int, max_len: int = 4096) -> str:
        out = bytearray()
        for i in range(max_len):
            byte = self.coherent_read_byte(addr + i)
            if byte == 0:
                break
            out.append(byte)
        return out.decode("latin-1")

    # -- reporting ---------------------------------------------------------------------

    @property
    def local_bytes(self) -> dict[str, int]:
        return {
            "pinned": self.pinned_bytes,
            "dcache": self.config.dcache_size,
            "dcache_tags": 8 * self.capacity,  # sorted tag array
            "scache": self.config.scache_size,
        }

    def slow_hit_bound_cycles(self) -> int:
        """Analytic worst case: the §3 guaranteed on-chip latency."""
        steps = max(1, math.ceil(math.log2(self.capacity + 1)))
        return (self.costs.dcache_hit_cycles
                + steps * self.costs.dcache_slow_hit_per_step_cycles)
