"""Command-line interface: run workloads, profile, regenerate figures.

Examples::

    python -m repro workloads
    python -m repro run adpcm_enc --tcache 4096 --granularity ebb
    python -m repro run compress95 --native --scale 0.1
    python -m repro profile gzip --scale 0.1
    python -m repro disasm sensor --proc day_step
    python -m repro figures --only table1,fig7 --scale 0.15
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .isa import disassemble_range
from .net import LOCAL_LINK, LinkModel
from .profiling import profile_image
from .sim import run_native
from .softcache import SoftCacheConfig, SoftCacheSystem, policy_names
from .workloads import WORKLOADS, build_workload


def _softcache_config(args, recorder=None,
                      policy_params=None) -> SoftCacheConfig:
    """The SoftCacheConfig shared by run/trace/debug/fleet."""
    dcache_config = None
    if getattr(args, "dcache", 0):
        from .dcache import DataCacheConfig
        dcache_config = DataCacheConfig(dcache_size=args.dcache)
    link = LOCAL_LINK if getattr(args, "local_link", False) \
        else LinkModel()
    fault_plan = None
    if getattr(args, "fault_plan", None):
        from .net import FaultPlan
        fault_plan = FaultPlan.parse(args.fault_plan,
                                     seed=getattr(args, "seed", 0))
    return SoftCacheConfig(
        tcache_size=args.tcache, granularity=args.granularity,
        policy=args.policy, policy_params=policy_params,
        link=link, data_cache=dcache_config,
        prefetch_depth=args.prefetch_depth,
        debug_poison=getattr(args, "poison", False),
        jit=getattr(args, "jit", "hot"),
        jit_threshold=getattr(args, "jit_threshold", 16),
        recorder=recorder, fault_plan=fault_plan,
        update_at=tuple(getattr(args, "update_at", None) or ()))


def _resolve_policy_params(policy: str, image) -> dict | None:
    """Policy constructor params a CLI run can derive from the image.

    ``trrip`` wants the profiler's temperature signal, so (like
    ``--tcache-size auto``) it costs one native profiling run up
    front; every other policy needs nothing.
    """
    if policy != "trrip":
        return None
    from .profiling import temperature_for_image
    tm = temperature_for_image(image)
    print(f"[policy] trrip temperatures from the profile: "
          f"{tm.counts.get('hot', 0)} hot / "
          f"{tm.counts.get('warm', 0)} warm / "
          f"{tm.counts.get('cold', 0)} cold procs")
    return {"temperature": tm}


def _write_trace(recorder, out, *, process_names=None) -> None:
    """Write a recorder's events as <out>.jsonl + <out>.trace.json."""
    from .obs import write_chrome_trace, write_jsonl
    base = Path(out)
    while base.suffix in (".jsonl", ".json", ".trace"):
        base = base.with_suffix("")
    jsonl = write_jsonl(recorder.events, base.with_suffix(".jsonl"),
                        cpu_hz=recorder.cpu_hz,
                        dropped=recorder.dropped)
    chrome = write_chrome_trace(
        recorder.events, base.with_suffix(".trace.json"),
        cpu_hz=recorder.cpu_hz, process_names=process_names)
    print(f"\n[trace] {len(recorder.events)} events "
          f"({recorder.dropped} dropped)")
    print(f"  jsonl        : {jsonl}")
    print(f"  chrome trace : {chrome}  "
          f"(load in https://ui.perfetto.dev)")


def _tcache_size(value: str):
    """``--tcache``/``--tcache-size``: a byte count or ``auto``."""
    if value.strip().lower() == "auto":
        return "auto"
    return int(value)


def _resolve_auto_tcache(args, image) -> None:
    """Replace ``--tcache-size auto`` with the profiler's estimate."""
    if getattr(args, "tcache", None) != "auto":
        return
    from .profiling import estimate_tcache_size
    est = estimate_tcache_size(image, granularity=args.granularity)
    args.tcache = est.tcache_size
    print(f"[auto-tcache] {est.tcache_size}B sized from the hot set "
          f"[{', '.join(est.hot_procs)}]: {est.hot_code_bytes}B static "
          f"-> {est.rewritten_hot_bytes}B rewritten, "
          f"x{est.slack:g} slack")


def _write_prom_out(path, registry=None, *, recorder=None,
                    fill=None) -> None:
    """The one ``--prom-out`` writer shared by run/trace/fleet/chaos.

    Priority: an explicit *registry*, else the recorder's (already
    populated by the run), else a fresh one populated by *fill*.
    """
    from .obs import MetricsRegistry, write_prometheus
    if registry is None:
        if recorder is not None:
            registry = recorder.metrics
        else:
            registry = MetricsRegistry()
            if fill is not None:
                fill(registry)
    write_prometheus(registry, path)
    print(f"  prometheus        : {path}")


def _start_server(args):
    """Start the live ops endpoint for ``--serve HOST:PORT``."""
    if not getattr(args, "serve", None):
        return None
    from .obs import ObsServer, parse_serve
    host, port = parse_serve(args.serve)
    server = ObsServer(host, port).start()
    print(f"[serve] ops endpoint on {server.url}  "
          f"(/metrics /inspect/tcache /admin/...)", flush=True)
    return server


def _print_metrics_highlights(recorder) -> None:
    """The registry values worth a terminal line."""
    snap = recorder.metrics.snapshot()
    print("\nmetrics highlights:")
    for key in ("cc.translations", "cc.miss_traps", "cc.evictions",
                "cc.miss_service_cycles", "mc.chunks_built",
                "link.exchanges", "interp.fused_blocks",
                "sim.cycles"):
        if key in snap:
            print(f"  {key:<24} {snap[key]}")
    for key in ("cc.miss_latency_cycles", "cc.patch_distance_bytes"):
        hist = snap.get(key)
        if hist and hist["count"]:
            print(f"  {key:<24} n={hist['count']} "
                  f"mean={hist['mean']:.0f} p50={hist['p50']:.0f} "
                  f"p99={hist['p99']:.0f}")


def _cmd_workloads(args) -> int:
    print(f"{'name':12s} {'description'}")
    print("-" * 60)
    for name, spec in WORKLOADS.items():
        print(f"{name:12s} {spec.description}")
    return 0


def _cmd_run(args) -> int:
    image = build_workload(args.workload, args.scale,
                           arm_profile=(args.granularity == "proc"))
    if args.native:
        machine = run_native(image)
        print(machine.output_text, end="")
        print(f"\n[native] {machine.cpu.icount} instructions, "
              f"{machine.cpu.cycles} cycles")
        return machine.cpu.exit_code or 0

    _resolve_auto_tcache(args, image)
    recorder = None
    if getattr(args, "trace", None):
        from .obs import FlightRecorder
        recorder = FlightRecorder()
    config = _softcache_config(
        args, recorder=recorder,
        policy_params=_resolve_policy_params(args.policy, image))
    server = _start_server(args)
    try:
        system = SoftCacheSystem(image, config)
        if server is not None:
            server.attach_system(system)
        report = system.run()
    finally:
        if server is not None:
            server.close()
    print(report.output, end="")
    stats = system.stats
    print(f"\n[softcache {args.granularity}/{args.policy} "
          f"tcache={args.tcache}B]")
    print(f"  instructions      : {report.instructions}")
    print(f"  cycles            : {report.cycles} "
          f"({report.seconds * 1e3:.2f} ms simulated)")
    print(f"  translations      : {stats.translations}")
    print(f"  evictions/flushes : {stats.evictions}/{stats.flushes}")
    print(f"  miss traps        : {stats.miss_traps} "
          f"(+{stats.jr_lookups} jr lookups)")
    print(f"  link              : {system.link_stats.exchanges} "
          f"exchanges, {system.link_stats.total_bytes} bytes")
    if system.faults is not None:
        fst = system.faults.fault_stats
        print(f"  faults            : {fst.attempts} attempts / "
              f"{fst.delivered} delivered, {fst.retries} retries, "
              f"{fst.checksum_failures} checksum rejects, "
              f"{stats.link_down_traps} link-down traps "
              f"({stats.pending_miss_replays} misses replayed)")
    if args.prefetch_depth:
        print(f"  prefetch depth {args.prefetch_depth}  : "
              f"{stats.prefetch_installs} installed, "
              f"{stats.prefetch_hits} hit, {stats.prefetch_drops} "
              f"dropped, {stats.wasted_prefetch_bytes}B wasted; "
              f"miss service {stats.miss_service_cycles} cycles")
    if stats.admin_commands:
        print(f"  admin commands    : {stats.admin_commands} applied "
              f"at miss boundaries")
    if stats.update_barriers:
        print(f"  live updates      : {stats.update_barriers} barriers "
              f"to epoch {system.cc._epoch}; "
              f"{stats.update_invalidated_blocks} blocks invalidated, "
              f"{stats.update_restamped_blocks} kept, "
              f"{stats.update_text_patched_words} text words patched")
    usage = system.local_memory_in_use
    print(f"  local memory      : {usage}")
    if system.dcache is not None:
        dst = system.dcache.stats
        print(f"  dcache            : fast={dst.fast_hits} "
              f"slow={dst.slow_hits} miss={dst.misses} "
              f"pred={100 * dst.prediction_accuracy():.0f}%")
    if recorder is not None:
        _write_trace(recorder, args.trace)
    if getattr(args, "prom_out", None):
        _write_prom_out(args.prom_out, recorder=recorder,
                        fill=system.publish_metrics)
    return report.exit_code


def _cmd_trace(args) -> int:
    """Run a workload with the flight recorder on, export, report."""
    from .obs import FlightRecorder, trace_summary
    image = build_workload(args.workload, args.scale,
                           arm_profile=(args.granularity == "proc"))
    _resolve_auto_tcache(args, image)
    recorder = FlightRecorder()
    config = _softcache_config(
        args, recorder=recorder,
        policy_params=_resolve_policy_params(args.policy, image))
    system = SoftCacheSystem(image, config)
    report = system.run()
    out = args.out or f"trace-{args.workload}"
    _write_trace(recorder, out)
    print()
    print(trace_summary(recorder.events, cpu_hz=recorder.cpu_hz,
                        top=args.top))
    _print_metrics_highlights(recorder)
    if getattr(args, "prom_out", None):
        _write_prom_out(args.prom_out, recorder=recorder)
    return report.exit_code


def _cmd_debug(args) -> int:
    """Run a workload, audit the CC state, dump its tcache."""
    from .softcache.debug import (
        check_consistency,
        chunk_graph_dot,
        dump_superblock,
        dump_tcache,
    )
    image = build_workload(args.workload, args.scale,
                           arm_profile=(args.granularity == "proc"))
    _resolve_auto_tcache(args, image)
    config = _softcache_config(
        args, policy_params=_resolve_policy_params(args.policy, image))
    system = SoftCacheSystem(image, config)
    system.run()
    checked = check_consistency(system.cc)
    if args.dump_superblock is not None:
        print(dump_superblock(system.machine.cpu,
                              int(args.dump_superblock, 0)))
    elif args.dot:
        print(chunk_graph_dot(system.cc))
    else:
        print(dump_tcache(system.cc))
    print(f"\n[debug] consistency OK ({checked} items checked)",
          file=sys.stderr)
    return 0


def _cmd_fleet(args) -> int:
    """Fleet simulation (Figure 1): N clients, one server, one uplink."""
    from .fleet import simulate_fleet
    image = build_workload(args.workload, args.scale,
                           arm_profile=(args.granularity == "proc"))
    _resolve_auto_tcache(args, image)
    recorder = None
    if args.trace:
        from .obs import FlightRecorder
        recorder = FlightRecorder()
    config = _softcache_config(
        args, policy_params=_resolve_policy_params(args.policy, image))
    server = _start_server(args)
    try:
        result = simulate_fleet(image, args.clients, config,
                                stagger_s=args.stagger,
                                recorder=recorder,
                                queue_model=args.queue_model,
                                shards=args.shards,
                                hub_capacity=args.hub_capacity,
                                distinct_clients=args.distinct,
                                server=server)
    finally:
        if server is not None:
            server.close()
    print(f"[fleet] {result.n_clients} clients "
          f"({result.distinct_clients} distinct), "
          f"stagger {args.stagger * 1e3:.1f} ms, "
          f"{result.queue_model} queue model")
    print(f"  mc requests       : {result.mc_requests} "
          f"({result.mc_chunks_built} chunks built, "
          f"{100 * result.chunk_cache_sharing:.0f}% shared)")
    print(f"  uplink            : "
          f"{100 * result.link_utilization:.1f}% utilized over "
          f"{result.makespan_s * 1e3:.2f} ms makespan")
    print(f"  queueing          : {result.delayed_requests} delayed, "
          f"mean {result.mean_queue_delay_s * 1e6:.1f} us, "
          f"max {result.max_queue_delay_s * 1e6:.1f} us")
    if result.n_shards > 1:
        loads = " ".join(str(s.requests) for s in result.shard_loads)
        print(f"  shards            : {result.n_shards} "
              f"(demand requests [{loads}], "
              f"balance {result.shard_balance:.2f}, shard delay mean "
              f"{result.mean_shard_delay_s * 1e6:.1f} us)")
    if result.hub_capacity > 0:
        print(f"  edge hub          : {result.hub_hits}/"
              f"{result.hub_requests} hits "
              f"({100 * result.hub_hit_rate:.0f}%) at "
              f"{result.hub_capacity}B")
    if result.link_retries:
        print(f"  fault retries     : {result.link_retries} replayed "
              f"exchanges queued on the uplink")
    if result.rollout_wavefront_s:
        wf = result.rollout_wavefront_s
        print(f"  rollout           : epoch {result.final_epoch}, "
              f"{result.clients_converged}/{result.n_clients} "
              f"converged; wavefront "
              f"{wf[0] * 1e3:.2f}..{wf[-1] * 1e3:.2f} ms")
    if recorder is not None:
        names = {c.client_id: f"client {c.client_id}"
                 for c in result.clients}
        _write_trace(recorder, args.trace, process_names=names)
    if args.prom_out:
        _write_prom_out(args.prom_out, fill=result.publish)
    return 0


def _cmd_chaos(args) -> int:
    """Chaos matrix: N seeded fault plans x M workloads.

    Every cell runs a workload under ``FaultPlan.chaos(seed + i)``
    (all-transient faults: drops, corruption, delays, partitions, MC
    crash-restarts) with eviction poisoning and full consistency
    audits on, then compares the architectural state digest against a
    fault-free baseline.  Any divergence, consistency failure or crash
    marks the cell failed: its flight-recorder trace and plan are
    written to ``--out-dir`` and the command exits nonzero.
    """
    from .net import FaultPlan
    from .obs import FlightRecorder
    from .softcache.debug import (
        architectural_state,
        check_consistency,
        observable_state,
    )

    update_at = tuple(getattr(args, "update_at", None) or ())
    # under a live update, barrier timing (hence tcache placement and
    # local RAM) legitimately shifts with fault-induced delays, so the
    # differential compares the observable state — patched text, data,
    # exit code, output — instead of the full architectural digest
    state_fn = observable_state if update_at else architectural_state
    workloads = [w.strip() for w in args.workloads.split(",")
                 if w.strip()]
    out_dir = Path(args.out_dir)
    failures = 0
    total = 0
    agg = {"fault_attempts": 0, "fault_delivered": 0,
           "fault_retries": 0, "checksum_failures": 0,
           "link_down_traps": 0, "mc_restarts": 0}
    policy = getattr(args, "policy", "fifo")
    for name in workloads:
        image = build_workload(name, args.scale)
        params = _resolve_policy_params(policy, image)
        # poison evicted blocks in the baseline too: the digest covers
        # local RAM, so both runs must paint evictions the same way
        baseline = SoftCacheSystem(image, SoftCacheConfig(
            tcache_size=args.tcache, record_timeline=False,
            debug_poison=True, policy=policy, policy_params=params,
            update_at=update_at))
        baseline.run()
        want = state_fn(baseline)
        for i in range(args.plans):
            plan = FaultPlan.chaos(args.seed + i)
            label = f"{name}-seed{args.seed + i}"
            recorder = FlightRecorder()
            total += 1
            try:
                system = SoftCacheSystem(image, SoftCacheConfig(
                    tcache_size=args.tcache, record_timeline=False,
                    debug_poison=True, recorder=recorder,
                    policy=policy, policy_params=params,
                    fault_plan=plan, update_at=update_at))
                system.run()
                check_consistency(system.cc)
                got = state_fn(system)
                if got != want:
                    what = ("observable" if update_at
                            else "architectural")
                    raise AssertionError(
                        f"{what} state diverged from the "
                        f"fault-free run: {got[:16]}… != {want[:16]}…")
            except Exception as exc:
                failures += 1
                out_dir.mkdir(parents=True, exist_ok=True)
                (out_dir / f"chaos-{label}.plan.txt").write_text(
                    f"workload: {name}\nscale: {args.scale}\n"
                    f"tcache: {args.tcache}\nplan: {plan!r}\n"
                    f"error: {exc}\n")
                _write_trace(recorder, out_dir / f"chaos-{label}")
                print(f"FAIL {label}: {exc}", file=sys.stderr)
            else:
                fst = system.faults.fault_stats
                cst = system.stats
                agg["fault_attempts"] += fst.attempts
                agg["fault_delivered"] += fst.delivered
                agg["fault_retries"] += fst.retries
                agg["checksum_failures"] += fst.checksum_failures
                agg["link_down_traps"] += cst.link_down_traps
                agg["mc_restarts"] += system.mc_stats.restarts
                print(f"ok   {label}: {fst.attempts} attempts, "
                      f"{fst.retries} retries, "
                      f"{fst.checksum_failures} checksum rejects, "
                      f"{cst.link_down_traps} link-down, "
                      f"{system.mc_stats.restarts} mc restarts")
    if getattr(args, "prom_out", None):
        def fill(registry):
            registry.counter("chaos.cells").inc(total)
            registry.counter("chaos.failures").inc(failures)
            for key, value in agg.items():
                registry.counter(f"chaos.{key}").inc(value)
        _write_prom_out(args.prom_out, fill=fill)
    if failures:
        print(f"\n[chaos] {failures}/{total} cells FAILED "
              f"(artifacts in {out_dir})", file=sys.stderr)
        return 1
    print(f"\n[chaos] all {total} cells reached the fault-free "
          f"{'observable' if update_at else 'architectural'} state")
    return 0


def _admin_offline(args) -> int:
    """``repro admin --from FILE``: inspect a recorded trace.

    The offline half of the casadm-style CLI: stats prints the
    registry rendered from the recorded events, inspect prints the
    hot-chunk table — no live endpoint required.
    """
    from .obs import load_jsonl, render_hot_chunks, top_hot_chunks
    if args.verb not in ("stats", "inspect"):
        print(f"admin {args.verb} needs a live endpoint "
              f"(control verbs cannot apply to a recorded trace)",
              file=sys.stderr)
        return 2
    meta, events = load_jsonl(args.from_file)
    if args.verb == "stats":
        print(f"# recorded trace {args.from_file} "
              f"(schema {meta.get('schema_version')}, "
              f"{len(events)} events)")
        counts = {}
        for ev in events:
            counts[ev.cat] = counts.get(ev.cat, 0) + 1
        for cat in sorted(counts):
            print(f"trace_events_total{{category=\"{cat}\"}} "
                  f"{counts[cat]}")
        return 0
    hot = top_hot_chunks(events, n=args.top)
    print(render_hot_chunks(hot))
    print(f"\n{len(hot)} hot chunks from {len(events)} recorded "
          f"events")
    return 0


def _cmd_admin(args) -> int:
    """casadm-style ops CLI against a live ``--serve`` endpoint."""
    import json
    import urllib.error
    import urllib.request

    if args.from_file:
        return _admin_offline(args)

    base = args.url.rstrip("/")
    if "://" not in base:
        base = "http://" + base

    def get(path):
        with urllib.request.urlopen(base + path,
                                    timeout=args.timeout) as resp:
            return resp.status, resp.read().decode()

    def post(path, payload):
        wait = "0" if args.no_wait else f"{args.timeout:g}"
        req = urllib.request.Request(
            f"{base}{path}?wait={wait}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST")
        with urllib.request.urlopen(req,
                                    timeout=args.timeout + 5) as resp:
            return resp.status, resp.read().decode()

    try:
        if args.verb == "stats":
            status, body = get("/metrics")
            print(body, end="")
            return 0
        if args.verb == "inspect":
            route = "" if args.route == "all" else f"/{args.route}"
            status, body = get(f"/inspect{route}")
            print(json.dumps(json.loads(body), indent=2))
            return 0
        if args.verb == "flush":
            payload = {}
        elif args.verb == "set":
            payload = {}
            if args.prefetch_depth is not None:
                payload["prefetch_depth"] = args.prefetch_depth
            if args.jit is not None:
                payload["jit"] = args.jit
            if args.jit_threshold is not None:
                payload["jit_threshold"] = args.jit_threshold
            if args.policy is not None:
                payload["policy"] = args.policy
            if not payload:
                print("admin set needs --prefetch-depth, --jit, "
                      "--jit-threshold and/or --policy",
                      file=sys.stderr)
                return 2
        elif args.verb == "publish":
            if args.image is None:
                print("admin publish needs --image PATH (a file "
                      "written by repro.softcache.update.save_image)",
                      file=sys.stderr)
                return 2
            payload = {"image": args.image}
        else:  # resize
            if args.tcache_size is None:
                print("admin resize needs --tcache-size",
                      file=sys.stderr)
                return 2
            payload = {"tcache_size": args.tcache_size}
        status, body = post(f"/admin/{args.verb}", payload)
        print(json.dumps(json.loads(body), indent=2))
        return 0
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode(errors="replace")
        print(f"admin {args.verb}: HTTP {exc.code} from {base}: "
              f"{detail}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, OSError) as exc:
        print(f"admin {args.verb}: cannot reach {base}: {exc} "
              f"(is the run serving with --serve?)", file=sys.stderr)
        return 1


def _cmd_profile(args) -> int:
    image = build_workload(args.workload, args.scale)
    profile = profile_image(image)
    print(profile.report(args.top))
    print(f"\ndynamic .text : {profile.dynamic_text_bytes}B")
    print(f"static .text  : {image.static_text_size}B")
    hot = profile.hot_code_bytes(args.threshold)
    print(f"hot code      : {hot}B "
          f"({[e.name for e in profile.hot_procs(args.threshold)]})")
    print(f"norm footprint: {hot / image.static_text_size:.3f}")
    return 0


def _cmd_disasm(args) -> int:
    image = build_workload(args.workload, args.scale)
    if args.proc:
        span = image.proc_named(args.proc)
        start, end = span.addr, span.end
    else:
        start, end = image.text_base, min(image.text_end,
                                          image.text_base + 4 * args.max)
    for line in disassemble_range(image.word_at, start, end):
        print(line)
    return 0


_FIGURES = ("table1", "fig5", "fig6", "fig7", "fig8", "fig9",
            "netcost", "tagspace", "ablation", "dcache")


def _cmd_figures(args) -> int:
    from . import eval as ev
    wanted = (args.only.split(",") if args.only else list(_FIGURES))
    runners = {
        "table1": lambda: ev.render_table1(ev.table1(scale=args.scale)),
        "fig5": lambda: ev.render_fig5(ev.fig5(scale=args.scale)),
        "fig6": lambda: ev.render_fig6(ev.fig6(scale=args.scale)),
        "fig7": lambda: ev.render_fig7(ev.fig7(scale=args.scale)),
        "fig8": lambda: ev.render_fig8(ev.fig8(scale=args.scale)),
        "fig9": lambda: ev.render_fig9(ev.fig9(scale=args.scale)),
        "netcost": lambda: ev.render_netcost(
            ev.netcost(scale=args.scale / 2)),
        "tagspace": lambda: ev.render_tagspace(ev.tagspace()),
        "ablation": lambda: ev.render_ablation(
            ev.extra_instruction_ablation(scale=args.scale / 2)),
        "dcache": lambda: ev.render_dcache(
            ev.dcache_eval(scale=args.scale / 4)),
    }
    for name in wanted:
        runner = runners.get(name)
        if runner is None:
            print(f"unknown figure {name!r}; choices: "
                  f"{', '.join(_FIGURES)}", file=sys.stderr)
            return 2
        print(runner())
        print()
    return 0


def _cmd_report(args) -> int:
    from .eval import generate_report
    text = generate_report(scale=args.scale)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SoftCache: software caching via dynamic binary "
                    "rewriting (ICPP 2002 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list benchmark programs")

    def add_softcache_opts(p, scale=0.2):
        p.add_argument("--scale", type=float, default=scale)
        p.add_argument("--tcache", "--tcache-size", dest="tcache",
                       type=_tcache_size, default=24 * 1024,
                       help="tcache bytes, or 'auto' to size from "
                            "the profiled hot working set")
        p.add_argument("--granularity", default="block",
                       choices=("block", "ebb", "proc"))
        p.add_argument("--policy", default="fifo",
                       choices=policy_names(),
                       help="replacement policy (trrip profiles the "
                            "workload first for its temperature map)")
        p.add_argument("--prefetch-depth", type=int, default=0,
                       help="successor chunks batched onto each miss "
                            "reply (0 = paper-faithful protocol)")
        p.add_argument("--fault-plan", metavar="SPEC",
                       help="inject link faults: a preset (none, "
                            "lossy, chaos) or k=v terms like "
                            "drop=0.1,corrupt=0.05,partition=40:60 "
                            "(see docs/FAULTS.md)")
        p.add_argument("--seed", type=int, default=0,
                       help="PRNG seed for the fault plan")
        p.add_argument("--jit", default="hot",
                       choices=("off", "hot", "all"),
                       help="template-JIT tier for superblocks: off = "
                            "closure tier only, hot = promote after "
                            "--jit-threshold executions (default), "
                            "all = compile every fused block eagerly")
        p.add_argument("--jit-threshold", type=int, default=16,
                       help="superblock executions before JIT "
                            "promotion (jit=hot)")
        p.add_argument("--update-at", metavar="CYCLES:IMAGE",
                       action="append", default=None,
                       help="publish a new image version once the "
                            "client clock passes CYCLES; IMAGE is "
                            "'patch' / 'patch:SEED' (a derived "
                            "behaviour-preserving patch) or '@PATH' "
                            "(a saved image file); prefix CYCLES "
                            "with '~' for a non-durable publish "
                            "(rolled back by an MC crash).  May "
                            "repeat for staged rollouts "
                            "(see docs/UPDATES.md)")

    run = sub.add_parser("run", help="run a workload")
    run.add_argument("workload", choices=sorted(WORKLOADS))
    add_softcache_opts(run)
    run.add_argument("--native", action="store_true",
                     help="run without the SoftCache (ideal baseline)")
    run.add_argument("--dcache", type=int, default=0,
                     help="enable the software D-cache with this size")
    run.add_argument("--local-link", action="store_true",
                     help="zero-cost MC link (SPARC prototype style)")
    run.add_argument("--trace", metavar="OUT",
                     help="record a flight-recorder trace and write "
                          "OUT.jsonl + OUT.trace.json")
    run.add_argument("--prom-out", metavar="FILE",
                     help="write the metrics registry in Prometheus "
                          "text exposition format")
    run.add_argument("--serve", metavar="HOST:PORT",
                     help="serve the live ops endpoint during the "
                          "run: /metrics, /inspect/*, /admin/*")

    trace = sub.add_parser(
        "trace", help="run with the flight recorder on; export "
                      "JSONL + Perfetto trace and print a report")
    trace.add_argument("workload", choices=sorted(WORKLOADS))
    add_softcache_opts(trace)
    trace.add_argument("--dcache", type=int, default=0)
    trace.add_argument("--local-link", action="store_true")
    trace.add_argument("--out", help="output basename "
                                     "(default trace-<workload>)")
    trace.add_argument("--top", type=int, default=10,
                       help="hot chunks listed in the report")
    trace.add_argument("--prom-out", metavar="FILE",
                       help="write the metrics registry in Prometheus "
                            "text exposition format")

    debug = sub.add_parser(
        "debug", help="run a workload, audit CC bookkeeping, dump "
                      "the tcache (or its DOT graph)")
    debug.add_argument("workload", choices=sorted(WORKLOADS))
    add_softcache_opts(debug, scale=0.1)
    debug.add_argument("--dot", action="store_true",
                       help="emit the resident chunk graph as "
                            "Graphviz DOT instead of a listing")
    debug.add_argument("--poison", action="store_true",
                       help="poison evicted blocks (louder audits)")
    debug.add_argument("--dump-superblock", metavar="PC",
                       help="print tier, hit count, guest disassembly "
                            "and generated Python source for the "
                            "superblock(s) covering PC (hex or "
                            "decimal) at end of run")

    fleet = sub.add_parser(
        "fleet", help="simulate N clients sharing one MC and uplink")
    fleet.add_argument("workload", choices=sorted(WORKLOADS))
    add_softcache_opts(fleet, scale=0.1)
    fleet.add_argument("--clients", type=int, default=4)
    fleet.add_argument("--stagger", type=float, default=0.0,
                       help="boot-time offset between clients (s)")
    fleet.add_argument("--trace", metavar="OUT",
                       help="record a fleet-wide trace (per-client "
                            "timelines merged)")
    fleet.add_argument("--queue-model", default="event",
                       choices=("event", "legacy"),
                       help="event: one simulated clock with live "
                            "queueing feedback; legacy: the old "
                            "post-hoc FIFO estimate")
    fleet.add_argument("--shards", type=int, default=1,
                       help="consistent-hash MC shards behind the hub")
    fleet.add_argument("--hub-capacity", type=int, default=0,
                       help="shared edge-hub chunk cache, bytes "
                            "(0 = no hub)")
    fleet.add_argument("--distinct", type=int, default=None,
                       help="clients actually executed; the rest "
                            "replay captured timelines")
    fleet.add_argument("--prom-out", metavar="FILE",
                       help="write fleet metrics in Prometheus text "
                            "exposition format")
    fleet.add_argument("--serve", metavar="HOST:PORT",
                       help="serve the live ops endpoint during the "
                            "simulation (/inspect/shards shows "
                            "per-shard load)")

    chaos = sub.add_parser(
        "chaos", help="chaos matrix: seeded fault plans x workloads, "
                      "differential-checked against fault-free runs")
    chaos.add_argument("--workloads", default="sensor,adpcm_enc",
                       help="comma-separated workload names")
    chaos.add_argument("--plans", type=int, default=16,
                       help="chaos cells (seeds) per workload")
    chaos.add_argument("--seed", type=int, default=0,
                       help="first seed of the matrix")
    chaos.add_argument("--scale", type=float, default=0.05)
    chaos.add_argument("--tcache", type=int, default=2048)
    chaos.add_argument("--policy", default="fifo",
                       choices=policy_names(),
                       help="replacement policy for baseline and "
                            "chaos cells alike")
    chaos.add_argument("--update-at", metavar="CYCLES:IMAGE",
                       action="append", default=None,
                       help="publish a live update mid-run in every "
                            "cell (and the fault-free baseline); the "
                            "differential then compares observable "
                            "state (text/data/output) across the "
                            "update")
    chaos.add_argument("--out-dir", default="chaos-artifacts",
                       help="failing cells' traces + plans land here")
    chaos.add_argument("--prom-out", metavar="FILE",
                       help="write matrix-level counters (cells, "
                            "failures, fault totals) in Prometheus "
                            "text exposition format")

    admin = sub.add_parser(
        "admin", help="inspect or steer a live run served with "
                      "--serve (or inspect a recorded trace offline)")
    admin.add_argument("verb",
                       choices=("stats", "inspect", "flush", "set",
                                "resize", "publish"),
                       help="stats: raw /metrics; inspect: JSON "
                            "snapshot; flush/set/resize/publish: "
                            "control verbs applied at the next miss "
                            "boundary")
    admin.add_argument("--url", default="http://127.0.0.1:9178",
                       help="base URL of the live ops endpoint")
    admin.add_argument("--from", dest="from_file", metavar="FILE",
                       help="offline mode: read a recorded .jsonl "
                            "trace instead of a live endpoint "
                            "(stats/inspect only)")
    admin.add_argument("--route", default="tcache",
                       choices=("tcache", "superblocks", "shards",
                                "images", "all"),
                       help="inspect: which snapshot section")
    admin.add_argument("--prefetch-depth", type=int, default=None,
                       help="set: new prefetch depth")
    admin.add_argument("--jit", default=None,
                       choices=("off", "hot", "all"),
                       help="set: new JIT mode")
    admin.add_argument("--jit-threshold", type=int, default=None,
                       help="set: new JIT promotion threshold")
    admin.add_argument("--policy", default=None,
                       choices=policy_names(),
                       help="set: swap the replacement policy (fresh "
                            "metadata; trrip runs without a "
                            "temperature map when set mid-run)")
    admin.add_argument("--tcache-size", type=int, default=None,
                       help="resize: new effective tcache size, "
                            "bytes (flushes; applied at the next "
                            "miss boundary)")
    admin.add_argument("--image", default=None, metavar="PATH",
                       help="publish: a saved image file to hot-patch "
                            "the running system to (layout-"
                            "preserving; see docs/UPDATES.md)")
    admin.add_argument("--no-wait", action="store_true",
                       help="queue the control verb and return "
                            "immediately (HTTP 202)")
    admin.add_argument("--timeout", type=float, default=10.0,
                       help="seconds to wait for the verb to reach "
                            "a miss boundary")
    admin.add_argument("--top", type=int, default=10,
                       help="offline inspect: hot chunks listed")

    prof = sub.add_parser("profile", help="flat profile of a workload")
    prof.add_argument("workload", choices=sorted(WORKLOADS))
    prof.add_argument("--scale", type=float, default=0.1)
    prof.add_argument("--top", type=int, default=12)
    prof.add_argument("--threshold", type=float, default=0.90)

    dis = sub.add_parser("disasm", help="disassemble a workload image")
    dis.add_argument("workload", choices=sorted(WORKLOADS))
    dis.add_argument("--scale", type=float, default=0.1)
    dis.add_argument("--proc", help="disassemble one procedure")
    dis.add_argument("--max", type=int, default=64,
                     help="max instructions without --proc")

    figs = sub.add_parser("figures",
                          help="regenerate the paper's tables/figures")
    figs.add_argument("--only", help="comma-separated subset: "
                                     + ",".join(_FIGURES))
    figs.add_argument("--scale", type=float, default=0.2)

    report = sub.add_parser(
        "report", help="run every experiment, emit one text report")
    report.add_argument("--scale", type=float, default=0.2)
    report.add_argument("--out", help="write the report to this file")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "workloads": _cmd_workloads,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "debug": _cmd_debug,
        "fleet": _cmd_fleet,
        "chaos": _cmd_chaos,
        "admin": _cmd_admin,
        "profile": _cmd_profile,
        "disasm": _cmd_disasm,
        "figures": _cmd_figures,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
