"""Trace export: JSONL, Chrome trace-event JSON (Perfetto), ASCII.

Formats
-------
*JSONL* — one JSON object per line; the first line is a ``meta``
record carrying the schema version and cpu_hz, every following line is
an ``event`` record (see :data:`repro.obs.events.EVENT_SCHEMA`).  This
is the archival format: append-friendly, greppable, diffable.

*Chrome trace-event* — the ``{"traceEvents": [...]}`` JSON that
`Perfetto <https://ui.perfetto.dev>`_ and ``chrome://tracing`` load
directly.  Simulated cycles convert to microseconds through the run's
``cpu_hz``, so the timeline reads in simulated time (the paper's
axis); each client is a process, each stack layer a named thread.

*ASCII* — a binned event-density timeline and a top-N hot-chunk table
for terminal use (``repro trace`` prints these).
"""

from __future__ import annotations

import json
from collections import Counter as _TallyCounter
from pathlib import Path
from typing import Iterable, Sequence

from .events import CATEGORY_TRACKS, TRACE_SCHEMA_VERSION, Event

# -- JSONL -------------------------------------------------------------


def write_jsonl(events: Sequence[Event], path: str | Path, *,
                cpu_hz: float = 200e6, dropped: int = 0) -> Path:
    """Write *events* as JSONL with a leading ``meta`` record."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(json.dumps({
            "type": "meta", "schema": TRACE_SCHEMA_VERSION,
            "format": "repro-flight-recorder",
            "cpu_hz": cpu_hz, "events": len(events),
            "dropped": dropped,
        }) + "\n")
        for ev in events:
            record = ev.to_record()
            record["type"] = "event"
            fh.write(json.dumps(record) + "\n")
    return path


def load_jsonl(path: str | Path) -> tuple[dict, list[Event]]:
    """Read a JSONL trace back into (meta, events)."""
    meta: dict = {}
    events: list[Event] = []
    with Path(path).open() as fh:
        for line in fh:
            record = json.loads(line)
            if record.get("type") == "meta":
                meta = record
                continue
            events.append(Event(
                name=record["name"], cat=record["cat"],
                ph=record["ph"], cycles=record["cycles"],
                host_s=record["host_s"],
                dur_cycles=record.get("dur_cycles", 0),
                pid=record.get("pid", 0), tid=record.get("tid", 0),
                args=record.get("args", {})))
    return meta, events


# -- Chrome trace-event ------------------------------------------------


def to_chrome_trace(events: Iterable[Event], *,
                    cpu_hz: float = 200e6,
                    process_names: dict[int, str] | None = None) -> dict:
    """Convert events to the Chrome trace-event dict (Perfetto-ready).

    ``ts``/``dur`` are microseconds of *simulated* time.  Metadata
    records name each pid (client) and tid (stack layer) so the
    Perfetto track list is self-describing.
    """
    scale = 1e6 / cpu_hz
    trace: list[dict] = []
    pids: set[int] = set()
    lanes: set[tuple[int, int]] = set()
    track_names = {tid: cat for cat, tid in CATEGORY_TRACKS.items()}
    for ev in events:
        record = {
            "name": ev.name, "cat": ev.cat, "ph": ev.ph,
            "ts": ev.cycles * scale, "pid": ev.pid, "tid": ev.tid,
            "args": dict(ev.args, host_s=ev.host_s),
        }
        if ev.ph == "X":
            record["dur"] = ev.dur_cycles * scale
        else:
            record["s"] = "t"       # instant scope: thread
        trace.append(record)
        pids.add(ev.pid)
        lanes.add((ev.pid, ev.tid))
    for pid in sorted(pids):
        name = (process_names or {}).get(pid, f"client {pid}")
        trace.append({"name": "process_name", "ph": "M", "pid": pid,
                      "tid": 0, "args": {"name": name}})
    for pid, tid in sorted(lanes):
        trace.append({"name": "thread_name", "ph": "M", "pid": pid,
                      "tid": tid,
                      "args": {"name": track_names.get(tid, f"t{tid}")}})
    return {"traceEvents": trace, "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA_VERSION,
                          "cpu_hz": cpu_hz}}


def write_chrome_trace(events: Iterable[Event], path: str | Path, *,
                       cpu_hz: float = 200e6,
                       process_names: dict[int, str] | None = None
                       ) -> Path:
    path = Path(path)
    path.write_text(json.dumps(
        to_chrome_trace(events, cpu_hz=cpu_hz,
                        process_names=process_names)) + "\n")
    return path


# -- terminal reports --------------------------------------------------

_DENSITY = " .:-=+*#%@"


def ascii_timeline(events: Sequence[Event], *, nbins: int = 60,
                   cpu_hz: float = 200e6) -> str:
    """Event-density timeline, one row per category, binned by cycles."""
    if not events:
        return "(no events)"
    span = max(ev.cycles for ev in events) or 1
    cats: dict[str, list[int]] = {}
    for ev in events:
        row = cats.get(ev.cat)
        if row is None:
            row = cats[ev.cat] = [0] * nbins
        row[min(nbins - 1, ev.cycles * nbins // span)] += 1
    peak = max(max(row) for row in cats.values()) or 1
    width = max(len(c) for c in cats)
    lines = [f"timeline: {span} cycles "
             f"({span / cpu_hz * 1e3:.2f} ms simulated), "
             f"{len(events)} events, peak {peak}/bin"]
    for cat in sorted(cats, key=lambda c: CATEGORY_TRACKS.get(c, 99)):
        row = cats[cat]
        cells = "".join(
            _DENSITY[min(len(_DENSITY) - 1,
                         (n * (len(_DENSITY) - 1) + peak - 1) // peak)]
            for n in row)
        lines.append(f"  {cat:<{width}} |{cells}|")
    return "\n".join(lines)


def top_hot_chunks(events: Sequence[Event], n: int = 10) -> list[dict]:
    """The chunks causing the most miss traffic, by demand misses."""
    misses: _TallyCounter = _TallyCounter()
    evictions: _TallyCounter = _TallyCounter()
    names: dict[int, str] = {}
    sizes: dict[int, int] = {}
    for ev in events:
        orig = ev.args.get("orig")
        if orig is None:
            continue
        if ev.name == "cc.miss":
            misses[orig] += 1
            if ev.args.get("name"):
                names[orig] = ev.args["name"]
            sizes[orig] = ev.args.get("size", 0)
        elif ev.name == "cc.evict":
            evictions[orig] += 1
    return [{"orig": orig, "name": names.get(orig, ""),
             "size": sizes.get(orig, 0), "misses": count,
             "evictions": evictions.get(orig, 0)}
            for orig, count in misses.most_common(n)]


def render_hot_chunks(rows: list[dict]) -> str:
    if not rows:
        return "(no miss events)"
    lines = [f"{'orig':>10} {'misses':>7} {'evicts':>7} {'size':>6}  name",
             "-" * 48]
    for r in rows:
        lines.append(f"{r['orig']:#10x} {r['misses']:7d} "
                     f"{r['evictions']:7d} {r['size']:6d}  {r['name']}")
    return "\n".join(lines)


def trace_summary(events: Sequence[Event], *, cpu_hz: float = 200e6,
                  top: int = 10, nbins: int = 60) -> str:
    """The full terminal report ``repro trace`` prints."""
    tally = _TallyCounter(ev.name for ev in events)
    parts = ["event counts:"]
    for name, count in sorted(tally.items()):
        parts.append(f"  {name:<22} {count}")
    parts.append("")
    parts.append(ascii_timeline(events, nbins=nbins, cpu_hz=cpu_hz))
    parts.append("")
    parts.append(f"top {top} hot chunks (by demand misses):")
    parts.append(render_hot_chunks(top_hot_chunks(events, top)))
    return "\n".join(parts)
