"""Prometheus text-format exposition for the MetricsRegistry.

First slice of the ops plane: serialize a
:class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus text
exposition format (version 0.0.4 — the format every scraper and
``promtool`` accepts), the same way Open-CAS's ``extra/prometheus``
bridge exports its cache counters.  ``repro run --prom-out`` and
``repro fleet --prom-out`` write one snapshot after the run; a real
deployment would serve the same text from an HTTP endpoint.

Mapping:

* :class:`Counter` → ``counter`` (suffix ``_total`` per convention)
* :class:`Gauge` → ``gauge``
* :class:`Histogram` → ``histogram``: cumulative ``_bucket{le="..."}``
  series from the power-of-two buckets, plus ``_sum`` and ``_count``.

Metric names are sanitized (dots become underscores, everything
prefixed ``repro_``) so ``cc.misses`` scrapes as ``repro_cc_misses``.
"""

from __future__ import annotations

import re

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    clean = _NAME_RE.sub("_", name)
    if not clean or not (clean[0].isalpha() or clean[0] in "_:"):
        clean = "_" + clean
    return f"repro_{clean}"


def _format_value(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Serialize *registry* in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in sorted(registry, key=lambda m: m.name):
        name = _sanitize(metric.name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {name}_total counter")
            lines.append(f"{name}_total {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for exponent in sorted(metric.buckets):
                cumulative += metric.buckets[exponent]
                lines.append(
                    f'{name}_bucket{{le="{float(1 << exponent)}"}} '
                    f"{cumulative}")
            lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{name}_sum {_format_value(metric.total)}")
            lines.append(f"{name}_count {metric.count}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricsRegistry, path) -> None:
    """Write one exposition snapshot of *registry* to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_prometheus(registry))
