"""Prometheus text-format exposition for the MetricsRegistry.

First slice of the ops plane: serialize a
:class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus text
exposition format (version 0.0.4 — the format every scraper and
``promtool`` accepts), the same way Open-CAS's ``extra/prometheus``
bridge exports its cache counters.  ``repro run --prom-out`` (also on
``trace``, ``fleet`` and ``chaos``) writes one snapshot after the run;
``repro run --serve HOST:PORT`` serves the same text live from
``/metrics`` mid-run.

Mapping:

* :class:`Counter` → ``counter`` (suffix ``_total`` per convention)
* :class:`Gauge` → ``gauge``
* :class:`Histogram` → ``histogram``: cumulative ``_bucket{le="..."}``
  series from the power-of-two buckets, plus ``_sum`` and ``_count``.

Metric names are sanitized (dots become underscores, everything
prefixed ``repro_``) so ``cc.misses`` scrapes as ``repro_cc_misses``.
Every series carries a ``# HELP`` line alongside ``# TYPE``, and a
``repro_build_info`` gauge pins the trace schema version (plus any
labels the caller supplies, e.g. the jit mode) the way exporters
conventionally do.
"""

from __future__ import annotations

import re

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Power-of-two bucket exponents at or above this bound do not fit in
#: a float; their observations are representable only by the +Inf
#: bucket (which always ends every histogram anyway).
_MAX_FLOAT_EXPONENT = 1024

#: Curated help strings for the best-known series; everything else
#: gets a generated line so every exported family still carries HELP.
_HELP_TEXTS = {
    "cc.translations": "Chunks translated and installed into the "
                       "tcache (demand + prefetch).",
    "cc.evictions": "Blocks evicted from the tcache (allocator-FIFO "
                    "victim order; evict-vs-flush is policy-directed).",
    "cc.flushes": "Whole-tcache flushes (flush/preemptive policy, "
                  "stub exhaustion, admin flush/resize).",
    "cc.policy_prefetch_rejects": "Prefetch candidates rejected by "
                                  "the replacement policy at "
                                  "batch-assembly time (never shipped).",
    "cc.policy_promotions": "Addresses promoted to prefetch-eligible "
                            "(nhit crossing its touch threshold).",
    "cc.policy_preemptive_flushes": "Whole-cache flushes chosen by "
                                    "the policy over piecemeal "
                                    "eviction (trrip).",
    "cc.miss_traps": "Miss traps taken (branch/ret/call/landing).",
    "cc.miss_service_cycles": "Simulated cycles spent servicing "
                              "misses, all phases.",
    "cc.admin_commands": "Ops-plane admin commands applied at miss "
                         "boundaries.",
    "cc.miss_latency_cycles": "Per-miss service latency in simulated "
                              "cycles.",
    "cc.patch_distance_bytes": "Distance covered by backpatched "
                               "branch words.",
    "mc.requests": "Chunk requests served by the memory controller.",
    "mc.chunks_built": "Chunks rewritten (MC chunk-cache misses).",
    "link.exchanges": "Blocking RPC exchanges on the CC<->MC link.",
    "sim.instructions": "Guest instructions executed.",
    "sim.cycles": "Simulated CPU cycles elapsed.",
}


def _sanitize(name: str) -> str:
    clean = _NAME_RE.sub("_", name)
    if not clean or not (clean[0].isalpha() or clean[0] in "_:"):
        clean = "_" + clean
    return f"repro_{clean}"


def _format_value(value) -> str:
    """One sample value, never emitting bare ``inf``/``nan``.

    The exposition format's only legal spellings are ``+Inf``,
    ``-Inf`` and ``NaN``; ``repr(float("inf"))`` would produce the
    bare ``inf`` scrapers reject, so the non-finite cases are handled
    explicitly before falling back to ``repr``.
    """
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        return repr(value)
    return str(value)


def _help_text(name: str, kind: str) -> str:
    text = _HELP_TEXTS.get(name)
    if text is None:
        text = f"repro {kind} mirrored from the {name!r} metric."
    # HELP runs to end of line; escape per the exposition format
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def to_prometheus(registry: MetricsRegistry, *,
                  build_info: dict | None = None) -> str:
    """Serialize *registry* in the Prometheus text exposition format.

    *build_info* adds labels to the conventional ``repro_build_info``
    gauge (value always 1) beside the built-in ``schema`` label; pass
    None to emit only the schema version.  An empty registry with no
    build-info request serializes to the empty string.
    """
    lines: list[str] = []
    for metric in sorted(registry, key=lambda m: m.name):
        name = _sanitize(metric.name)
        if isinstance(metric, Counter):
            lines.append(f"# HELP {name}_total "
                         f"{_help_text(metric.name, 'counter')}")
            lines.append(f"# TYPE {name}_total counter")
            lines.append(f"{name}_total {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# HELP {name} "
                         f"{_help_text(metric.name, 'gauge')}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# HELP {name} "
                         f"{_help_text(metric.name, 'histogram')}")
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for exponent in sorted(metric.buckets):
                if exponent >= _MAX_FLOAT_EXPONENT:
                    # 2**exponent overflows float; these observations
                    # are covered by the +Inf bucket below
                    break
                cumulative += metric.buckets[exponent]
                le = _format_value(float(1 << exponent))
                lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{name}_sum {_format_value(metric.total)}")
            lines.append(f"{name}_count {metric.count}")
    if lines or build_info is not None:
        labels = {"schema": _schema_version()}
        labels.update({str(k): str(v)
                       for k, v in (build_info or {}).items()})
        pairs = ",".join(f'{_NAME_RE.sub("_", k)}="{_escape_label(v)}"'
                         for k, v in sorted(labels.items()))
        lines.append("# HELP repro_build_info Build/schema identity "
                     "of this exporter (value is always 1).")
        lines.append("# TYPE repro_build_info gauge")
        lines.append(f"repro_build_info{{{pairs}}} 1")
    return "\n".join(lines) + "\n" if lines else ""


def _schema_version() -> str:
    from .events import TRACE_SCHEMA_VERSION
    return str(TRACE_SCHEMA_VERSION)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def write_prometheus(registry: MetricsRegistry, path, *,
                     build_info: dict | None = None) -> None:
    """Write one exposition snapshot of *registry* to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_prometheus(registry, build_info=build_info))
