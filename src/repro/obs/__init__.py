"""repro.obs — the flight recorder: tracing, metrics, trace export.

The observability layer of the reproduction:

* :class:`FlightRecorder` — zero-overhead-when-disabled structured
  event tracer threaded through the CC, MC, link/hub, interpreter and
  fleet; owns a :class:`MetricsRegistry`.
* :mod:`repro.obs.export` — JSONL and Chrome trace-event (Perfetto)
  export, plus ASCII timeline / hot-chunk reports for terminals.
* :mod:`repro.obs.server` — the live ops plane: an in-run HTTP
  endpoint (``--serve HOST:PORT``) with a Prometheus ``/metrics``
  scrape, JSON ``/inspect/*`` snapshots and queued ``/admin/*``
  control verbs applied at miss boundaries (``repro admin``).

Usage::

    from repro.obs import FlightRecorder
    from repro.softcache import SoftCacheConfig, run_softcache

    rec = FlightRecorder()
    report, system = run_softcache(
        image, SoftCacheConfig(tcache_size=2048, recorder=rec))
    from repro.obs import write_jsonl, write_chrome_trace
    write_jsonl(rec.events, "run.jsonl", cpu_hz=rec.cpu_hz)
    write_chrome_trace(rec.events, "run.trace.json", cpu_hz=rec.cpu_hz)

or, from the command line, ``repro trace <workload>`` / ``repro run
<workload> --trace out.jsonl``.  See docs/OBSERVABILITY.md.
"""

from .events import (
    CATEGORY_TRACKS,
    EVENT_SCHEMA,
    TRACE_SCHEMA_VERSION,
    Event,
    FlightRecorder,
)
from .export import (
    ascii_timeline,
    load_jsonl,
    render_hot_chunks,
    to_chrome_trace,
    top_hot_chunks,
    trace_summary,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    publish_dataclass,
)
from .prom import to_prometheus, write_prometheus
from .server import AdminCommand, ControlPlane, ObsServer, parse_serve

__all__ = [
    "CATEGORY_TRACKS", "EVENT_SCHEMA", "TRACE_SCHEMA_VERSION",
    "Event", "FlightRecorder",
    "ascii_timeline", "load_jsonl", "render_hot_chunks",
    "to_chrome_trace", "top_hot_chunks", "trace_summary",
    "write_chrome_trace", "write_jsonl",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "publish_dataclass",
    "to_prometheus", "write_prometheus",
    "AdminCommand", "ControlPlane", "ObsServer", "parse_serve",
]
