"""The live ops plane: an in-run HTTP inspection + control endpoint.

``repro run --serve HOST:PORT`` (and ``repro fleet --serve``) attach an
:class:`ObsServer` to the running system.  The server is a stdlib
``ThreadingHTTPServer`` on a daemon thread; the simulation itself stays
single-threaded and synchronous, which shapes the whole design:

* **GET routes are read-only and cycle-invisible.**  A scrape reads
  the live stats dataclasses and snapshot tables; it charges no
  simulated cycles and mutates no simulated state, so a served run is
  architecturally bit-identical (``architectural_state`` digest) to an
  unserved one.  Concurrent-mutation races (a dict resized mid-walk)
  are retried a few times and then reported as 503 — never propagated
  into the run.
* **Control is queued, not injected.**  POST verbs (``/admin/flush``,
  ``/admin/set``, ``/admin/resize``) land on a :class:`ControlPlane`
  queue that the CC drains *at its next miss boundary* — the only
  point with no half-installed block or mid-patch pointer state — and
  each applied command is billed simulated time (one MC service round
  trip plus whatever the action itself costs, e.g. a resize's flush).

Routes::

    GET  /healthz              liveness + what is attached
    GET  /metrics              Prometheus text exposition (live scrape)
    GET  /inspect              full snapshot (SoftCacheSystem.inspect)
    GET  /inspect/tcache       residency map, stub/link occupancy, heat
    GET  /inspect/superblocks  interpreter tier census (CPU.superblock_census)
    GET  /inspect/shards       per-shard MC load (fleets; 1 shard solo)
    GET  /inspect/images       image versions: epoch, digest, diff
                               sizes, client convergence
    POST /admin/flush          drop every unpinned block
    POST /admin/set            {"prefetch_depth": N, "jit": MODE,
                                "jit_threshold": N}
    POST /admin/resize         {"tcache_size": N}  (<= boot geometry)
    POST /admin/publish        {"image": PATH}  (a saved image file;
                                layout-preserving hot patch)

POSTs block until the command is applied (``?wait=0`` returns 202
immediately; the command still applies at the next miss).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from .metrics import MetricsRegistry
from .prom import to_prometheus

#: Exceptions a snapshot walk may raise when the simulation mutates a
#: container mid-iteration; the server retries, never the simulation.
_RACE_ERRORS = (RuntimeError, KeyError, IndexError)


def parse_serve(spec: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``PORT``) for ``--serve``."""
    spec = spec.strip()
    if ":" in spec:
        host, _, port_s = spec.rpartition(":")
        host = host or "127.0.0.1"
    else:
        host, port_s = "127.0.0.1", spec
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(
            f"--serve expects HOST:PORT or PORT, got {spec!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"--serve port out of range: {port}")
    return host, port


class AdminCommand:
    """One queued control verb, completed by the CC when applied."""

    __slots__ = ("verb", "args", "done", "result", "error")

    def __init__(self, verb: str, args: dict):
        self.verb = verb
        self.args = dict(args)
        self.done = threading.Event()
        self.result: dict | None = None
        self.error: str | None = None

    def complete(self, result: dict) -> None:
        self.result = result
        self.done.set()

    def fail(self, error: str) -> None:
        self.error = error
        self.done.set()


class ControlPlane:
    """Thread-safe admin queue between the HTTP thread and the CC.

    The CC checks the plain :attr:`pending` bool on its miss path —
    one attribute read, no lock — and calls :meth:`drain` (locked)
    only when a command is actually waiting, so an attached-but-idle
    ops plane costs nothing measurable and charges no simulated time.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._queue: list[AdminCommand] = []
        #: Lock-free fast-path flag read by the CC each miss.
        self.pending = False
        #: Commands successfully applied (monotonic).
        self.applied = 0

    def post(self, verb: str, args: dict | None = None) -> AdminCommand:
        cmd = AdminCommand(verb, args or {})
        with self._lock:
            self._queue.append(cmd)
            self.pending = True
        return cmd

    def drain(self) -> list[AdminCommand]:
        with self._lock:
            cmds, self._queue = self._queue, []
            self.pending = False
        return cmds


class ObsServer:
    """HTTP ops endpoint over one system (or one fleet's server tier).

    Sources are swappable: :meth:`attach_system` rebinds the snapshot
    and metrics callables, so one bound socket can serve a sequence of
    runs (the overhead benchmark reuses a single server across its
    timed runs; the fleet re-attaches per distinct client).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        server = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt, *args):  # quiet by design
                pass

            def do_GET(self):
                server._handle_get(self)

            def do_POST(self):
                server._handle_post(self)

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-obs-server",
            daemon=True)
        self._lock = threading.Lock()
        self._system = None
        self._fleet_mc = None
        self._fleet_shards = 0
        #: ControlPlane wired into the attached system's CC, or None.
        self.control: ControlPlane | None = None
        #: GET requests served (host-side bookkeeping only).
        self.scrapes = 0
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsServer":
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    def close(self) -> None:
        if self._started:
            self._httpd.shutdown()
        self._httpd.server_close()

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- attachment --------------------------------------------------------

    def attach_system(self, system, *, control: bool = True) -> None:
        """Serve *system* (a :class:`SoftCacheSystem`).

        With *control* (the default) a :class:`ControlPlane` is wired
        into the system's CC so POST verbs apply at miss boundaries;
        ``control=False`` attaches read-only (the fleet's capture
        phase, where mid-capture retuning would break the
        clients-are-identical replay contract).
        """
        with self._lock:
            self._system = system
            if control:
                self.control = ControlPlane()
                system.cc._control = self.control
            else:
                self.control = None

    def attach_fleet(self, shared_mc, shards: int) -> None:
        """Serve a fleet's shared server tier (``/inspect/shards``)."""
        with self._lock:
            self._fleet_mc = shared_mc
            self._fleet_shards = max(1, shards)

    # -- snapshot building -------------------------------------------------

    def _snapshot(self, builder):
        """Run *builder* with retry on concurrent-mutation races."""
        last: Exception | None = None
        for _ in range(4):
            try:
                return builder()
            except _RACE_ERRORS as exc:
                last = exc
        raise _SnapshotUnavailable(str(last))

    def _metrics_text(self) -> str:
        with self._lock:
            system = self._system
            fleet_mc = self._fleet_mc
        registry = MetricsRegistry()
        build_info = {}
        if system is not None:
            self._snapshot(lambda: system.publish_metrics(registry))
            build_info["jit"] = system.config.jit
            build_info["granularity"] = system.config.granularity
        if fleet_mc is not None:
            from .metrics import publish_dataclass

            def _publish_fleet():
                shards = getattr(fleet_mc, "shards", None)
                if shards is not None:
                    for i, part in enumerate(shards):
                        publish_dataclass(registry, f"fleet.shard{i}",
                                          part.stats)
                else:
                    publish_dataclass(registry, "fleet.shard0",
                                      fleet_mc.stats)

            self._snapshot(_publish_fleet)
        return to_prometheus(registry, build_info=build_info)

    def _inspect(self, route: str):
        with self._lock:
            system = self._system
            fleet_mc = self._fleet_mc
            shards = self._fleet_shards
        if route == "images":
            if system is not None:
                return self._snapshot(system._inspect_images)
            if fleet_mc is not None:
                info = getattr(fleet_mc, "version_info", None)
                if info is not None:
                    return self._snapshot(info)
                return {"group": "default", "epoch": 0, "versions": []}
            raise _NotAttached("no system or fleet attached")
        if route in ("", "tcache", "superblocks"):
            if system is None:
                raise _NotAttached("no system attached")
            full = self._snapshot(system.inspect)
            if route == "":
                if fleet_mc is not None:
                    full["shards"] = self._snapshot(
                        lambda: _shard_snapshot(fleet_mc, shards))
                return full
            return full[route]
        if route == "shards":
            if fleet_mc is not None:
                return self._snapshot(
                    lambda: _shard_snapshot(fleet_mc, shards))
            if system is not None:
                return self._snapshot(
                    lambda: _shard_snapshot(system.mc, 1))
            raise _NotAttached("no system or fleet attached")
        raise _NotFound(f"unknown inspect route {route!r}")

    # -- HTTP plumbing -----------------------------------------------------

    def _handle_get(self, handler) -> None:
        self.scrapes += 1
        path = urlparse(handler.path).path.rstrip("/")
        try:
            if path == "/healthz":
                with self._lock:
                    body = {
                        "status": "ok",
                        "system": self._system is not None,
                        "fleet": self._fleet_mc is not None,
                        "control": self.control is not None,
                    }
                _send_json(handler, 200, body)
            elif path == "/metrics":
                text = self._metrics_text()
                _send(handler, 200, text.encode(),
                      "text/plain; version=0.0.4; charset=utf-8")
            elif path == "/inspect" or path.startswith("/inspect/"):
                route = path[len("/inspect"):].lstrip("/")
                _send_json(handler, 200, self._inspect(route))
            else:
                _send_json(handler, 404,
                           {"error": f"no route {path!r}"})
        except _NotAttached as exc:
            _send_json(handler, 503, {"error": str(exc)})
        except _NotFound as exc:
            _send_json(handler, 404, {"error": str(exc)})
        except _SnapshotUnavailable as exc:
            _send_json(handler, 503,
                       {"error": f"snapshot raced with the "
                                 f"simulation: {exc}"})

    _ADMIN_VERBS = ("flush", "set", "resize", "publish")

    def _handle_post(self, handler) -> None:
        parsed = urlparse(handler.path)
        path = parsed.path.rstrip("/")
        if not path.startswith("/admin/"):
            _send_json(handler, 404, {"error": f"no route {path!r}"})
            return
        verb = path[len("/admin/"):]
        if verb not in self._ADMIN_VERBS:
            _send_json(handler, 404,
                       {"error": f"unknown admin verb {verb!r}"})
            return
        control = self.control
        if control is None:
            _send_json(handler, 503,
                       {"error": "no controllable system attached"})
            return
        length = int(handler.headers.get("Content-Length") or 0)
        raw = handler.rfile.read(length) if length else b""
        try:
            args = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            _send_json(handler, 400, {"error": f"bad JSON body: {exc}"})
            return
        if not isinstance(args, dict):
            _send_json(handler, 400,
                       {"error": "admin body must be a JSON object"})
            return
        query = parse_qs(parsed.query)
        wait_s = float(query.get("wait", ["10"])[0])
        cmd = control.post(verb, args)
        if wait_s > 0 and cmd.done.wait(wait_s):
            if cmd.error is not None:
                _send_json(handler, 400, {"status": "rejected",
                                          "error": cmd.error})
            else:
                _send_json(handler, 200, {"status": "applied",
                                          "result": cmd.result})
        else:
            _send_json(handler, 202,
                       {"status": "pending", "verb": verb,
                        "note": "applies at the next miss boundary"})


class _NotAttached(Exception):
    pass


class _NotFound(Exception):
    pass


class _SnapshotUnavailable(Exception):
    pass


def _shard_snapshot(mc, shards: int) -> dict:
    """Per-shard load from a (possibly sharded) memory controller."""
    parts = getattr(mc, "shards", None)
    if parts is None:
        parts = [mc]
    rows = []
    for i, part in enumerate(parts):
        st = part.stats
        rows.append({
            "shard": i,
            "requests": st.requests,
            "chunks_built": st.chunks_built,
            "chunk_cache_hits": st.chunk_cache_hits,
            "bytes_served": st.bytes_served,
            "restarts": getattr(st, "restarts", 0),
        })
    total = sum(r["requests"] for r in rows)
    return {"n_shards": len(rows), "requests": total, "shards": rows}


def _send(handler, code: int, body: bytes, content_type: str) -> None:
    handler.send_response(code)
    handler.send_header("Content-Type", content_type)
    handler.send_header("Content-Length", str(len(body)))
    handler.end_headers()
    handler.wfile.write(body)


def _send_json(handler, code: int, obj) -> None:
    _send(handler, code, (json.dumps(obj, indent=1) + "\n").encode(),
          "application/json")
