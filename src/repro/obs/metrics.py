"""Metrics registry: counters, gauges and histograms.

The registry is the aggregate companion of the event tracer: events
answer *when and why* something happened, metrics answer *how often
and how much* without storing every occurrence.  The SoftCache's
existing counter blocks (:class:`~repro.softcache.stats.SoftCacheStats`,
``MCStats``, ``LinkStats``, ``SuperblockStats``) publish into a
registry after a run via :func:`publish_dataclass`, and the hot paths
feed histograms (miss latency, patch distance) live while tracing is
enabled — the dataclasses stay the single source of truth for the
figures, so enabling observability never changes their values.

Histograms use power-of-two buckets: ``observe(v)`` lands ``v`` in
bucket ``ceil(log2(v))`` — coarse, O(1), and exactly what latency
distributions need.  Quantiles are estimated from the bucket upper
bounds (conservative: the reported p50/p90 is an upper bound of the
true quantile).
"""

from __future__ import annotations

import dataclasses


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Power-of-two-bucketed distribution of non-negative values."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.min: float | None = None
        self.max: float | None = None
        #: bucket exponent -> count; values in (2**(e-1), 2**e].
        self.buckets: dict[int, int] = {}

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        e = max(0, int(value) - 1).bit_length()
        self.buckets[e] = self.buckets.get(e, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the *q*-quantile (0 <= q <= 1)."""
        if not self.count:
            return 0.0
        need = q * self.count
        seen = 0
        for e in sorted(self.buckets):
            seen += self.buckets[e]
            if seen >= need:
                return float(1 << e)
        return float(self.max or 0)

    def snapshot(self) -> dict:
        return {
            "count": self.count, "sum": self.total, "mean": self.mean,
            "min": self.min, "max": self.max,
            "p50": self.quantile(0.5), "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
            "buckets": {str(1 << e): n
                        for e, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Named counters/gauges/histograms, create-on-first-use."""

    def __init__(self):
        self._metrics: dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """JSON-serializable dump of every metric."""
        out: dict = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value
        return out


def publish_dataclass(registry: MetricsRegistry, prefix: str,
                      stats: object) -> None:
    """Publish every int/float field of a stats dataclass.

    Ints become counters (idempotent: re-publishing the same object
    adds only the delta), floats become gauges.  Lists and dicts
    (timeline arrays, per-kind maps) publish their length as a gauge —
    the full series belongs in the event trace, not the registry.
    """
    for f in dataclasses.fields(stats):
        value = getattr(stats, f.name)
        name = f"{prefix}.{f.name}"
        if isinstance(value, bool):
            registry.gauge(name).set(int(value))
        elif isinstance(value, int):
            counter = registry.counter(name)
            counter.inc(value - counter.value)
        elif isinstance(value, float):
            registry.gauge(name).set(value)
        elif isinstance(value, (list, dict)):
            registry.gauge(f"{name}.len").set(len(value))
