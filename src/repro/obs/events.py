"""The flight recorder: structured event tracing for the SoftCache.

A :class:`FlightRecorder` collects timestamped :class:`Event` records
from every layer of the stack — the cache controller (miss traps,
translations, backpatches, evictions, flushes, prefetch decisions),
the memory controller (chunk rewrites, batch assembly), the link and
hub (exchanges, far hops), the interpreter (superblock fusion and
invalidation) and the fleet (per-client timelines, shared-uplink
queueing).  Events carry the *simulated* cycle clock (so they line up
with the paper's time-shaped figures) plus host wall time (so host
performance work can use the same traces), and export as JSONL or as
Chrome trace-event JSON loadable in Perfetto
(:mod:`repro.obs.export`).

Zero overhead when disabled
---------------------------
Tracing is off by default and costs nothing when off.  Components hold
a ``tracer`` attribute that is ``None`` unless a recorder was attached
*and enabled*; every emission site is guarded by a single
``is not None`` check.  Passing ``FlightRecorder(enabled=False)``
through the config attaches nothing, so "disabled mode" is exactly the
seed code path (a CI job pins this: the disabled-mode overhead on the
thrash benchmark must stay under 2%).

The recorder also owns a :class:`~repro.obs.metrics.MetricsRegistry`;
:class:`~repro.softcache.stats.SoftCacheStats` and friends publish
into it after a run, and the hot paths feed the miss-latency and
patch-distance histograms directly while tracing is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from .metrics import MetricsRegistry

#: Version of the on-disk event schema (bumped on incompatible change).
#: v2: fault-injection layer (fault.* track, cc.degraded_* spans,
#: mc.restart) — see docs/OBSERVABILITY.md and docs/FAULTS.md.
#: v3: event-driven fleet (fleet.client gains delay_s, fleet.queue
#: gains where and folds shard waits in, fleet.shard / fleet.hub
#: summaries) — see docs/FLEET.md.
#: v4: template-JIT tier (cpu track: cpu.jit_compile / cpu.jit_load /
#: cpu.jit_promote) — see docs/PERFORMANCE.md.
#: v5: replacement policies (cc.policy_reject / cc.policy_promote /
#: cc.policy_flush) — see docs/OBSERVABILITY.md.
#: v6: live code update (mc.publish, cc.epoch_observed,
#: cc.update_barrier) — see docs/UPDATES.md.
TRACE_SCHEMA_VERSION = 6

#: Chrome-trace thread lane per event category.  One process (pid) is
#: one client; within it each layer of the stack gets its own track.
CATEGORY_TRACKS: dict[str, int] = {
    "cc": 1,       # cache controller (client)
    "mc": 2,       # memory controller (server)
    "link": 3,     # CC<->MC channel
    "hub": 4,      # mid-tier hub cache
    "interp": 5,   # superblock interpreter
    "fleet": 6,    # shared-uplink queue / per-client spans
    "fault": 7,    # fault injection (drops, retries, reconnects)
    "cpu": 8,      # template-JIT tier (codegen/load/promotion)
}

#: Every event name the stack emits, with the argument keys it carries.
#: Golden-tested (tests/test_obs.py) so the trace format is a contract:
#: extending it means updating this table and the docs deliberately.
EVENT_SCHEMA: dict[str, tuple[str, ...]] = {
    # cache controller -------------------------------------------------
    "cc.trap": ("kind", "id"),
    "cc.miss": ("orig", "name", "size", "batch"),
    "cc.prefetch_install": ("orig", "name", "size"),
    "cc.prefetch_drop": ("orig", "size", "reason"),
    "cc.patch": ("site", "target", "kind", "distance"),
    "cc.evict": ("orig", "addr", "size", "wasted"),
    "cc.flush": ("blocks",),
    "cc.pin": ("orig", "size"),
    "cc.guest_invalidate": ("addr", "length"),
    "cc.degraded_enter": ("orig", "pending"),
    "cc.degraded_exit": ("orig", "stall_cycles"),
    "cc.policy_reject": ("orig", "policy"),
    "cc.policy_promote": ("orig", "touches"),
    "cc.policy_flush": ("resident", "protected"),
    "cc.epoch_observed": ("epoch", "prev"),
    "cc.update_barrier": ("epoch", "prev", "invalidated", "restamped",
                          "dropped_prefetch"),
    # memory controller ------------------------------------------------
    "mc.rewrite": ("orig", "words", "exits"),
    "mc.serve": ("orig", "bytes", "cached"),
    "mc.batch": ("orig", "chunks", "prefetch_bytes"),
    "mc.restart": (),
    "mc.publish": ("epoch", "digest", "dirty_chunks", "dirty_bytes",
                   "durable"),
    # link / hub ---------------------------------------------------------
    "link.exchange": ("kind", "payload", "overhead", "seconds"),
    "link.batch": ("kind", "chunks", "payload", "seconds"),
    "link.send": ("kind", "payload", "seconds"),
    "hub.hit": ("key", "bytes"),
    "hub.far": ("bytes", "seconds"),
    # interpreter --------------------------------------------------------
    "interp.fuse": ("pc", "fused"),
    "interp.sb_invalidate": ("pc",),
    "interp.flush": (),
    # template-JIT tier --------------------------------------------------
    "cpu.jit_compile": ("pc", "fused"),
    "cpu.jit_load": ("pc", "fused"),
    "cpu.jit_promote": ("pc", "count"),
    # fleet ----------------------------------------------------------------
    "fleet.client": ("client", "start_s", "seconds", "translations",
                     "delay_s"),
    "fleet.queue": ("where", "arrival_s", "delay_s", "service_s"),
    "fleet.shard": ("shard", "requests", "busy_s", "util"),
    "fleet.hub": ("requests", "hits", "hit_rate"),
    # fault injection ------------------------------------------------------
    "fault.drop": ("kind", "attempt", "where"),
    "fault.corrupt": ("kind", "attempt"),
    "fault.duplicate": ("kind",),
    "fault.delay": ("kind", "seconds"),
    "fault.retry": ("kind", "attempt", "backoff_s"),
    "fault.link_down": ("kind", "attempts"),
    "fault.reconnect": ("stall_s",),
}


@dataclass(slots=True)
class Event:
    """One structured trace event.

    ``ph`` follows the Chrome trace-event phases we use: ``"i"`` for
    an instant event, ``"X"`` for a complete span with ``dur_cycles``.
    """

    name: str
    cat: str
    ph: str
    cycles: int
    host_s: float
    dur_cycles: int = 0
    pid: int = 0
    tid: int = 0
    args: dict = field(default_factory=dict)

    def to_record(self) -> dict:
        """The JSONL wire form (stable key order, schema-pinned)."""
        return {
            "name": self.name, "cat": self.cat, "ph": self.ph,
            "cycles": self.cycles, "host_s": self.host_s,
            "dur_cycles": self.dur_cycles, "pid": self.pid,
            "tid": self.tid, "args": self.args,
        }


class FlightRecorder:
    """Collects events and metrics for one run (or one fleet).

    *clock* supplies the simulated cycle timestamp when an emission
    site does not pass one explicitly; :class:`SoftCacheSystem` binds
    it to its CPU's cycle counter at wiring time.  *pid* labels every
    event (the fleet uses it for per-client timelines).  *max_events*
    bounds memory on pathological runs; overflow is counted in
    :attr:`dropped`, never raised.
    """

    def __init__(self, *, enabled: bool = True,
                 clock: Callable[[], int] | None = None,
                 pid: int = 0, max_events: int = 2_000_000):
        self.enabled = enabled
        self.pid = pid
        self.max_events = max_events
        self.events: list[Event] = []
        self.dropped = 0
        self.metrics = MetricsRegistry()
        self._clock = clock or (lambda: 0)
        self._t0 = perf_counter()
        #: cpu_hz of the run, recorded at wiring time for exporters.
        self.cpu_hz: float = 200e6

    def __bool__(self) -> bool:
        return self.enabled

    def bind_clock(self, clock: Callable[[], int],
                   cpu_hz: float | None = None) -> None:
        """Attach the simulated-cycle clock (done by the system)."""
        self._clock = clock
        if cpu_hz is not None:
            self.cpu_hz = cpu_hz

    def emit(self, name: str, cat: str, /, cycles: int | None = None, *,
             dur: int = 0, pid: int | None = None, **args) -> None:
        """Record one event.  Callers guard with ``is not None``, so
        this is never reached when tracing is off.  *pid* overrides
        the recorder's process id (the fleet tags per-client spans)."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(Event(
            name=name, cat=cat, ph="X" if dur else "i",
            cycles=self._clock() if cycles is None else cycles,
            host_s=perf_counter() - self._t0, dur_cycles=dur,
            pid=self.pid if pid is None else pid,
            tid=CATEGORY_TRACKS.get(cat, 0), args=args))

    def merge(self, other: "FlightRecorder",
              cycle_offset: int = 0) -> None:
        """Fold *other*'s events into this recorder (fleet merging).

        *cycle_offset* shifts the child's cycle clock onto the shared
        timeline (a client booted at ``start_s`` has its events placed
        at ``start_s * cpu_hz + cycles``).
        """
        for ev in other.events:
            self.events.append(Event(
                name=ev.name, cat=ev.cat, ph=ev.ph,
                cycles=ev.cycles + cycle_offset, host_s=ev.host_s,
                dur_cycles=ev.dur_cycles, pid=ev.pid, tid=ev.tid,
                args=ev.args))
        self.dropped += other.dropped
