"""repro.profiling — exact flat profiling over the simulator.

The reproduction's gprof: :func:`profile_image` attributes every
executed instruction to its procedure, identifies the hot set by the
paper's 90%-of-runtime rule, and reports dynamic text size (Table 1)
and the normalized dynamic footprint (Figure 9).
:func:`auto_tcache_size` closes the loop (``--tcache-size auto``):
dominant-block-guided tcache sizing from the profiled hot working
set, measured through the real chunker.
"""

from .autosize import (
    AutoSizeEstimate,
    auto_tcache_size,
    estimate_tcache_size,
    measure_rewritten_bytes,
)
from .profiler import Profile, ProcProfile, profile_image
from .temperature import (
    TemperatureMap,
    temperature_for_image,
    temperature_map,
)

__all__ = [
    "AutoSizeEstimate", "ProcProfile", "Profile", "TemperatureMap",
    "auto_tcache_size", "estimate_tcache_size",
    "measure_rewritten_bytes", "profile_image",
    "temperature_for_image", "temperature_map",
]
