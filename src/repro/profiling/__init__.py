"""repro.profiling — exact flat profiling over the simulator.

The reproduction's gprof: :func:`profile_image` attributes every
executed instruction to its procedure, identifies the hot set by the
paper's 90%-of-runtime rule, and reports dynamic text size (Table 1)
and the normalized dynamic footprint (Figure 9).
"""

from .profiler import Profile, ProcProfile, profile_image

__all__ = ["ProcProfile", "Profile", "profile_image"]
