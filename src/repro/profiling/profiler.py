"""Execution profiling over the simulator (the reproduction's gprof).

Figure 9's methodology: "The hot code was initially identified by
using gprof to determine which functions constituted at least 90% of
the application run time."  Our equivalent runs the program natively
with a full fetch trace and attributes every executed instruction to
its containing procedure — *exact* flat profiling, plus a dynamic
call-graph built from the execution counts of call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..asm.image import Image, ProcSpan
from ..isa import Op, decode, jump_target
from ..sim.machine import Machine, MachineConfig


@dataclass(frozen=True)
class ProcProfile:
    """Flat profile entry for one procedure."""

    proc: ProcSpan
    instructions: int
    fraction: float

    @property
    def name(self) -> str:
        return self.proc.name


@dataclass
class Profile:
    """Result of profiling one run."""

    image: Image
    total_instructions: int
    entries: list[ProcProfile]
    #: bytes of text executed at least once (Table 1 "Dynamic .text")
    dynamic_text_bytes: int
    #: dynamic call counts: (caller, callee) -> times executed
    call_counts: dict[tuple[str, str], int] = field(default_factory=dict)
    output: str = ""
    exit_code: int = 0

    def hot_procs(self, threshold: float = 0.90) -> list[ProcProfile]:
        """Smallest prefix of the flat profile covering *threshold* of
        all executed instructions — the paper's 90% rule."""
        out: list[ProcProfile] = []
        covered = 0
        for entry in self.entries:
            if covered >= threshold * self.total_instructions:
                break
            out.append(entry)
            covered += entry.instructions
        return out

    def hot_code_bytes(self, threshold: float = 0.90) -> int:
        """Static size of the hot procedures (Fig 8's CC sizing)."""
        return sum(e.proc.size for e in self.hot_procs(threshold))

    def normalized_dynamic_footprint(self,
                                     threshold: float = 0.90) -> float:
        """Hot-code size over static text size (Figure 9's metric)."""
        return self.hot_code_bytes(threshold) / self.image.static_text_size

    def entry_named(self, name: str) -> ProcProfile:
        for entry in self.entries:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def report(self, top: int = 12) -> str:
        """Human-readable flat profile (gprof-style)."""
        lines = [f"{'%':>6} {'cum%':>6} {'instrs':>10}  name",
                 "-" * 44]
        cum = 0
        for entry in self.entries[:top]:
            cum += entry.instructions
            lines.append(
                f"{100 * entry.fraction:6.2f} "
                f"{100 * cum / self.total_instructions:6.2f} "
                f"{entry.instructions:10d}  {entry.name}")
        return "\n".join(lines)


def profile_image(image: Image, *, config: MachineConfig | None = None,
                  max_instructions: int = 200_000_000) -> Profile:
    """Run *image* natively with a fetch trace and build its profile."""
    machine = Machine(image, config)
    _, trace = machine.run_traced(max_instructions)
    addrs = np.frombuffer(trace, dtype=np.uint32)
    unique_pcs, counts = np.unique(addrs, return_counts=True)
    total = int(addrs.size)

    # attribute instruction counts to procedures by span search
    starts = np.array([p.addr for p in image.procs], dtype=np.uint64)
    idx = np.searchsorted(starts, unique_pcs.astype(np.uint64),
                          side="right") - 1
    per_proc: dict[str, int] = {}
    for pc_i, count, proc_i in zip(unique_pcs, counts, idx):
        if proc_i < 0:
            continue
        proc = image.procs[int(proc_i)]
        if not proc.contains(int(pc_i)):
            continue
        per_proc[proc.name] = per_proc.get(proc.name, 0) + int(count)

    entries = sorted(
        (ProcProfile(image.proc_named(name), n, n / total)
         for name, n in per_proc.items()),
        key=lambda e: e.instructions, reverse=True)

    # dynamic call graph from call-site execution counts
    count_at = dict(zip((int(a) for a in unique_pcs),
                        (int(c) for c in counts)))
    call_counts: dict[tuple[str, str], int] = {}
    for pc, executed in count_at.items():
        if not image.in_text(pc):
            continue
        word = image.word_at(pc)
        if (word >> 26) != int(Op.JAL):
            continue
        ins = decode(word)
        assert ins.op is Op.JAL
        caller = image.proc_at(pc)
        callee = image.proc_at(jump_target(word))
        if caller is None or callee is None:
            continue
        key = (caller.name, callee.name)
        call_counts[key] = call_counts.get(key, 0) + executed

    return Profile(
        image=image,
        total_instructions=total,
        entries=entries,
        dynamic_text_bytes=4 * int(unique_pcs.size),
        call_counts=call_counts,
        output=machine.output_text,
        exit_code=machine.cpu.exit_code or 0,
    )
