"""Temperature classification of procedures from the flat profile.

The TRRIP policy (:mod:`repro.softcache.policy`) needs a per-address
"temperature" signal: which code is worth protecting in the tcache
and which prefetch candidates are a waste of link bytes.  The paper's
90%-rule hot set (:meth:`repro.profiling.Profile.hot_procs`) is
exactly that signal, extended to three classes:

* ``hot`` — procedures in the smallest prefix of the flat profile
  covering *threshold* (default 90%) of executed instructions;
* ``warm`` — procedures that executed at all but fell outside the
  hot prefix;
* ``cold`` — procedures in the image that never executed during the
  profiling run (init/terminal/error paths).

:class:`TemperatureMap` resolves an original address to its class in
O(log n) by bisecting sorted procedure spans; addresses outside every
known span (padding, data-in-text) classify cold — never speculated
on, demand-fetched as usual.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from ..asm.image import Image
from .profiler import Profile, profile_image

HOT = "hot"
WARM = "warm"
COLD = "cold"


@dataclass(frozen=True)
class TemperatureMap:
    """Address → hot/warm/cold classifier over procedure spans."""

    #: sorted, non-overlapping (start, end, temperature) spans
    spans: tuple[tuple[int, int, str], ...]
    #: procedure counts per temperature, e.g. {"hot": 2, ...}
    counts: dict[str, int] = field(default_factory=dict)
    _starts: tuple[int, ...] = field(init=False, repr=False)

    def __post_init__(self):
        object.__setattr__(self, "_starts",
                           tuple(s[0] for s in self.spans))

    def classify(self, addr: int) -> str:
        """Temperature of *addr* (cold when no span contains it)."""
        i = bisect_right(self._starts, addr) - 1
        if i >= 0:
            start, end, temp = self.spans[i]
            if start <= addr < end:
                return temp
        return COLD


def temperature_map(profile: Profile, *,
                    threshold: float = 0.90) -> TemperatureMap:
    """Classify every procedure of the profiled image."""
    hot_names = {e.name for e in profile.hot_procs(threshold)}
    executed = {e.name for e in profile.entries}
    spans = []
    counts = {HOT: 0, WARM: 0, COLD: 0}
    for proc in profile.image.procs:
        if proc.name in hot_names:
            temp = HOT
        elif proc.name in executed:
            temp = WARM
        else:
            temp = COLD
        counts[temp] += 1
        spans.append((proc.addr, proc.end, temp))
    spans.sort()
    return TemperatureMap(spans=tuple(spans), counts=counts)


def temperature_for_image(image: Image, *, threshold: float = 0.90,
                          profile: Profile | None = None
                          ) -> TemperatureMap:
    """Profile *image* natively (unless a profile is supplied) and
    build its temperature map — the ``--policy trrip`` front door."""
    if profile is None:
        profile = profile_image(image)
    return temperature_map(profile, threshold=threshold)
