"""Dominant-block-guided tcache sizing (``--tcache-size auto``).

Closes the observability→configuration loop: the profiler already
identifies the hot working set (the paper's 90%-of-runtime rule,
:meth:`Profile.hot_procs`) and Fig 8 sizes CC memories around
``hot_code_bytes`` — this module turns that signal into a concrete
tcache size, the way dominant-block cache-size estimation picks the
smallest cache holding the dominant blocks.

The estimate is measured, not guessed: the hot procedures are tiled
through the *real* chunker for the configured granularity, so the
rewriting expansion (extra words per chunk, per-granularity chunk
shapes) is exact rather than a fudge factor.  A slack multiplier then
covers what profiling cannot see — the cold tail that still rotates
through the cache, stub-area pressure shaping the usable block area —
and the result is rounded up to an allocator-friendly quantum.
"""

from __future__ import annotations

from dataclasses import dataclass

from .profiler import Profile, profile_image


@dataclass(frozen=True)
class AutoSizeEstimate:
    """Everything ``--tcache-size auto`` derived, for reporting."""

    #: The chosen tcache size in bytes.
    tcache_size: int
    #: Static bytes of the hot procedures (the dominant-block set).
    hot_code_bytes: int
    #: Those procedures' size after rewriting (tiled through the
    #: chunker; what they actually occupy in the tcache).
    rewritten_hot_bytes: int
    #: Names of the hot procedures, hottest first.
    hot_procs: tuple[str, ...]
    #: Profile coverage threshold used (the 90% rule by default).
    threshold: float
    #: Headroom multiplier applied over the rewritten hot bytes.
    slack: float


def measure_rewritten_bytes(image, procs, *, granularity: str = "block",
                            ebb_limit: int = 8) -> int:
    """Tile *procs* through the real chunker; sum rewritten sizes.

    Walks each procedure the way the CC faults it in — chunk at the
    start, advance by the original bytes the chunk covered — so EBB
    gluing, per-chunk extra words and proc-mode whole-procedure chunks
    are all measured exactly.  Procedures the chunker refuses
    (programming-model violations) fall back to a conservative 2x of
    their static size.
    """
    from ..softcache.chunks import ChunkError
    from ..softcache.mc import MemoryController

    mc = MemoryController(image, granularity=granularity,
                          ebb_limit=ebb_limit)
    total = 0
    for proc in procs:
        addr = proc.addr
        while addr < proc.end:
            try:
                chunk = mc.chunker.chunk_at(addr)
            except ChunkError:
                total += 2 * (proc.end - addr)
                break
            total += chunk.size
            if chunk.orig_size <= 0:  # defensive: never stall
                total += 2 * (proc.end - addr)
                break
            addr += chunk.orig_size
    return total


def estimate_tcache_size(image, *, threshold: float = 0.90,
                         slack: float = 1.2, quantum: int = 1024,
                         minimum: int = 1024,
                         granularity: str = "block",
                         ebb_limit: int = 8,
                         profile: Profile | None = None
                         ) -> AutoSizeEstimate:
    """Full auto-size estimate with its inputs (for reporting).

    *profile* reuses an existing native profile; otherwise one
    profiling run is performed.  *slack* is headroom over the
    rewritten hot working set; *quantum* rounds the result up to an
    allocator-friendly multiple; *minimum* floors pathological
    profiles (a tiny hot loop still needs room to breathe).
    """
    if profile is None:
        profile = profile_image(image)
    hot = profile.hot_procs(threshold)
    rewritten = measure_rewritten_bytes(
        image, [e.proc for e in hot], granularity=granularity,
        ebb_limit=ebb_limit)
    raw = max(minimum, int(rewritten * slack))
    size = -(-raw // quantum) * quantum  # round up to the quantum
    return AutoSizeEstimate(
        tcache_size=size,
        hot_code_bytes=profile.hot_code_bytes(threshold),
        rewritten_hot_bytes=rewritten,
        hot_procs=tuple(e.name for e in hot),
        threshold=threshold,
        slack=slack,
    )


def auto_tcache_size(image, *, threshold: float = 0.90,
                     slack: float = 1.2, quantum: int = 1024,
                     minimum: int = 1024, granularity: str = "block",
                     ebb_limit: int = 8,
                     profile: Profile | None = None) -> int:
    """The ``--tcache-size auto`` entry point: bytes for this image."""
    return estimate_tcache_size(
        image, threshold=threshold, slack=slack, quantum=quantum,
        minimum=minimum, granularity=granularity, ebb_limit=ebb_limit,
        profile=profile).tcache_size
