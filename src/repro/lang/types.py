"""Type system of MinC, the reproduction's small C-like language.

MinC has ``int`` (32-bit signed), ``char`` (8-bit unsigned), ``void``,
pointers to any depth, and one-dimensional arrays.  Function names used
without a call evaluate to the function's address (our stand-in for
function pointers; calling through a variable emits ``jalr``, the
*ambiguous pointer* case the SoftCache handles via its hash-table
fallback).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Type:
    """A MinC type: base kind + pointer depth (+ array length)."""

    kind: str            # 'int' | 'char' | 'void' | 'func'
    ptr: int = 0         # pointer depth
    array_len: int | None = None  # None unless a declared array

    def __post_init__(self) -> None:
        if self.kind not in ("int", "char", "void", "func"):
            raise ValueError(f"bad type kind {self.kind}")

    # -- constructors ----------------------------------------------------

    def pointer_to(self) -> "Type":
        return Type(self.kind, self.ptr + 1)

    def deref(self) -> "Type":
        if self.ptr == 0:
            raise TypeError(f"cannot dereference non-pointer {self}")
        return Type(self.kind, self.ptr - 1)

    def decay(self) -> "Type":
        """Array-to-pointer decay."""
        if self.array_len is not None:
            return Type(self.kind, self.ptr + 1)
        return self

    # -- predicates -------------------------------------------------------

    @property
    def is_pointer(self) -> bool:
        return self.ptr > 0 and self.array_len is None

    @property
    def is_array(self) -> bool:
        return self.array_len is not None

    @property
    def is_integer(self) -> bool:
        return self.ptr == 0 and self.array_len is None and \
            self.kind in ("int", "char")

    # -- sizes ----------------------------------------------------------------

    @property
    def element_size(self) -> int:
        """Size of the pointed-to / element type in bytes."""
        if self.ptr > 1 or (self.ptr >= 1 and self.array_len is not None):
            return 4
        if self.ptr == 1 or self.array_len is not None:
            return 1 if self.kind == "char" else 4
        raise TypeError(f"{self} has no element type")

    @property
    def size(self) -> int:
        """Storage size in bytes of a value of this type."""
        if self.array_len is not None:
            return self.element_size * self.array_len
        if self.ptr > 0:
            return 4
        if self.kind == "char":
            return 1
        if self.kind == "void":
            raise TypeError("void has no size")
        return 4

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        text = self.kind + "*" * self.ptr
        if self.array_len is not None:
            text += f"[{self.array_len}]"
        return text


INT = Type("int")
CHAR = Type("char")
VOID = Type("void")
FUNC = Type("func")
