"""AST node definitions for MinC."""

from __future__ import annotations

from dataclasses import dataclass, field

from .types import Type


@dataclass(slots=True)
class Node:
    line: int = 0


# --- expressions -----------------------------------------------------------

@dataclass(slots=True)
class IntLit(Node):
    value: int = 0


@dataclass(slots=True)
class CharLit(Node):
    value: int = 0


@dataclass(slots=True)
class StrLit(Node):
    value: str = ""


@dataclass(slots=True)
class Ident(Node):
    name: str = ""


@dataclass(slots=True)
class Unary(Node):
    op: str = ""           # '-' '!' '~' '*' '&'
    operand: Node | None = None


@dataclass(slots=True)
class Binary(Node):
    op: str = ""
    left: Node | None = None
    right: Node | None = None


@dataclass(slots=True)
class Assign(Node):
    op: str = "="          # '=' '+=' '-=' ...
    target: Node | None = None
    value: Node | None = None


@dataclass(slots=True)
class IncDec(Node):
    op: str = "++"
    target: Node | None = None
    prefix: bool = True


@dataclass(slots=True)
class Ternary(Node):
    cond: Node | None = None
    then: Node | None = None
    other: Node | None = None


@dataclass(slots=True)
class Call(Node):
    callee: Node | None = None   # Ident (direct or through variable)
    args: list[Node] = field(default_factory=list)


@dataclass(slots=True)
class Index(Node):
    base: Node | None = None
    index: Node | None = None


# --- statements ----------------------------------------------------------------

@dataclass(slots=True)
class ExprStmt(Node):
    expr: Node | None = None


@dataclass(slots=True)
class Declare(Node):
    name: str = ""
    type: Type | None = None
    init: Node | None = None     # scalar initializer
    init_list: list[Node] | None = None  # array initializer


@dataclass(slots=True)
class Block(Node):
    body: list[Node] = field(default_factory=list)


@dataclass(slots=True)
class If(Node):
    cond: Node | None = None
    then: Node | None = None
    other: Node | None = None


@dataclass(slots=True)
class While(Node):
    cond: Node | None = None
    body: Node | None = None
    is_do: bool = False


@dataclass(slots=True)
class For(Node):
    init: Node | None = None
    cond: Node | None = None
    step: Node | None = None
    body: Node | None = None


@dataclass(slots=True)
class Break(Node):
    pass


@dataclass(slots=True)
class Continue(Node):
    pass


@dataclass(slots=True)
class Return(Node):
    value: Node | None = None


@dataclass(slots=True)
class SwitchCase(Node):
    values: list[int] = field(default_factory=list)  # empty = default
    body: list[Node] = field(default_factory=list)


@dataclass(slots=True)
class Switch(Node):
    expr: Node | None = None
    cases: list[SwitchCase] = field(default_factory=list)


# --- top level ----------------------------------------------------------------------

@dataclass(slots=True)
class Param(Node):
    name: str = ""
    type: Type | None = None


@dataclass(slots=True)
class Function(Node):
    name: str = ""
    ret: Type | None = None
    params: list[Param] = field(default_factory=list)
    body: Block | None = None


@dataclass(slots=True)
class GlobalVar(Node):
    name: str = ""
    type: Type | None = None
    init: Node | None = None
    init_list: list[Node] | None = None
    extern: bool = False


@dataclass(slots=True)
class Program(Node):
    items: list[Node] = field(default_factory=list)
