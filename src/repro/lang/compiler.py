"""MinC compiler driver: source text → assembly → linked image."""

from __future__ import annotations

from ..asm import Image, assemble, link
from ..asm.objfile import ObjectFile
from .codegen import CodeGen, CompileError
from .libextra import libextra_source
from .parser import parse
from .runtime import runtime_source


def compile_to_asm(source: str, unit: str = "unit", *,
                   indirect_ok: bool = True) -> str:
    """Compile one MinC translation unit to assembly text."""
    program = parse(source)
    return CodeGen(program, unit, indirect_ok=indirect_ok).generate()


def compile_to_object(source: str, unit: str = "unit", *,
                      indirect_ok: bool = True) -> ObjectFile:
    """Compile one MinC translation unit to a relocatable object."""
    return assemble(compile_to_asm(source, unit, indirect_ok=indirect_ok),
                    unit)


def compile_program(sources: dict[str, str] | str, name: str = "a.out", *,
                    indirect_ok: bool = True,
                    with_runtime: bool = True,
                    extra_asm: dict[str, str] | None = None) -> Image:
    """Compile and statically link a whole MinC program.

    *sources* maps unit names to MinC source (or is a single source
    string).  The runtime library is linked in by default — entirely,
    used or not, matching the paper's statically linked binaries.
    ``indirect_ok=False`` selects the ARM-prototype profile: switch
    jump tables and function pointers are rejected so the produced
    binary contains no indirect jumps (§2.3).
    """
    if isinstance(sources, str):
        sources = {"main": sources}
    objects = []
    for unit, text in sources.items():
        objects.append(compile_to_object(text, unit,
                                         indirect_ok=indirect_ok))
    if with_runtime:
        # the full library is linked whether used or not, like the
        # paper's statically linked gcc binaries (Table 1)
        objects.append(compile_to_object(runtime_source(), "runtime",
                                         indirect_ok=indirect_ok))
        objects.append(compile_to_object(libextra_source(), "libextra",
                                         indirect_ok=indirect_ok))
    for unit, asm_text in (extra_asm or {}).items():
        objects.append(assemble(asm_text, unit))
    return link(objects, name)


__all__ = ["CompileError", "compile_program", "compile_to_asm",
           "compile_to_object"]
