"""libextra — the cold bulk of the statically linked runtime.

Table 1's point is that statically linked images are far larger than
the code a run actually touches ("the static .text size is an
overestimate"): the paper's binaries carry all of libc.  This unit
plays that role: a plausible embedded-systems utility library —
fixed-point math, CRC/encoding, filters, formatting, containers —
linked into every program whether used or not.  Nothing here is on
any workload's hot path.
"""

LIBEXTRA_MINC = r"""
// ===================================================================
// fixed-point math (Q16.16)
// ===================================================================

int fx_mul(int a, int b) {
    int ah = a >> 16;
    int al = a & 65535;
    int bh = b >> 16;
    int bl = b & 65535;
    return (ah * bh << 16) + ah * bl + al * bh + ((al * bl) >> 16);
}

int fx_div(int a, int b) {
    int sign = 0;
    int q;
    int r;
    int frac = 0;
    int i;
    if (a < 0) { a = -a; sign = 1 - sign; }
    if (b < 0) { b = -b; sign = 1 - sign; }
    if (b == 0) return 2147483647;
    q = (a / b) << 16;
    r = a % b;
    // shift-subtract for 16 fraction bits; all intermediates stay
    // below b, so nothing overflows 32-bit arithmetic
    for (i = 0; i < 16; i++) {
        frac <<= 1;
        if (r >= b - r) {
            r = r - (b - r);
            frac |= 1;
        } else {
            r = r + r;
        }
    }
    q |= frac;
    return sign ? -q : q;
}

int LOG2_TABLE[17] = {
    0, 5732, 11136, 16248, 21098, 25711, 30109, 34312, 38336,
    42196, 45904, 49472, 52911, 56229, 59434, 62534, 65536
};

int fx_log2(int x) {
    int shift = 0;
    int idx;
    int frac;
    int base;
    if (x <= 0) return -2147483647;
    while (x >= (2 << 16)) { x >>= 1; shift++; }
    while (x < (1 << 16)) { x <<= 1; shift--; }
    idx = (x - (1 << 16)) >> 12;
    frac = (x - (1 << 16)) & 4095;
    base = LOG2_TABLE[idx];
    base += ((LOG2_TABLE[idx + 1] - base) * frac) >> 12;
    return (shift << 16) + base;
}

int fx_exp2_int(int n) {
    if (n < 0) return 0;
    if (n > 30) return 2147483647;
    return 1 << n;
}

int ipow(int base, int e) {
    int r = 1;
    while (e > 0) {
        if (e & 1) r *= base;
        base *= base;
        e >>= 1;
    }
    return r;
}

int gcd(int a, int b) {
    if (a < 0) a = -a;
    if (b < 0) b = -b;
    while (b) {
        int t = a % b;
        a = b;
        b = t;
    }
    return a;
}

// ===================================================================
// CRC32 + checksums
// ===================================================================

int __crc_table[256];
int __crc_table_ready = 0;

void crc32_init(void) {
    int i;
    for (i = 0; i < 256; i++) {
        int c = i;
        int k;
        for (k = 0; k < 8; k++) {
            if (c & 1) c = (c >> 1 & 2147483647) ^ (-306674912);
            else c = c >> 1 & 2147483647;
        }
        __crc_table[i] = c;
    }
    __crc_table_ready = 1;
}

int crc32(char *buf, int n) {
    int crc = -1;
    int i;
    if (!__crc_table_ready) crc32_init();
    for (i = 0; i < n; i++) {
        crc = __crc_table[(crc ^ buf[i]) & 255] ^ (crc >> 8 & 16777215);
    }
    return ~crc;
}

int fletcher16(char *buf, int n) {
    int a = 0;
    int b = 0;
    int i;
    for (i = 0; i < n; i++) {
        a = (a + buf[i]) % 255;
        b = (b + a) % 255;
    }
    return (b << 8) | a;
}

// ===================================================================
// base64 / hex encoding
// ===================================================================

char B64_ALPHABET[65] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int base64_encode(char *in, int n, char *out) {
    int i = 0;
    int o = 0;
    while (i + 2 < n) {
        int v = (in[i] << 16) | (in[i + 1] << 8) | in[i + 2];
        out[o] = B64_ALPHABET[(v >> 18) & 63];
        out[o + 1] = B64_ALPHABET[(v >> 12) & 63];
        out[o + 2] = B64_ALPHABET[(v >> 6) & 63];
        out[o + 3] = B64_ALPHABET[v & 63];
        i += 3;
        o += 4;
    }
    if (i < n) {
        int v = in[i] << 16;
        if (i + 1 < n) v |= in[i + 1] << 8;
        out[o] = B64_ALPHABET[(v >> 18) & 63];
        out[o + 1] = B64_ALPHABET[(v >> 12) & 63];
        out[o + 2] = (i + 1 < n) ? B64_ALPHABET[(v >> 6) & 63] : '=';
        out[o + 3] = '=';
        o += 4;
    }
    out[o] = 0;
    return o;
}

char HEXD[17] = "0123456789abcdef";

void hex_dump_line(char *buf, int n) {
    int i;
    for (i = 0; i < n; i++) {
        __putchar(HEXD[(buf[i] >> 4) & 15]);
        __putchar(HEXD[buf[i] & 15]);
        if ((i & 3) == 3) __putchar(32);
    }
    __putchar(10);
}

// ===================================================================
// signal-processing utilities
// ===================================================================

int fir_filter(int *x, int *coef, int ntaps) {
    int acc = 0;
    int i;
    for (i = 0; i < ntaps; i++) acc += x[i] * coef[i];
    return acc >> 15;
}

int moving_average(int *window, int n, int sample, int *state) {
    int i;
    int sum = 0;
    window[*state % n] = sample;
    *state = *state + 1;
    for (i = 0; i < n; i++) sum += window[i];
    return sum / n;
}

int median3(int a, int b, int c) {
    if (a > b) { int t = a; a = b; b = t; }
    if (b > c) { int t = b; b = c; c = t; }
    if (a > b) { int t = a; a = b; b = t; }
    return b;
}

int envelope_detect(int *x, int n, int decay) {
    int env = 0;
    int i;
    for (i = 0; i < n; i++) {
        int v = x[i] < 0 ? -x[i] : x[i];
        if (v > env) env = v;
        else env = (env * decay) >> 8;
    }
    return env;
}

// ===================================================================
// containers: heap, ring buffer
// ===================================================================

void heap_push(int *heap, int *size, int value) {
    int i = *size;
    heap[i] = value;
    *size = i + 1;
    while (i > 0) {
        int parent = (i - 1) / 2;
        if (heap[parent] <= heap[i]) break;
        { int t = heap[parent]; heap[parent] = heap[i]; heap[i] = t; }
        i = parent;
    }
}

int heap_pop(int *heap, int *size) {
    int top = heap[0];
    int n = *size - 1;
    int i = 0;
    heap[0] = heap[n];
    *size = n;
    while (1) {
        int l = 2 * i + 1;
        int r = l + 1;
        int m = i;
        if (l < n && heap[l] < heap[m]) m = l;
        if (r < n && heap[r] < heap[m]) m = r;
        if (m == i) break;
        { int t = heap[m]; heap[m] = heap[i]; heap[i] = t; }
        i = m;
    }
    return top;
}

int ring_put(int *ring, int cap, int *head, int *count, int value) {
    if (*count >= cap) return 0;
    ring[(*head + *count) % cap] = value;
    *count = *count + 1;
    return 1;
}

int ring_get(int *ring, int cap, int *head, int *count) {
    int v;
    if (*count == 0) return -1;
    v = ring[*head];
    *head = (*head + 1) % cap;
    *count = *count - 1;
    return v;
}

// ===================================================================
// formatting / parsing (cold reporting paths)
// ===================================================================

int itoa10(int value, char *out) {
    char tmp[12];
    int n = 0;
    int o = 0;
    int neg = 0;
    if (value < 0) { neg = 1; value = -value; }
    if (value == 0) { tmp[n] = '0'; n++; }
    while (value > 0) {
        tmp[n] = '0' + value % 10;
        value /= 10;
        n++;
    }
    if (neg) { out[o] = '-'; o++; }
    while (n > 0) {
        n--;
        out[o] = tmp[n];
        o++;
    }
    out[o] = 0;
    return o;
}

int atoi10(char *s) {
    int v = 0;
    int i = 0;
    int neg = 0;
    if (s[0] == '-') { neg = 1; i = 1; }
    while (s[i] >= '0' && s[i] <= '9') {
        v = v * 10 + (s[i] - '0');
        i++;
    }
    return neg ? -v : v;
}

void print_table_row(char *name, int a, int b, int c) {
    __puts(name);
    __putchar(9);
    __putint(a);
    __putchar(9);
    __putint(b);
    __putchar(9);
    __putint(c);
    __putchar(10);
}

void print_progress_bar(int done, int total) {
    int i;
    int filled = total ? (done * 20) / total : 0;
    __putchar('[');
    for (i = 0; i < 20; i++) {
        if (i < filled) __putchar('#');
        else __putchar('.');
    }
    __putchar(']');
    __putchar(10);
}

// ===================================================================
// calendar / BCD utilities (classic embedded dead weight)
// ===================================================================

int DAYS_IN_MONTH[12] = { 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31 };

int is_leap_year(int y) {
    if (y % 400 == 0) return 1;
    if (y % 100 == 0) return 0;
    return (y % 4) == 0;
}

int day_of_year(int y, int m, int d) {
    int i;
    int doy = d;
    for (i = 0; i < m - 1; i++) doy += DAYS_IN_MONTH[i];
    if (m > 2 && is_leap_year(y)) doy++;
    return doy;
}

int to_bcd(int v) { return ((v / 10) << 4) | (v % 10); }
int from_bcd(int v) { return (v >> 4) * 10 + (v & 15); }

// ===================================================================
// error handling / diagnostics (cold by construction)
// ===================================================================

int __error_count = 0;
int __last_error = 0;

void report_error(char *subsystem, int code) {
    __error_count++;
    __last_error = code;
    __puts("ERROR[");
    __puts(subsystem);
    __puts("]: code ");
    __putint(code);
    __putchar(10);
    if (__error_count > 100) {
        __puts("too many errors, aborting\n");
        __halt(70);
    }
}

void assert_true(int cond, char *what) {
    if (!cond) {
        __puts("assertion failed: ");
        __puts(what);
        __putchar(10);
        __halt(71);
    }
}

int self_test(void) {
    int heap[8];
    int hsize = 0;
    int ring[4];
    int rhead = 0;
    int rcount = 0;
    char buf[16];
    assert_true(gcd(12, 18) == 6, "gcd");
    assert_true(ipow(3, 4) == 81, "ipow");
    assert_true(median3(3, 1, 2) == 2, "median3");
    assert_true(to_bcd(45) == 69, "bcd");
    assert_true(from_bcd(69) == 45, "bcd2");
    assert_true(day_of_year(2001, 3, 1) == 60, "doy");
    heap_push(heap, &hsize, 5);
    heap_push(heap, &hsize, 1);
    heap_push(heap, &hsize, 3);
    assert_true(heap_pop(heap, &hsize) == 1, "heap");
    ring_put(ring, 4, &rhead, &rcount, 9);
    assert_true(ring_get(ring, 4, &rhead, &rcount) == 9, "ring");
    itoa10(-470, buf);
    assert_true(atoi10(buf) == -470, "itoa");
    return 0;
}
"""


def libextra_source() -> str:
    """MinC source of the cold utility library."""
    return LIBEXTRA_MINC
