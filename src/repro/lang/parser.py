"""Recursive-descent parser for MinC."""

from __future__ import annotations

from . import ast
from .lexer import Token, tokenize
from .types import CHAR, INT, Type, VOID


class ParseError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


# binary operator precedence (higher binds tighter)
_BINOPS: dict[str, int] = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                         "^=", "<<=", ">>="})


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, text: str) -> bool:
        tok = self.peek()
        if tok.kind in ("punct", "kw") and tok.text == text:
            self.next()
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.peek()
        if tok.kind in ("punct", "kw") and tok.text == text:
            return self.next()
        raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.line)

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind != "ident":
            raise ParseError(f"expected identifier, found {tok.text!r}",
                             tok.line)
        return self.next()

    # -- types ----------------------------------------------------------------

    def at_type(self) -> bool:
        return self.peek().kind == "kw" and self.peek().text in (
            "int", "char", "void")

    def parse_base_type(self) -> Type:
        tok = self.next()
        base = {"int": INT, "char": CHAR, "void": VOID}[tok.text]
        while self.accept("*"):
            base = base.pointer_to()
        return base

    def parse_const_int(self) -> int | None:
        """Parse a constant integer expression (array lengths).

        Returns None when the next token is ``]`` (length inferred from
        the initializer).  Only literal arithmetic is allowed — no
        identifiers.
        """
        if self.peek().text == "]":
            return None
        expr = self.parse_ternary()
        value = _fold_literal(expr)
        if value is None:
            raise ParseError("array length must be a constant expression",
                             expr.line)
        return value

    # -- top level ----------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.peek().kind != "eof":
            program.items.append(self.parse_top_item())
        return program

    def parse_top_item(self) -> ast.Node:
        line = self.peek().line
        extern = self.accept("extern")
        if not self.at_type():
            raise ParseError(
                f"expected declaration, found {self.peek().text!r}", line)
        base = self.parse_base_type()
        name = self.expect_ident().text
        if self.peek().text == "(" and not extern:
            return self.parse_function(base, name, line)
        return self.parse_global(base, name, line, extern)

    def parse_function(self, ret: Type, name: str,
                       line: int) -> ast.Function:
        self.expect("(")
        params: list[ast.Param] = []
        if not self.accept(")"):
            if self.peek().text == "void" and self.peek(1).text == ")":
                self.next()
            else:
                while True:
                    ptype = self.parse_base_type()
                    pname = self.expect_ident().text
                    if self.accept("["):
                        self.expect("]")
                        ptype = ptype.pointer_to()  # array param decays
                    params.append(ast.Param(line=line, name=pname,
                                            type=ptype))
                    if not self.accept(","):
                        break
            self.expect(")")
        body = self.parse_block()
        return ast.Function(line=line, name=name, ret=ret, params=params,
                            body=body)

    def parse_global(self, base: Type, name: str, line: int,
                     extern: bool) -> ast.GlobalVar:
        gtype = base
        init = None
        init_list = None
        if self.accept("["):
            length = self.parse_const_int()
            self.expect("]")
            if self.accept("="):
                if self.peek().kind == "str" and base.kind == "char":
                    text = self.next().value
                    init_list = [ast.CharLit(line=line, value=ord(c))
                                 for c in text] + [ast.CharLit(line=line,
                                                               value=0)]
                    if length is None:
                        length = len(init_list)
                else:
                    self.expect("{")
                    init_list = []
                    while not self.accept("}"):
                        init_list.append(self.parse_expr())
                        if not self.accept(","):
                            self.expect("}")
                            break
                    if length is None:
                        length = len(init_list)
            if length is None:
                raise ParseError(f"array {name!r} needs a length", line)
            gtype = Type(base.kind, base.ptr, length)
        elif self.accept("="):
            init = self.parse_expr()
        self.expect(";")
        return ast.GlobalVar(line=line, name=name, type=gtype, init=init,
                             init_list=init_list, extern=extern)

    # -- statements -------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        line = self.expect("{").line
        block = ast.Block(line=line)
        while not self.accept("}"):
            block.body.append(self.parse_statement())
        return block

    def parse_statement(self) -> ast.Node:
        tok = self.peek()
        line = tok.line
        if tok.text == "{":
            return self.parse_block()
        if self.at_type():
            return self.parse_local_decl()
        if self.accept("if"):
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            then = self.parse_statement()
            other = self.parse_statement() if self.accept("else") else None
            return ast.If(line=line, cond=cond, then=then, other=other)
        if self.accept("while"):
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            return ast.While(line=line, cond=cond,
                             body=self.parse_statement())
        if self.accept("do"):
            body = self.parse_statement()
            self.expect("while")
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            self.expect(";")
            return ast.While(line=line, cond=cond, body=body, is_do=True)
        if self.accept("for"):
            self.expect("(")
            init = None
            if not self.accept(";"):
                if self.at_type():
                    init = self.parse_local_decl()
                else:
                    init = ast.ExprStmt(line=line, expr=self.parse_expr())
                    self.expect(";")
            cond = None
            if not self.accept(";"):
                cond = self.parse_expr()
                self.expect(";")
            step = None
            if self.peek().text != ")":
                step = self.parse_expr()
            self.expect(")")
            return ast.For(line=line, init=init, cond=cond, step=step,
                           body=self.parse_statement())
        if self.accept("return"):
            value = None
            if not self.accept(";"):
                value = self.parse_expr()
                self.expect(";")
            return ast.Return(line=line, value=value)
        if self.accept("break"):
            self.expect(";")
            return ast.Break(line=line)
        if self.accept("continue"):
            self.expect(";")
            return ast.Continue(line=line)
        if self.accept("switch"):
            return self.parse_switch(line)
        if self.accept(";"):
            return ast.Block(line=line)  # empty statement
        expr = self.parse_expr()
        self.expect(";")
        return ast.ExprStmt(line=line, expr=expr)

    def parse_local_decl(self) -> ast.Declare:
        line = self.peek().line
        base = self.parse_base_type()
        name = self.expect_ident().text
        dtype = base
        init = None
        init_list = None
        if self.accept("["):
            length = self.parse_const_int()
            self.expect("]")
            if self.accept("="):
                if self.peek().kind == "str" and base.kind == "char":
                    text = self.next().value
                    init_list = [ast.CharLit(line=line, value=ord(c))
                                 for c in text]
                    if length is None or length > len(text):
                        init_list.append(ast.CharLit(line=line, value=0))
                    if length is None:
                        length = len(init_list)
                else:
                    self.expect("{")
                    init_list = []
                    while not self.accept("}"):
                        init_list.append(self.parse_expr())
                        if not self.accept(","):
                            self.expect("}")
                            break
                    if length is None:
                        length = len(init_list)
            if length is None:
                raise ParseError(f"array {name!r} needs a length", line)
            dtype = Type(base.kind, base.ptr, length)
        elif self.accept("="):
            init = self.parse_expr()
        self.expect(";")
        return ast.Declare(line=line, name=name, type=dtype, init=init,
                           init_list=init_list)

    def parse_switch(self, line: int) -> ast.Switch:
        self.expect("(")
        expr = self.parse_expr()
        self.expect(")")
        self.expect("{")
        switch = ast.Switch(line=line, expr=expr)
        current: ast.SwitchCase | None = None
        while not self.accept("}"):
            tok = self.peek()
            if self.accept("case"):
                value_tok = self.next()
                if value_tok.kind not in ("int", "char"):
                    raise ParseError("case label must be a constant",
                                     value_tok.line)
                self.expect(":")
                if current is None or current.body:
                    current = ast.SwitchCase(line=tok.line)
                    switch.cases.append(current)
                current.values.append(value_tok.value)
            elif self.accept("default"):
                self.expect(":")
                if current is None or current.body or current.values:
                    current = ast.SwitchCase(line=tok.line)
                    switch.cases.append(current)
            else:
                if current is None:
                    raise ParseError("statement before first case",
                                     tok.line)
                current.body.append(self.parse_statement())
        return switch

    # -- expressions -----------------------------------------------------------------

    def parse_expr(self) -> ast.Node:
        return self.parse_assign()

    def parse_assign(self) -> ast.Node:
        left = self.parse_ternary()
        tok = self.peek()
        if tok.kind == "punct" and tok.text in _ASSIGN_OPS:
            self.next()
            value = self.parse_assign()
            return ast.Assign(line=tok.line, op=tok.text, target=left,
                              value=value)
        return left

    def parse_ternary(self) -> ast.Node:
        cond = self.parse_binary(1)
        if self.accept("?"):
            then = self.parse_expr()
            self.expect(":")
            other = self.parse_ternary()
            return ast.Ternary(line=cond.line, cond=cond, then=then,
                               other=other)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Node:
        left = self.parse_unary()
        while True:
            tok = self.peek()
            prec = _BINOPS.get(tok.text) if tok.kind == "punct" else None
            if prec is None or prec < min_prec:
                return left
            self.next()
            right = self.parse_binary(prec + 1)
            left = ast.Binary(line=tok.line, op=tok.text, left=left,
                              right=right)

    def parse_unary(self) -> ast.Node:
        tok = self.peek()
        if tok.kind == "punct":
            if tok.text in ("-", "!", "~", "*", "&"):
                self.next()
                operand = self.parse_unary()
                return ast.Unary(line=tok.line, op=tok.text,
                                 operand=operand)
            if tok.text in ("++", "--"):
                self.next()
                target = self.parse_unary()
                return ast.IncDec(line=tok.line, op=tok.text,
                                  target=target, prefix=True)
            if tok.text == "+":
                self.next()
                return self.parse_unary()
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Node:
        node = self.parse_primary()
        while True:
            tok = self.peek()
            if self.accept("["):
                index = self.parse_expr()
                self.expect("]")
                node = ast.Index(line=tok.line, base=node, index=index)
            elif self.accept("("):
                args: list[ast.Node] = []
                if not self.accept(")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept(","):
                            break
                    self.expect(")")
                node = ast.Call(line=tok.line, callee=node, args=args)
            elif tok.text in ("++", "--") and tok.kind == "punct":
                self.next()
                node = ast.IncDec(line=tok.line, op=tok.text, target=node,
                                  prefix=False)
            else:
                return node

    def parse_primary(self) -> ast.Node:
        tok = self.next()
        if tok.kind == "int":
            return ast.IntLit(line=tok.line, value=tok.value)
        if tok.kind == "char":
            return ast.CharLit(line=tok.line, value=tok.value)
        if tok.kind == "str":
            return ast.StrLit(line=tok.line, value=tok.value)
        if tok.kind == "ident":
            return ast.Ident(line=tok.line, name=tok.text)
        if tok.text == "(":
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line)


def _fold_literal(node: ast.Node) -> int | None:
    """Fold a literal-only constant expression (no identifiers)."""
    if isinstance(node, (ast.IntLit, ast.CharLit)):
        return node.value
    if isinstance(node, ast.Unary):
        inner = _fold_literal(node.operand)
        if inner is None:
            return None
        if node.op == "-":
            return -inner
        if node.op == "~":
            return ~inner
        if node.op == "!":
            return int(not inner)
        return None
    if isinstance(node, ast.Binary):
        left = _fold_literal(node.left)
        right = _fold_literal(node.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": left + right, "-": left - right, "*": left * right,
                "/": left // right if right else None,
                "%": left % right if right else None,
                "<<": left << right, ">>": left >> right,
                "&": left & right, "|": left | right, "^": left ^ right,
            }.get(node.op)
        except (ValueError, TypeError):  # pragma: no cover
            return None
    return None


def parse(source: str) -> ast.Program:
    """Parse MinC source text into an AST."""
    return Parser(tokenize(source)).parse_program()
