"""MinC code generator: AST → repro assembly text.

The generated code deliberately follows the idioms the paper's
programming-model restrictions assume a compiler produces (§2.1):

* calls and returns use the unique ``jal``/``jalr``/``ret``
  instructions — never a raw ``jr`` to a return address;
* every function builds a full frame with the return address at
  ``fp - 4`` and the saved frame pointer at ``fp - 8``, so the
  SoftCache runtime can always walk the stack and identify return
  addresses;
* computed control flow appears only as ``switch`` jump tables and
  calls through variables (``jalr``), the *ambiguous pointers* the
  SoftCache resolves through its hash-table fallback.  Compiling with
  ``indirect_ok=False`` (the ARM-prototype profile) removes both.

Code quality is intentionally simple — expression temporaries live in
a register stack (``t0..t7, x0..x3``) with spill slots in the frame,
and variables always live in memory — because the evaluation depends
on control-flow shape, not on scalar optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from .types import CHAR, INT, Type

#: Expression-stack registers, in stack order.
TEMPS = ("t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
         "x0", "x1", "x2", "x3")
NT = len(TEMPS)
#: Scratch registers never used for the expression stack.
SCRATCH0 = "at"
SCRATCH1 = "x4"

_INTRINSICS = {
    "__putint": ("putint", 1, False),
    "__putchar": ("putchar", 1, False),
    "__puts": ("puts", 1, False),
    "__writehex": ("writehex", 1, False),
    "__halt": ("exit", 1, False),
    "__cycles": ("getcycles", 0, True),
    "__invalidate": ("invalidate", 2, False),
}

_CMP = {"==": "seq", "!=": "sne", "<": "slt", "<=": "sle",
        ">": "sgt", ">=": "sge"}

_ALU = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
        "&": "and", "|": "or", "^": "xor", "<<": "sll", ">>": "sra"}


class CompileError(ValueError):
    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


@dataclass
class _Global:
    name: str
    type: Type
    kind: str  # 'var' | 'func' | 'extern'


@dataclass
class _FuncCtx:
    name: str
    ret: Type
    lines: list[str] = field(default_factory=list)
    depth: int = 0
    max_depth: int = 0
    local_off: int = 0        # grows downward from fp-8
    locals_total: int = 0     # pre-scanned total local bytes
    scopes: list[dict] = field(default_factory=list)
    label_n: int = 0
    break_stack: list[str] = field(default_factory=list)
    continue_stack: list[str] = field(default_factory=list)


class CodeGen:
    """One compilation unit (translation unit) of MinC."""

    def __init__(self, program: ast.Program, unit: str = "unit",
                 indirect_ok: bool = True, switch_table_min: int = 6):
        self.program = program
        self.unit = unit
        self.indirect_ok = indirect_ok
        self.switch_table_min = switch_table_min
        self.globals: dict[str, _Global] = {}
        self.text: list[str] = []
        self.data: list[str] = []
        self.bss: list[str] = []
        self.str_labels: dict[str, str] = {}
        self._str_n = 0
        self.fn: _FuncCtx | None = None

    # ==================================================================
    # top level
    # ==================================================================

    def generate(self) -> str:
        for item in self.program.items:
            if isinstance(item, ast.Function):
                self.globals[item.name] = _Global(item.name, item.ret,
                                                  "func")
        for item in self.program.items:
            if isinstance(item, ast.GlobalVar):
                self.gen_global(item)
        for item in self.program.items:
            if isinstance(item, ast.Function):
                self.gen_function(item)
        parts = [f"; MinC unit {self.unit}", "    .text"]
        parts += self.text
        if self.data:
            parts.append("    .data")
            parts += self.data
        if self.bss:
            parts.append("    .bss")
            parts += self.bss
        return "\n".join(parts) + "\n"

    def gen_global(self, g: ast.GlobalVar) -> None:
        if g.name in self.globals:
            raise CompileError(f"duplicate global {g.name!r}", g.line)
        self.globals[g.name] = _Global(
            g.name, g.type, "extern" if g.extern else "var")
        if g.extern:
            return
        gtype = g.type
        if g.init_list is not None:
            words = [self.const_value(e) for e in g.init_list]
            if len(words) > (gtype.array_len or 0):
                raise CompileError(
                    f"too many initializers for {g.name!r}", g.line)
            self.data.append(f"    .global {g.name}")
            self.data.append(f"{g.name}:")
            if gtype.element_size == 1:
                for w in words:
                    self.data.append(f"    .byte {self._const_text(w)}")
                pad = gtype.array_len - len(words)
                if pad:
                    self.data.append(f"    .space {pad}")
                self.data.append("    .align 4")
            else:
                for w in words:
                    self.data.append(f"    .word {self._const_text(w)}")
                pad = gtype.array_len - len(words)
                if pad:
                    self.data.append(f"    .space {4 * pad}")
        elif g.init is not None:
            value = self.const_value(g.init)
            self.data.append(f"    .global {g.name}")
            self.data.append(f"{g.name}:")
            if gtype.size == 1:
                self.data.append(f"    .byte {self._const_text(value)}")
                self.data.append("    .align 4")
            else:
                self.data.append(f"    .word {self._const_text(value)}")
        else:
            size = (gtype.size + 3) & ~3
            self.bss.append("    .align 4")
            self.bss.append(f"    .global {g.name}")
            self.bss.append(f"{g.name}:")
            self.bss.append(f"    .space {size}")

    def const_value(self, node: ast.Node):
        """Fold a constant initializer; returns int or symbol name."""
        value = self._try_const(node)
        if value is None:
            raise CompileError("initializer must be constant", node.line)
        return value

    def _const_text(self, value) -> str:
        return value if isinstance(value, str) else str(value)

    def _try_const(self, node: ast.Node):
        if isinstance(node, ast.IntLit):
            return node.value
        if isinstance(node, ast.CharLit):
            return node.value
        if isinstance(node, ast.StrLit):
            return self.string_label(node.value)
        if isinstance(node, ast.Unary):
            if node.op == "&" and isinstance(node.operand, ast.Ident):
                name = node.operand.name
                g = self.globals.get(name)
                if g is not None and g.kind == "func":
                    if not self.indirect_ok:
                        raise CompileError(
                            "function pointers disabled in this profile",
                            node.line)
                    return name
                return name  # address of a global variable
            inner = self._try_const(node.operand)
            if isinstance(inner, int):
                if node.op == "-":
                    return -inner & 0xFFFFFFFF
                if node.op == "~":
                    return ~inner & 0xFFFFFFFF
                if node.op == "!":
                    return 0 if inner else 1
        if isinstance(node, ast.Binary):
            left = self._try_const(node.left)
            right = self._try_const(node.right)
            if isinstance(left, int) and isinstance(right, int):
                try:
                    return _fold(node.op, left, right)
                except ZeroDivisionError:
                    raise CompileError("division by zero in constant",
                                       node.line) from None
        if isinstance(node, ast.Ident):
            g = self.globals.get(node.name)
            if g is not None and g.kind == "func":
                return node.name
        return None

    def string_label(self, value: str) -> str:
        label = self.str_labels.get(value)
        if label is None:
            label = f".Lstr_{self.unit}_{self._str_n}"
            self._str_n += 1
            self.str_labels[value] = label
            escaped = (value.replace("\\", "\\\\").replace('"', '\\"')
                       .replace("\n", "\\n").replace("\t", "\\t")
                       .replace("\r", "\\r").replace("\0", "\\0"))
            self.data.append(f"{label}:")
            self.data.append(f'    .asciiz "{escaped}"')
            self.data.append("    .align 4")
        return label

    # ==================================================================
    # functions
    # ==================================================================

    def gen_function(self, f: ast.Function) -> None:
        ctx = self.fn = _FuncCtx(name=f.name, ret=f.ret)
        ctx.locals_total = (_scan_local_bytes(f.body)
                            + 4 * min(4, len(f.params)))
        ctx.scopes.append({})
        # parameters: first four arrive in a0..a3 and get local slots,
        # the rest live at fp + 4*(i-4) where the caller stored them
        reg_params: list[tuple[str, int]] = []
        for i, param in enumerate(f.params):
            ptype = param.type.decay()
            if i < 4:
                off = self._alloc_local(4)
                ctx.scopes[-1][param.name] = ("frame", off, ptype)
                reg_params.append((f"a{i}", off))
            else:
                ctx.scopes[-1][param.name] = ("frame", 4 * (i - 4), ptype)
        for stmt in f.body.body:
            self.gen_stmt(stmt)
        ctx.scopes.pop()

        frame = 8 + ctx.locals_total + 4 * ctx.max_depth
        frame = (frame + 7) & ~7
        out = self.text
        out.append(f"    .global {f.name}")
        out.append(f"    .proc {f.name}")
        out.append(f"{f.name}:")
        out.append(f"    addi sp, sp, -{frame}")
        out.append(f"    sw   ra, {frame - 4}(sp)")
        out.append(f"    sw   fp, {frame - 8}(sp)")
        out.append(f"    addi fp, sp, {frame}")
        for reg, off in reg_params:
            out.append(f"    sw   {reg}, {off}(fp)")
        out.extend(ctx.lines)
        out.append(f".Lret_{f.name}:")
        out.append("    lw   ra, -4(fp)")
        out.append(f"    lw   {SCRATCH0}, -8(fp)")
        out.append("    mv   sp, fp")
        out.append(f"    mv   fp, {SCRATCH0}")
        out.append("    ret")
        self.fn = None

    # -- frame helpers -----------------------------------------------------

    def _alloc_local(self, size: int) -> int:
        ctx = self.fn
        size = (size + 3) & ~3
        ctx.local_off += size
        if ctx.local_off > ctx.locals_total:
            raise CompileError(
                f"local allocation overflow in {ctx.name}")  # pragma: no cover
        return -(8 + ctx.local_off)

    def _spill_off(self, pos: int) -> int:
        return -(8 + self.fn.locals_total + 4 * (pos + 1))

    def emit(self, line: str) -> None:
        self.fn.lines.append("    " + line)

    def emit_label(self, label: str) -> None:
        self.fn.lines.append(f"{label}:")

    def new_label(self, hint: str = "L") -> str:
        ctx = self.fn
        ctx.label_n += 1
        return f".L{hint}_{ctx.name}_{ctx.label_n}"

    # -- expression-stack helpers ---------------------------------------------

    def _push(self) -> int:
        ctx = self.fn
        pos = ctx.depth
        ctx.depth += 1
        ctx.max_depth = max(ctx.max_depth, ctx.depth)
        return pos

    def _pop(self) -> int:
        self.fn.depth -= 1
        return self.fn.depth

    def _load(self, pos: int, scratch: str = SCRATCH0) -> str:
        """Get the register holding position *pos* (loading if spilt)."""
        if pos < NT:
            return TEMPS[pos]
        self.emit(f"lw   {scratch}, {self._spill_off(pos)}(fp)")
        return scratch

    def _store(self, pos: int, reg: str) -> None:
        """Move *reg* into position *pos*."""
        if pos < NT:
            if reg != TEMPS[pos]:
                self.emit(f"mv   {TEMPS[pos]}, {reg}")
        else:
            self.emit(f"sw   {reg}, {self._spill_off(pos)}(fp)")

    def _dest(self, pos: int) -> str:
        """Register a result for *pos* may be computed into."""
        return TEMPS[pos] if pos < NT else SCRATCH0

    def _commit(self, pos: int, reg: str) -> None:
        """Finish computing position *pos* in *reg* (spill if needed)."""
        if pos >= NT:
            self.emit(f"sw   {reg}, {self._spill_off(pos)}(fp)")

    def _flush_live(self, upto: int) -> None:
        """Spill in-register positions below *upto* (around calls)."""
        for pos in range(min(upto, NT)):
            self.emit(f"sw   {TEMPS[pos]}, {self._spill_off(pos)}(fp)")

    def _restore_live(self, upto: int) -> None:
        for pos in range(min(upto, NT)):
            self.emit(f"lw   {TEMPS[pos]}, {self._spill_off(pos)}(fp)")

    # ==================================================================
    # statements
    # ==================================================================

    def gen_stmt(self, node: ast.Node) -> None:
        ctx = self.fn
        if isinstance(node, ast.Block):
            ctx.scopes.append({})
            for stmt in node.body:
                self.gen_stmt(stmt)
            ctx.scopes.pop()
        elif isinstance(node, ast.Declare):
            self.gen_declare(node)
        elif isinstance(node, ast.ExprStmt):
            self.gen_expr(node.expr)
            self._pop()
        elif isinstance(node, ast.If):
            self.gen_if(node)
        elif isinstance(node, ast.While):
            self.gen_while(node)
        elif isinstance(node, ast.For):
            self.gen_for(node)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.gen_expr(node.value)
                reg = self._load(self._pop())
                self.emit(f"mv   a0, {reg}")
            self.emit(f"j    .Lret_{ctx.name}")
        elif isinstance(node, ast.Break):
            if not ctx.break_stack:
                raise CompileError("break outside loop/switch", node.line)
            self.emit(f"j    {ctx.break_stack[-1]}")
        elif isinstance(node, ast.Continue):
            if not ctx.continue_stack:
                raise CompileError("continue outside loop", node.line)
            self.emit(f"j    {ctx.continue_stack[-1]}")
        elif isinstance(node, ast.Switch):
            self.gen_switch(node)
        else:
            raise CompileError(f"unhandled statement {type(node).__name__}",
                               node.line)

    def gen_declare(self, node: ast.Declare) -> None:
        ctx = self.fn
        dtype = node.type
        off = self._alloc_local(dtype.size)
        ctx.scopes[-1][node.name] = ("frame", off, dtype)
        if node.init is not None:
            self.gen_expr(node.init)
            reg = self._load(self._pop())
            if dtype.size == 1 and not dtype.is_pointer:
                self.emit(f"sb   {reg}, {off}(fp)")
            else:
                self.emit(f"sw   {reg}, {off}(fp)")
        elif node.init_list is not None:
            esize = dtype.element_size
            for i, expr in enumerate(node.init_list):
                self.gen_expr(expr)
                reg = self._load(self._pop())
                op = "sb" if esize == 1 else "sw"
                self.emit(f"{op}   {reg}, {off + i * esize}(fp)")

    def gen_if(self, node: ast.If) -> None:
        label_else = self.new_label("else")
        label_end = self.new_label("endif")
        self.gen_expr(node.cond)
        reg = self._load(self._pop())
        self.emit(f"beqz {reg}, {label_else}")
        self.gen_stmt(node.then)
        if node.other is not None:
            self.emit(f"j    {label_end}")
        self.emit_label(label_else)
        if node.other is not None:
            self.gen_stmt(node.other)
            self.emit_label(label_end)

    def gen_while(self, node: ast.While) -> None:
        ctx = self.fn
        label_top = self.new_label("while")
        label_cond = self.new_label("whilec")
        label_end = self.new_label("endwhile")
        ctx.break_stack.append(label_end)
        ctx.continue_stack.append(label_cond)
        if not node.is_do:
            self.emit(f"j    {label_cond}")
        self.emit_label(label_top)
        self.gen_stmt(node.body)
        self.emit_label(label_cond)
        self.gen_expr(node.cond)
        reg = self._load(self._pop())
        self.emit(f"bnez {reg}, {label_top}")
        self.emit_label(label_end)
        ctx.break_stack.pop()
        ctx.continue_stack.pop()

    def gen_for(self, node: ast.For) -> None:
        ctx = self.fn
        ctx.scopes.append({})
        label_top = self.new_label("for")
        label_step = self.new_label("forstep")
        label_end = self.new_label("endfor")
        if node.init is not None:
            self.gen_stmt(node.init)
        ctx.break_stack.append(label_end)
        ctx.continue_stack.append(label_step)
        self.emit_label(label_top)
        if node.cond is not None:
            self.gen_expr(node.cond)
            reg = self._load(self._pop())
            self.emit(f"beqz {reg}, {label_end}")
        self.gen_stmt(node.body)
        self.emit_label(label_step)
        if node.step is not None:
            self.gen_expr(node.step)
            self._pop()
        self.emit(f"j    {label_top}")
        self.emit_label(label_end)
        ctx.break_stack.pop()
        ctx.continue_stack.pop()
        ctx.scopes.pop()

    # -- switch ------------------------------------------------------------------

    def gen_switch(self, node: ast.Switch) -> None:
        ctx = self.fn
        label_end = self.new_label("endsw")
        ctx.break_stack.append(label_end)
        case_labels: list[tuple[ast.SwitchCase, str]] = [
            (case, self.new_label("case")) for case in node.cases]
        default_label = label_end
        values: list[tuple[int, str]] = []
        for case, label in case_labels:
            if not case.values:
                default_label = label
            for v in case.values:
                values.append((v, label))
        self.gen_expr(node.expr)
        pos = self._pop()
        reg = self._load(pos)
        if self._switch_wants_table(values):
            self._emit_switch_table(reg, values, default_label)
        else:
            for v, label in values:
                self.emit(f"li   {SCRATCH1}, {v}")
                self.emit(f"beq  {reg}, {SCRATCH1}, {label}")
            self.emit(f"j    {default_label}")
        for case, label in case_labels:
            self.emit_label(label)
            for stmt in case.body:
                self.gen_stmt(stmt)
        self.emit_label(label_end)
        ctx.break_stack.pop()

    def _switch_wants_table(self, values: list[tuple[int, str]]) -> bool:
        if not self.indirect_ok or len(values) < self.switch_table_min:
            return False
        lo = min(v for v, _ in values)
        hi = max(v for v, _ in values)
        span = hi - lo + 1
        return span <= 3 * len(values) and span <= 1024

    def _emit_switch_table(self, reg: str, values: list[tuple[int, str]],
                           default_label: str) -> None:
        lo = min(v for v, _ in values)
        hi = max(v for v, _ in values)
        table = {v: label for v, label in values}
        table_label = self.new_label("swtab")
        if lo:
            self.emit(f"addi {SCRATCH0}, {reg}, {-lo}")
        else:
            self.emit(f"mv   {SCRATCH0}, {reg}")
        self.emit(f"li   {SCRATCH1}, {hi - lo + 1}")
        self.emit(f"bgeu {SCRATCH0}, {SCRATCH1}, {default_label}")
        self.emit(f"slli {SCRATCH0}, {SCRATCH0}, 2")
        self.emit(f"la   {SCRATCH1}, {table_label}")
        self.emit(f"add  {SCRATCH0}, {SCRATCH0}, {SCRATCH1}")
        self.emit(f"lw   {SCRATCH0}, 0({SCRATCH0})")
        self.emit(f"jr   {SCRATCH0}")
        self.data.append(f"{table_label}:")
        for v in range(lo, hi + 1):
            self.data.append(f"    .word {table.get(v, default_label)}")

    # ==================================================================
    # expressions — each gen_expr pushes exactly one stack position and
    # returns the value's type.
    # ==================================================================

    def gen_expr(self, node: ast.Node) -> Type:
        if isinstance(node, ast.IntLit):
            pos = self._push()
            dest = self._dest(pos)
            self.emit(f"li   {dest}, {node.value}")
            self._commit(pos, dest)
            return INT
        if isinstance(node, ast.CharLit):
            pos = self._push()
            dest = self._dest(pos)
            self.emit(f"li   {dest}, {node.value}")
            self._commit(pos, dest)
            return INT
        if isinstance(node, ast.StrLit):
            label = self.string_label(node.value)
            pos = self._push()
            dest = self._dest(pos)
            self.emit(f"la   {dest}, {label}")
            self._commit(pos, dest)
            return CHAR.pointer_to()
        if isinstance(node, ast.Ident):
            return self.gen_ident(node)
        if isinstance(node, ast.Unary):
            return self.gen_unary(node)
        if isinstance(node, ast.Binary):
            return self.gen_binary(node)
        if isinstance(node, ast.Assign):
            return self.gen_assign(node)
        if isinstance(node, ast.IncDec):
            return self.gen_incdec(node)
        if isinstance(node, ast.Ternary):
            return self.gen_ternary(node)
        if isinstance(node, ast.Call):
            return self.gen_call(node)
        if isinstance(node, ast.Index):
            lv = self.gen_lvalue(node)
            return self.gen_load_lvalue(lv)
        raise CompileError(f"unhandled expression {type(node).__name__}",
                           node.line)

    def gen_ident(self, node: ast.Ident) -> Type:
        loc = self._lookup(node.name)
        if loc is not None:
            where, off, vtype = loc
            pos = self._push()
            dest = self._dest(pos)
            if vtype.is_array:
                self.emit(f"addi {dest}, fp, {off}")
                self._commit(pos, dest)
                return vtype.decay()
            op = "lbu" if (vtype.size == 1 and not vtype.is_pointer) \
                else "lw"
            self.emit(f"{op}   {dest}, {off}(fp)")
            self._commit(pos, dest)
            return vtype
        g = self.globals.get(node.name)
        if g is None:
            raise CompileError(f"undefined identifier {node.name!r}",
                               node.line)
        pos = self._push()
        dest = self._dest(pos)
        if g.kind == "func":
            if not self.indirect_ok:
                raise CompileError(
                    "function pointers disabled in this profile",
                    node.line)
            self.emit(f"la   {dest}, {node.name}")
            self._commit(pos, dest)
            return INT
        if g.type.is_array:
            self.emit(f"la   {dest}, {node.name}")
            self._commit(pos, dest)
            return g.type.decay()
        self.emit(f"la   {dest}, {node.name}")
        op = "lbu" if (g.type.size == 1 and not g.type.is_pointer) else "lw"
        self.emit(f"{op}   {dest}, 0({dest})")
        self._commit(pos, dest)
        return g.type

    # -- lvalues ------------------------------------------------------------------

    def gen_lvalue(self, node: ast.Node):
        """Evaluate an lvalue.  Returns one of:

        * ``('frame', offset, type)`` — no stack position used;
        * ``('global', name, type)`` — no stack position used;
        * ``('mem', type)`` — address pushed on the expression stack.
        """
        if isinstance(node, ast.Ident):
            loc = self._lookup(node.name)
            if loc is not None:
                where, off, vtype = loc
                if vtype.is_array:
                    raise CompileError("array is not assignable",
                                       node.line)
                return ("frame", off, vtype)
            g = self.globals.get(node.name)
            if g is None or g.kind == "func":
                raise CompileError(f"cannot assign to {node.name!r}",
                                   node.line)
            if g.type.is_array:
                raise CompileError("array is not assignable", node.line)
            return ("global", node.name, g.type)
        if isinstance(node, ast.Unary) and node.op == "*":
            ptype = self.gen_expr(node.operand)
            if not ptype.is_pointer:
                raise CompileError("dereference of non-pointer",
                                   node.line)
            return ("mem", ptype.deref())
        if isinstance(node, ast.Index):
            btype = self.gen_expr(node.base)
            btype = btype.decay()
            if not btype.is_pointer:
                raise CompileError("indexing a non-pointer", node.line)
            self.gen_expr(node.index)
            ipos = self._pop()
            bpos = self.fn.depth - 1
            ireg = self._load(ipos, SCRATCH1)
            esize = btype.element_size
            breg = self._load(bpos, SCRATCH0)
            dest = self._dest(bpos)
            if esize == 4:
                self.emit(f"slli {SCRATCH1}, {ireg}, 2")
                self.emit(f"add  {dest}, {breg}, {SCRATCH1}")
            else:
                self.emit(f"add  {dest}, {breg}, {ireg}")
            self._commit(bpos, dest)
            return ("mem", btype.deref())
        raise CompileError("expression is not an lvalue", node.line)

    def gen_load_lvalue(self, lv) -> Type:
        kind = lv[0]
        if kind == "frame":
            _, off, vtype = lv
            pos = self._push()
            dest = self._dest(pos)
            op = "lbu" if (vtype.size == 1 and not vtype.is_pointer) \
                else "lw"
            self.emit(f"{op}   {dest}, {off}(fp)")
            self._commit(pos, dest)
            return vtype
        if kind == "global":
            _, name, vtype = lv
            pos = self._push()
            dest = self._dest(pos)
            self.emit(f"la   {dest}, {name}")
            op = "lbu" if (vtype.size == 1 and not vtype.is_pointer) \
                else "lw"
            self.emit(f"{op}   {dest}, 0({dest})")
            self._commit(pos, dest)
            return vtype
        # 'mem': address already on the stack; replace it by the value
        _, vtype = lv
        pos = self.fn.depth - 1
        reg = self._load(pos)
        dest = self._dest(pos)
        op = "lbu" if (vtype.size == 1 and not vtype.is_pointer) else "lw"
        self.emit(f"{op}   {dest}, 0({reg})")
        self._commit(pos, dest)
        return vtype

    def gen_store_lvalue(self, lv, value_reg: str) -> None:
        """Store *value_reg* through the lvalue.

        For ``mem`` lvalues the address is at the top of the stack and
        is popped.
        """
        kind = lv[0]
        if kind == "frame":
            _, off, vtype = lv
            op = "sb" if (vtype.size == 1 and not vtype.is_pointer) \
                else "sw"
            self.emit(f"{op}   {value_reg}, {off}(fp)")
        elif kind == "global":
            _, name, vtype = lv
            scratch = SCRATCH1 if value_reg != SCRATCH1 else SCRATCH0
            self.emit(f"la   {scratch}, {name}")
            op = "sb" if (vtype.size == 1 and not vtype.is_pointer) \
                else "sw"
            self.emit(f"{op}   {value_reg}, 0({scratch})")
        else:
            _, vtype = lv
            apos = self._pop()
            scratch = SCRATCH1 if value_reg != SCRATCH1 else SCRATCH0
            areg = self._load(apos, scratch)
            op = "sb" if (vtype.size == 1 and not vtype.is_pointer) \
                else "sw"
            self.emit(f"{op}   {value_reg}, 0({areg})")

    # -- operators ----------------------------------------------------------------

    def gen_unary(self, node: ast.Unary) -> Type:
        op = node.op
        if op == "*":
            lv = self.gen_lvalue(node)
            return self.gen_load_lvalue(lv)
        if op == "&":
            return self.gen_addr_of(node)
        vtype = self.gen_expr(node.operand)
        pos = self.fn.depth - 1
        reg = self._load(pos)
        dest = self._dest(pos)
        if op == "-":
            self.emit(f"neg  {dest}, {reg}")
        elif op == "~":
            self.emit(f"not  {dest}, {reg}")
        elif op == "!":
            self.emit(f"seqz {dest}, {reg}")
            vtype = INT
        else:  # pragma: no cover
            raise CompileError(f"bad unary {op}", node.line)
        self._commit(pos, dest)
        return vtype

    def gen_addr_of(self, node: ast.Unary) -> Type:
        target = node.operand
        if isinstance(target, ast.Ident):
            loc = self._lookup(target.name)
            if loc is not None:
                _, off, vtype = loc
                pos = self._push()
                dest = self._dest(pos)
                self.emit(f"addi {dest}, fp, {off}")
                self._commit(pos, dest)
                return (vtype.decay() if vtype.is_array
                        else vtype.pointer_to())
            g = self.globals.get(target.name)
            if g is None:
                raise CompileError(f"undefined {target.name!r}",
                                   node.line)
            pos = self._push()
            dest = self._dest(pos)
            self.emit(f"la   {dest}, {target.name}")
            self._commit(pos, dest)
            if g.kind == "func":
                if not self.indirect_ok:
                    raise CompileError(
                        "function pointers disabled in this profile",
                        node.line)
                return INT
            return (g.type.decay() if g.type.is_array
                    else g.type.pointer_to())
        lv = self.gen_lvalue(target)
        if lv[0] == "mem":
            return lv[1].pointer_to()  # address already on the stack
        raise CompileError("cannot take this address", node.line)

    def gen_binary(self, node: ast.Binary) -> Type:
        op = node.op
        if op in ("&&", "||"):
            return self.gen_logical(node)
        ltype = self.gen_expr(node.left).decay()
        rtype = self.gen_expr(node.right).decay()
        rpos = self._pop()
        lpos = self.fn.depth - 1
        rreg = self._load(rpos, SCRATCH1)
        lreg = self._load(lpos, SCRATCH0)
        dest = self._dest(lpos)
        if op in _CMP:
            unsigned = ltype.is_pointer or rtype.is_pointer
            self._emit_compare(op, dest, lreg, rreg, unsigned)
            self._commit(lpos, dest)
            return INT
        result = INT
        if op == "+":
            if ltype.is_pointer and rtype.is_integer:
                rreg = self._scale(rreg, ltype.element_size)
                result = ltype
            elif rtype.is_pointer and ltype.is_integer:
                lreg = self._scale_into(lreg, rtype.element_size,
                                        SCRATCH0)
                result = rtype
            self.emit(f"add  {dest}, {lreg}, {rreg}")
        elif op == "-":
            if ltype.is_pointer and rtype.is_pointer:
                self.emit(f"sub  {dest}, {lreg}, {rreg}")
                if ltype.element_size == 4:
                    self.emit(f"srai {dest}, {dest}, 2")
                self._commit(lpos, dest)
                return INT
            if ltype.is_pointer and rtype.is_integer:
                rreg = self._scale(rreg, ltype.element_size)
                result = ltype
            self.emit(f"sub  {dest}, {lreg}, {rreg}")
        else:
            self.emit(f"{_ALU[op]}  {dest}, {lreg}, {rreg}")
        self._commit(lpos, dest)
        return result

    def _scale(self, reg: str, esize: int) -> str:
        """Scale an index register for pointer arithmetic (rhs)."""
        if esize == 1:
            return reg
        self.emit(f"slli {SCRATCH1}, {reg}, 2")
        return SCRATCH1

    def _scale_into(self, reg: str, esize: int, scratch: str) -> str:
        if esize == 1:
            return reg
        self.emit(f"slli {scratch}, {reg}, 2")
        return scratch

    def _emit_compare(self, op: str, dest: str, a: str, b: str,
                      unsigned: bool) -> None:
        slt = "sltu" if unsigned else "slt"
        if op == "==":
            self.emit(f"sub  {dest}, {a}, {b}")
            self.emit(f"seqz {dest}, {dest}")
        elif op == "!=":
            self.emit(f"sub  {dest}, {a}, {b}")
            self.emit(f"snez {dest}, {dest}")
        elif op == "<":
            self.emit(f"{slt} {dest}, {a}, {b}")
        elif op == ">":
            self.emit(f"{slt} {dest}, {b}, {a}")
        elif op == "<=":
            self.emit(f"{slt} {dest}, {b}, {a}")
            self.emit(f"xori {dest}, {dest}, 1")
        elif op == ">=":
            self.emit(f"{slt} {dest}, {a}, {b}")
            self.emit(f"xori {dest}, {dest}, 1")

    def gen_logical(self, node: ast.Binary) -> Type:
        label_end = self.new_label("sc")
        self.gen_expr(node.left)
        pos = self.fn.depth - 1
        reg = self._load(pos)
        dest = self._dest(pos)
        self.emit(f"snez {dest}, {reg}")
        self._commit(pos, dest)
        branch = "beqz" if node.op == "&&" else "bnez"
        check = self._load(pos)
        self.emit(f"{branch} {check}, {label_end}")
        self._pop()
        self.gen_expr(node.right)
        rpos = self.fn.depth - 1
        rreg = self._load(rpos)
        rdest = self._dest(rpos)
        self.emit(f"snez {rdest}, {rreg}")
        self._commit(rpos, rdest)
        self.emit_label(label_end)
        return INT

    def gen_ternary(self, node: ast.Ternary) -> Type:
        label_else = self.new_label("terne")
        label_end = self.new_label("ternx")
        self.gen_expr(node.cond)
        reg = self._load(self._pop())
        self.emit(f"beqz {reg}, {label_else}")
        depth_before = self.fn.depth
        ttype = self.gen_expr(node.then)
        self.emit(f"j    {label_end}")
        self.fn.depth = depth_before
        self.emit_label(label_else)
        self.gen_expr(node.other)
        self.emit_label(label_end)
        return ttype

    def gen_assign(self, node: ast.Assign) -> Type:
        if node.op == "=":
            lv = self.gen_lvalue(node.target)
            vtype = self.gen_expr(node.value)
            vpos = self.fn.depth - 1
            vreg = self._load(vpos)
            # keep the value on the stack as the expression result; for
            # 'mem' lvalues the address sits *below* the value
            if lv[0] == "mem":
                value_pos = self._pop()
                vreg = self._load(value_pos, SCRATCH0)
                self.gen_store_lvalue(lv, vreg)
                rpos = self._push()
                self._store(rpos, vreg)
            else:
                self.gen_store_lvalue(lv, vreg)
            return lv[-1] if lv[0] != "mem" else lv[1]
        # compound assignment: load, op, store
        binop = node.op[:-1]
        lv = self.gen_lvalue(node.target)
        if lv[0] == "mem":
            # duplicate the address so we can load then store
            apos = self.fn.depth - 1
            areg = self._load(apos)
            dpos = self._push()
            self._store(dpos, areg)
            vtype = self.gen_load_lvalue(lv)  # consumes the duplicate
        else:
            vtype = self.gen_load_lvalue(lv)
        rtype = self.gen_expr(node.value)
        rpos = self._pop()
        vpos = self.fn.depth - 1
        rreg = self._load(rpos, SCRATCH1)
        vreg = self._load(vpos, SCRATCH0)
        dest = self._dest(vpos)
        if binop in ("+", "-") and vtype.decay().is_pointer \
                and rtype.is_integer:
            rreg = self._scale(rreg, vtype.decay().element_size)
        if binop == ">>":
            self.emit(f"sra  {dest}, {vreg}, {rreg}")
        else:
            self.emit(f"{_ALU[binop]}  {dest}, {vreg}, {rreg}")
        self._commit(vpos, dest)
        value_reg = self._load(vpos)
        if lv[0] == "mem":
            # stack: [address, value] — store value through address
            vpos2 = self._pop()
            vreg2 = self._load(vpos2, SCRATCH0)
            self.gen_store_lvalue(lv, vreg2)
            rpos2 = self._push()
            self._store(rpos2, vreg2)
        else:
            self.gen_store_lvalue(lv, value_reg)
        return vtype

    def gen_incdec(self, node: ast.IncDec) -> Type:
        delta = 1 if node.op == "++" else -1
        lv = self.gen_lvalue(node.target)
        if lv[0] == "mem":
            apos = self.fn.depth - 1
            areg = self._load(apos)
            dpos = self._push()
            self._store(dpos, areg)
            vtype = self.gen_load_lvalue(lv)
        else:
            vtype = self.gen_load_lvalue(lv)
        step = delta
        if vtype.decay().is_pointer:
            step = delta * vtype.decay().element_size
        vpos = self.fn.depth - 1
        vreg = self._load(vpos)
        if node.prefix:
            dest = self._dest(vpos)
            self.emit(f"addi {dest}, {vreg}, {step}")
            self._commit(vpos, dest)
            new_reg = self._load(vpos)
            if lv[0] == "mem":
                npos = self._pop()
                nreg = self._load(npos, SCRATCH0)
                self.gen_store_lvalue(lv, nreg)
                rpos = self._push()
                self._store(rpos, nreg)
            else:
                self.gen_store_lvalue(lv, new_reg)
        else:
            # postfix: result is the old value
            self.emit(f"addi {SCRATCH1}, {vreg}, {step}")
            if lv[0] == "mem":
                # stack: [address, old]; store new through address
                old_pos = self._pop()
                old_reg = self._load(old_pos, SCRATCH0)
                # careful: SCRATCH1 holds new value; store via address
                apos = self._pop()
                areg = self._load(apos, SCRATCH0)
                optext = "sb" if (vtype.size == 1 and
                                  not vtype.is_pointer) else "sw"
                self.emit(f"{optext}   {SCRATCH1}, 0({areg})")
                rpos = self._push()
                old_reg = self._load(old_pos) if old_pos < NT else None
                if old_pos < NT:
                    self._store(rpos, TEMPS[old_pos])
                else:
                    self.emit(
                        f"lw   {SCRATCH0}, {self._spill_off(old_pos)}(fp)")
                    self._store(rpos, SCRATCH0)
            else:
                self.gen_store_lvalue(lv, SCRATCH1)
        return vtype

    # -- calls --------------------------------------------------------------------

    def gen_call(self, node: ast.Call) -> Type:
        callee = node.callee
        if not isinstance(callee, ast.Ident):
            raise CompileError("call target must be a name", node.line)
        name = callee.name
        if name in _INTRINSICS:
            return self.gen_intrinsic(node, name)
        loc = self._lookup(name)
        g = self.globals.get(name)
        indirect = loc is not None or (g is not None and g.kind != "func")
        if indirect and not self.indirect_ok:
            raise CompileError(
                "indirect calls disabled in this profile", node.line)
        if not indirect and g is None:
            # assume an extern function (resolved at link time)
            self.globals[name] = _Global(name, INT, "func")
        depth_before = self.fn.depth
        target_pos = None
        if indirect:
            self.gen_expr(ast.Ident(line=node.line, name=name))
            target_pos = self.fn.depth - 1
        arg_types = [self.gen_expr(arg) for arg in node.args]
        nargs = len(node.args)
        base = depth_before + (1 if indirect else 0)
        # flush every live position (args included) to spill slots
        self._flush_live(self.fn.depth)
        nextra = max(0, nargs - 4)
        if nextra:
            self.emit(f"addi sp, sp, -{4 * nextra}")
            for i in range(4, nargs):
                self.emit(f"lw   {SCRATCH0}, "
                          f"{self._spill_off(base + i)}(fp)")
                self.emit(f"sw   {SCRATCH0}, {4 * (i - 4)}(sp)")
        for i in range(min(4, nargs)):
            self.emit(f"lw   a{i}, {self._spill_off(base + i)}(fp)")
        if indirect:
            self.emit(f"lw   {SCRATCH0}, "
                      f"{self._spill_off(target_pos)}(fp)")
            self.emit(f"jalr ra, {SCRATCH0}")
        else:
            self.emit(f"jal  {name}")
        if nextra:
            self.emit(f"addi sp, sp, {4 * nextra}")
        # drop args (and target) from the stack, restore live temps
        self.fn.depth = depth_before
        self._restore_live(depth_before)
        rpos = self._push()
        self._store(rpos, "a0")
        if not indirect and g is not None:
            return g.type if g.kind == "func" else INT
        return INT

    def gen_intrinsic(self, node: ast.Call, name: str) -> Type:
        service, nargs, has_result = _INTRINSICS[name]
        if len(node.args) != nargs:
            raise CompileError(
                f"{name} expects {nargs} argument(s)", node.line)
        depth_before = self.fn.depth
        for arg in node.args:
            self.gen_expr(arg)
        self._flush_live(self.fn.depth)
        for i in range(nargs):
            self.emit(f"lw   a{i}, "
                      f"{self._spill_off(depth_before + i)}(fp)")
        self.emit(f"syscall {service}")
        self.fn.depth = depth_before
        self._restore_live(depth_before)
        rpos = self._push()
        if has_result:
            self._store(rpos, "a0")
        else:
            reg = self._dest(rpos)
            self.emit(f"li   {reg}, 0")
            self._commit(rpos, reg)
        return INT

    # -- scope ----------------------------------------------------------------------

    def _lookup(self, name: str):
        for scope in reversed(self.fn.scopes):
            if name in scope:
                return scope[name]
        return None


def _fold(op: str, a: int, b: int) -> int:
    table = {
        "+": a + b, "-": a - b, "*": a * b,
        "&": a & b, "|": a | b, "^": a ^ b,
        "<<": a << (b & 31), ">>": a >> (b & 31),
        "==": int(a == b), "!=": int(a != b), "<": int(a < b),
        "<=": int(a <= b), ">": int(a > b), ">=": int(a >= b),
        "&&": int(bool(a) and bool(b)), "||": int(bool(a) or bool(b)),
    }
    if op == "/":
        return int(a / b) if b else 0  # trunc toward zero
    if op == "%":
        return a - b * int(a / b) if b else 0
    return table[op] & 0xFFFFFFFF


def _scan_local_bytes(node) -> int:
    """Total frame bytes needed for all local declarations (no reuse)."""
    total = 0
    if isinstance(node, ast.Declare):
        total += (node.type.size + 3) & ~3
    for attr in ("body", "then", "other", "init", "cases"):
        child = getattr(node, attr, None)
        if isinstance(child, list):
            for sub in child:
                total += _scan_local_bytes(sub)
        elif isinstance(child, ast.Node):
            total += _scan_local_bytes(child)
    return total
