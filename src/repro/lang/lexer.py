"""Tokenizer for MinC."""

from __future__ import annotations

from dataclasses import dataclass


class LexError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True, slots=True)
class Token:
    kind: str     # 'int' 'char' 'str' 'ident' 'kw' 'punct' 'eof'
    text: str
    value: int | str | None
    line: int


KEYWORDS = frozenset({
    "int", "char", "void", "if", "else", "while", "do", "for", "return",
    "break", "continue", "switch", "case", "default", "extern",
})

# longest first so the scanner is greedy
PUNCTUATION = (
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
)

_ESCAPES = {"n": 10, "t": 9, "0": 0, "r": 13, "\\": 92, "'": 39,
            '"': 34}


def tokenize(source: str) -> list[Token]:
    """Tokenize MinC source; raises :class:`LexError` on bad input."""
    tokens: list[Token] = []
    i, line, n = 0, 1, len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            j = source.find("\n", i)
            i = n if j < 0 else j
            continue
        if source.startswith("/*", i):
            j = source.find("*/", i + 2)
            if j < 0:
                raise LexError("unterminated comment", line)
            line += source.count("\n", i, j)
            i = j + 2
            continue
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            tokens.append(Token("int", source[i:j], value, line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, text, line))
            i = j
            continue
        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                if j + 1 >= n or source[j + 1] not in _ESCAPES:
                    raise LexError("bad escape in char literal", line)
                value = _ESCAPES[source[j + 1]]
                j += 2
            elif j < n:
                value = ord(source[j])
                j += 1
            else:
                raise LexError("unterminated char literal", line)
            if j >= n or source[j] != "'":
                raise LexError("unterminated char literal", line)
            tokens.append(Token("char", source[i:j + 1], value, line))
            i = j + 1
            continue
        if ch == '"':
            j = i + 1
            out = []
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    if j + 1 >= n or source[j + 1] not in _ESCAPES:
                        raise LexError("bad escape in string", line)
                    out.append(chr(_ESCAPES[source[j + 1]]))
                    j += 2
                elif source[j] == "\n":
                    raise LexError("newline in string literal", line)
                else:
                    out.append(source[j])
                    j += 1
            if j >= n:
                raise LexError("unterminated string literal", line)
            tokens.append(Token("str", source[i:j + 1], "".join(out), line))
            i = j + 1
            continue
        for punct in PUNCTUATION:
            if source.startswith(punct, i):
                tokens.append(Token("punct", punct, punct, line))
                i += len(punct)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", None, line))
    return tokens
