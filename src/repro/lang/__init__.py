"""repro.lang — MinC, the reproduction's C-like systems language.

The workloads are written in MinC and compiled by this package to
repro assembly.  The compiler's calling convention *is* the paper's
programming-model contract: unique call/return instructions, return
address always at ``fp - 4``, frames linked through ``fp - 8``.

Public surface: :func:`compile_program` (source → linked image),
:func:`compile_to_asm` / :func:`compile_to_object` for single units,
and :func:`parse` for tooling.
"""

from .codegen import CodeGen, CompileError
from .compiler import compile_program, compile_to_asm, compile_to_object
from .lexer import LexError, tokenize
from .parser import ParseError, parse
from .runtime import runtime_source
from .types import CHAR, INT, Type, VOID

__all__ = [
    "CHAR", "CodeGen", "CompileError", "INT", "LexError", "ParseError",
    "Type", "VOID", "compile_program", "compile_to_asm",
    "compile_to_object", "parse", "runtime_source", "tokenize",
]
