"""The MinC runtime library ("libc") linked into every program.

Like the statically linked ``gcc -O4`` binaries of Table 1, every
program image carries the full library whether it uses it or not — the
linker performs no dead-code elimination — which is what makes static
text a big overestimate of the dynamic working set.  The library is
written in MinC itself so it goes through the same compiler, plus a
few leaf routines in assembly.
"""

RUNTIME_MINC = r"""
// ---- memory ---------------------------------------------------------

void memcpy(char *dst, char *src, int n) {
    int i;
    for (i = 0; i < n; i++) dst[i] = src[i];
}

void memset(char *dst, int value, int n) {
    int i;
    for (i = 0; i < n; i++) dst[i] = value;
}

int memcmp(char *a, char *b, int n) {
    int i;
    for (i = 0; i < n; i++) {
        if (a[i] != b[i]) return a[i] - b[i];
    }
    return 0;
}

void memmove(char *dst, char *src, int n) {
    int i;
    if (dst < src) {
        for (i = 0; i < n; i++) dst[i] = src[i];
    } else {
        for (i = n - 1; i >= 0; i--) dst[i] = src[i];
    }
}

// ---- strings ----------------------------------------------------------

int strlen(char *s) {
    int n = 0;
    while (s[n]) n++;
    return n;
}

int strcmp(char *a, char *b) {
    int i = 0;
    while (a[i] && a[i] == b[i]) i++;
    return a[i] - b[i];
}

void strcpy(char *dst, char *src) {
    int i = 0;
    while (src[i]) { dst[i] = src[i]; i++; }
    dst[i] = 0;
}

// ---- integer helpers ------------------------------------------------------

int abs_i(int x) { return x < 0 ? -x : x; }
int min_i(int a, int b) { return a < b ? a : b; }
int max_i(int a, int b) { return a > b ? a : b; }

int clamp_i(int x, int lo, int hi) {
    if (x < lo) return lo;
    if (x > hi) return hi;
    return x;
}

// integer square root (Newton)
int isqrt(int x) {
    int r;
    int prev;
    if (x <= 0) return 0;
    r = x;
    prev = 0;
    while (r != prev) {
        prev = r;
        r = (r + x / r) / 2;
    }
    while (r * r > x) r--;
    return r;
}

// ---- pseudo-random numbers (deterministic LCG) ------------------------------

int __rand_state = 12345;

void srand(int seed) { __rand_state = seed; }

int rand(void) {
    __rand_state = __rand_state * 1103515245 + 12345;
    return (__rand_state >> 16) & 32767;
}

int rand_range(int n) { return rand() % n; }

// ---- formatted output (cold code in most workloads) ------------------------------

void print_str(char *s) { __puts(s); }

void print_int(int x) { __putint(x); }

void print_hex(int x) { __writehex(x); }

void println(void) { __putchar(10); }

void print_labeled(char *label, int value) {
    __puts(label);
    __putint(value);
    __putchar(10);
}

void print_pair(char *label, int a, int b) {
    __puts(label);
    __putint(a);
    __putchar(32);
    __putint(b);
    __putchar(10);
}

// pad a decimal into a field (rarely-used cold path)
void print_int_width(int x, int width) {
    int digits = 1;
    int t = x < 0 ? -x : x;
    while (t >= 10) { t = t / 10; digits++; }
    if (x < 0) digits++;
    while (digits < width) { __putchar(32); digits++; }
    __putint(x);
}

// ---- sorting / searching (library bulk, mostly cold) --------------------------------

void sort_ints(int *a, int n) {
    int i; int j; int key;
    for (i = 1; i < n; i++) {
        key = a[i];
        j = i - 1;
        while (j >= 0 && a[j] > key) {
            a[j + 1] = a[j];
            j = j - 1;
        }
        a[j + 1] = key;
    }
}

int bsearch_int(int *a, int n, int key) {
    int lo = 0;
    int hi = n - 1;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        if (a[mid] == key) return mid;
        if (a[mid] < key) lo = mid + 1;
        else hi = mid - 1;
    }
    return -1;
}

// ---- checksums ------------------------------------------------------------------------

int checksum(char *buf, int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) {
        acc = (acc * 31 + buf[i]) & 16777215;
    }
    return acc;
}

int adler32(char *buf, int n) {
    int a = 1;
    int b = 0;
    int i;
    for (i = 0; i < n; i++) {
        a = (a + buf[i]) % 65521;
        b = (b + a) % 65521;
    }
    return (b << 16) | a;
}

// ---- fixed-point trig tables (cold library ballast used by codecs) ------------------------

int sin_q15(int angle256) {
    // quarter-wave table lookup, angle in 1/256ths of a circle
    int a = angle256 & 255;
    int quadrant = a >> 6;
    int idx = a & 63;
    int v;
    if (quadrant == 1 || quadrant == 3) idx = 63 - idx;
    v = __SIN_TABLE[idx];
    if (quadrant >= 2) v = -v;
    return v;
}

int cos_q15(int angle256) { return sin_q15(angle256 + 64); }

int __SIN_TABLE[64] = {
    0, 804, 1608, 2410, 3212, 4011, 4808, 5602, 6393, 7179, 7962, 8739,
    9512, 10278, 11039, 11793, 12539, 13279, 14010, 14732, 15446, 16151,
    16846, 17530, 18204, 18868, 19519, 20159, 20787, 21403, 22005,
    22594, 23170, 23731, 24279, 24811, 25329, 25832, 26319, 26790,
    27245, 27683, 28105, 28510, 28898, 29268, 29621, 29956, 30273,
    30571, 30852, 31113, 31356, 31580, 31785, 31971, 32137, 32285,
    32412, 32521, 32609, 32678, 32728, 32757
};
"""


def runtime_source() -> str:
    """MinC source of the runtime library."""
    return RUNTIME_MINC
