"""repro.eval — per-table/per-figure experiment drivers.

One driver per evaluation artifact of the paper:

========= ================================== =====================
function  reproduces                          renderer
========= ================================== =====================
table1    Table 1 (dynamic vs static text)   render_table1
fig5      Figure 5 (relative execution time) render_fig5
fig6      Figure 6 (HW miss rate vs size)    render_fig6
fig7      Figure 7 (SW miss rate vs size)    render_fig7
fig8      Figure 8 (evictions/s vs memory)   render_fig8
fig9      Figure 9 (dynamic footprint)       render_fig9
netcost   §2.4 60-byte chunk overhead        render_netcost
tagspace  §2.2 11-18% tag overhead           render_tagspace
extra_instruction_ablation  §2.2 "+2 insns"  render_ablation
dcache_eval  §3 / Fig 10 D-cache design      render_dcache
========= ================================== =====================
"""

from .common import (
    TraceRun,
    clear_trace_cache,
    native_trace,
    set_trace_cache_dir,
    sweep_stale_cache_versions,
    trace_cache_dir,
)
from .dcache_eval import DCacheRow, dcache_eval, render_dcache
from .fig5 import Fig5Bar, PAPER_FIG5, fig5, render_fig5
from .fig6 import Fig6Curve, fig6, render_fig6
from .fig7 import Fig7Curve, fig7, render_fig7
from .fig8 import (
    Fig8PolicyRow,
    Fig8PrefetchRow,
    Fig8Series,
    fig8,
    fig8_policy_ablation,
    fig8_prefetch_ablation,
    render_fig8,
    render_fig8_policies,
    render_fig8_prefetch,
)
from .fig9 import Fig9Bar, PAPER_FIG9, fig9, render_fig9
from .misc import (
    AblationRow,
    NetCostResult,
    extra_instruction_ablation,
    netcost,
    render_ablation,
    render_netcost,
    render_tagspace,
    tagspace,
)
from .parallel import fan_workloads, prewarm_traces
from .render import ascii_table, fmt_bytes, series_plot
from .report import generate_report, section_titles
from .table1 import PAPER_TABLE1, Table1Row, render_table1, table1
from .tcache_replay import (
    ReplayResult,
    chunk_entry_sequence,
    replay_tcache,
    sweep_tcache,
)

__all__ = [
    "AblationRow", "DCacheRow", "Fig5Bar", "Fig6Curve", "Fig7Curve",
    "Fig8PolicyRow", "Fig8PrefetchRow", "Fig8Series", "Fig9Bar",
    "NetCostResult", "PAPER_FIG5", "PAPER_FIG9",
    "PAPER_TABLE1", "ReplayResult", "Table1Row", "TraceRun",
    "ascii_table", "chunk_entry_sequence", "clear_trace_cache",
    "dcache_eval", "extra_instruction_ablation", "fan_workloads", "fig5",
    "fig6", "fig7", "fig8", "fig8_policy_ablation",
    "fig8_prefetch_ablation", "fig9", "fmt_bytes", "native_trace",
    "netcost", "prewarm_traces",
    "render_ablation", "render_dcache", "render_fig5", "render_fig6",
    "render_fig7", "render_fig8", "render_fig8_policies",
    "render_fig8_prefetch", "render_fig9", "render_netcost",
    "render_table1", "render_tagspace", "replay_tcache",
    "generate_report", "section_titles", "series_plot",
    "set_trace_cache_dir", "sweep_stale_cache_versions", "sweep_tcache",
    "table1", "tagspace", "trace_cache_dir",
]
