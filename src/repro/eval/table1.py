"""Table 1: dynamically- and statically-linked text segment sizes.

Paper's row set: 129.compress, adpcmenc, hextobdd, mpeg2enc with
"Dynamic .text" (an underestimate of what could run) versus "Static
.text" (an overestimate — the whole statically linked image).  Our
dynamic figure is exact: bytes of text fetched at least once during
the run.  The claim reproduced is the order-of-magnitude gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads import SPARC_BENCHMARKS
from .common import native_trace
from .render import ascii_table, fmt_bytes

#: Paper's Table 1, for side-by-side reporting (bytes).
PAPER_TABLE1 = {
    "compress95": (21 * 1024, 193 * 1024),
    "adpcm_enc": (1 * 1024, 139),  # 1KB dynamic, 139B static (sic)
    "hextobdd": (23 * 1024, 205 * 1024),
    "mpeg2enc": (135 * 1024, 590 * 1024),
}


@dataclass(frozen=True)
class Table1Row:
    workload: str
    dynamic_text: int
    static_text: int

    @property
    def ratio(self) -> float:
        return self.dynamic_text / self.static_text


def table1(scale: float = 0.3,
           workloads: tuple[str, ...] = SPARC_BENCHMARKS,
           processes: int | None = None) -> list[Table1Row]:
    """Measure dynamic vs static text for the SPARC benchmark set."""
    if processes is not None and processes > 1 and len(workloads) > 1:
        from .parallel import fan_workloads
        return fan_workloads(table1, workloads, processes=processes,
                             scale=scale)
    rows = []
    for name in workloads:
        run = native_trace(name, scale)
        rows.append(Table1Row(
            workload=name,
            dynamic_text=run.dynamic_text_bytes,
            static_text=run.image.static_text_size))
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    table_rows = [
        [r.workload, fmt_bytes(r.dynamic_text), fmt_bytes(r.static_text),
         f"{r.ratio:.2f}"]
        for r in rows]
    return ascii_table(
        ["App.", "Dynamic .text", "Static .text", "dyn/static"],
        table_rows,
        title="Table 1: text segment sizes (dynamic underestimates, "
              "static overestimates)")
