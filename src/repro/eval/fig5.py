"""Figure 5: relative execution time of the software I-cache.

The paper runs 129.compress under the software cache with an
effectively infinite (48KB) tcache, a 24KB tcache and a 1KB tcache,
normalized to native ("ideal") execution: 1.19, 1.17 and "awful"
respectively.  Shape to reproduce: a ~10-25% slowdown whenever the
working set fits (independent of exact size), catastrophic slowdown
when it does not, yet the system keeps running.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net import LOCAL_LINK
from ..sim.machine import Machine
from ..softcache import SoftCacheConfig, SoftCacheSystem
from ..workloads import build_workload
from .render import ascii_table

#: Paper's bars for compress95 (relative execution time).
PAPER_FIG5 = {"48KB": 1.19, "24KB": 1.17, "1KB": float("inf")}


@dataclass(frozen=True)
class Fig5Bar:
    label: str
    tcache_size: int | None     # None = ideal/native
    cycles: int
    relative_time: float
    translations: int
    evictions: int


def fig5(workload: str = "compress95", scale: float = 0.25,
         sizes: tuple[int, ...] = (48 * 1024, 24 * 1024, 384),
         granularity: str = "block", policy: str = "fifo",
         max_instructions: int = 600_000_000) -> list[Fig5Bar]:
    """Run the Figure 5 experiment; first bar is the ideal time.

    The smallest size plays the paper's "1KB" bar: a tcache well below
    the working set (our compiled compress has a smaller working set
    than the original, so the absolute size differs).  Like the SPARC
    prototype, MC and CC share the machine: the link is local.
    """
    image = build_workload(workload, scale)
    native = Machine(image)
    native.run(max_instructions)
    ideal_cycles = native.cpu.cycles
    bars = [Fig5Bar("ideal", None, ideal_cycles, 1.0, 0, 0)]
    for size in sizes:
        config = SoftCacheConfig(tcache_size=size,
                                 granularity=granularity, policy=policy,
                                 link=LOCAL_LINK,
                                 record_timeline=False)
        system = SoftCacheSystem(image, config)
        report = system.run(max_instructions)
        assert report.output == native.output_text, (
            f"softcache diverged at tcache={size}")
        label = f"{size // 1024}KB" if size >= 1024 else f"{size}B"
        bars.append(Fig5Bar(
            label=label, tcache_size=size, cycles=report.cycles,
            relative_time=report.cycles / ideal_cycles,
            translations=system.stats.translations,
            evictions=system.stats.evictions + system.stats.blocks_flushed))
    return bars


@dataclass(frozen=True)
class PrefetchBar:
    """One depth setting of the successor-prefetch ablation."""

    depth: int
    cycles: int
    relative_time: float        # normalized to the depth-0 run
    miss_service_cycles: int
    demand_translations: int
    prefetch_installs: int
    prefetch_hits: int
    prefetch_drops: int
    wasted_prefetch_bytes: int
    link_exchanges: int


def fig5_prefetch_ablation(workload: str = "compress95",
                           scale: float = 0.05,
                           tcache_size: int = 8 * 1024,
                           depths: tuple[int, ...] = (0, 1, 2, 4, 8),
                           granularity: str = "block",
                           max_instructions: int = 600_000_000
                           ) -> list[PrefetchBar]:
    """Sweep ``prefetch_depth`` over the Figure 5 workload.

    Unlike :func:`fig5` this uses the paper's *networked* link model
    (default 10 Mbps Ethernet), because batching only pays when each
    exchange carries real latency; depth 0 is the paper-faithful
    baseline the other bars are normalized against.
    """
    from ..net import LinkModel

    image = build_workload(workload, scale)
    bars: list[PrefetchBar] = []
    base_cycles: int | None = None
    for depth in depths:
        config = SoftCacheConfig(tcache_size=tcache_size,
                                 granularity=granularity,
                                 prefetch_depth=depth,
                                 link=LinkModel(),
                                 record_timeline=False)
        system = SoftCacheSystem(image, config)
        report = system.run(max_instructions)
        if base_cycles is None:
            base_cycles = report.cycles
        s = system.stats
        bars.append(PrefetchBar(
            depth=depth, cycles=report.cycles,
            relative_time=report.cycles / base_cycles,
            miss_service_cycles=s.miss_service_cycles,
            demand_translations=s.demand_translations,
            prefetch_installs=s.prefetch_installs,
            prefetch_hits=s.prefetch_hits,
            prefetch_drops=s.prefetch_drops,
            wasted_prefetch_bytes=s.wasted_prefetch_bytes,
            link_exchanges=system.link_stats.exchanges))
    return bars


def render_fig5_prefetch(bars: list[PrefetchBar]) -> str:
    rows = [[b.depth, b.cycles, f"{b.relative_time:.2f}",
             b.miss_service_cycles, b.demand_translations,
             b.prefetch_installs, b.prefetch_hits, b.prefetch_drops,
             b.wasted_prefetch_bytes, b.link_exchanges] for b in bars]
    return ascii_table(
        ["depth", "cycles", "rel. time", "miss-svc cycles", "demand",
         "prefetched", "pf hits", "pf drops", "wasted B", "exchanges"],
        rows,
        title="Figure 5 ablation: successor-prefetch depth "
              "(networked link)")


def render_fig5(bars: list[Fig5Bar]) -> str:
    rows = [[b.label, b.cycles, f"{b.relative_time:.2f}",
             b.translations, b.evictions] for b in bars]
    return ascii_table(
        ["tcache", "cycles", "rel. time", "translations", "evictions"],
        rows,
        title="Figure 5: relative execution time, software I-cache "
              "(normalized to ideal)")
