"""Figure 5: relative execution time of the software I-cache.

The paper runs 129.compress under the software cache with an
effectively infinite (48KB) tcache, a 24KB tcache and a 1KB tcache,
normalized to native ("ideal") execution: 1.19, 1.17 and "awful"
respectively.  Shape to reproduce: a ~10-25% slowdown whenever the
working set fits (independent of exact size), catastrophic slowdown
when it does not, yet the system keeps running.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net import LOCAL_LINK
from ..sim.machine import Machine
from ..softcache import SoftCacheConfig, SoftCacheSystem
from ..workloads import build_workload
from .render import ascii_table

#: Paper's bars for compress95 (relative execution time).
PAPER_FIG5 = {"48KB": 1.19, "24KB": 1.17, "1KB": float("inf")}


@dataclass(frozen=True)
class Fig5Bar:
    label: str
    tcache_size: int | None     # None = ideal/native
    cycles: int
    relative_time: float
    translations: int
    evictions: int


def fig5(workload: str = "compress95", scale: float = 0.25,
         sizes: tuple[int, ...] = (48 * 1024, 24 * 1024, 384),
         granularity: str = "block", policy: str = "fifo",
         max_instructions: int = 600_000_000) -> list[Fig5Bar]:
    """Run the Figure 5 experiment; first bar is the ideal time.

    The smallest size plays the paper's "1KB" bar: a tcache well below
    the working set (our compiled compress has a smaller working set
    than the original, so the absolute size differs).  Like the SPARC
    prototype, MC and CC share the machine: the link is local.
    """
    image = build_workload(workload, scale)
    native = Machine(image)
    native.run(max_instructions)
    ideal_cycles = native.cpu.cycles
    bars = [Fig5Bar("ideal", None, ideal_cycles, 1.0, 0, 0)]
    for size in sizes:
        config = SoftCacheConfig(tcache_size=size,
                                 granularity=granularity, policy=policy,
                                 link=LOCAL_LINK,
                                 record_timeline=False)
        system = SoftCacheSystem(image, config)
        report = system.run(max_instructions)
        assert report.output == native.output_text, (
            f"softcache diverged at tcache={size}")
        label = f"{size // 1024}KB" if size >= 1024 else f"{size}B"
        bars.append(Fig5Bar(
            label=label, tcache_size=size, cycles=report.cycles,
            relative_time=report.cycles / ideal_cycles,
            translations=system.stats.translations,
            evictions=system.stats.evictions + system.stats.blocks_flushed))
    return bars


def render_fig5(bars: list[Fig5Bar]) -> str:
    rows = [[b.label, b.cycles, f"{b.relative_time:.2f}",
             b.translations, b.evictions] for b in bars]
    return ascii_table(
        ["tcache", "cycles", "rel. time", "translations", "evictions"],
        rows,
        title="Figure 5: relative execution time, software I-cache "
              "(normalized to ideal)")
