"""Figure 6: hardware I-cache miss rate versus cache size.

Direct-mapped, 16-byte blocks, swept over sizes 0.1KB..100KB for the
four SPARC benchmarks.  The working set is read off the knee of each
curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hwcache import CacheResult, sweep_direct_mapped, working_set_knee
from ..workloads import SPARC_BENCHMARKS
from .common import native_trace
from .render import ascii_table

#: Cache sizes matching the figure's log axis (bytes).
DEFAULT_SIZES = (128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768,
                 65536)


@dataclass
class Fig6Curve:
    workload: str
    results: list[CacheResult]

    @property
    def knee_bytes(self) -> int | None:
        return working_set_knee(self.results)


def fig6(scale: float = 0.3, sizes: tuple[int, ...] = DEFAULT_SIZES,
         workloads: tuple[str, ...] = SPARC_BENCHMARKS,
         block_size: int = 16,
         processes: int | None = None) -> list[Fig6Curve]:
    if processes is not None and processes > 1 and len(workloads) > 1:
        from .parallel import fan_workloads
        return fan_workloads(fig6, workloads, processes=processes,
                             scale=scale, sizes=sizes,
                             block_size=block_size)
    curves = []
    for name in workloads:
        run = native_trace(name, scale)
        results = sweep_direct_mapped(run.trace, list(sizes), block_size)
        curves.append(Fig6Curve(workload=name, results=results))
    return curves


def render_fig6(curves: list[Fig6Curve]) -> str:
    sizes = [r.size_bytes for r in curves[0].results]
    headers = ["size"] + [c.workload for c in curves]
    rows = []
    for i, size in enumerate(sizes):
        row = [f"{size / 1024:.2f}KB"]
        for curve in curves:
            row.append(f"{100 * curve.results[i].miss_rate:.3f}%")
        rows.append(row)
    knees = ["knee"] + [
        (f"{c.knee_bytes / 1024:.2f}KB" if c.knee_bytes else ">max")
        for c in curves]
    rows.append(knees)
    return ascii_table(headers, rows,
                       title="Figure 6: HW I-cache miss rate vs size "
                             "(direct-mapped, 16B blocks)")
