"""Figure 7: software tcache miss rate versus tcache size.

Miss rate = basic blocks translated / instructions executed (the
figure's caption), swept over tcache sizes for the four SPARC
benchmarks via block-trace replay.  The headline comparison with
Figure 6: "the cache size required to capture the working set appears
similar for the software cache as for a hardware cache".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads import SPARC_BENCHMARKS
from .common import native_trace
from .render import ascii_table
from .tcache_replay import ReplayResult, sweep_tcache

DEFAULT_SIZES = (256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536)


@dataclass
class Fig7Curve:
    workload: str
    results: list[ReplayResult]

    def knee_bytes(self, slack: float = 1.10) -> int | None:
        """Smallest tcache whose miss rate is within *slack* of the
        compulsory floor (the rate of the largest cache swept).

        Unlike hardware miss rates, software translation rates bottom
        out at the cold-translation floor, so the knee is defined
        relative to that floor rather than by an absolute threshold.
        """
        ordered = sorted(self.results, key=lambda r: r.tcache_size)
        floor = ordered[-1].miss_rate
        for result in ordered:
            if result.miss_rate <= slack * floor + 1e-12:
                return result.tcache_size
        return None


def fig7(scale: float = 0.3, sizes: tuple[int, ...] = DEFAULT_SIZES,
         workloads: tuple[str, ...] = SPARC_BENCHMARKS,
         granularity: str = "block", policy: str = "fifo",
         processes: int | None = None) -> list[Fig7Curve]:
    if processes is not None and processes > 1 and len(workloads) > 1:
        from .parallel import fan_workloads
        return fan_workloads(fig7, workloads, processes=processes,
                             scale=scale, sizes=sizes,
                             granularity=granularity, policy=policy)
    curves = []
    for name in workloads:
        run = native_trace(name, scale)
        results = sweep_tcache(run.image, run.trace, list(sizes),
                               granularity=granularity, policy=policy)
        curves.append(Fig7Curve(workload=name, results=results))
    return curves


def render_fig7(curves: list[Fig7Curve]) -> str:
    sizes = [r.tcache_size for r in curves[0].results]
    headers = ["size"] + [c.workload for c in curves]
    rows = []
    for i, size in enumerate(sizes):
        row = [f"{size / 1024:.2f}KB"]
        for curve in curves:
            row.append(f"{100 * curve.results[i].miss_rate:.4f}%")
        rows.append(row)
    rows.append(["knee"] + [
        (f"{c.knee_bytes() / 1024:.2f}KB" if c.knee_bytes() else ">max")
        for c in curves])
    return ascii_table(headers, rows,
                       title="Figure 7: SW tcache miss rate vs size "
                             "(blocks translated / instructions)")
