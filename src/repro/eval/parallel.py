"""Parallel fan-out of independent per-workload sweeps.

Every figure driver loops over workloads that share nothing with each
other; the expensive step per workload (the native traced run) lands
in the persistent on-disk trace cache (:mod:`repro.eval.common`), so
worker processes pay it once and every later consumer — including the
parent process — replays it from disk.  Two helpers:

* :func:`prewarm_traces` fans ``(workload, scale)`` jobs across a pool
  purely to warm the disk cache,
* :func:`fan_workloads` runs a per-workload figure driver across a
  pool and merges the per-workload result lists in input order.

Both degrade to serial execution for a single job or ``processes<=1``,
so figure drivers can route through them unconditionally.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable, Iterable, Sequence


def _default_processes(njobs: int) -> int:
    return max(1, min(njobs, os.cpu_count() or 1))


def _pool_context():
    # fork shares the already-built workload images with the workers;
    # fall back to the platform default where fork is unavailable.
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return mp.get_context()


def _prewarm_one(job: tuple[str, float, bool]) -> tuple[str, float, bool]:
    workload, scale, arm_profile = job
    from .common import native_trace
    native_trace(workload, scale, arm_profile=arm_profile)
    return job


def prewarm_traces(jobs: Iterable[Sequence], *, processes: int | None = None,
                   arm_profile: bool = False
                   ) -> list[tuple[str, float, bool]]:
    """Warm the on-disk trace cache for *jobs*.

    Each job is ``(workload, scale)`` or ``(workload, scale, arm)``;
    two-tuples default the profile flag to *arm_profile*.  Returns the
    normalized job list.  Workers only populate the disk cache — the
    traces themselves stay out of the parent's memory until asked for.
    """
    normalized = []
    for job in jobs:
        if len(job) == 2:
            workload, scale = job
            arm = arm_profile
        else:
            workload, scale, arm = job
        normalized.append((workload, scale, bool(arm)))
    if not normalized:
        return normalized
    if processes is None:
        processes = _default_processes(len(normalized))
    if processes <= 1 or len(normalized) == 1:
        for job in normalized:
            _prewarm_one(job)
        return normalized
    ctx = _pool_context()
    with ctx.Pool(processes=min(processes, len(normalized))) as pool:
        pool.map(_prewarm_one, normalized)
    return normalized


def _fan_one(packed):
    fig_fn, workload, kwargs = packed
    return fig_fn(workloads=(workload,), **kwargs)


def fan_workloads(fig_fn: Callable, workloads: Sequence[str], *,
                  processes: int | None = None, **kwargs) -> list:
    """Run *fig_fn* once per workload, possibly across a process pool,
    and concatenate the returned lists in input order.

    *fig_fn* must accept a ``workloads`` tuple and return a list with
    one entry per workload (the shape of ``fig6``/``fig7``/``fig9``/
    ``table1``); it is called as ``fig_fn(workloads=(w,), **kwargs)``
    so the single-workload calls never recurse into the pool.
    """
    workloads = tuple(workloads)
    if not workloads:
        return []
    if processes is None:
        processes = _default_processes(len(workloads))
    if processes <= 1 or len(workloads) == 1:
        return [item for name in workloads
                for item in fig_fn(workloads=(name,), **kwargs)]
    ctx = _pool_context()
    jobs = [(fig_fn, name, kwargs) for name in workloads]
    with ctx.Pool(processes=min(processes, len(workloads))) as pool:
        parts = pool.map(_fan_one, jobs)
    return [item for part in parts for item in part]
