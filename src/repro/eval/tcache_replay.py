"""Fast tcache simulation by block-trace replay (for Figure 7 sweeps).

A full SoftCache run interprets every instruction; sweeping ten tcache
sizes over four workloads that way costs minutes.  The software miss
rate, though, depends only on the *sequence of chunk entries* and each
chunk's tcache footprint — so we extract the chunk-entry sequence once
from a native fetch trace and replay just the allocator over it.

Chunk-entry extraction matches the MC's lazy chunking rule exactly: a
new chunk is entered at the first instruction of the run and after
every control-transfer instruction (taken or not — the not-taken path
of a rewritten branch leaves the chunk through its appended jump).
The replay uses the real :class:`~repro.softcache.tcache.TCache`
allocator, so FIFO wrap behavior and flush policy are identical to the
live system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..asm.image import Image
from ..isa import Op
from ..softcache.chunks import BasicBlockChunker, EBBChunker
from ..softcache.records import TBlock
from ..softcache.tcache import TCache, TCacheGeometry

_TERMINATOR_OPS = frozenset(int(op) for op in (
    Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU,
    Op.J, Op.JAL, Op.JR, Op.JALR, Op.RET, Op.HALT))


_BRANCH_OPS = frozenset(int(op) for op in (
    Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU))


def chunk_entry_sequence(image: Image, trace: np.ndarray,
                         granularity: str = "block") -> np.ndarray:
    """Extract the chunk-entry subsequence of a fetch trace.

    Block granularity: a chunk is entered after *every* control
    transfer (the not-taken path leaves through the appended jump).
    EBB granularity: fall-through of a not-taken branch and the
    landing of a return stay *inline* in the current chunk, so they
    are not entries.  (Approximation: a return into an evicted chunk
    would re-translate in the live system; the replay undercounts
    those rare events.)
    """
    if trace.size == 0:
        return trace
    # classify each fetched pc by its opcode in the original text
    text = np.frombuffer(image.text, dtype="<u4")
    offsets = (trace.astype(np.int64) - image.text_base) >> 2
    opcodes = (text[offsets] >> 26).astype(np.int64)
    is_term = np.isin(opcodes, list(_TERMINATOR_OPS))
    entry_mask = np.empty(trace.size, dtype=bool)
    entry_mask[0] = True
    entry_mask[1:] = is_term[:-1]
    if granularity == "ebb":
        prev_op = opcodes[:-1]
        fallthrough = trace[1:] == trace[:-1] + 4
        inline = (np.isin(prev_op, list(_BRANCH_OPS)) & fallthrough) | \
            (prev_op == int(Op.RET))
        entry_mask[1:] &= ~inline
    return trace[entry_mask]


@dataclass
class ReplayResult:
    """Outcome of one tcache replay."""

    tcache_size: int
    granularity: str
    policy: str
    instructions: int
    chunk_entries: int
    translations: int
    evictions: int
    flushes: int

    @property
    def miss_rate(self) -> float:
        """The paper's software miss rate: blocks translated divided
        by instructions executed (Fig 7 caption)."""
        return (self.translations / self.instructions
                if self.instructions else 0.0)


def replay_tcache(image: Image, trace: np.ndarray, tcache_size: int, *,
                  granularity: str = "block", policy: str = "fifo",
                  ebb_limit: int = 8) -> ReplayResult:
    """Replay the chunk-entry sequence through a tcache allocator."""
    if granularity == "block":
        chunker = BasicBlockChunker(image)
    elif granularity == "ebb":
        chunker = EBBChunker(image, limit=ebb_limit)
    else:
        raise ValueError("replay supports block/ebb granularities")
    entries = chunk_entry_sequence(image, trace, granularity)
    size_of: dict[int, int] = {}
    tcache = TCache(TCacheGeometry(base=0x10000, size=tcache_size,
                                   stub_capacity=0))
    translations = evictions = flushes = 0
    lookup = tcache.map
    for addr in entries.tolist():
        if addr in lookup:
            continue
        nbytes = size_of.get(addr)
        if nbytes is None:
            nbytes = chunker.chunk_at(addr).size
            size_of[addr] = nbytes
        if policy == "flush":
            if tcache.needs_eviction(nbytes):
                flushed = tcache.retire_all()
                flushes += 1
                evictions += len(flushed)
        else:
            while tcache.needs_eviction(nbytes):
                tcache.retire_oldest()
                evictions += 1
        place = tcache.place(nbytes)
        tcache.commit(TBlock(orig=addr, addr=place, size=nbytes,
                             orig_size=nbytes, extra_words=0))
        translations += 1
    return ReplayResult(
        tcache_size=tcache_size, granularity=granularity, policy=policy,
        instructions=int(trace.size), chunk_entries=int(entries.size),
        translations=translations, evictions=evictions, flushes=flushes)


def sweep_tcache(image: Image, trace: np.ndarray, sizes: list[int],
                 **kw) -> list[ReplayResult]:
    """Replay every tcache size in *sizes* over the same trace."""
    return [replay_tcache(image, trace, size, **kw) for size in sizes]
