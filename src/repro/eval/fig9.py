"""Figure 9: normalized dynamic footprint (hot code / program size).

The paper profiles adpcm encode/decode, gzip and cjpeg with gprof,
takes the functions covering >=90% of runtime as the hot code, and
reports hot/static ratios of 0.09, 0.07, 0.09, 0.13 — "a 7-14X
reduction compared to the full program size".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..profiling import Profile, profile_image
from ..workloads import ARM_BENCHMARKS, build_workload
from .render import ascii_table

#: Paper's Figure 9 bars.
PAPER_FIG9 = {"adpcm_enc": 0.09, "adpcm_dec": 0.07, "gzip": 0.09,
              "cjpeg": 0.13}


@dataclass
class Fig9Bar:
    workload: str
    hot_bytes: int
    static_bytes: int
    normalized_footprint: float
    reduction_factor: float
    hot_functions: list[str]
    profile: Profile


def fig9(scale: float = 0.3, threshold: float = 0.90,
         workloads: tuple[str, ...] = ARM_BENCHMARKS,
         processes: int | None = None) -> list[Fig9Bar]:
    if processes is not None and processes > 1 and len(workloads) > 1:
        from .parallel import fan_workloads
        return fan_workloads(fig9, workloads, processes=processes,
                             scale=scale, threshold=threshold)
    bars = []
    for name in workloads:
        image = build_workload(name, scale, arm_profile=True)
        profile = profile_image(image)
        hot = profile.hot_code_bytes(threshold)
        static = image.static_text_size
        bars.append(Fig9Bar(
            workload=name, hot_bytes=hot, static_bytes=static,
            normalized_footprint=hot / static,
            reduction_factor=static / hot if hot else float("inf"),
            hot_functions=[e.name for e in profile.hot_procs(threshold)],
            profile=profile))
    return bars


def render_fig9(bars: list[Fig9Bar]) -> str:
    rows = [[b.workload, b.hot_bytes, b.static_bytes,
             f"{b.normalized_footprint:.3f}",
             f"{b.reduction_factor:.1f}x",
             ",".join(b.hot_functions[:4])] for b in bars]
    return ascii_table(
        ["app", "hot bytes", "static bytes", "normalized", "reduction",
         "hot functions"],
        rows,
        title="Figure 9: normalized dynamic footprint "
              "(gprof-90% hot code / static size)")
