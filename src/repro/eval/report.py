"""One-shot experiment report: every table and figure in one run.

``generate_report()`` executes all drivers at a given scale and
returns one markdown-ish text document (also exposed as
``python -m repro report``).  Useful for refreshing EXPERIMENTS.md
after changing the cost model, the workloads or the rewriter.
"""

from __future__ import annotations

import time

from .dcache_eval import dcache_eval, render_dcache
from .fig5 import fig5, render_fig5
from .fig6 import fig6, render_fig6
from .fig7 import fig7, render_fig7
from .fig8 import fig8, render_fig8
from .fig9 import fig9, render_fig9
from .misc import (
    extra_instruction_ablation,
    netcost,
    render_ablation,
    render_netcost,
    render_tagspace,
    tagspace,
)
from .table1 import render_table1, table1

_SECTIONS = (
    ("Table 1", lambda s: render_table1(table1(scale=s))),
    ("Figure 5", lambda s: render_fig5(fig5(scale=s * 0.75))),
    ("Figure 6", lambda s: render_fig6(fig6(scale=s))),
    ("Figure 7", lambda s: render_fig7(fig7(scale=s))),
    ("Figure 8", lambda s: render_fig8(fig8(scale=s))),
    ("Figure 9", lambda s: render_fig9(fig9(scale=s))),
    ("Net overhead (§2.4)", lambda s: render_netcost(
        netcost(scale=s / 2))),
    ("Tag space (§2.2)", lambda s: render_tagspace(tagspace())),
    ("Extra-instruction ablation (§2.2)",
     lambda s: render_ablation(extra_instruction_ablation(scale=s / 2))),
    ("Data cache (§3)", lambda s: render_dcache(
        dcache_eval(scale=s / 4))),
)


def generate_report(scale: float = 0.2,
                    sections: list[str] | None = None) -> str:
    """Run every experiment and return the combined text report."""
    parts = [f"# SoftCache reproduction report (scale={scale})", ""]
    for title, runner in _SECTIONS:
        if sections is not None and title not in sections:
            continue
        started = time.time()
        body = runner(scale)
        elapsed = time.time() - started
        parts.append(f"## {title}  ({elapsed:.1f}s)")
        parts.append("")
        parts.append("```")
        parts.append(body)
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def section_titles() -> list[str]:
    return [title for title, _ in _SECTIONS]
