"""Figure 8: eviction (paging) rate over time versus CC memory size.

The paper runs adpcm encode on the ARM prototype with CC memories of
800B, 900B and 1KB: below the steady-state working set the cache pages
continuously; at 900B paging falls to zero during steady state with a
blip at the end "to load the terminal statistics routines"; above it,
paging is negligible.  We size the three memories automatically
around the profiled hot-code size so the same three regimes appear.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..softcache import SoftCacheConfig, SoftCacheSystem
from ..workloads import build_workload
from .render import ascii_table, series_plot


@dataclass
class Fig8Series:
    label: str
    cc_memory: int
    #: evictions per second in consecutive time bins
    bin_seconds: float
    rates: list[float]
    total_evictions: int
    steady_state_rate: float   # mean rate over the middle half
    final_blip: float          # rate in the last bin


def derive_memories(workload: str,
                    scale: float) -> tuple[int, int, int]:
    """Derive the three CC memory sizes from the program's behavior,
    mirroring the paper's 800B / 900B / 1KB:

    * below the steady-state working set (continuous paging),
    * fitting the steady loop but *not* the terminal statistics
      routines (zero steady-state paging, a blip at the end),
    * fitting everything the run ever touches (no paging at all).

    The steady set is every procedure first touched in the early part
    of the run; procedures first touched in the final 10% are the
    terminal routines.
    """
    import numpy as np

    from .common import native_trace

    run = native_trace(workload, scale, arm_profile=True)
    trace = run.trace
    n = trace.size
    steady_bytes = 0
    terminal_bytes = 0
    for proc in run.image.procs:
        mask = (trace >= proc.addr) & (trace < proc.end)
        hits = np.flatnonzero(mask)
        if hits.size == 0:
            continue
        if hits[0] > 0.9 * n:
            terminal_bytes += proc.size
        else:
            steady_bytes += proc.size
    total = steady_bytes + terminal_bytes
    return (int(steady_bytes * 0.85) & ~7,
            (steady_bytes + 24) & ~7,
            int(total * 1.2) & ~7)


def fig8(workload: str = "adpcm_enc", scale: float = 0.35,
         memories: tuple[int, ...] | None = None, nbins: int = 20,
         max_instructions: int = 400_000_000) -> list[Fig8Series]:
    image = build_workload(workload, scale, arm_profile=True)
    if memories is None:
        memories = derive_memories(workload, scale)
    series = []
    for memory in memories:
        config = SoftCacheConfig(tcache_size=memory, granularity="proc",
                                 policy="fifo", record_timeline=True)
        system = SoftCacheSystem(image, config)
        report = system.run(max_instructions)
        total_s = report.seconds or 1e-9
        bin_s = total_s / nbins
        counts = [0] * nbins
        for cycle in system.stats.eviction_timestamps:
            t = system.config.costs.cycles_to_seconds(cycle)
            counts[min(nbins - 1, int(t / bin_s))] += 1
        rates = [c / bin_s for c in counts]
        mid = rates[nbins // 4: 3 * nbins // 4]
        series.append(Fig8Series(
            label=f"mem={memory}B", cc_memory=memory, bin_seconds=bin_s,
            rates=rates,
            total_evictions=len(system.stats.eviction_timestamps),
            steady_state_rate=sum(mid) / len(mid) if mid else 0.0,
            final_blip=rates[-1]))
    return series


@dataclass
class Fig8PrefetchRow:
    """One depth setting of the proc-granularity prefetch ablation."""

    depth: int
    cycles: int
    relative_time: float
    evictions: int
    miss_service_cycles: int
    demand_translations: int
    prefetch_installs: int
    prefetch_hits: int
    wasted_prefetch_bytes: int


def fig8_prefetch_ablation(workload: str = "adpcm_enc",
                           scale: float = 0.35,
                           memory: int | None = None,
                           depths: tuple[int, ...] = (0, 1, 2, 4),
                           max_instructions: int = 400_000_000
                           ) -> list[Fig8PrefetchRow]:
    """Sweep ``prefetch_depth`` in the Figure 8 paging regime.

    Uses the middle of the derived CC memories (the one that pages
    hardest) and the networked link, so the sweep answers: can callee
    prefetch into a barely-too-small memory buy back miss time, and
    how much of it is wasted when evictions outrun speculation?
    """
    from ..net import LinkModel

    image = build_workload(workload, scale, arm_profile=True)
    if memory is None:
        memory = derive_memories(workload, scale)[0]
    rows: list[Fig8PrefetchRow] = []
    base_cycles: int | None = None
    for depth in depths:
        config = SoftCacheConfig(tcache_size=memory, granularity="proc",
                                 policy="fifo", prefetch_depth=depth,
                                 link=LinkModel(),
                                 record_timeline=False)
        system = SoftCacheSystem(image, config)
        report = system.run(max_instructions)
        if base_cycles is None:
            base_cycles = report.cycles
        s = system.stats
        rows.append(Fig8PrefetchRow(
            depth=depth, cycles=report.cycles,
            relative_time=report.cycles / base_cycles,
            evictions=s.evictions + s.blocks_flushed,
            miss_service_cycles=s.miss_service_cycles,
            demand_translations=s.demand_translations,
            prefetch_installs=s.prefetch_installs,
            prefetch_hits=s.prefetch_hits,
            wasted_prefetch_bytes=s.wasted_prefetch_bytes))
    return rows


@dataclass
class Fig8PolicyRow:
    """One (policy, depth) cell of the policy-ablation sweep."""

    policy: str
    depth: int
    cycles: int
    relative_time: float
    evictions: int
    flushes: int
    miss_service_cycles: int
    demand_translations: int
    prefetch_installs: int
    prefetch_hits: int
    prefetch_drops: int
    prefetch_dropped_bytes: int
    wasted_prefetch_bytes: int
    policy_prefetch_rejects: int
    policy_promotions: int


def fig8_policy_ablation(workload: str = "adpcm_enc",
                         scale: float = 0.35,
                         memory: int | None = None,
                         policies: tuple[str, ...] | None = None,
                         depths: tuple[int, ...] = (0, 2, 4),
                         max_instructions: int = 400_000_000
                         ) -> list[Fig8PolicyRow]:
    """Replacement-policy × prefetch-depth sweep in the Figure 8
    paging regime (small tcache, networked link).

    Each cell's ``relative_time`` is normalized to the fifo/depth-0
    cell — the seed configuration.  The interesting columns at depth
    ≥ 2 are the admission ones: ``rejected`` candidates were never
    shipped (pure link savings), ``drops``/``dropped B`` were shipped
    then thrown away, ``wasted B`` were installed then evicted
    untouched.
    """
    from ..net import LinkModel
    from ..profiling import temperature_for_image
    from ..softcache import policy_names

    image = build_workload(workload, scale, arm_profile=True)
    if memory is None:
        memory = derive_memories(workload, scale)[0]
    if policies is None:
        policies = policy_names()
    temperature = None
    if "trrip" in policies:
        temperature = temperature_for_image(image)
    rows: list[Fig8PolicyRow] = []
    base_cycles: int | None = None
    for policy in policies:
        params = ({"temperature": temperature}
                  if policy == "trrip" else None)
        for depth in depths:
            config = SoftCacheConfig(
                tcache_size=memory, granularity="proc",
                policy=policy, policy_params=params,
                prefetch_depth=depth, link=LinkModel(),
                record_timeline=False)
            system = SoftCacheSystem(image, config)
            report = system.run(max_instructions)
            if base_cycles is None:
                base_cycles = report.cycles
            s = system.stats
            rows.append(Fig8PolicyRow(
                policy=policy, depth=depth, cycles=report.cycles,
                relative_time=report.cycles / base_cycles,
                evictions=s.evictions, flushes=s.flushes,
                miss_service_cycles=s.miss_service_cycles,
                demand_translations=s.demand_translations,
                prefetch_installs=s.prefetch_installs,
                prefetch_hits=s.prefetch_hits,
                prefetch_drops=s.prefetch_drops,
                prefetch_dropped_bytes=s.prefetch_dropped_bytes,
                wasted_prefetch_bytes=s.wasted_prefetch_bytes,
                policy_prefetch_rejects=s.policy_prefetch_rejects,
                policy_promotions=s.policy_promotions))
    return rows


def render_fig8_policies(rows: list[Fig8PolicyRow]) -> str:
    table = [[r.policy, r.depth, r.cycles, f"{r.relative_time:.2f}",
              r.evictions, r.flushes, r.demand_translations,
              r.prefetch_installs, r.prefetch_hits,
              r.prefetch_drops, r.prefetch_dropped_bytes,
              r.wasted_prefetch_bytes, r.policy_prefetch_rejects]
             for r in rows]
    return ascii_table(
        ["policy", "depth", "cycles", "rel. time", "evictions",
         "flushes", "demand", "prefetched", "pf hits", "drops",
         "dropped B", "wasted B", "rejected"],
        table,
        title="Figure 8 ablation: replacement policy x prefetch depth "
              "(proc granularity, networked link)")


def render_fig8_prefetch(rows: list[Fig8PrefetchRow]) -> str:
    table = [[r.depth, r.cycles, f"{r.relative_time:.2f}", r.evictions,
              r.miss_service_cycles, r.demand_translations,
              r.prefetch_installs, r.prefetch_hits,
              r.wasted_prefetch_bytes] for r in rows]
    return ascii_table(
        ["depth", "cycles", "rel. time", "evictions", "miss-svc cycles",
         "demand", "prefetched", "pf hits", "wasted B"],
        table,
        title="Figure 8 ablation: successor-prefetch depth "
              "(proc granularity, networked link)")


def render_fig8(series: list[Fig8Series]) -> str:
    parts = ["Figure 8: evictions per second over time vs CC memory"]
    summary_rows = [[s.label, s.total_evictions,
                     f"{s.steady_state_rate:.0f}/s",
                     f"{s.final_blip:.0f}/s"] for s in series]
    parts.append(ascii_table(
        ["memory", "total evictions", "steady-state rate", "final bin"],
        summary_rows))
    for s in series:
        xs = [f"{i * s.bin_seconds * 1e3:.1f}ms"
              for i in range(len(s.rates))]
        parts.append("")
        parts.append(series_plot(xs, s.rates, label=s.label,
                                 fmt="{:.0f}"))
    return "\n".join(parts)
