"""Smaller quantitative results of the paper, reproduced:

* §2.4's "60 application bytes" of network overhead per chunk;
* §2.2/Fig 6's "tags for 32-bit addresses would add an extra 11-18%";
* §2.2's "two new instructions per translated basic block ... could be
  optimized away" — the block vs EBB ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hwcache import overhead_band, tag_overhead
from ..net import LOCAL_LINK
from ..sim.machine import Machine
from ..softcache import SoftCacheConfig, SoftCacheSystem
from ..workloads import build_workload
from .render import ascii_table


# -- network overhead ---------------------------------------------------------

@dataclass
class NetCostResult:
    exchanges: int
    overhead_per_exchange: float
    payload_bytes: int
    total_bytes: int
    mean_chunk_payload: float


def netcost(workload: str = "adpcm_enc", scale: float = 0.1,
            tcache_size: int = 48 * 1024) -> NetCostResult:
    image = build_workload(workload, scale)
    system = SoftCacheSystem(image, SoftCacheConfig(
        tcache_size=tcache_size, record_timeline=False))
    system.run(200_000_000)
    stats = system.link_stats
    return NetCostResult(
        exchanges=stats.exchanges,
        overhead_per_exchange=stats.overhead_per_exchange(),
        payload_bytes=stats.payload_bytes,
        total_bytes=stats.total_bytes,
        mean_chunk_payload=(stats.payload_bytes / stats.exchanges
                            if stats.exchanges else 0.0))


def render_netcost(result: NetCostResult) -> str:
    rows = [["chunk exchanges", result.exchanges],
            ["overhead / exchange", f"{result.overhead_per_exchange:.0f}B"
             " (paper: 60B)"],
            ["mean chunk payload", f"{result.mean_chunk_payload:.0f}B"],
            ["total app bytes", result.total_bytes]]
    return ascii_table(["metric", "value"], rows,
                       title="§2.4: network overhead per chunk")


# -- hardware tag space --------------------------------------------------------

def tagspace(sizes: tuple[int, ...] = tuple(1 << k for k in
                                            range(10, 18)),
             block_size: int = 16) -> list[tuple[int, float]]:
    """Tag+valid overhead percent per cache size (the 11-18% claim)."""
    return [(size,
             tag_overhead(size, block_size).overhead_percent)
            for size in sizes]


def render_tagspace(rows: list[tuple[int, float]]) -> str:
    lo, hi = overhead_band([r[0] for r in rows])
    table_rows = [[f"{size // 1024}KB", f"{pct:.1f}%"]
                  for size, pct in rows]
    table_rows.append(["band", f"{lo:.1f}% - {hi:.1f}% (paper: 11-18%)"])
    return ascii_table(["cache size", "tag overhead"], table_rows,
                       title="HW tag-array space overhead "
                             "(32-bit addrs, 16B blocks)")


# -- extra-instruction ablation ---------------------------------------------------

@dataclass
class AblationRow:
    granularity: str
    relative_time: float
    extra_instr_per_chunk: float
    translations: int
    words_installed: int


def extra_instruction_ablation(workload: str = "compress95",
                               scale: float = 0.15,
                               tcache_size: int = 48 * 1024,
                               max_instructions: int = 400_000_000
                               ) -> list[AblationRow]:
    """Block chunking (with added jumps/continuation slots) versus EBB
    chunking (optimized away), both with a fitting tcache."""
    image = build_workload(workload, scale)
    native = Machine(image)
    native.run(max_instructions)
    ideal = native.cpu.cycles
    rows = []
    for granularity in ("block", "ebb"):
        config = SoftCacheConfig(tcache_size=tcache_size,
                                 granularity=granularity,
                                 link=LOCAL_LINK,
                                 record_timeline=False)
        system = SoftCacheSystem(image, config)
        report = system.run(max_instructions)
        assert report.output == native.output_text
        stats = system.stats
        rows.append(AblationRow(
            granularity=granularity,
            relative_time=report.cycles / ideal,
            extra_instr_per_chunk=stats.extra_instructions_per_translation(),
            translations=stats.translations,
            words_installed=stats.words_installed))
    return rows


def render_ablation(rows: list[AblationRow]) -> str:
    table_rows = [[r.granularity, f"{r.relative_time:.3f}",
                   f"{r.extra_instr_per_chunk:.2f}", r.translations,
                   r.words_installed] for r in rows]
    return ascii_table(
        ["chunker", "rel. time", "extra instr/chunk", "translations",
         "words installed"],
        table_rows,
        title="§2.2 ablation: rewriting-added instructions "
              "(block) vs optimized traces (EBB)")
