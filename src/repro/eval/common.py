"""Shared experiment infrastructure: cached native runs and traces.

Native fetch traces are expensive (one interpreter pass per workload),
so every figure that consumes them (Table 1, Figs 6, 7, 9) shares one
trace per (workload, scale) through this module's cache.  The cache
has two layers:

* an in-process memoization dict (same semantics as before), and
* a persistent on-disk store (``.cache/traces/`` by default, override
  with ``$REPRO_TRACE_CACHE`` or :func:`set_trace_cache_dir`) so a
  fresh process — a new benchmark invocation, a worker in a parallel
  sweep — replays the trace from disk instead of re-interpreting.

Disk entries are keyed by a content hash of the *built workload image*
(text, data, layout, entry), the scale, the ARM-profile flag, the cost
model and :data:`_CACHE_VERSION`; changing any of those naturally
invalidates the entry.  Disk I/O is best-effort: a read-only or
corrupt cache silently falls back to a live traced run.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..asm.image import Image
from ..sim import jitcache
from ..sim.costs import DEFAULT_COSTS
from ..sim.machine import Machine
from ..workloads import build_workload

#: Bump whenever the stored format or trace semantics change: every
#: existing on-disk entry becomes unreachable (stale entries are also
#: deleted by :func:`sweep_stale_cache_versions`, which runs on every
#: store).  v2: the version moved into the *filename*
#: (``trace-v{N}-{digest}.npz``) so the directory is shared with the
#: JIT's compiled-superblock artifacts (``jit-*``,
#: :mod:`repro.sim.jitcache`) without any chance of collision, and so
#: stale generations are enumerable.  v3: the image's canonical
#: content digest (:func:`repro.softcache.update.image_digest` — the
#: identity the live-update epoch machinery uses) joined the key
#: material, so a republished image version can never alias a
#: pre-update trace entry even if a future refactor drops the raw
#: byte hashing below.
_CACHE_VERSION = 3


@dataclass
class TraceRun:
    """A native run with its full instruction fetch trace."""

    workload: str
    scale: float
    image: Image
    trace: np.ndarray          # uint32 fetch addresses
    instructions: int
    cycles: int
    output: str
    exit_code: int

    @property
    def dynamic_text_bytes(self) -> int:
        return 4 * int(np.unique(self.trace).size)


_trace_cache: dict[tuple[str, float, bool], TraceRun] = {}
_cache_dir_override: Path | None = None


def trace_cache_dir() -> Path:
    """Directory holding persistent trace entries."""
    if _cache_dir_override is not None:
        return _cache_dir_override
    return Path(os.environ.get("REPRO_TRACE_CACHE", ".cache/traces"))


def set_trace_cache_dir(path: "os.PathLike | str | None") -> None:
    """Override the on-disk cache directory (``None`` restores the
    default / ``$REPRO_TRACE_CACHE`` behaviour).  Forwards to
    :func:`repro.sim.jitcache.set_artifact_dir` so the native-trace
    store and the JIT's compiled-superblock store always share one
    directory (tests and sweeps redirect both with one call)."""
    global _cache_dir_override
    _cache_dir_override = Path(path) if path is not None else None
    jitcache.set_artifact_dir(path)


def _trace_key(workload: str, scale: float, arm_profile: bool,
               image: Image, max_instructions: int) -> str:
    """Content hash identifying one traced run."""
    from ..softcache.update import image_digest
    costs = ",".join(
        f"{op.name}:{cyc}" for op, cyc in
        sorted(DEFAULT_COSTS.op_cycles.items(), key=lambda kv: kv[0].name))
    h = hashlib.sha256()
    h.update((f"v{_CACHE_VERSION}|{workload}|{scale!r}|{arm_profile}|"
              f"{max_instructions}|{image.entry}|{image.text_base}|"
              f"{image.data_base}|{image.bss_base}|{image.bss_size}|"
              f"{image_digest(image)}|{costs}|").encode())
    h.update(image.text)
    h.update(b"|")
    h.update(image.data)
    return h.hexdigest()


def _load_disk(path: Path, workload: str, scale: float,
               image: Image) -> TraceRun | None:
    try:
        with np.load(path) as npz:
            return TraceRun(
                workload=workload, scale=scale, image=image,
                trace=npz["trace"].astype(np.uint32, copy=True),
                instructions=int(npz["instructions"]),
                cycles=int(npz["cycles"]),
                output=npz["output"].tobytes().decode("latin-1"),
                exit_code=int(npz["exit_code"]))
    except Exception:
        return None  # corrupt / truncated entry: re-run live


def _store_disk(path: Path, run: TraceRun) -> None:
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(
                    fh,
                    trace=run.trace,
                    instructions=np.int64(run.instructions),
                    cycles=np.int64(run.cycles),
                    exit_code=np.int64(run.exit_code),
                    output=np.frombuffer(
                        run.output.encode("latin-1"), dtype=np.uint8))
            os.replace(tmp, path)  # atomic: readers never see partials
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        pass  # best-effort (read-only checkout, full disk, ...)


def native_trace(workload: str, scale: float = 1.0, *,
                 arm_profile: bool = False,
                 max_instructions: int = 200_000_000) -> TraceRun:
    """Run *workload* natively with a fetch trace (memoized, both
    in-process and persistently on disk)."""
    key = (workload, scale, arm_profile)
    run = _trace_cache.get(key)
    if run is not None:
        return run
    image = build_workload(workload, scale, arm_profile=arm_profile)
    digest = _trace_key(workload, scale, arm_profile, image,
                        max_instructions)
    path = trace_cache_dir() / f"trace-v{_CACHE_VERSION}-{digest}.npz"
    run = _load_disk(path, workload, scale, image) if path.is_file() \
        else None
    if run is None:
        machine = Machine(image)
        exit_code, trace = machine.run_traced(max_instructions)
        run = TraceRun(
            workload=workload, scale=scale, image=image,
            trace=np.frombuffer(trace, dtype=np.uint32).copy(),
            instructions=machine.cpu.icount, cycles=machine.cpu.cycles,
            output=machine.output_text, exit_code=exit_code)
        _store_disk(path, run)
        sweep_stale_cache_versions()
    _trace_cache[key] = run
    return run


def clear_trace_cache(disk: bool = False) -> None:
    """Drop the in-process cache; with *disk*, also delete the
    persistent entries under :func:`trace_cache_dir`."""
    _trace_cache.clear()
    if disk:
        directory = trace_cache_dir()
        if directory.is_dir():
            for entry in directory.glob("*.npz"):
                try:
                    entry.unlink()
                except OSError:
                    pass


def sweep_stale_cache_versions(directory: "os.PathLike | str | None"
                               = None) -> int:
    """Evict artifacts written by other cache generations: ``*.npz``
    traces whose filename version isn't :data:`_CACHE_VERSION`
    (including pre-v2 bare-digest names) and JIT superblock artifacts
    from other codegen versions / interpreters
    (:func:`repro.sim.jitcache.sweep_stale`).  Returns the number of
    files removed; best-effort, never raises on I/O errors."""
    directory = (Path(directory) if directory is not None
                 else trace_cache_dir())
    removed = jitcache.sweep_stale(directory)
    if not directory.is_dir():
        return removed
    keep = f"trace-v{_CACHE_VERSION}-"
    for entry in directory.glob("*.npz"):
        if entry.name.startswith(keep):
            continue
        try:
            entry.unlink()
        except OSError:
            continue
        removed += 1
    return removed
