"""Shared experiment infrastructure: cached native runs and traces.

Native fetch traces are expensive (one interpreter pass per workload),
so every figure that consumes them (Table 1, Figs 6, 7, 9) shares one
trace per (workload, scale) through this module's cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..asm.image import Image
from ..sim.machine import Machine
from ..workloads import build_workload


@dataclass
class TraceRun:
    """A native run with its full instruction fetch trace."""

    workload: str
    scale: float
    image: Image
    trace: np.ndarray          # uint32 fetch addresses
    instructions: int
    cycles: int
    output: str
    exit_code: int

    @property
    def dynamic_text_bytes(self) -> int:
        return 4 * int(np.unique(self.trace).size)


_trace_cache: dict[tuple[str, float, bool], TraceRun] = {}


def native_trace(workload: str, scale: float = 1.0, *,
                 arm_profile: bool = False,
                 max_instructions: int = 200_000_000) -> TraceRun:
    """Run *workload* natively with a fetch trace (memoized)."""
    key = (workload, scale, arm_profile)
    run = _trace_cache.get(key)
    if run is not None:
        return run
    image = build_workload(workload, scale, arm_profile=arm_profile)
    machine = Machine(image)
    exit_code, trace = machine.run_traced(max_instructions)
    run = TraceRun(
        workload=workload, scale=scale, image=image,
        trace=np.frombuffer(trace, dtype=np.uint32).copy(),
        instructions=machine.cpu.icount, cycles=machine.cpu.cycles,
        output=machine.output_text, exit_code=exit_code)
    _trace_cache[key] = run
    return run


def clear_trace_cache() -> None:
    _trace_cache.clear()
