"""Section 3 / Figure 10 evaluation: the software data cache.

The paper presents the D-cache as a design, not an implementation; we
built it, so we can measure what it predicts: the fast-hit/slow-hit
split under each prediction scheme, the guaranteed on-chip latency
(the slow-hit bound), and the effect of pinned constant-address
globals.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dcache import DataCacheConfig
from ..net import LOCAL_LINK
from ..sim.machine import Machine
from ..softcache import SoftCacheConfig, SoftCacheSystem
from ..workloads import build_workload
from .render import ascii_table


@dataclass
class DCacheRow:
    prediction: str
    dcache_size: int
    relative_time: float
    fast_hits: int
    slow_hits: int
    misses: int
    prediction_accuracy: float
    worst_slow_hit_cycles: int
    slow_hit_bound_cycles: int
    pinned_specializations: int
    scache_spills: int


def dcache_eval(workload: str = "adpcm_enc", scale: float = 0.1,
                dcache_sizes: tuple[int, ...] = (512, 2048, 8192),
                predictions: tuple[str, ...] = ("none", "last",
                                                "stride"),
                tcache_size: int = 48 * 1024,
                max_instructions: int = 400_000_000) -> list[DCacheRow]:
    image = build_workload(workload, scale)
    native = Machine(image)
    native.run(max_instructions)
    ideal = native.cpu.cycles
    rows = []
    for prediction in predictions:
        for dsize in dcache_sizes:
            config = SoftCacheConfig(
                tcache_size=tcache_size, record_timeline=False,
                link=LOCAL_LINK,  # isolate the check/penalty structure
                data_cache=DataCacheConfig(dcache_size=dsize,
                                           prediction=prediction))
            system = SoftCacheSystem(image, config)
            report = system.run(max_instructions)
            assert report.output == native.output_text, (
                f"D-cache run diverged ({prediction}/{dsize})")
            stats = system.dcache.stats
            rows.append(DCacheRow(
                prediction=prediction, dcache_size=dsize,
                relative_time=report.cycles / ideal,
                fast_hits=stats.fast_hits, slow_hits=stats.slow_hits,
                misses=stats.misses,
                prediction_accuracy=stats.prediction_accuracy(),
                worst_slow_hit_cycles=stats.worst_slow_hit_cycles,
                slow_hit_bound_cycles=system.dcache
                .slow_hit_bound_cycles(),
                pinned_specializations=system.mc.data_rewriter.stats
                .pinned_specializations,
                scache_spills=stats.scache_spills))
    return rows


def render_dcache(rows: list[DCacheRow]) -> str:
    table_rows = [[r.prediction, r.dcache_size, f"{r.relative_time:.2f}",
                   r.fast_hits, r.slow_hits, r.misses,
                   f"{100 * r.prediction_accuracy:.1f}%",
                   f"{r.worst_slow_hit_cycles}/{r.slow_hit_bound_cycles}"]
                  for r in rows]
    return ascii_table(
        ["pred", "dcache", "rel time", "fast", "slow", "miss",
         "pred acc", "slow-hit worst/bound"],
        table_rows,
        title="Section 3: software D-cache (fully associative, "
              "predicted; slow hits bounded on-chip)")
