"""Plain-text rendering of experiment results."""

from __future__ import annotations


def ascii_table(headers: list[str], rows: list[list], title: str = "",
                ) -> str:
    """Render rows as a fixed-width text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_plot(xs: list, ys: list[float], *, width: int = 50,
                label: str = "", fmt: str = "{:.2f}") -> str:
    """A simple horizontal-bar text plot of a series."""
    if not ys:
        return f"{label}: (empty)"
    peak = max(ys) or 1.0
    lines = [label] if label else []
    for x, y in zip(xs, ys):
        bar = "#" * max(0, round(width * y / peak))
        lines.append(f"{str(x):>10}  {fmt.format(y):>9}  {bar}")
    return "\n".join(lines)


def fmt_bytes(n: int) -> str:
    if n >= 1024 * 1024:
        return f"{n / (1024 * 1024):.1f}MB"
    if n >= 1024:
        return f"{n / 1024:.1f}KB"
    return f"{n}B"
