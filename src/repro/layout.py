"""Address-space layout shared by the linker, simulator and SoftCache.

The embedded client owns a small **local RAM** at ``LOCAL_BASE``; the
server holds the full program image (text + data) in **remote memory**
at ``TEXT_BASE``/``DATA_BASE``.  In the instruction-cache-only system
(the paper's SPARC prototype) data and stack stay at their original
remote addresses — "the rewritten code accesses data objects in the
same memory locations as it would have if it had not been rewritten"
— and only code is staged into the local translation cache.

Everything lives below ``0x1000_0000`` so 26-bit absolute jump targets
(word-addressed, 256 MB reach) cover the entire map.
"""

from __future__ import annotations

#: Base of the embedded client's local RAM (tcache, stubs, runtime).
LOCAL_BASE = 0x0001_0000
#: Maximum size of local RAM the machine will map.
LOCAL_MAX_SIZE = 0x0100_0000

#: Base address of the program text segment (remote/server memory).
TEXT_BASE = 0x0800_0000
#: Base address of the data segment (globals + heap).
DATA_BASE = 0x0900_0000
#: Initial stack pointer; the stack grows down from here.
STACK_TOP = 0x0A00_0000
#: Default size of the stack region.
STACK_SIZE = 0x0010_0000

#: Highest mappable address + 1 (26-bit word jump reach).
ADDR_LIMIT = 0x1000_0000

#: Sentinel frame pointer marking the outermost stack frame; the
#: SoftCache stack walker stops when it sees a saved fp equal to this.
FP_SENTINEL = 0


def align(value: int, alignment: int) -> int:
    """Round *value* up to a multiple of *alignment* (a power of two)."""
    if alignment & (alignment - 1):
        raise ValueError(f"alignment not a power of two: {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)
