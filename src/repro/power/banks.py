"""Memory-bank power gating (§4, novel capability 1).

"Since the software cache is fully associative, we can size or resize
it arbitrarily in order to shut down portions of memory.  In low-power
StrongARM devices ... I-cache 27%, D-cache 16%, Write Buffer 2% ...
45% of the total power consumption lies in the cache alone.  By
converting the on-chip cache data space to multi-bank SRAM, we can
find an optimization for power based on memory footprint."

This module quantifies that idea for our system: the local tcache area
is divided into SRAM banks; a bank must be powered only while it holds
live translated code.  Residency over time is reconstructed with the
same allocator replay used for Figure 7, yielding per-bank duty cycles
and an estimated chip-power saving against a hardware-cache baseline
that must keep its whole array (plus tags) powered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..asm.image import Image
from ..softcache.chunks import BasicBlockChunker, EBBChunker
from ..softcache.records import TBlock
from ..softcache.tcache import TCache, TCacheGeometry
from ..eval.tcache_replay import chunk_entry_sequence


@dataclass(frozen=True)
class StrongARMPower:
    """Chip-level power fractions from Montanaro et al. [10] as quoted
    in §4 of the paper."""

    icache_fraction: float = 0.27
    dcache_fraction: float = 0.16
    write_buffer_fraction: float = 0.02

    @property
    def cache_total_fraction(self) -> float:
        return (self.icache_fraction + self.dcache_fraction
                + self.write_buffer_fraction)


@dataclass
class BankPowerResult:
    """Outcome of a bank-gating analysis for one configuration."""

    tcache_size: int
    bank_size: int
    nbanks: int
    instructions: int
    #: mean fraction of banks powered (instruction-weighted)
    mean_duty: float
    #: per-bank fraction of time powered
    bank_duty: list[float]
    #: power-state transitions (bank wake-ups)
    wakeups: int
    power: StrongARMPower = field(default_factory=StrongARMPower)

    @property
    def icache_power_saving_fraction(self) -> float:
        """Fraction of *chip* power saved versus an always-on
        hardware I-cache of the same capacity."""
        return self.power.icache_fraction * (1.0 - self.mean_duty)

    @property
    def memory_power_relative(self) -> float:
        """Instruction-memory power relative to the hardware cache
        (ignoring the tag array the hardware also powers)."""
        return self.mean_duty


def bank_power_analysis(image: Image, trace: np.ndarray,
                        tcache_size: int, *, bank_size: int = 1024,
                        granularity: str = "block",
                        policy: str = "fifo",
                        power: StrongARMPower | None = None
                        ) -> BankPowerResult:
    """Replay the run and integrate per-bank occupancy over time.

    A bank is powered while any resident block overlaps it.  Occupancy
    changes only at translation/eviction events; between events the
    bank set is constant, so the integral is exact.
    """
    if tcache_size % bank_size:
        raise ValueError("tcache size must be a multiple of bank size")
    if granularity == "block":
        chunker = BasicBlockChunker(image)
    elif granularity == "ebb":
        chunker = EBBChunker(image)
    else:
        raise ValueError("bank analysis supports block/ebb")
    nbanks = tcache_size // bank_size
    base = 0x10000
    tcache = TCache(TCacheGeometry(base=base, size=tcache_size,
                                   stub_capacity=0))
    size_of: dict[int, int] = {}

    entries = chunk_entry_sequence(image, trace, granularity)
    # positions of chunk entries within the instruction stream let us
    # weight each occupancy interval by instructions executed
    is_entry = np.zeros(trace.size, dtype=bool)
    # recompute entry indices (chunk_entry_sequence returns values);
    # replicate its mask cheaply by matching monotone positions
    # (entries appear in order): walk once
    entry_positions = _entry_positions(image, trace, granularity)

    bank_cycles = np.zeros(nbanks, dtype=np.float64)
    wakeups = 0
    powered = np.zeros(nbanks, dtype=bool)
    current_banks = np.zeros(nbanks, dtype=bool)
    last_pos = 0
    total = trace.size

    def banks_of_resident() -> np.ndarray:
        mask = np.zeros(nbanks, dtype=bool)
        for block in tcache.order:
            first = (block.addr - base) // bank_size
            last = (block.end - 1 - base) // bank_size
            mask[first:last + 1] = True
        return mask

    lookup = tcache.map
    for pos, addr in zip(entry_positions.tolist(), entries_list(
            image, trace, granularity)):
        if addr in lookup:
            continue
        # close the previous interval
        bank_cycles += current_banks * (pos - last_pos)
        last_pos = pos
        nbytes = size_of.get(addr)
        if nbytes is None:
            nbytes = chunker.chunk_at(addr).size
            size_of[addr] = nbytes
        if policy == "flush":
            if tcache.needs_eviction(nbytes):
                tcache.retire_all()
        else:
            while tcache.needs_eviction(nbytes):
                tcache.retire_oldest()
        place = tcache.place(nbytes)
        tcache.commit(TBlock(orig=addr, addr=place, size=nbytes,
                             orig_size=nbytes, extra_words=0))
        new_banks = banks_of_resident()
        wakeups += int(np.count_nonzero(new_banks & ~powered))
        powered |= new_banks
        current_banks = new_banks
    bank_cycles += current_banks * (total - last_pos)

    duty = (bank_cycles / total) if total else bank_cycles
    return BankPowerResult(
        tcache_size=tcache_size, bank_size=bank_size, nbanks=nbanks,
        instructions=int(total),
        mean_duty=float(duty.mean()) if nbanks else 0.0,
        bank_duty=[float(d) for d in duty],
        wakeups=wakeups,
        power=power or StrongARMPower())


def _entry_positions(image: Image, trace: np.ndarray,
                     granularity: str) -> np.ndarray:
    """Indices into *trace* where chunk entries occur."""
    # identical mask logic to chunk_entry_sequence
    from ..eval.tcache_replay import _TERMINATOR_OPS, _BRANCH_OPS
    from ..isa import Op
    if trace.size == 0:
        return np.zeros(0, dtype=np.int64)
    text = np.frombuffer(image.text, dtype="<u4")
    offsets = (trace.astype(np.int64) - image.text_base) >> 2
    opcodes = (text[offsets] >> 26).astype(np.int64)
    is_term = np.isin(opcodes, list(_TERMINATOR_OPS))
    entry_mask = np.empty(trace.size, dtype=bool)
    entry_mask[0] = True
    entry_mask[1:] = is_term[:-1]
    if granularity == "ebb":
        prev_op = opcodes[:-1]
        fallthrough = trace[1:] == trace[:-1] + 4
        inline = (np.isin(prev_op, list(_BRANCH_OPS)) & fallthrough) | \
            (prev_op == int(Op.RET))
        entry_mask[1:] &= ~inline
    return np.flatnonzero(entry_mask)


def entries_list(image: Image, trace: np.ndarray,
                 granularity: str) -> list[int]:
    return chunk_entry_sequence(image, trace, granularity).tolist()


def power_sweep(image: Image, trace: np.ndarray,
                sizes: list[int], **kw) -> list[BankPowerResult]:
    """Bank-power analysis across tcache sizes (the sizing tradeoff:
    bigger caches miss less but keep more banks lit)."""
    return [bank_power_analysis(image, trace, size, **kw)
            for size in sizes]
