"""Multi-bank parallel data access (§4, novel capability 3).

"given multiple banks of on-chip memory, software caching can be used
to execute multiple load/store operations in parallel.  By knowing the
dynamic behavior of the system, we can rearrange during runtime where
data is located to optimize accesses to different banks."

The SoftCache controls where every cached data block lives, so it can
*choose* bank assignments.  This module compares two placements over a
recorded dcache block-access sequence (collect one with
``DataCacheConfig(record_access_tags=True)``):

* **interleaved** — the hardware default, ``bank = block % nbanks``;
* **optimized** — a greedy placement that separates frequently
  adjacent blocks into different banks (the paper's "rearrange during
  runtime").

The performance model is a dual-ported issue window: two consecutive
accesses issue together iff they target different banks, so fewer
adjacent conflicts means more memory parallelism.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass


@dataclass(frozen=True)
class ParallelAccessResult:
    """Outcome of the bank-placement comparison."""

    nbanks: int
    accesses: int
    interleaved_conflicts: int
    optimized_conflicts: int
    interleaved_cycles: int
    optimized_cycles: int

    @property
    def conflict_reduction(self) -> float:
        if not self.interleaved_conflicts:
            return 0.0
        return 1.0 - self.optimized_conflicts / self.interleaved_conflicts

    @property
    def speedup(self) -> float:
        """Memory-cycle speedup of optimized over interleaved."""
        if not self.optimized_cycles:
            return 1.0
        return self.interleaved_cycles / self.optimized_cycles


def _adjacent_conflicts(tags: list[int], bank_of) -> int:
    conflicts = 0
    for prev, cur in zip(tags, tags[1:]):
        if prev != cur and bank_of(prev) == bank_of(cur):
            conflicts += 1
    return conflicts


def _pairing_cycles(tags: list[int], bank_of) -> int:
    """Dual-issue model: a pair of consecutive accesses to different
    banks costs one memory cycle; conflicting or equal-block pairs
    serialize."""
    cycles = 0
    i = 0
    n = len(tags)
    while i < n:
        if i + 1 < n and tags[i] != tags[i + 1] and \
                bank_of(tags[i]) != bank_of(tags[i + 1]):
            cycles += 1
            i += 2
        else:
            cycles += 1
            i += 1
    return cycles


def greedy_bank_placement(tags: list[int], nbanks: int) -> dict[int, int]:
    """Assign blocks to banks minimizing weighted adjacent conflicts.

    Builds the co-adjacency graph of the access sequence and assigns
    blocks in order of total adjacency weight, each to the bank with
    the least conflict weight against already-placed neighbors —
    exactly what a runtime system observing its own access stream can
    do (the SoftCache's dcache is fully associative, so any block can
    live in any bank).
    """
    adjacency: Counter[tuple[int, int]] = Counter()
    weight: Counter[int] = Counter()
    for prev, cur in zip(tags, tags[1:]):
        if prev == cur:
            continue
        key = (min(prev, cur), max(prev, cur))
        adjacency[key] += 1
        weight[prev] += 1
        weight[cur] += 1
    neighbors: dict[int, list[tuple[int, int]]] = {}
    for (a, b), w in adjacency.items():
        neighbors.setdefault(a, []).append((b, w))
        neighbors.setdefault(b, []).append((a, w))
    placement: dict[int, int] = {}
    for tag, _ in weight.most_common():
        cost = [0] * nbanks
        for other, w in neighbors.get(tag, ()):
            bank = placement.get(other)
            if bank is not None:
                cost[bank] += w
        placement[tag] = min(range(nbanks), key=cost.__getitem__)
    # blocks never adjacent to anything keep the interleaved default
    for tag in set(tags) - placement.keys():
        placement[tag] = tag % nbanks
    return placement


def parallel_access_analysis(tags: list[int],
                             nbanks: int = 4) -> ParallelAccessResult:
    """Compare interleaved vs optimized placements over *tags*."""
    if nbanks < 2:
        raise ValueError("need at least two banks for parallelism")
    interleaved = lambda tag: tag % nbanks  # noqa: E731
    placement = greedy_bank_placement(tags, nbanks)
    optimized = placement.__getitem__
    return ParallelAccessResult(
        nbanks=nbanks,
        accesses=len(tags),
        interleaved_conflicts=_adjacent_conflicts(tags, interleaved),
        optimized_conflicts=_adjacent_conflicts(tags, optimized),
        interleaved_cycles=_pairing_cycles(tags, interleaved),
        optimized_cycles=_pairing_cycles(tags, optimized),
    )
