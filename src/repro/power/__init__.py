"""repro.power — §4 novel capabilities: power and banking.

* :func:`bank_power_analysis` — SRAM bank power gating: the fully
  associative SoftCache concentrates live code into as few banks as
  the working set needs, and idle banks sleep (StrongARM power
  fractions from the paper's reference [10]).
* :func:`parallel_access_analysis` — multi-bank parallel data access:
  the SoftCache chooses where cached data blocks live, so it can
  separate frequently adjacent blocks into different banks.
"""

from .banks import (
    BankPowerResult,
    StrongARMPower,
    bank_power_analysis,
    power_sweep,
)
from .parallel import (
    ParallelAccessResult,
    greedy_bank_placement,
    parallel_access_analysis,
)

__all__ = [
    "BankPowerResult", "ParallelAccessResult", "StrongARMPower",
    "bank_power_analysis", "greedy_bank_placement",
    "parallel_access_analysis", "power_sweep",
]
