"""Whole-program control-flow graph construction.

Static analysis used by the evaluation harness (reachable-code
estimates for Table 1, hot-code contiguity for Figure 9) and by tests
that validate the chunkers.  The dynamic SoftCache itself never needs
the global graph — it discovers blocks lazily — but the CFG gives an
independent oracle to check chunking against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.image import Image
from .blocks import Block, Term, scan_block


@dataclass
class CFG:
    """Reachable control-flow graph of an image.

    ``blocks`` maps block start address to :class:`Block`;
    ``succs``/``preds`` are adjacency over block start addresses.
    Computed jumps contribute no static edges (they are the paper's
    *ambiguous pointers*); their possible targets are approximated by
    ``indirect_targets`` — addresses found in data words that point
    into text (jump tables, function pointers).
    """

    image: Image
    blocks: dict[int, Block] = field(default_factory=dict)
    succs: dict[int, list[int]] = field(default_factory=dict)
    preds: dict[int, list[int]] = field(default_factory=dict)
    indirect_targets: list[int] = field(default_factory=list)

    @property
    def reachable_text_bytes(self) -> int:
        """Bytes of text covered by at least one reachable block."""
        covered: set[int] = set()
        for block in self.blocks.values():
            covered.update(range(block.addr, block.end, 4))
        return 4 * len(covered)


def _scan_indirect_targets(image: Image) -> list[int]:
    """Data words that look like text addresses (jump-table entries)."""
    out = []
    data = image.data
    for off in range(0, len(data) - 3, 4):
        val = int.from_bytes(data[off:off + 4], "little")
        if image.in_text(val) and val % 4 == 0:
            out.append(val)
    return out


def build_cfg(image: Image, entries: list[int] | None = None) -> CFG:
    """Build the CFG reachable from *entries* (default: image entry
    plus every indirect target found in data)."""
    cfg = CFG(image=image)
    cfg.indirect_targets = _scan_indirect_targets(image)
    work = list(entries) if entries is not None else (
        [image.entry] + cfg.indirect_targets)
    seen: set[int] = set()
    text_end = image.text_end
    while work:
        addr = work.pop()
        if addr in seen or not image.in_text(addr):
            continue
        seen.add(addr)
        block = scan_block(image.word_at, addr, text_end)
        cfg.blocks[addr] = block
        succs: list[int] = []
        if block.taken is not None:
            succs.append(block.taken)
        if block.fallthrough is not None:
            succs.append(block.fallthrough)
        if block.term is Term.RET:
            pass  # return edges resolved dynamically
        cfg.succs[addr] = succs
        for succ in succs:
            cfg.preds.setdefault(succ, []).append(addr)
            work.append(succ)
    return cfg


def block_starts(cfg: CFG) -> set[int]:
    """All block start addresses (for trace→block-trace conversion)."""
    return set(cfg.blocks)


def reachable_procs(cfg: CFG) -> set[str]:
    """Names of procedures containing at least one reachable block."""
    names: set[str] = set()
    for addr in cfg.blocks:
        proc = cfg.image.proc_at(addr)
        if proc is not None:
            names.add(proc.name)
    return names
