"""Basic-block scanning: the unit of chunking for the SPARC prototype.

A *chunk* in the paper is "a basic block, although it could certainly
be a larger sequence of instructions".  The memory controller chunks
lazily: given any entry address it scans forward to the first control
transfer.  Overlapping translations (two blocks sharing a suffix of
original instructions because control entered at two different
addresses) are allowed, exactly as in Dynamo/Shade-style systems.

In this ISA every non-control instruction is position independent, so
block bodies can be relocated verbatim; all the rewriting work happens
at the terminator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..isa import Insn, Op, decode, is_control_transfer


class Term(enum.Enum):
    """How a basic block ends."""

    BRANCH = "branch"      # conditional: taken target + fall-through
    JUMP = "jump"          # unconditional direct (j)
    CALL = "call"          # jal: callee + return continuation
    ICALL = "icall"        # jalr: computed callee + return continuation
    CJUMP = "cjump"        # jr: computed jump (no continuation)
    RET = "ret"            # return through ra
    HALT = "halt"          # machine stop


@dataclass(frozen=True, slots=True)
class Block:
    """A scanned basic block at ``addr`` in the original text.

    ``insns`` includes the terminator.  ``taken``/``fallthrough`` are
    original byte addresses when statically known, else ``None``.
    """

    addr: int
    insns: tuple[Insn, ...]
    words: tuple[int, ...]
    term: Term
    taken: int | None         # branch/jump/call static target
    fallthrough: int | None   # next-pc successor (branch not-taken /
    # call continuation); None for jump/ret/cjump/halt

    @property
    def size(self) -> int:
        """Size in bytes of the original block."""
        return 4 * len(self.insns)

    @property
    def end(self) -> int:
        return self.addr + self.size

    @property
    def terminator(self) -> Insn:
        return self.insns[-1]


class BlockScanError(ValueError):
    """Block scan ran off the end of text or hit an illegal word."""


#: Safety bound: no compiler-generated basic block is this long.
MAX_BLOCK_INSNS = 4096


def scan_block(word_at, addr: int, text_end: int) -> Block:
    """Scan the basic block starting at *addr*.

    *word_at* maps a byte address to its 32-bit instruction word;
    *text_end* bounds the scan.
    """
    if addr & 3:
        raise BlockScanError(f"block start misaligned: {addr:#x}")
    insns: list[Insn] = []
    words: list[int] = []
    pc = addr
    while True:
        if pc >= text_end:
            raise BlockScanError(
                f"block at {addr:#x} runs past text end {text_end:#x}")
        if len(insns) >= MAX_BLOCK_INSNS:
            raise BlockScanError(f"block at {addr:#x} too long")
        word = word_at(pc)
        try:
            ins = decode(word)
        except Exception as exc:
            raise BlockScanError(
                f"illegal word {word:#010x} at {pc:#x}") from exc
        insns.append(ins)
        words.append(word)
        if is_control_transfer(ins.op):
            break
        pc += 4
    term_pc = pc
    ins = insns[-1]
    op = ins.op
    if op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU):
        term, taken = Term.BRANCH, term_pc + 4 + (ins.imm << 2)
        fallthrough = term_pc + 4
    elif op is Op.J:
        term, taken, fallthrough = Term.JUMP, ins.imm << 2, None
    elif op is Op.JAL:
        term, taken, fallthrough = Term.CALL, ins.imm << 2, term_pc + 4
    elif op is Op.JALR:
        term, taken, fallthrough = Term.ICALL, None, term_pc + 4
    elif op is Op.JR:
        term, taken, fallthrough = Term.CJUMP, None, None
    elif op is Op.RET:
        term, taken, fallthrough = Term.RET, None, None
    elif op is Op.HALT:
        term, taken, fallthrough = Term.HALT, None, None
    else:  # pragma: no cover - BLOCK_TERMINATORS is exhaustive
        raise BlockScanError(f"unexpected terminator {op} at {term_pc:#x}")
    return Block(addr=addr, insns=tuple(insns), words=tuple(words),
                 term=term, taken=taken, fallthrough=fallthrough)
