"""repro.cfg — basic blocks and control-flow analysis.

:func:`scan_block` is the lazy block scanner the memory controller
chunks with; :func:`build_cfg` builds the whole-program graph used by
static analyses and as a testing oracle.
"""

from .blocks import Block, BlockScanError, MAX_BLOCK_INSNS, Term, scan_block
from .graph import CFG, block_starts, build_cfg, reachable_procs

__all__ = [
    "Block", "BlockScanError", "CFG", "MAX_BLOCK_INSNS", "Term",
    "block_starts", "build_cfg", "reachable_procs", "scan_block",
]
