"""repro — reproduction of "Software Caching using Dynamic Binary
Rewriting for Embedded Devices" (Huneycutt, Fryman, MacKenzie,
ICPP 2002).

The package implements the paper's full system in Python:

* :mod:`repro.isa`, :mod:`repro.asm`, :mod:`repro.lang` — a 32-bit RISC
  ISA with assembler, linker and a mini-C compiler (the toolchain that
  produces workload binaries);
* :mod:`repro.sim` — the embedded-client CPU simulator with an explicit
  cost model;
* :mod:`repro.softcache` — the contribution: client/server software
  instruction caching via dynamic binary rewriting (tcache, MC/CC,
  backpatching, invalidation, eviction, redirectors);
* :mod:`repro.dcache` — the Section-3 software data cache design
  (stack cache + fully associative predicted dcache);
* :mod:`repro.hwcache`, :mod:`repro.net`, :mod:`repro.cfg`,
  :mod:`repro.profiling` — the baselines and substrates;
* :mod:`repro.workloads`, :mod:`repro.eval` — benchmark programs and
  the per-figure/table experiment drivers.

Quickstart::

    from repro.workloads import build_workload
    from repro.softcache import SoftCacheConfig, run_softcache

    image = build_workload("adpcm_enc")
    report, system = run_softcache(
        image, SoftCacheConfig(tcache_size=4096))
    print(report.seconds, system.stats.translations)
"""

__version__ = "1.0.0"
