"""The paper's motivating example (Figure 2): a sensor node whose code
has four modes — initialization, calibration, daytime, nighttime — of
which only one is active at a time and only two are performance
critical.

The program cycles day/night with occasional recalibration; local
memory sized to the largest single mode gives a 100% steady-state hit
rate inside each mode with misses only at the (infrequent) mode
transitions.  ``examples/sensor_modes.py`` demonstrates exactly that.
"""

SENSOR_SRC = r"""
int samples[256];
int calib_gain = 256;
int calib_offset = 0;
int day_events = 0;
int night_events = 0;

// ---- mode: initialization (run once, cold) ----------------------------

void mode_init(void) {
    int i;
    for (i = 0; i < 256; i++) samples[i] = 0;
    calib_gain = 256;
    calib_offset = 0;
    print_str("init done\n");
}

// ---- mode: calibration (rare) -------------------------------------------

void mode_calibrate(int seed) {
    int i;
    int sum = 0;
    int sumsq = 0;
    srand(seed);
    for (i = 0; i < 128; i++) {
        int v = (rand() & 1023) - 512;
        sum += v;
        sumsq += (v * v) >> 8;
    }
    calib_offset = sum / 128;
    calib_gain = 200 + isqrt(sumsq / 128);
    print_pair("calib ", calib_gain, calib_offset);
}

// ---- mode: daytime processing (hot, performance critical) -----------------

int day_step(int t) {
    int i;
    int acc = 0;
    int peak = 0;
    for (i = 0; i < 64; i++) {
        int raw = sin_q15((t * 3 + i * 5) & 255) >> 6;
        int v = ((raw - calib_offset) * calib_gain) >> 8;
        samples[i & 255] = v;
        acc += abs_i(v);
        if (v > peak) peak = v;
    }
    if (peak > 400) {
        day_events++;
        return 1;
    }
    return acc & 1;
}

// ---- mode: nighttime processing (hot, different working set) -----------------

int night_step(int t) {
    int i;
    int count = 0;
    int threshold = 80;
    for (i = 0; i < 64; i++) {
        int raw = ((rand() & 255) - 128) + (sin_q15((t + i) & 255) >> 9);
        int v = ((raw - calib_offset) * calib_gain) >> 8;
        // event detection with hysteresis
        if (v > threshold) {
            count++;
            threshold = 100;
        } else if (v < -threshold) {
            count++;
            threshold = 100;
        } else {
            threshold = 80;
        }
    }
    if (count > 10) night_events++;
    return count;
}

int main(void) {
    int day;
    int acc = 0;
    mode_init();
    mode_calibrate(77);
    for (day = 0; day < NDAYS; day++) {
        int t;
        for (t = 0; t < STEPS; t++) acc += day_step(day * STEPS + t);
        for (t = 0; t < STEPS; t++) acc += night_step(day * STEPS + t);
        if ((day % 7) == 6) mode_calibrate(day);
    }
    print_labeled("day_events=", day_events);
    print_labeled("night_events=", night_events);
    print_labeled("acc=", acc);
    return 0;
}
"""


def sensor_source(ndays: int = 10, steps: int = 40) -> str:
    return (SENSOR_SRC.replace("NDAYS", str(ndays))
            .replace("STEPS", str(steps)))
