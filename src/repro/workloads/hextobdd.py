"""hextobdd — the paper's "local graph manipulation application".

Builds reduced ordered BDDs from hex-encoded truth tables and
combines them with apply (AND/OR/XOR) through a unique table and a
compute cache, then counts satisfying assignments.  This is classic
pointer-heavy graph code: hash probes, node allocation, recursive
walks — a very different control-flow profile from the codecs, which
is why the paper includes it.
"""

HEXTOBDD_SRC = r"""
// ---- BDD node store ---------------------------------------------------
// node i: var_of[i], low[i], high[i].  Terminals: 0 = FALSE, 1 = TRUE.

int var_of[NODES];
int low_of[NODES];
int high_of[NODES];
int node_count = 2;

int uniq_head[1024];       // unique-table buckets -> node index
int uniq_next[NODES];      // chain

int cache_key[2048];       // compute cache: op/left/right packed
int cache_val[2048];

int NVARS = 12;

// ---- cold: initialization -----------------------------------------------

void bdd_init(void) {
    int i;
    node_count = 2;
    var_of[0] = 99; var_of[1] = 99;
    for (i = 0; i < 1024; i++) uniq_head[i] = -1;
    for (i = 0; i < 2048; i++) cache_key[i] = -1;
}

// ---- hot: hashed node construction ------------------------------------------

int mk_node(int v, int lo, int hi) {
    int h;
    int p;
    if (lo == hi) return lo;
    h = (v * 12582917 + lo * 4256249 + hi * 741457) & 1023;
    if (h < 0) h = -h;
    p = uniq_head[h];
    while (p >= 0) {
        if (var_of[p] == v && low_of[p] == lo && high_of[p] == hi)
            return p;
        p = uniq_next[p];
    }
    if (node_count >= NODES) {
        print_str("bdd: node table overflow\n");
        __halt(2);
    }
    p = node_count;
    node_count++;
    var_of[p] = v;
    low_of[p] = lo;
    high_of[p] = hi;
    uniq_next[p] = uniq_head[h];
    uniq_head[h] = p;
    return p;
}

// ---- hot: apply with compute cache ---------------------------------------------

int apply_op(int op, int a, int b) {
    int key;
    int h;
    int va; int vb; int v;
    int a0; int a1; int b0; int b1;
    int r0; int r1; int r;
    // terminal cases
    if (a < 2 && b < 2) {
        if (op == 0) return a & b;
        if (op == 1) return a | b;
        return a ^ b;
    }
    if (op == 0) { if (a == 0 || b == 0) return 0; }
    if (op == 1) { if (a == 1 || b == 1) return 1; }
    key = ((op * 16384 + a) * NODES + b) & 2147483647;
    h = key & 2047;
    if (cache_key[h] == key) return cache_val[h];
    va = var_of[a];
    vb = var_of[b];
    if (va < vb) v = va; else v = vb;
    if (va == v) { a0 = low_of[a]; a1 = high_of[a]; }
    else { a0 = a; a1 = a; }
    if (vb == v) { b0 = low_of[b]; b1 = high_of[b]; }
    else { b0 = b; b1 = b; }
    r0 = apply_op(op, a0, b0);
    r1 = apply_op(op, a1, b1);
    r = mk_node(v, r0, r1);
    cache_key[h] = key;
    cache_val[h] = r;
    return r;
}

// ---- build a BDD for one variable ------------------------------------------------

int bdd_var(int v) {
    return mk_node(v, 0, 1);
}

// ---- cold-ish: parse hex truth-table descriptions into BDDs -----------------------
// Each hex digit describes minterms of 4 consecutive assignments over
// a 2-variable window; we fold windows together with OR of ANDs.

int hex_digit(int c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    print_str("bad hex digit\n");
    __halt(3);
    return 0;
}

int minterm(int bits, int v0, int v1) {
    int t = 1;
    int x0 = bdd_var(v0);
    int x1 = bdd_var(v1);
    int nx0; int nx1;
    nx0 = apply_op(2, x0, 1);    // NOT via XOR with TRUE
    nx1 = apply_op(2, x1, 1);
    if (bits & 1) t = apply_op(0, t, x0); else t = apply_op(0, t, nx0);
    if (bits & 2) t = apply_op(0, t, x1); else t = apply_op(0, t, nx1);
    return t;
}

int hex_to_bdd(char *hex, int base_var) {
    int f = 0;
    int i = 0;
    while (hex[i]) {
        int d = hex_digit(hex[i]);
        int m;
        int v0 = (base_var + 2 * i) % (NVARS - 1);
        int v1 = v0 + 1;
        for (m = 0; m < 4; m++) {
            if (d & (1 << m)) {
                int t = minterm(m, v0, v1);
                f = apply_op(1, f, t);
            }
        }
        i++;
    }
    return f;
}

// ---- hot: satisfying-assignment count (recursive walk) ------------------------------

int sat_memo[NODES];

int sat_count(int f, int level) {
    int v; int skip0; int skip1; int n;
    if (f == 0) return 0;
    if (f == 1) {
        n = NVARS - level;
        return 1 << n;
    }
    v = var_of[f];
    // variables skipped between level and v contribute 2^skip each
    skip0 = v - level;
    n = (sat_count(low_of[f], v + 1) + sat_count(high_of[f], v + 1));
    return n << skip0;
}

// ---- main ---------------------------------------------------------------------------

char spec1[24];
char spec2[24];
char spec3[24];

void gen_spec(char *buf, int n, int seed) {
    int i;
    srand(seed);
    for (i = 0; i < n; i++) {
        int d = rand() & 15;
        if (d < 10) buf[i] = '0' + d;
        else buf[i] = 'a' + d - 10;
    }
    buf[n] = 0;
}

int main(void) {
    int round;
    int acc = 0;
    for (round = 0; round < NROUNDS; round++) {
        int f1; int f2; int f3; int g; int h;
        bdd_init();
        gen_spec(spec1, 12, SEED + round);
        gen_spec(spec2, 12, SEED + round * 7 + 1);
        gen_spec(spec3, 10, SEED + round * 13 + 2);
        f1 = hex_to_bdd(spec1, 0);
        f2 = hex_to_bdd(spec2, 3);
        f3 = hex_to_bdd(spec3, 5);
        g = apply_op(0, f1, f2);         // f1 AND f2
        h = apply_op(2, g, f3);          // XOR f3
        g = apply_op(1, h, apply_op(0, f2, f3));
        acc += node_count;
        acc += sat_count(g, 0) & 65535;
    }
    print_labeled("nodes=", node_count);
    print_labeled("acc=", acc);
    return 0;
}
"""


def hextobdd_source(nrounds: int = 6, nodes: int = 6000,
                    seed: int = 7) -> str:
    return (HEXTOBDD_SRC.replace("NROUNDS", str(nrounds))
            .replace("NODES", str(nodes)).replace("SEED", str(seed)))
