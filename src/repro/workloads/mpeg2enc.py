"""mpeg2enc — MPEG-2 style encoder kernels, in MinC.

The hot loops of a video encoder: block motion estimation (SAD search
over a window), 8x8 integer DCT (row/column butterflies via the Q15
sin/cos tables), quantization with the MPEG intra matrix, zigzag scan
and run-length coding.  Frames are synthetic moving gradients with
noise.  Static text is dominated by cold setup/reporting code plus the
linked runtime, dynamic text by the per-macroblock loops — the Table 1
and Figure 9 contrast.
"""

MPEG2ENC_SRC = r"""
int WIDTH = FRAME_W;
int HEIGHT = FRAME_H;

char cur_frame[FRAME_W * FRAME_H];
char ref_frame[FRAME_W * FRAME_H];
int block_in[64];
int coef[64];
int qcoef[64];
int rle_out[130];

int INTRA_Q[64] = {
     8, 16, 19, 22, 26, 27, 29, 34,
    16, 16, 22, 24, 27, 29, 34, 37,
    19, 22, 26, 27, 29, 34, 34, 38,
    22, 22, 26, 27, 29, 34, 37, 40,
    22, 26, 27, 29, 32, 35, 40, 48,
    26, 27, 29, 32, 35, 40, 48, 58,
    26, 27, 29, 34, 38, 46, 56, 69,
    27, 29, 35, 38, 46, 56, 69, 83
};

int ZIGZAG[64] = {
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63
};

// ---- hot: sum of absolute differences ----------------------------------

int sad16(char *cur, char *ref, int stride) {
    int sum = 0;
    int y;
    for (y = 0; y < 16; y++) {
        int x;
        int base = y * stride;
        for (x = 0; x < 16; x++) {
            int d = cur[base + x] - ref[base + x];
            if (d < 0) d = -d;
            sum += d;
        }
    }
    return sum;
}

// ---- hot: motion search (full search +-RANGE) ---------------------------------

int motion_search(int mbx, int mby, int *best_dx, int *best_dy) {
    int best = 1 << 29;
    int dx; int dy;
    int cx = mbx * 16;
    int cy = mby * 16;
    for (dy = -RANGE; dy <= RANGE; dy++) {
        for (dx = -RANGE; dx <= RANGE; dx++) {
            int rx = cx + dx;
            int ry = cy + dy;
            int s;
            if (rx < 0 || ry < 0 || rx + 16 > WIDTH || ry + 16 > HEIGHT)
                continue;
            s = sad16(cur_frame + cy * WIDTH + cx,
                      ref_frame + ry * WIDTH + rx, WIDTH);
            if (s < best) {
                best = s;
                *best_dx = dx;
                *best_dy = dy;
            }
        }
    }
    return best;
}

// ---- hot: 8x8 integer DCT (separable, Q15 tables) --------------------------------

void dct8_1d(int *v, int stride) {
    int tmp[8];
    int k;
    for (k = 0; k < 8; k++) {
        int sum = 0;
        int n;
        for (n = 0; n < 8; n++) {
            // cos((2n+1) k pi / 16) via the 256-step quarter table:
            // angle256 = (2n+1) * k * 8
            int ang = ((2 * n + 1) * k * 8) & 255;
            sum += v[n * stride] * cos_q15(ang);
        }
        tmp[k] = sum >> 13;
    }
    for (k = 0; k < 8; k++) v[k * stride] = tmp[k];
}

void dct8x8(int *block) {
    int i;
    for (i = 0; i < 8; i++) dct8_1d(block + i * 8, 1);
    for (i = 0; i < 8; i++) dct8_1d(block + i, 8);
}

// ---- hot: quantization + zigzag + RLE -----------------------------------------------

int quant_block(int *in, int *out, int qscale) {
    int nz = 0;
    int i;
    for (i = 0; i < 64; i++) {
        int q = INTRA_Q[i] * qscale;
        int c = in[i];
        int sign = 0;
        if (c < 0) { sign = 1; c = -c; }
        c = (c * 16) / q;
        if (sign) c = -c;
        out[i] = c;
        if (c) nz++;
    }
    return nz;
}

int rle_block(int *q, int *out) {
    int run = 0;
    int n = 0;
    int i;
    for (i = 0; i < 64; i++) {
        int c = q[ZIGZAG[i]];
        if (c == 0) {
            run++;
        } else {
            out[n] = run;
            out[n + 1] = c;
            n += 2;
            run = 0;
        }
    }
    out[n] = -1;
    return n;
}

// ---- cold: frame synthesis and bookkeeping ----------------------------------------------

void gen_frame(char *frame, int t) {
    int y;
    for (y = 0; y < HEIGHT; y++) {
        int x;
        for (x = 0; x < WIDTH; x++) {
            int v = ((x + t * 2) * 3 + (y + t) * 5) & 255;
            v = (v + (rand() & 15)) & 255;
            frame[y * WIDTH + x] = v;
        }
    }
}

void load_block(int mbx, int mby, int bx, int by) {
    int y;
    int ox = mbx * 16 + bx * 8;
    int oy = mby * 16 + by * 8;
    for (y = 0; y < 8; y++) {
        int x;
        for (x = 0; x < 8; x++) {
            block_in[y * 8 + x] = cur_frame[(oy + y) * WIDTH + ox + x] - 128;
        }
    }
}

int main(void) {
    int frame;
    int bits = 0;
    int sad_total = 0;
    srand(SEED);
    gen_frame(ref_frame, 0);
    for (frame = 1; frame <= NFRAMES; frame++) {
        int mby;
        gen_frame(cur_frame, frame);
        for (mby = 0; mby < HEIGHT / 16; mby++) {
            int mbx;
            for (mbx = 0; mbx < WIDTH / 16; mbx++) {
                int dx = 0; int dy = 0;
                int b;
                sad_total += motion_search(mbx, mby, &dx, &dy);
                for (b = 0; b < 4; b++) {
                    int nz;
                    load_block(mbx, mby, b & 1, b >> 1);
                    dct8x8(block_in);
                    nz = quant_block(block_in, qcoef, 2);
                    bits += rle_block(qcoef, rle_out);
                    bits += nz;
                }
            }
        }
        memcpy(ref_frame, cur_frame, WIDTH * HEIGHT);
    }
    print_labeled("frames=", NFRAMES);
    print_labeled("sad=", sad_total);
    print_labeled("bits=", bits);
    return 0;
}
"""


def mpeg2enc_source(nframes: int = 2, width: int = 48, height: int = 32,
                    search_range: int = 3, seed: int = 5) -> str:
    return (MPEG2ENC_SRC.replace("NFRAMES", str(nframes))
            .replace("FRAME_W", str(width)).replace("FRAME_H", str(height))
            .replace("RANGE", str(search_range))
            .replace("SEED", str(seed)))
