"""ADPCM encode/decode (MediaBench's adpcm), in MinC.

A faithful IMA ADPCM codec: 16-bit PCM <-> 4-bit codes with the
standard step-size and index tables.  The input waveform is a
deterministic synthetic mix of sines (fixed-point) — the paper used
audio clips we do not have; what the experiments measure is the
control-flow working set of the codec loops, which is unchanged.

The hot code is `adpcm_encode`/`adpcm_decode` (tight per-sample
loops); generation, verification and reporting are cold, mirroring
the small hot fraction of Figure 9.
"""

ADPCM_COMMON = r"""
int INDEX_TABLE[16] = {
    -1, -1, -1, -1, 2, 4, 6, 8,
    -1, -1, -1, -1, 2, 4, 6, 8
};

int STEP_TABLE[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767
};

int enc_valprev = 0;
int enc_index = 0;
int dec_valprev = 0;
int dec_index = 0;

// ---- the hot encoder loop --------------------------------------------

void adpcm_encode(int *pcm, char *out, int nsamples) {
    int valprev = enc_valprev;
    int index = enc_index;
    int step = STEP_TABLE[index];
    int i;
    int buffered = 0;
    int bufbyte = 0;
    for (i = 0; i < nsamples; i++) {
        int val = pcm[i];
        int diff = val - valprev;
        int sign = 0;
        int delta;
        int vpdiff;
        if (diff < 0) { sign = 8; diff = -diff; }
        delta = 0;
        vpdiff = step >> 3;
        if (diff >= step) { delta = 4; diff -= step; vpdiff += step; }
        step = step >> 1;
        if (diff >= step) { delta += 2; diff -= step; vpdiff += step; }
        step = step >> 1;
        if (diff >= step) { delta += 1; vpdiff += step; }
        if (sign) valprev -= vpdiff;
        else valprev += vpdiff;
        if (valprev > 32767) valprev = 32767;
        else if (valprev < -32768) valprev = -32768;
        delta |= sign;
        index += INDEX_TABLE[delta];
        if (index < 0) index = 0;
        if (index > 88) index = 88;
        step = STEP_TABLE[index];
        if (buffered) {
            out[i >> 1] = (bufbyte << 4) | delta;
            buffered = 0;
        } else {
            bufbyte = delta;
            buffered = 1;
        }
    }
    if (buffered) out[nsamples >> 1] = bufbyte << 4;
    enc_valprev = valprev;
    enc_index = index;
}

// ---- the hot decoder loop ----------------------------------------------

void adpcm_decode(char *in, int *pcm, int nsamples) {
    int valprev = dec_valprev;
    int index = dec_index;
    int step = STEP_TABLE[index];
    int i;
    for (i = 0; i < nsamples; i++) {
        int delta;
        int sign;
        int vpdiff;
        int b = in[i >> 1];
        if (i & 1) delta = b & 15;
        else delta = (b >> 4) & 15;
        sign = delta & 8;
        delta = delta & 7;
        vpdiff = step >> 3;
        if (delta & 4) vpdiff += step;
        if (delta & 2) vpdiff += step >> 1;
        if (delta & 1) vpdiff += step >> 2;
        if (sign) valprev -= vpdiff;
        else valprev += vpdiff;
        if (valprev > 32767) valprev = 32767;
        else if (valprev < -32768) valprev = -32768;
        index += INDEX_TABLE[delta | sign];
        if (index < 0) index = 0;
        if (index > 88) index = 88;
        step = STEP_TABLE[index];
        pcm[i] = valprev;
    }
    dec_valprev = valprev;
    dec_index = index;
}

// ---- cold: synthetic waveform, verification, reporting ----------------------

void gen_waveform(int *pcm, int n, int seed) {
    int i;
    int phase1 = seed & 63;
    int phase2 = (seed >> 3) & 63;
    for (i = 0; i < n; i++) {
        int s = sin_q15((i + phase1) & 255) >> 3;
        s += sin_q15(((i * 3) + phase2) & 255) >> 5;
        s += (rand() & 255) - 128;    // low-level noise
        pcm[i] = clamp_i(s, -32768, 32767);
    }
}

int report_error_stats(int *a, int *b, int n) {
    int maxerr = 0;
    int sumerr = 0;
    int i;
    for (i = 0; i < n; i++) {
        int e = abs_i(a[i] - b[i]);
        if (e > maxerr) maxerr = e;
        sumerr += e;
    }
    print_labeled("maxerr=", maxerr);
    print_labeled("avgerr=", sumerr / n);
    return maxerr;
}
"""

ADPCM_ENC_MAIN = r"""
int pcm_in[BLOCK];
char coded[BLOCK / 2 + 4];

int main(void) {
    int block;
    int total = 0;
    srand(SEED);
    for (block = 0; block < NBLOCKS; block++) {
        gen_waveform(pcm_in, BLOCK, block * 17 + 5);
        adpcm_encode(pcm_in, coded, BLOCK);
        total += checksum(coded, BLOCK / 2);
    }
    print_labeled("blocks=", NBLOCKS);
    print_labeled("check=", total & 16777215);
    return 0;
}
"""

ADPCM_DEC_MAIN = r"""
int pcm_in[BLOCK];
int pcm_out[BLOCK];
char coded[BLOCK / 2 + 4];

int main(void) {
    int block;
    int total = 0;
    srand(SEED);
    for (block = 0; block < NBLOCKS; block++) {
        gen_waveform(pcm_in, BLOCK, block * 29 + 3);
        adpcm_encode(pcm_in, coded, BLOCK);
        adpcm_decode(coded, pcm_out, BLOCK);
        total += checksum(coded, BLOCK / 2);
        total += pcm_out[block % BLOCK] & 255;
    }
    print_labeled("blocks=", NBLOCKS);
    report_error_stats(pcm_in, pcm_out, BLOCK);
    print_labeled("check=", total & 16777215);
    return 0;
}
"""


def adpcm_enc_source(nblocks: int = 24, block: int = 1024,
                     seed: int = 1234) -> str:
    src = ADPCM_COMMON + ADPCM_ENC_MAIN
    return (src.replace("NBLOCKS", str(nblocks))
            .replace("BLOCK", str(block)).replace("SEED", str(seed)))


def adpcm_dec_source(nblocks: int = 16, block: int = 1024,
                     seed: int = 1234) -> str:
    src = ADPCM_COMMON + ADPCM_DEC_MAIN
    return (src.replace("NBLOCKS", str(nblocks))
            .replace("BLOCK", str(block)).replace("SEED", str(seed)))
