"""repro.workloads — the benchmark programs of the evaluation.

MinC implementations matching the paper's benchmark set:

========== ============================ =========================
name       stands in for                used by
========== ============================ =========================
compress95 SPEC CPU95 129.compress      Table 1, Figs 5/6/7
adpcm_enc  MediaBench adpcm (encode)    Table 1, Figs 6/7/8/9
adpcm_dec  MediaBench adpcm (decode)    Fig 9
hextobdd   local BDD/graph manipulation Table 1, Figs 6/7
mpeg2enc   mpeg2enc kernels             Table 1, Figs 6/7
gzip       gzip (deflate core)          Fig 9
cjpeg      MediaBench cjpeg kernels     Fig 9
sensor     the Figure-2 sensor example  examples, extension benches
========== ============================ =========================

``build_workload(name)`` compiles + links the program (cached);
``scale`` < 1.0 shrinks the input so tests stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..asm.image import Image
from ..lang import compile_program
from .adpcm import adpcm_dec_source, adpcm_enc_source
from .cjpeg import cjpeg_source
from .compress import compress_source
from .gzip_like import gzip_source
from .hextobdd import hextobdd_source
from .mpeg2enc import mpeg2enc_source
from .sensor import sensor_source


@dataclass(frozen=True)
class WorkloadSpec:
    """Registry entry for one benchmark program."""

    name: str
    source_fn: Callable[..., str]
    #: scale -> source kwargs
    scale_kwargs: Callable[[float], dict]
    #: can be compiled under the ARM profile (no indirect jumps)?
    arm_ok: bool = True
    description: str = ""


def _adpcm_enc_scale(s: float) -> dict:
    return {"nblocks": max(1, int(24 * s))}


def _adpcm_dec_scale(s: float) -> dict:
    return {"nblocks": max(1, int(16 * s))}


def _compress_scale(s: float) -> dict:
    return {"npasses": max(1, int(3 * s)),
            "insize": max(2048, int(16384 * min(1.0, s * 2)))}


def _hextobdd_scale(s: float) -> dict:
    return {"nrounds": max(1, int(6 * s))}


def _mpeg2_scale(s: float) -> dict:
    return {"nframes": max(1, int(2 * s))}


def _gzip_scale(s: float) -> dict:
    return {"npasses": max(1, int(2 * s))}


def _cjpeg_scale(s: float) -> dict:
    return {"nimages": max(1, int(2 * s))}


def _sensor_scale(s: float) -> dict:
    return {"ndays": max(1, int(10 * s))}


WORKLOADS: dict[str, WorkloadSpec] = {
    "compress95": WorkloadSpec(
        "compress95", compress_source, _compress_scale,
        description="LZW compress + expand (SPEC 129.compress)"),
    "adpcm_enc": WorkloadSpec(
        "adpcm_enc", adpcm_enc_source, _adpcm_enc_scale,
        description="IMA ADPCM encoder (MediaBench)"),
    "adpcm_dec": WorkloadSpec(
        "adpcm_dec", adpcm_dec_source, _adpcm_dec_scale,
        description="IMA ADPCM decoder (MediaBench)"),
    "hextobdd": WorkloadSpec(
        "hextobdd", hextobdd_source, _hextobdd_scale,
        description="BDD construction and combination (graph code)"),
    "mpeg2enc": WorkloadSpec(
        "mpeg2enc", mpeg2enc_source, _mpeg2_scale,
        description="MPEG-2 encoder kernels (motion search + DCT)"),
    "gzip": WorkloadSpec(
        "gzip", gzip_source, _gzip_scale,
        description="deflate core with hash chains"),
    "cjpeg": WorkloadSpec(
        "cjpeg", cjpeg_source, _cjpeg_scale,
        description="JPEG encoder kernels"),
    "sensor": WorkloadSpec(
        "sensor", sensor_source, _sensor_scale,
        description="multi-mode sensor node (the Figure 2 example)"),
}

#: The four benchmarks of the SPARC evaluation (Table 1, Figs 6-7).
SPARC_BENCHMARKS = ("compress95", "adpcm_enc", "hextobdd", "mpeg2enc")
#: The four benchmarks of the ARM evaluation (Figs 8-9).
ARM_BENCHMARKS = ("adpcm_enc", "adpcm_dec", "gzip", "cjpeg")

_image_cache: dict[tuple, Image] = {}


def workload_source(name: str, scale: float = 1.0, **overrides) -> str:
    """MinC source text of workload *name* at *scale*."""
    spec = WORKLOADS[name]
    kwargs = spec.scale_kwargs(scale)
    kwargs.update(overrides)
    return spec.source_fn(**kwargs)


def build_workload(name: str, scale: float = 1.0, *,
                   arm_profile: bool = False, **overrides) -> Image:
    """Compile and link workload *name* (memoized).

    ``arm_profile=True`` compiles with ``indirect_ok=False`` so the
    binary satisfies the ARM prototype's no-indirect-jumps restriction.
    """
    key = (name, scale, arm_profile, tuple(sorted(overrides.items())))
    image = _image_cache.get(key)
    if image is None:
        source = workload_source(name, scale, **overrides)
        image = compile_program(source, f"{name}",
                                indirect_ok=not arm_profile)
        _image_cache[key] = image
    return image


__all__ = [
    "ARM_BENCHMARKS", "SPARC_BENCHMARKS", "WORKLOADS", "WorkloadSpec",
    "build_workload", "workload_source",
]
