"""gzip — LZ77/deflate-style compressor with hash chains, in MinC.

The core of gzip's deflate: a sliding window, 3-byte hash heads with
chained previous-occurrence links, longest-match search with an early
cutoff, and a fixed-code bit-packed output (literal/length/distance).
Matches gzip's control-flow shape (hash maintenance inside a per-byte
loop with a nested match loop) without the full Huffman machinery.
"""

GZIP_SRC = r"""
int WSIZE = 8192;         // window (input processed in one shot)
int HASH_BITS = 11;

char window[INSIZE];
char outbuf[INSIZE + INSIZE / 4 + 64];
int head[2048];           // hash -> most recent position
int prev[INSIZE];         // chain: position -> previous with same hash

int out_bitpos = 0;

// ---- bit output ---------------------------------------------------------

void put_bits(int value, int nbits) {
    int i;
    for (i = 0; i < nbits; i++) {
        int byte = out_bitpos >> 3;
        int off = out_bitpos & 7;
        if (off == 0) outbuf[byte] = 0;
        if (value & (1 << i))
            outbuf[byte] = outbuf[byte] | (1 << off);
        out_bitpos++;
    }
}

// ---- hot: hash-chain match search ------------------------------------------

int hash3(char *w, int pos) {
    return ((w[pos] << 10) ^ (w[pos + 1] << 5) ^ w[pos + 2]) & 2047;
}

int longest_match(int pos, int limit, int *match_pos) {
    int best = 2;
    int chain = head[hash3(window, pos)];
    int tries = MAXCHAIN;
    while (chain >= 0 && tries > 0) {
        if (window[chain + best] == window[pos + best]) {
            int len = 0;
            while (len < 258 && pos + len < limit
                   && window[chain + len] == window[pos + len])
                len++;
            if (len > best) {
                best = len;
                *match_pos = chain;
                if (len >= GOODLEN) break;
            }
        }
        chain = prev[chain];
        tries--;
    }
    return best;
}

// ---- hot: the deflate loop -----------------------------------------------------

int deflate_buf(int n) {
    int pos = 0;
    int i;
    int literals = 0;
    int matches = 0;
    out_bitpos = 0;
    for (i = 0; i < 2048; i++) head[i] = -1;
    while (pos < n) {
        int mpos = 0;
        int mlen = 2;
        if (pos + 3 <= n)
            mlen = longest_match(pos, n, &mpos);
        if (mlen >= 3) {
            // length/distance pair: flag 1 + 9-bit len + 13-bit dist
            put_bits(1, 1);
            put_bits(mlen, 9);
            put_bits(pos - mpos, 13);
            matches++;
            while (mlen > 0) {
                if (pos + 3 <= n) {
                    int h = hash3(window, pos);
                    prev[pos] = head[h];
                    head[h] = pos;
                }
                pos++;
                mlen--;
            }
        } else {
            put_bits(0, 1);
            put_bits(window[pos], 8);
            literals++;
            if (pos + 3 <= n) {
                int h = hash3(window, pos);
                prev[pos] = head[h];
                head[h] = pos;
            }
            pos++;
        }
    }
    print_pair("lit/match ", literals, matches);
    return (out_bitpos + 7) >> 3;
}

// ---- cold: input generation (log-file-like text) --------------------------------------

char WORDS[64] = "error warn info debug trace fatal retry open close ";

void gen_text(char *buf, int n, int seed) {
    int i = 0;
    srand(seed);
    while (i < n) {
        int w = rand() % 50;
        int j = 0;
        // copy a pseudo-word: scan to the w-th space-ish offset
        int start = (w * 7) % 40;
        while (j < 8 && i < n) {
            int c = WORDS[start + j];
            if (c == 32 || c == 0) break;
            buf[i] = c;
            i++;
            j++;
        }
        if (i < n) { buf[i] = 32; i++; }
        if ((rand() & 7) == 0 && i < n) {
            buf[i] = 48 + rand() % 10;   // digits
            i++;
        }
        if ((rand() & 15) == 0 && i < n) { buf[i] = 10; i++; }
    }
}

int main(void) {
    int pass;
    int total_out = 0;
    for (pass = 0; pass < NPASSES; pass++) {
        int nbytes;
        gen_text(window, INSIZE, SEED + 31 * pass);
        nbytes = deflate_buf(INSIZE);
        total_out += nbytes;
        print_labeled("outbytes=", nbytes);
    }
    print_labeled("total=", total_out);
    print_labeled("check=", checksum(outbuf, 512));
    return 0;
}
"""


def gzip_source(npasses: int = 2, insize: int = 8192, maxchain: int = 32,
                goodlen: int = 32, seed: int = 99) -> str:
    return (GZIP_SRC.replace("NPASSES", str(npasses))
            .replace("INSIZE", str(insize))
            .replace("MAXCHAIN", str(maxchain))
            .replace("GOODLEN", str(goodlen))
            .replace("SEED", str(seed)))
