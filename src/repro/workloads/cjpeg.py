"""cjpeg — JPEG-style still-image encoder kernels, in MinC.

RGB→YCbCr color conversion, per-8x8-block level shift + 2D DCT,
quantization with the JPEG luminance table, zigzag and a
category/size entropy-coding cost model (the bit-exact Huffman tables
are replaced by their code-length tables, which preserves both the
arithmetic and the control flow of the encode loop).
"""

CJPEG_SRC = r"""
char img_r[IMG_W * IMG_H];
char img_g[IMG_W * IMG_H];
char img_b[IMG_W * IMG_H];
char plane_y[IMG_W * IMG_H];
char plane_cb[IMG_W * IMG_H];
char plane_cr[IMG_W * IMG_H];
int blk[64];
int qblk[64];

int JPEG_QL[64] = {
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99
};

int ZZ[64] = {
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63
};

// DC/AC size-category code lengths (stand-in for Huffman tables)
int DC_LEN[12] = { 2, 3, 3, 3, 3, 3, 4, 5, 6, 7, 8, 9 };
int AC_BASE_LEN[11] = { 4, 2, 2, 3, 4, 5, 7, 8, 10, 16, 16 };

// ---- hot: color conversion ----------------------------------------------

void rgb_to_ycbcr(int npix) {
    int i;
    for (i = 0; i < npix; i++) {
        int r = img_r[i];
        int g = img_g[i];
        int b = img_b[i];
        int y  = (77 * r + 150 * g + 29 * b) >> 8;
        int cb = ((-43 * r - 85 * g + 128 * b) >> 8) + 128;
        int cr = ((128 * r - 107 * g - 21 * b) >> 8) + 128;
        plane_y[i] = clamp_i(y, 0, 255);
        plane_cb[i] = clamp_i(cb, 0, 255);
        plane_cr[i] = clamp_i(cr, 0, 255);
    }
}

// ---- hot: 2D DCT (same butterflies as the mpeg2 kernel) ----------------------

void jdct_1d(int *v, int stride) {
    int tmp[8];
    int k;
    for (k = 0; k < 8; k++) {
        int sum = 0;
        int n;
        for (n = 0; n < 8; n++) {
            int ang = ((2 * n + 1) * k * 8) & 255;
            sum += v[n * stride] * cos_q15(ang);
        }
        tmp[k] = sum >> 13;
    }
    for (k = 0; k < 8; k++) v[k * stride] = tmp[k];
}

void jdct8x8(int *b) {
    int i;
    for (i = 0; i < 8; i++) jdct_1d(b + i * 8, 1);
    for (i = 0; i < 8; i++) jdct_1d(b + i, 8);
}

// ---- hot: quantize + entropy cost ------------------------------------------------

int bit_size(int v) {
    int n = 0;
    if (v < 0) v = -v;
    while (v) { n++; v >>= 1; }
    return n;
}

int encode_block(char *plane, int bx, int by, int *dc_pred) {
    int x; int y;
    int bits = 0;
    int run;
    int i;
    int dc; int diff; int size;
    for (y = 0; y < 8; y++) {
        for (x = 0; x < 8; x++) {
            blk[y * 8 + x] = plane[(by * 8 + y) * IMG_W + bx * 8 + x] - 128;
        }
    }
    jdct8x8(blk);
    for (i = 0; i < 64; i++) {
        int q = JPEG_QL[i];
        int c = blk[i];
        if (c >= 0) qblk[i] = (c + q / 2) / q;
        else qblk[i] = -((-c + q / 2) / q);
    }
    // DC: difference from predictor, category coding
    dc = qblk[0];
    diff = dc - *dc_pred;
    *dc_pred = dc;
    size = bit_size(diff);
    if (size > 11) size = 11;
    bits += DC_LEN[size] + size;
    // AC: run/size pairs through zigzag order
    run = 0;
    for (i = 1; i < 64; i++) {
        int c = qblk[ZZ[i]];
        if (c == 0) {
            run++;
            if (run == 16) { bits += 11; run = 0; }  // ZRL
        } else {
            int s = bit_size(c);
            if (s > 10) s = 10;
            bits += AC_BASE_LEN[s] + s + (run > 0 ? run / 4 : 0);
            run = 0;
        }
    }
    if (run > 0) bits += 4;  // EOB
    return bits;
}

// ---- cold: image synthesis + main -------------------------------------------------

void gen_image(int seed) {
    int y;
    srand(seed);
    for (y = 0; y < IMG_H; y++) {
        int x;
        for (x = 0; x < IMG_W; x++) {
            int i = y * IMG_W + x;
            int edge = ((x / 8 + y / 8) & 1) * 60;   // blockiness
            img_r[i] = clamp_i(90 + edge + (rand() & 31), 0, 255);
            img_g[i] = clamp_i(120 + (x & 63) + (rand() & 15), 0, 255);
            img_b[i] = clamp_i(60 + (y & 63) + (rand() & 15), 0, 255);
        }
    }
}

int main(void) {
    int image;
    int total_bits = 0;
    for (image = 0; image < NIMAGES; image++) {
        int by;
        int dc_y = 0; int dc_cb = 0; int dc_cr = 0;
        gen_image(SEED + image * 3);
        rgb_to_ycbcr(IMG_W * IMG_H);
        for (by = 0; by < IMG_H / 8; by++) {
            int bx;
            for (bx = 0; bx < IMG_W / 8; bx++) {
                total_bits += encode_block(plane_y, bx, by, &dc_y);
                total_bits += encode_block(plane_cb, bx, by, &dc_cb);
                total_bits += encode_block(plane_cr, bx, by, &dc_cr);
            }
        }
    }
    print_labeled("images=", NIMAGES);
    print_labeled("bits=", total_bits);
    print_labeled("bytes=", total_bits / 8);
    return 0;
}
"""


def cjpeg_source(nimages: int = 2, width: int = 48, height: int = 48,
                 seed: int = 11) -> str:
    return (CJPEG_SRC.replace("NIMAGES", str(nimages))
            .replace("IMG_W", str(width)).replace("IMG_H", str(height))
            .replace("SEED", str(seed)))
