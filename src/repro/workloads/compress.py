"""129.compress (SPEC CPU95), in MinC: LZW compression + expansion.

Implements the same algorithm as SPEC's compress (Welch's LZW with a
hashed string table and block reset), compressing a deterministic
synthetic buffer whose statistics are tunable between "very
compressible" and "noisy".  The compress/decompress loops are the hot
working set; table setup, input generation and verification are cold.

12-bit codes keep the string table at 4096 entries so the data side
stays small while the instruction working set matches the original's
shape (hash probe loop inside a per-byte loop).
"""

COMPRESS_SRC = r"""
// ---- LZW parameters ------------------------------------------------
// 12-bit codes, hash table with open addressing (double hashing),
// block-reset when the table fills, as in compress(1).

int HASH_SIZE = 5003;

int tab_hash[5003];     // packed (prefix << 8 | char) key per slot
int tab_code[5003];     // code stored at the slot, -1 = empty
int de_prefix[4096];    // decoder: code -> prefix code
char de_suffix[4096];   // decoder: code -> appended byte
char de_stack[4096];

char input_buf[INSIZE];
char comp_buf[INSIZE + INSIZE / 2 + 64];
char out_buf[INSIZE];

int bit_pos = 0;

// ---- cold: table reset ------------------------------------------------

void lzw_reset_table(void) {
    int i;
    for (i = 0; i < HASH_SIZE; i++) tab_code[i] = -1;
}

// ---- bit I/O (hot-ish) -------------------------------------------------

void put12(char *buf, int code) {
    int byte = bit_pos >> 3;
    int off = bit_pos & 7;
    if (off == 0) {
        buf[byte] = code & 255;
        buf[byte + 1] = (code >> 8) & 15;
    } else {
        buf[byte] = buf[byte] | ((code & 15) << 4);
        buf[byte + 1] = (code >> 4) & 255;
    }
    bit_pos += 12;
}

int get12(char *buf, int pos) {
    int byte = pos >> 3;
    int off = pos & 7;
    if (off == 0) {
        return buf[byte] | ((buf[byte + 1] & 15) << 8);
    }
    return ((buf[byte] >> 4) & 15) | (buf[byte + 1] << 4);
}

// ---- hot: the compressor -------------------------------------------------

int lzw_compress(char *in, int n, char *out) {
    int next_code = 257;
    int prefix;
    int i;
    bit_pos = 0;
    lzw_reset_table();
    prefix = in[0];
    for (i = 1; i < n; i++) {
        int c = in[i];
        int key = (prefix << 8) | c;
        int h = ((c << 4) ^ prefix) % HASH_SIZE;
        int disp;
        int found = 0;
        if (h == 0) disp = 1;
        else disp = HASH_SIZE - h;
        while (1) {
            if (tab_code[h] == -1) break;       // empty slot
            if (tab_hash[h] == key) { found = 1; break; }
            h -= disp;
            if (h < 0) h += HASH_SIZE;
        }
        if (found) {
            prefix = tab_code[h];
        } else {
            put12(out, prefix);
            if (next_code < 4096) {
                tab_code[h] = next_code;
                tab_hash[h] = key;
                next_code++;
            } else {
                // table full: emit reset code and start over
                put12(out, 256);
                lzw_reset_table();
                next_code = 257;
            }
            prefix = c;
        }
    }
    put12(out, prefix);
    return (bit_pos + 7) >> 3;
}

// ---- hot: the expander ------------------------------------------------------

int lzw_expand(char *in, int nbits_total, char *out) {
    int next_code = 257;
    int pos = 0;
    int outn = 0;
    int prev = -1;
    int prev_first = 0;
    while (pos + 12 <= nbits_total) {
        int code = get12(in, pos);
        int cur = code;
        int sp = 0;
        int first;
        pos += 12;
        if (code == 256) {             // reset
            next_code = 257;
            prev = -1;
            continue;
        }
        if (code >= next_code && prev >= 0) {
            // KwKwK case: code not yet defined
            de_stack[sp] = prev_first;
            sp++;
            cur = prev;
        }
        while (cur >= 257) {
            de_stack[sp] = de_suffix[cur];
            sp++;
            cur = de_prefix[cur];
        }
        first = cur;
        de_stack[sp] = cur;
        sp++;
        while (sp > 0) {
            sp--;
            out[outn] = de_stack[sp];
            outn++;
        }
        if (prev >= 0 && next_code < 4096) {
            de_prefix[next_code] = prev;
            de_suffix[next_code] = first;
            next_code++;
        }
        prev = code;
        prev_first = first;
    }
    return outn;
}

// ---- cold: input generation (Markov-ish text) ----------------------------------

void gen_input(char *buf, int n, int seed) {
    int i = 0;
    srand(seed);
    while (i < n) {
        int r = rand() & 255;
        if (r < 150 && i > 16) {
            // copy a run from earlier context: LZW-friendly repeats
            int back = 1 + (rand() & 63);
            int runlen = 4 + (rand() & 15);
            if (back > i) back = i;
            while (runlen > 0 && i < n) {
                buf[i] = buf[i - back];
                i++;
                runlen--;
            }
        } else if (r < 224) {
            buf[i] = 97 + (rand() % 26);      // letters
            i++;
        } else if (r < 248) {
            buf[i] = 32;                      // spaces
            i++;
        } else {
            buf[i] = rand() & 255;            // noise
            i++;
        }
    }
}

// ---- main -----------------------------------------------------------------------

int main(void) {
    int pass;
    int total_in = 0;
    int total_out = 0;
    int bad = 0;
    for (pass = 0; pass < NPASSES; pass++) {
        int nbytes;
        int nout;
        int i;
        gen_input(input_buf, INSIZE, SEED + pass * 77);
        nbytes = lzw_compress(input_buf, INSIZE, comp_buf);
        nout = lzw_expand(comp_buf, bit_pos, out_buf);
        if (nout != INSIZE) bad++;
        for (i = 0; i < nout; i++) {
            if (out_buf[i] != input_buf[i]) { bad++; break; }
        }
        total_in += INSIZE;
        total_out += nbytes;
    }
    print_labeled("in=", total_in);
    print_labeled("out=", total_out);
    print_labeled("ratio%=", total_out * 100 / total_in);
    print_labeled("bad=", bad);
    return bad;
}
"""


def compress_source(npasses: int = 3, insize: int = 16384,
                    seed: int = 42) -> str:
    return (COMPRESS_SRC.replace("NPASSES", str(npasses))
            .replace("INSIZE", str(insize)).replace("SEED", str(seed)))
