"""Register file specification and ABI conventions for the repro RISC ISA.

The ISA has 32 general-purpose 32-bit registers.  ``r0`` is hardwired to
zero.  The ABI below mirrors the conventions the paper relies on: the
return address lives in a unique, known register (``ra``) and the stack
layout is fixed, so the SoftCache runtime can always identify procedure
return addresses (Section 2.1, "Procedure return addresses must be
identifiable to the runtime system at all times").
"""

from __future__ import annotations

NUM_REGS = 32

# Canonical ABI names, indexed by register number.
REG_NAMES: tuple[str, ...] = (
    "zero",  # r0  - hardwired zero
    "ra",    # r1  - return address (written by jal/jalr)
    "sp",    # r2  - stack pointer
    "fp",    # r3  - frame pointer (frames are linked through saved fp)
    "a0",    # r4  - argument 0 / return value
    "a1",    # r5  - argument 1
    "a2",    # r6  - argument 2
    "a3",    # r7  - argument 3
    "t0",    # r8  - caller-saved temporaries
    "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0",    # r16 - callee-saved
    "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "x0",    # r24 - extra caller-saved temporaries
    "x1", "x2", "x3", "x4",
    "gp",    # r29 - global pointer (unused by the compiler, reserved)
    "at",    # r30 - assembler temporary (li/la expansion)
    "kt",    # r31 - kernel temporary, reserved for the SoftCache runtime
)

assert len(REG_NAMES) == NUM_REGS

# Numeric indices for the named registers.
ZERO = 0
RA = 1
SP = 2
FP = 3
A0, A1, A2, A3 = 4, 5, 6, 7
T0 = 8
S0 = 16
GP = 29
AT = 30
KT = 31

#: Registers used to pass the first arguments of a call.
ARG_REGS = (A0, A1, A2, A3)

#: Caller-saved registers (clobbered by calls).
CALLER_SAVED = tuple(range(T0, T0 + 8)) + tuple(range(24, 29)) + ARG_REGS + (RA,)

#: Callee-saved registers (preserved across calls).
CALLEE_SAVED = tuple(range(S0, S0 + 8)) + (SP, FP)

_NAME_TO_NUM = {name: i for i, name in enumerate(REG_NAMES)}
# rNN aliases are always accepted.
for _i in range(NUM_REGS):
    _NAME_TO_NUM[f"r{_i}"] = _i


def reg_num(name: str) -> int:
    """Map a register name (ABI alias or ``rNN``) to its number.

    Raises ``KeyError`` for unknown names.
    """
    return _NAME_TO_NUM[name.lower()]


def reg_name(num: int) -> str:
    """Map a register number to its canonical ABI name."""
    if not 0 <= num < NUM_REGS:
        raise ValueError(f"register number out of range: {num}")
    return REG_NAMES[num]


def is_reg_name(name: str) -> bool:
    """Return True if *name* names a register (ABI alias or rNN)."""
    return name.lower() in _NAME_TO_NUM
