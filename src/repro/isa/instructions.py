"""Instruction set definition for the repro RISC ISA.

A fixed-width 32-bit RISC instruction set in the SPARC/MIPS tradition,
designed so that the SoftCache rewriter has exactly the properties the
paper requires:

* control transfers are explicit and classifiable by opcode alone
  (conditional branches, direct jumps, calls, returns, computed jumps);
* calls and returns use *unique* instructions (``jal``/``jalr`` and
  ``ret``), satisfying the paper's programming-model restriction that
  return addresses be identifiable to the runtime system;
* branch targets are encoded in patchable displacement/target fields,
  so cache state can be stored in the branch words themselves.

Formats (6-bit primary opcode, one opcode per mnemonic):

===========  =====================================================
format       bit layout (msb..lsb)
===========  =====================================================
R            ``op[31:26] rd[25:21] rs1[20:16] rs2[15:11] 0[10:0]``
I            ``op[31:26] rd[25:21] rs1[20:16] imm16[15:0]``
B (branch)   ``op[31:26] rs1[25:21] rs2[20:16] disp16[15:0]``
J (jump)     ``op[31:26] target26[25:0]`` (absolute word address)
T (trap)     ``op[31:26] code[25:20] imm20[19:0]``
===========  =====================================================

Branch displacements are signed word counts relative to ``pc + 4``.
Jump targets are absolute word addresses (byte address / 4), covering
the low 256 MB of the address space; all memory regions live there.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Fmt(enum.Enum):
    """Instruction encoding format."""

    R = "R"
    I = "I"  # noqa: E741 - conventional name
    B = "B"
    J = "J"
    T = "T"


class Op(enum.IntEnum):
    """Primary opcodes.  One opcode per mnemonic."""

    # ALU register-register (R format)
    ADD = 0x00
    SUB = 0x01
    AND = 0x02
    OR = 0x03
    XOR = 0x04
    NOR = 0x05
    SLT = 0x06
    SLTU = 0x07
    SLL = 0x08
    SRL = 0x09
    SRA = 0x0A
    MUL = 0x0B
    DIV = 0x0C
    REM = 0x0D

    # ALU register-immediate (I format)
    ADDI = 0x10
    ANDI = 0x11
    ORI = 0x12
    XORI = 0x13
    SLTI = 0x14
    SLTIU = 0x15
    SLLI = 0x16
    SRLI = 0x17
    SRAI = 0x18
    LUI = 0x19

    # Memory (I format; rd is data reg, rs1 is base, imm16 signed offset)
    LW = 0x20
    LH = 0x21
    LHU = 0x22
    LB = 0x23
    LBU = 0x24
    SW = 0x25
    SH = 0x26
    SB = 0x27

    # Conditional branches (B format)
    BEQ = 0x28
    BNE = 0x29
    BLT = 0x2A
    BGE = 0x2B
    BLTU = 0x2C
    BGEU = 0x2D

    # Jumps and calls
    J = 0x30    # J format: unconditional direct jump
    JAL = 0x31  # J format: direct call, ra := pc + 4
    JR = 0x32   # R format (rs1): computed jump (switch tables, fn ptrs)
    JALR = 0x33  # R format (rd, rs1): indirect call, rd := pc + 4
    RET = 0x34  # R format, no operands: return, pc := ra

    # System (T format)
    TRAP = 0x38     # SoftCache runtime traps (miss stubs, dcache ops)
    SYSCALL = 0x39  # OS services (exit, putint, ...)
    BREAK = 0x3A    # debugger breakpoint / fatal

    # HALT stops the machine immediately (used by bare-metal images).
    HALT = 0x3F


class Trap(enum.IntEnum):
    """Trap codes carried in the ``code`` field of a TRAP instruction.

    These are the hooks through which the SoftCache cache controller
    (CC) regains control on the simulated client.
    """

    MISS_BRANCH = 0x01  # exit-stub: branch/jump to untranslated target
    MISS_JR = 0x02      # computed jump: hash-table lookup fallback
    MISS_RET = 0x03     # return to an untranslated continuation
    RET_LAND = 0x04     # ARM variant: permanent return-redirector landing
    MISS_CALL = 0x05    # ARM variant: redirector entry, callee absent
    DC_LOAD = 0x08      # software data cache: load through dcache
    DC_STORE = 0x09     # software data cache: store through dcache
    SC_ENTER = 0x0A     # stack cache: procedure-entry presence check
    SC_EXIT = 0x0B      # stack cache: procedure-exit presence check


class Sys(enum.IntEnum):
    """Syscall service numbers (in the imm20 field of SYSCALL)."""

    EXIT = 0      # exit with code in a0
    PUTINT = 1    # print integer in a0 followed by '\n'... no: raw decimal
    PUTCHAR = 2   # print character in a0
    PUTS = 3      # print NUL-terminated string at address in a0
    GETCYCLES = 4  # a0 := low 32 bits of the cycle counter
    INVALIDATE = 5  # declare code at [a0, a0+a1) rewritten (self-mod code)
    WRITEHEX = 6  # print a0 as 8-digit hex


@dataclass(frozen=True)
class InsnSpec:
    """Static metadata for one mnemonic."""

    op: Op
    fmt: Fmt
    #: immediate is sign-extended (I-format only; logical imms are zero-ext)
    signed_imm: bool = True
    reads_mem: bool = False
    writes_mem: bool = False
    is_branch: bool = False  # conditional, B format
    is_jump: bool = False    # unconditional direct (J)
    is_call: bool = False    # jal / jalr
    is_return: bool = False  # ret
    is_indirect: bool = False  # jr / jalr / ret (target from register)


def _spec(op: Op, fmt: Fmt, **kw) -> InsnSpec:
    return InsnSpec(op=op, fmt=fmt, **kw)


#: Opcode -> InsnSpec
SPECS: dict[Op, InsnSpec] = {}


def _add(op: Op, fmt: Fmt, **kw) -> None:
    SPECS[op] = _spec(op, fmt, **kw)


for _op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.NOR, Op.SLT,
            Op.SLTU, Op.SLL, Op.SRL, Op.SRA, Op.MUL, Op.DIV, Op.REM):
    _add(_op, Fmt.R)

for _op in (Op.ADDI, Op.SLTI):
    _add(_op, Fmt.I, signed_imm=True)
for _op in (Op.ANDI, Op.ORI, Op.XORI, Op.SLTIU, Op.SLLI, Op.SRLI,
            Op.SRAI, Op.LUI):
    _add(_op, Fmt.I, signed_imm=False)

for _op in (Op.LW, Op.LH, Op.LHU, Op.LB, Op.LBU):
    _add(_op, Fmt.I, signed_imm=True, reads_mem=True)
for _op in (Op.SW, Op.SH, Op.SB):
    _add(_op, Fmt.I, signed_imm=True, writes_mem=True)

for _op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU):
    _add(_op, Fmt.B, is_branch=True)

_add(Op.J, Fmt.J, is_jump=True)
_add(Op.JAL, Fmt.J, is_call=True)
_add(Op.JR, Fmt.R, is_indirect=True)
_add(Op.JALR, Fmt.R, is_call=True, is_indirect=True)
_add(Op.RET, Fmt.R, is_return=True, is_indirect=True)
_add(Op.TRAP, Fmt.T)
_add(Op.SYSCALL, Fmt.T)
_add(Op.BREAK, Fmt.T)
_add(Op.HALT, Fmt.T)

#: Mnemonic (lower case) -> Op
MNEMONICS: dict[str, Op] = {op.name.lower(): op for op in SPECS}

#: Opcodes that terminate a basic block (control leaves sequentially).
BLOCK_TERMINATORS = frozenset(
    op for op, s in SPECS.items()
    if s.is_branch or s.is_jump or s.is_call or s.is_return or s.is_indirect
) | {Op.HALT}


def is_control_transfer(op: Op) -> bool:
    """True if *op* can transfer control away from the next instruction."""
    return op in BLOCK_TERMINATORS


def spec(op: Op) -> InsnSpec:
    """Return the :class:`InsnSpec` for *op*."""
    return SPECS[op]
