"""repro.isa — the repro RISC instruction set architecture.

Defines the 32-bit instruction set the whole reproduction runs on:
registers and ABI (:mod:`repro.isa.registers`), opcodes and formats
(:mod:`repro.isa.instructions`), binary encoding with the word-patching
helpers the SoftCache rewriter uses (:mod:`repro.isa.encoding`), and a
disassembler (:mod:`repro.isa.disasm`).
"""

from .encoding import (
    DecodeError,
    EncodingError,
    Insn,
    branch_target,
    decode,
    encode,
    jump_target,
    patch_branch_disp,
    patch_jump_target,
    sign_extend16,
    to_signed32,
)
from .disasm import disassemble_range, disassemble_word, format_insn
from .instructions import (
    BLOCK_TERMINATORS,
    Fmt,
    InsnSpec,
    MNEMONICS,
    Op,
    SPECS,
    Sys,
    Trap,
    is_control_transfer,
    spec,
)
from .registers import (
    A0,
    A1,
    A2,
    A3,
    ARG_REGS,
    AT,
    CALLEE_SAVED,
    CALLER_SAVED,
    FP,
    GP,
    KT,
    NUM_REGS,
    RA,
    REG_NAMES,
    S0,
    SP,
    T0,
    ZERO,
    is_reg_name,
    reg_name,
    reg_num,
)

__all__ = [
    "A0", "A1", "A2", "A3", "ARG_REGS", "AT", "BLOCK_TERMINATORS",
    "CALLEE_SAVED", "CALLER_SAVED", "DecodeError", "EncodingError", "FP",
    "Fmt", "GP", "Insn", "InsnSpec", "KT", "MNEMONICS", "NUM_REGS", "Op",
    "RA", "REG_NAMES", "S0", "SP", "SPECS", "Sys", "T0", "Trap", "ZERO",
    "branch_target", "decode", "disassemble_range", "disassemble_word",
    "encode", "format_insn", "is_control_transfer", "is_reg_name",
    "jump_target", "patch_branch_disp", "patch_jump_target", "reg_name",
    "reg_num", "sign_extend16", "spec", "to_signed32",
]
