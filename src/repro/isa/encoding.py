"""Binary encoding and decoding of repro ISA instructions.

Every instruction is one 32-bit little-endian word.  The SoftCache
memory controller and cache controller manipulate these words directly
— relocating them, patching branch displacement fields and splicing in
trap stubs — so encode/decode round-tripping is load-bearing for the
whole system and is covered by property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from .instructions import Fmt, Op, SPECS

MASK32 = 0xFFFFFFFF
IMM16_MIN = -(1 << 15)
IMM16_MAX = (1 << 15) - 1
UIMM16_MAX = (1 << 16) - 1
TARGET26_MAX = (1 << 26) - 1
IMM20_MAX = (1 << 20) - 1


class EncodingError(ValueError):
    """A field value does not fit its encoding slot."""


def sign_extend16(value: int) -> int:
    """Sign-extend a 16-bit field to a Python int."""
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value


def to_signed32(value: int) -> int:
    """Interpret the low 32 bits of *value* as a signed integer."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


@dataclass(frozen=True, slots=True)
class Insn:
    """A decoded instruction.

    Field meaning depends on format:

    * R: ``rd``, ``rs1``, ``rs2``
    * I: ``rd``, ``rs1``, ``imm`` (sign- or zero-extended per spec)
    * B: ``rs1``, ``rs2``, ``imm`` = signed word displacement
    * J: ``imm`` = absolute word target (26 bits)
    * T: ``rd`` = trap code, ``imm`` = 20-bit operand
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    @property
    def fmt(self) -> Fmt:
        return SPECS[self.op].fmt


def encode(insn: Insn) -> int:
    """Encode *insn* into a 32-bit word.

    Raises :class:`EncodingError` if any field is out of range.
    """
    op = insn.op
    fmt = SPECS[op].fmt
    word = int(op) << 26
    if fmt is Fmt.R:
        _check_reg(insn.rd), _check_reg(insn.rs1), _check_reg(insn.rs2)
        word |= (insn.rd << 21) | (insn.rs1 << 16) | (insn.rs2 << 11)
    elif fmt is Fmt.I:
        _check_reg(insn.rd), _check_reg(insn.rs1)
        imm = insn.imm
        if SPECS[op].signed_imm:
            if not IMM16_MIN <= imm <= IMM16_MAX:
                raise EncodingError(f"imm16 out of range for {op.name}: {imm}")
        else:
            if not 0 <= imm <= UIMM16_MAX:
                raise EncodingError(f"uimm16 out of range for {op.name}: {imm}")
        word |= (insn.rd << 21) | (insn.rs1 << 16) | (imm & 0xFFFF)
    elif fmt is Fmt.B:
        _check_reg(insn.rs1), _check_reg(insn.rs2)
        if not IMM16_MIN <= insn.imm <= IMM16_MAX:
            raise EncodingError(f"branch disp out of range: {insn.imm}")
        word |= (insn.rs1 << 21) | (insn.rs2 << 16) | (insn.imm & 0xFFFF)
    elif fmt is Fmt.J:
        if not 0 <= insn.imm <= TARGET26_MAX:
            raise EncodingError(f"jump target out of range: {insn.imm:#x}")
        word |= insn.imm
    elif fmt is Fmt.T:
        if not 0 <= insn.rd < 64:
            raise EncodingError(f"trap code out of range: {insn.rd}")
        if not 0 <= insn.imm <= IMM20_MAX:
            raise EncodingError(f"trap operand out of range: {insn.imm}")
        word |= (insn.rd << 20) | insn.imm
    else:  # pragma: no cover - exhaustive over Fmt
        raise AssertionError(fmt)
    return word


_OP_BY_NUM: dict[int, Op] = {int(op): op for op in SPECS}


class DecodeError(ValueError):
    """The word does not decode to a valid instruction."""


def decode(word: int) -> Insn:
    """Decode a 32-bit word into an :class:`Insn`.

    Raises :class:`DecodeError` for undefined opcodes.
    """
    word &= MASK32
    opnum = word >> 26
    op = _OP_BY_NUM.get(opnum)
    if op is None:
        raise DecodeError(f"undefined opcode {opnum:#x} in word {word:#010x}")
    fmt = SPECS[op].fmt
    if fmt is Fmt.R:
        return Insn(op, rd=(word >> 21) & 31, rs1=(word >> 16) & 31,
                    rs2=(word >> 11) & 31)
    if fmt is Fmt.I:
        imm = word & 0xFFFF
        if SPECS[op].signed_imm:
            imm = sign_extend16(imm)
        return Insn(op, rd=(word >> 21) & 31, rs1=(word >> 16) & 31, imm=imm)
    if fmt is Fmt.B:
        return Insn(op, rs1=(word >> 21) & 31, rs2=(word >> 16) & 31,
                    imm=sign_extend16(word & 0xFFFF))
    if fmt is Fmt.J:
        return Insn(op, imm=word & 0x03FFFFFF)
    # Fmt.T
    return Insn(op, rd=(word >> 20) & 0x3F, imm=word & 0xFFFFF)


def _check_reg(r: int) -> None:
    if not 0 <= r < 32:
        raise EncodingError(f"register number out of range: {r}")


# ---------------------------------------------------------------------------
# Field patching helpers used by the rewriter.  These operate on raw words
# so the rewriter never needs a full decode/re-encode cycle on hot paths.
# ---------------------------------------------------------------------------

def patch_branch_disp(word: int, site_pc: int, target_addr: int) -> int:
    """Return *word* (a B-format branch) retargeted at *target_addr*.

    The displacement is computed relative to ``site_pc + 4`` in words.
    Raises :class:`EncodingError` if the displacement does not fit.
    """
    disp = (target_addr - (site_pc + 4)) >> 2
    if not IMM16_MIN <= disp <= IMM16_MAX:
        raise EncodingError(
            f"branch at {site_pc:#x} cannot reach {target_addr:#x}")
    return (word & 0xFFFF0000) | (disp & 0xFFFF)


def patch_jump_target(word: int, target_addr: int) -> int:
    """Return *word* (a J-format jump/call) retargeted at *target_addr*."""
    if target_addr & 3:
        raise EncodingError(f"jump target not word aligned: {target_addr:#x}")
    t26 = target_addr >> 2
    if not 0 <= t26 <= TARGET26_MAX:
        raise EncodingError(f"jump target out of range: {target_addr:#x}")
    return (word & 0xFC000000) | t26


def branch_target(word: int, site_pc: int) -> int:
    """Compute the byte target of a B-format branch word at *site_pc*."""
    return site_pc + 4 + (sign_extend16(word & 0xFFFF) << 2)


def jump_target(word: int) -> int:
    """Compute the byte target of a J-format word."""
    return (word & 0x03FFFFFF) << 2
