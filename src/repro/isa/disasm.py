"""Disassembler for the repro RISC ISA.

Produces assembler-compatible text: ``disassemble(encode(asm(text)))``
round-trips for canonical spellings.  Used by debugging tools, the
tcache dump utilities, and tests.
"""

from __future__ import annotations

from .encoding import Insn, decode
from .instructions import Fmt, Op, Sys, Trap
from .registers import reg_name


def format_insn(insn: Insn, pc: int | None = None) -> str:
    """Render *insn* as assembly text.

    If *pc* is given, branch targets are rendered as absolute hex
    addresses instead of raw displacements.
    """
    op = insn.op
    name = op.name.lower()
    fmt = insn.fmt
    if fmt is Fmt.R:
        if op is Op.RET:
            return "ret"
        if op is Op.JR:
            return f"jr {reg_name(insn.rs1)}"
        if op is Op.JALR:
            return f"jalr {reg_name(insn.rd)}, {reg_name(insn.rs1)}"
        return (f"{name} {reg_name(insn.rd)}, {reg_name(insn.rs1)}, "
                f"{reg_name(insn.rs2)}")
    if fmt is Fmt.I:
        if op in (Op.LW, Op.LH, Op.LHU, Op.LB, Op.LBU, Op.SW, Op.SH, Op.SB):
            return (f"{name} {reg_name(insn.rd)}, "
                    f"{insn.imm}({reg_name(insn.rs1)})")
        if op is Op.LUI:
            return f"lui {reg_name(insn.rd)}, {insn.imm:#x}"
        return f"{name} {reg_name(insn.rd)}, {reg_name(insn.rs1)}, {insn.imm}"
    if fmt is Fmt.B:
        if pc is not None:
            target = pc + 4 + (insn.imm << 2)
            return (f"{name} {reg_name(insn.rs1)}, {reg_name(insn.rs2)}, "
                    f"{target:#x}")
        return f"{name} {reg_name(insn.rs1)}, {reg_name(insn.rs2)}, .{insn.imm:+d}"
    if fmt is Fmt.J:
        return f"{name} {insn.imm << 2:#x}"
    # Fmt.T
    if op is Op.TRAP:
        try:
            code = Trap(insn.rd).name.lower()
        except ValueError:
            code = str(insn.rd)
        return f"trap {code}, {insn.imm}"
    if op is Op.SYSCALL:
        try:
            svc = Sys(insn.imm).name.lower()
        except ValueError:
            svc = str(insn.imm)
        return f"syscall {svc}"
    if op is Op.HALT:
        return "halt"
    return f"{name} {insn.imm}"


def disassemble_word(word: int, pc: int | None = None) -> str:
    """Decode and render one instruction word."""
    return format_insn(decode(word), pc)


def disassemble_range(mem_read_word, start: int, end: int) -> list[str]:
    """Disassemble words in ``[start, end)``.

    *mem_read_word* is a callable ``addr -> word``.  Undecodable words
    are rendered as ``.word 0x...``.
    """
    lines = []
    for pc in range(start, end, 4):
        word = mem_read_word(pc)
        try:
            text = disassemble_word(word, pc)
        except Exception:
            text = f".word {word:#010x}"
        lines.append(f"{pc:#010x}: {word:08x}  {text}")
    return lines
