"""Live code update: versioned images and epoch-based invalidation.

The paper's MC serves one immutable rewritten image per run; a fielded
fleet needs to patch code without rebooting.  This module supplies the
version plumbing around :class:`~repro.softcache.mc.MemoryController`:

* :func:`image_digest` — the content identity of an image.  Publishing
  is idempotent by digest, so any number of per-client update schedules
  can re-assert the same image against a shared MC and the epoch bumps
  exactly once.
* :func:`derive_patched_image` — a *behaviorally equivalent* variant of
  an image (layout-preserving swaps of adjacent independent ALU pairs
  inside basic blocks).  Equivalent-but-different-bytes images are what
  make the update differential exact: a client hot-patched mid-run must
  converge to a state digest-identical to a clean run of the new image,
  which is only decidable when old and new code compute the same thing.
* :func:`save_image` / :func:`load_image` — the on-disk form behind
  ``repro admin publish --image`` and ``--update-at CYCLES:@PATH``.
* :class:`UpdateSchedule` — per-client publish points in local cycles.
  The schedule also *gates* the observed epoch: until this client's
  clock reaches a publish point, replies resolve against the older
  version (the MC retains retired epochs), which is exactly the rollout
  wavefront of a staggered fleet — the MC flipped at wall time T, each
  client first notices at its first miss after T.

See docs/UPDATES.md for the epoch model and barrier semantics.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field

from ..asm.image import Image
from ..cfg.graph import build_cfg
from ..isa import Fmt, decode
from ..isa.registers import ZERO


def image_digest(image: Image) -> str:
    """Content identity of an image (hex, 32 chars).

    Covers everything a client's behaviour can depend on: segment
    bases, entry point, text, data and bss size.  Symbol tables are
    excluded — they are debug metadata, not behaviour.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(f"{image.text_base}|{image.data_base}|{image.entry}|"
             f"{image.bss_size}|".encode())
    h.update(image.text)
    h.update(b"|")
    h.update(image.data)
    return h.hexdigest()


# -- behaviorally equivalent patches ----------------------------------

#: Pure register-to-register / register-immediate ALU opcodes: no
#: memory, no control flow, no traps.  Two adjacent independent ones
#: commute exactly (same final registers, same total instructions and
#: cycles), so swapping them is a semantics-preserving binary patch.
_PURE_ALU = frozenset((
    "ADD", "SUB", "AND", "OR", "XOR", "NOR", "SLT", "SLTU",
    "SLL", "SRL", "SRA", "MUL", "DIV", "REM",
    "ADDI", "ANDI", "ORI", "XORI", "SLTI", "SLTIU", "SLLI",
    "SRLI", "SRAI", "LUI",
))


def _alu_defs_uses(insn) -> tuple[int, set[int]] | None:
    """``(defined reg, used regs)`` of a pure ALU insn, else None."""
    if insn.op.name not in _PURE_ALU:
        return None
    fmt = insn.fmt
    if fmt is Fmt.R:
        return insn.rd, {insn.rs1, insn.rs2}
    if fmt is Fmt.I:
        if insn.op.name == "LUI":
            return insn.rd, set()
        return insn.rd, {insn.rs1}
    return None


def swap_sites(image: Image, max_sites: int | None = None) -> list[int]:
    """Addresses ``a`` where the words at ``a`` and ``a + 4`` are
    adjacent independent pure-ALU instructions strictly inside one
    basic block (``a + 4`` is not a branch/jump/indirect target or
    procedure entry), so swapping them preserves behaviour."""
    cfg = build_cfg(image)
    entries = set(cfg.blocks)
    entries.update(cfg.indirect_targets)
    entries.update(image.symbols.values())
    entries.update(p.addr for p in image.procs)
    entries.add(image.entry)
    sites: list[int] = []
    for block in cfg.blocks.values():
        addr = block.addr
        while addr + 4 < block.end:
            nxt = addr + 4
            if nxt in entries:
                addr += 4
                continue
            try:
                a = decode(image.word_at(addr))
                b = decode(image.word_at(nxt))
            except Exception:
                addr += 4
                continue
            da, db = _alu_defs_uses(a), _alu_defs_uses(b)
            if (da is not None and db is not None
                    and da[0] != db[0]
                    and da[0] not in db[1] and db[0] not in da[1]
                    and da[0] != ZERO and db[0] != ZERO):
                sites.append(addr)
                addr += 8  # sites never overlap
                if max_sites is not None and len(sites) >= max_sites:
                    return sites
                continue
            addr += 4
    return sorted(set(sites))


def derive_patched_image(image: Image, seed: int = 1,
                         max_swaps: int = 12) -> Image:
    """A behaviorally equivalent image with different text bytes.

    Deterministically (by *seed*) picks up to *max_swaps* independent
    adjacent ALU pairs and swaps each pair's two words.  The layout is
    untouched — same bases, sizes, entry, symbols — which is also the
    hot-patch contract :meth:`MemoryController.publish` enforces
    (resident stubs and continuations hold original addresses).

    Raises ValueError when the image has no safe swap site (nothing to
    patch would make the update differential vacuous).
    """
    sites = swap_sites(image)
    if not sites:
        raise ValueError(f"image {image.name!r} has no safe ALU swap "
                         f"site to derive a patch from")
    import random
    rng = random.Random(seed)
    chosen = sorted(rng.sample(sites, min(max_swaps, len(sites))))
    text = bytearray(image.text)
    for addr in chosen:
        off = addr - image.text_base
        text[off:off + 4], text[off + 4:off + 8] = \
            text[off + 4:off + 8], text[off:off + 4]
    return Image(
        name=f"{image.name}+p{seed}", text=bytes(text), data=image.data,
        bss_size=image.bss_size, entry=image.entry,
        symbols=dict(image.symbols), procs=list(image.procs),
        data_object_sizes=dict(image.data_object_sizes),
        text_base=image.text_base, data_base=image.data_base)


# -- on-disk images ----------------------------------------------------

_IMAGE_MAGIC = b"repro-image-v1\n"


def save_image(image: Image, path) -> None:
    """Write *image* to *path* (``repro admin publish --image`` input)."""
    with open(path, "wb") as fh:
        fh.write(_IMAGE_MAGIC)
        pickle.dump(image, fh, protocol=4)


def load_image(path) -> Image:
    """Read an image written by :func:`save_image` (trusted input)."""
    with open(path, "rb") as fh:
        magic = fh.read(len(_IMAGE_MAGIC))
        if magic != _IMAGE_MAGIC:
            raise ValueError(f"{path}: not a repro image file")
        image = pickle.load(fh)
    if not isinstance(image, Image):
        raise ValueError(f"{path}: does not contain an Image")
    return image


# -- update schedules --------------------------------------------------

@dataclass
class UpdateEntry:
    """One scheduled publish: at local cycle *at_cycles*, *image*."""

    at_cycles: int
    image: Image
    digest: str = ""
    #: Epoch the MC assigned when this entry was (last) published.
    epoch: int | None = None
    durable: bool = True

    def __post_init__(self) -> None:
        if not self.digest:
            self.digest = image_digest(self.image)


def parse_update_spec(spec: str, base_image: Image) -> UpdateEntry:
    """Parse one ``--update-at`` cell: ``CYCLES:IMAGE``.

    ``IMAGE`` is ``patch`` / ``patch:SEED`` (derive a behaviorally
    equivalent image from *base_image*, see
    :func:`derive_patched_image`) or ``@PATH`` (an image file written
    by :func:`save_image`).  A leading ``~`` on IMAGE marks the publish
    non-durable: an MC crash-restart rolls it back to the latest
    durable epoch until the schedule re-asserts it.
    """
    cycles_s, sep, image_s = spec.partition(":")
    if not sep or not image_s:
        raise ValueError(f"bad --update-at spec {spec!r} "
                         f"(expected CYCLES:IMAGE)")
    at_cycles = int(cycles_s)
    durable = True
    if image_s.startswith("~"):
        durable = False
        image_s = image_s[1:]
    if image_s.startswith("@"):
        image = load_image(image_s[1:])
    elif image_s == "patch" or image_s.startswith("patch:"):
        _, _, seed_s = image_s.partition(":")
        image = derive_patched_image(base_image,
                                     seed=int(seed_s) if seed_s else 1)
    else:
        raise ValueError(f"bad --update-at image {image_s!r} "
                         f"(expected patch[:SEED] or @PATH)")
    return UpdateEntry(at_cycles=at_cycles, image=image, durable=durable)


@dataclass
class UpdateSchedule:
    """Publish points in this client's local cycles, plus the epoch
    gate that models when the MC's flip became visible to it."""

    entries: list[UpdateEntry] = field(default_factory=list)
    _next: int = 0
    _cap: int = 0

    @classmethod
    def from_specs(cls, specs, base_image: Image) -> "UpdateSchedule":
        entries = [parse_update_spec(s, base_image) for s in specs]
        entries.sort(key=lambda e: e.at_cycles)
        # chain patch derivations: each later entry patched a later
        # build, so its digest must differ from every earlier one
        seen = {image_digest(base_image)}
        for e in entries:
            if e.digest in seen:
                raise ValueError(
                    f"--update-at entry at {e.at_cycles} cycles "
                    f"publishes an image identical to an earlier one")
            seen.add(e.digest)
        return cls(entries=entries)

    def poll(self, cycles: int, mc) -> int:
        """Publish every entry due at local *cycles* (idempotent on a
        shared MC) and return the epoch cap for this client: replies
        resolve at ``min(mc.epoch, cap)`` so a client never observes a
        flip its own clock has not reached yet.  Re-asserts published
        entries whose epoch an MC crash-restart rolled back."""
        entries = self.entries
        while self._next < len(entries) and \
                entries[self._next].at_cycles <= cycles:
            entry = entries[self._next]
            entry.epoch = self._assert_published(entry, mc)
            self._cap = entry.epoch
            self._next += 1
        if self._cap and mc.epoch < self._cap:
            # the MC restarted and rolled back to its latest durable
            # epoch: the update driver pushes the patches again
            for entry in entries[:self._next]:
                entry.epoch = self._assert_published(entry, mc)
            self._cap = entries[self._next - 1].epoch
        return self._cap

    @staticmethod
    def _assert_published(entry: UpdateEntry, mc) -> int:
        """Make sure *entry*'s image is a published epoch and return
        it.  If some other client of a shared MC already published
        this digest, *observe* its epoch instead of re-publishing —
        a lagging client must never roll the fleet's MC back."""
        known = mc.epoch_of_digest(entry.digest)
        if known is not None:
            return known
        return mc.publish(entry.image, durable=entry.durable)

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self.entries)

    def copy(self) -> "UpdateSchedule":
        """A fresh, unpolled schedule over the same entries (each
        fleet client drives its own copy)."""
        return UpdateSchedule(entries=[
            UpdateEntry(at_cycles=e.at_cycles, image=e.image,
                        digest=e.digest, durable=e.durable)
            for e in self.entries])
